// Serve: mount the networked admission service in-process, stream a
// video workload through the HTTP client as a remote producer would, and
// verify the drained result bit-for-bit against the serial distributed
// randPr oracle. The same service is what `ospserve -listen` runs as a
// standalone daemon; `osploadgen` is the load-generator version of this
// program's client half.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"

	"repro/osp"
	"repro/osp/client"
)

func main() {
	// The admission service: HTTP API over a pool of concurrent engines.
	srv := osp.NewServer(osp.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed at the end of main
	defer srv.Shutdown(context.Background())
	defer hs.Close()
	fmt.Printf("admission service up on http://%s\n", ln.Addr())

	// A bottleneck-router workload: 16 video streams of 8-packet frames
	// squeezed through a link that forwards 1 packet per slot.
	const seed = 7
	vi, err := osp.VideoInstance(osp.VideoConfig{
		Streams: 16, FramesPerStream: 8, LinkCapacity: 1, Jitter: 2,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	inst := vi.Inst
	fmt.Println(inst)

	// The remote producer: register the set system, then race element
	// batches against the admission deadline.
	ctx := context.Background()
	cl, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	h, err := cl.Register(ctx, client.Spec{
		Info: osp.InfoOf(inst), Seed: seed, Label: "video-demo",
	})
	if err != nil {
		log.Fatal(err)
	}

	var admitted, dropped int
	const batch = 64
	for off := 0; off < len(inst.Elements); off += batch {
		end := min(off+batch, len(inst.Elements))
		verdicts, err := h.Ingest(ctx, inst.Elements[off:end])
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range verdicts {
			admitted += len(v.Admitted)
			dropped += len(v.Dropped)
		}
	}
	fmt.Printf("verdicts: %d packets forwarded, %d dropped\n", admitted, dropped)

	res, err := h.Drain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goodput: %d frames completed, weight %.1f of %.1f offered\n",
		len(res.Completed), res.Benefit, inst.TotalWeight())

	// The service's guarantee: the drained result equals a serial
	// distributed-randPr run under the same seed, bit for bit.
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical to serial hashRandPr oracle: %v\n", res.Equal(serial))

	// Operational state, as Prometheus would scrape it.
	text, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "osp_engine_dropped_total") ||
			strings.HasPrefix(line, "osp_engine_completed_weight") {
			fmt.Println("metrics:", line)
		}
	}
}
