// Multihop: the paper's "competitive scheduling of multi-part tasks"
// scenario. Packets cross a line of bounded-capacity switches; a packet is
// delivered only if every switch on its route serves it. Each switch runs
// the distributed randPr: it ranks the packets present by a priority
// derived from a shared hash seed — zero coordination, yet all switches
// agree on every priority (Section 3.1 of the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/hashpr"
	"repro/internal/router"
	"repro/internal/workload"
	"repro/osp"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	mi, err := workload.Multihop(workload.MultihopConfig{
		Hops:    8,
		Packets: 200,
		Horizon: 20,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	st := osp.ComputeStats(mi.Inst)
	fmt.Printf("network: 8 switches, 200 packets, %d contended (time,hop) cells, peak contention %d\n\n",
		mi.Inst.NumElements(), st.SigmaMax)

	network, abstract, err := router.SimulateMultihop(mi, hashpr.Mixer{Seed: 1234})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed switches (drops propagate): %s\n", network)
	fmt.Printf("abstract OSP run (analysis bound):      %s\n\n", abstract)

	// FIFO comparison on the same trace.
	res, err := osp.Run(mi.Inst, osp.Baselines()[2], nil) // greedyFirstListed
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FIFO-style deterministic baseline:      %d packets delivered\n", len(res.Completed))

	fmt.Println("\nThe real network delivers at least as much as the abstract OSP run:")
	fmt.Println("a packet dropped upstream stops competing downstream, so the paper's")
	fmt.Println("competitive guarantee is a conservative bound for the deployed system.")
}
