// Video: the paper's motivating scenario. Several video streams emit
// GoP-structured frames (heavy I-frames, medium P, light B) that fragment
// into packets and squeeze through a one-packet-per-slot bottleneck link.
// The example compares randPr's goodput against classic router policies
// and shows the per-class delivery breakdown.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/router"
	"repro/internal/workload"
	"repro/osp"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	vi, err := workload.Video(workload.VideoConfig{
		Streams:         8,
		FramesPerStream: 16,
		Jitter:          3,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	st := osp.ComputeStats(vi.Inst)
	fmt.Printf("trace: %d frames, %d packets, burst σmax = %d, kmax = %d packets/frame\n\n",
		vi.Inst.NumSets(), vi.TotalPackets, st.SigmaMax, st.KMax)

	greedyRef := osp.GreedyOffline(vi.Inst)
	fmt.Printf("offline greedy reference: %.0f frame value\n\n", greedyRef.Weight)

	for _, policy := range router.Policies() {
		rep, err := router.Simulate(vi, policy, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s goodput %6.1f  (I: %d/%d  P: %d/%d  B: %d/%d)\n",
			policy.Name(), rep.WeightDelivered,
			rep.ByClass["I"].Delivered, rep.ByClass["I"].Offered,
			rep.ByClass["P"].Delivered, rep.ByClass["P"].Offered,
			rep.ByClass["B"].Delivered, rep.ByClass["B"].Offered)
	}

	fmt.Println("\nrandPr's persistent weighted priorities keep whole frames alive, beating")
	fmt.Println("size-oblivious policies (taildrop, uniformRandom). Weight-greedy heuristics")
	fmt.Println("can win on benign traces like this one — but they carry no worst-case")
	fmt.Println("guarantee: the Theorem 3 adversary (cmd/osplower -mode duel) forces them")
	fmt.Println("to a σ^(k−1) competitive ratio, while randPr stays within kmax·sqrt(σmax).")
}
