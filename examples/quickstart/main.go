// Quickstart: build a tiny OSP instance by hand, run the paper's randPr
// algorithm, and compare its expected benefit (exact, via Lemma 1) with
// the offline optimum computed by branch-and-bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/osp"
)

func main() {
	// Three data frames contend pairwise on three time slots:
	// A = {t0, t1}, B = {t0, t2}, C = {t1, t2}, weights 1, 2, 3.
	// Only one packet survives each slot, so at most one frame completes.
	var b osp.Builder
	frameA := b.AddSet(1)
	frameB := b.AddSet(2)
	frameC := b.AddSet(3)
	b.AddElement(frameA, frameB) // slot t0: packets of A and B collide
	b.AddElement(frameA, frameC) // slot t1
	b.AddElement(frameB, frameC) // slot t2
	inst := b.MustBuild()

	fmt.Println(inst)

	// One online run with a seeded RNG.
	res, err := osp.Run(inst, osp.NewRandPr(), rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("randPr completed sets %v, benefit %.0f\n", res.Completed, res.Benefit)

	// Exact expectation from Lemma 1: every set survives with probability
	// w(S)/w(N[S]) = w(S)/6 here, so E = (1²+2²+3²)/6.
	fmt.Printf("E[w(ALG)] (Lemma 1 closed form) = %.4f\n", osp.ExpectedBenefit(inst))

	// Offline optimum and the paper's guarantee.
	sol, err := osp.Exact(inst)
	if err != nil {
		log.Fatal(err)
	}
	st := osp.ComputeStats(inst)
	fmt.Printf("OPT = %.0f (sets %v)\n", sol.Weight, sol.Sets)
	fmt.Printf("measured ratio OPT/E[ALG] = %.3f ≤ Theorem 1 bound %.3f ≤ kmax·sqrt(σmax) = %.3f\n",
		sol.Weight/osp.ExpectedBenefit(inst), osp.Theorem1Bound(st), osp.Corollary6Bound(st))
}
