// Capacity: the variable-capacity generalization (Theorem 4). A server
// that can serve b packets per slot changes the relevant congestion
// measure from the load σ(u) to the adjusted load ν(u) = σ(u)/b(u).
// The example sweeps the link capacity on a fixed offered load and shows
// the measured competitive ratio tracking the adjusted-load bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/osp"
)

func main() {
	const trials = 500
	fmt.Println("offered load σ = 12 per slot; sweeping link capacity b")
	fmt.Println()
	fmt.Printf("%3s  %8s  %12s  %14s  %12s\n", "b", "mean ν", "E[w(ALG)]", "OPT (exact)", "OPT/E[ALG]")

	for _, capacity := range []int{1, 2, 3, 4, 6} {
		rng := rand.New(rand.NewSource(int64(100 + capacity)))
		inst, err := osp.RandomInstance(osp.UniformConfig{
			M: 16, N: 32, Load: 12, Capacity: capacity,
			WeightFn: osp.ZipfWeights(1, 4),
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		mean, _, err := osp.MeanBenefit(inst, osp.NewRandPr(), trials, 42)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := osp.Exact(inst)
		if err != nil {
			log.Fatal(err)
		}
		st := osp.ComputeStats(inst)
		fmt.Printf("%3d  %8.2f  %12.2f  %14.2f  %12.2f   (Thm 4 bound %.1f)\n",
			capacity, st.NuMean, mean, sol.Weight, sol.Weight/mean, osp.Theorem4Bound(st))
	}

	fmt.Println()
	fmt.Println("Doubling the capacity halves the adjusted load: the measured ratio")
	fmt.Println("falls with ν even though the burst size σ never changes — exactly")
	fmt.Println("the supply/demand story Theorem 4 formalizes.")
}
