// Lemma9: dissect the paper's randomized lower-bound construction
// (Figure 1) stage by stage. The example draws one instance, prints each
// stage's element/load profile, verifies the planted optimum, and then
// shows randPr and a greedy baseline being crushed by the distribution
// while a clairvoyant run completes all ℓ³ planted sets.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/setsystem"
	"repro/osp"
)

func main() {
	const l = 4
	rng := rand.New(rand.NewSource(1))
	li, err := lowerbound.NewLemma9(l, rng)
	if err != nil {
		log.Fatal(err)
	}
	st := osp.ComputeStats(li.Inst)
	fmt.Printf("Lemma 9 draw with ℓ=%d: m=ℓ⁴=%d sets, n=%d elements, k=%d, σmax=%d\n\n",
		l, st.M, st.N, st.KMax, st.SigmaMax)

	names := [4]string{
		"Stage I   (ℓ,ℓ)-gadgets w/o rows  ",
		"Stage II  (ℓ,ℓ²)-gadgets w/o rows ",
		"Stage III (ℓ²−ℓ,ℓ²)-gadget + rows ",
		"Stage IV  load-1 padding          ",
	}
	start := 0
	for s := 0; s < 4; s++ {
		end := li.StageEnd[s]
		var loadSum, count int
		maxLoad := 0
		for j := start; j < end; j++ {
			load := li.Inst.Elements[j].Load()
			loadSum += load
			count++
			if load > maxLoad {
				maxLoad = load
			}
		}
		mean := 0.0
		if count > 0 {
			mean = float64(loadSum) / float64(count)
		}
		fmt.Printf("%s %6d elements, mean load %5.2f, max load %3d\n", names[s], count, mean, maxLoad)
		start = end
	}

	if err := li.VerifyPlanted(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanted optimum: %d pairwise-disjoint sets (= ℓ³)\n\n", len(li.Planted))

	inPlanted := make([]bool, li.Inst.NumSets())
	for _, s := range li.Planted {
		inPlanted[s] = true
	}
	algs := []core.Algorithm{
		&core.RandPr{},
		&core.GreedyFewestRemaining{},
		&clairvoyant{planted: inPlanted},
	}
	for _, alg := range algs {
		res, err := core.Run(li.Inst, alg, rand.New(rand.NewSource(2)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s completed %3d sets  (OPT/ALG = %.1f)\n",
			alg.Name(), len(res.Completed),
			float64(len(li.Planted))/maxf(res.Benefit, 1))
	}
	fmt.Println("\nNo online algorithm can find the planted row: the random row")
	fmt.Println("permutations hide it until the gadget collisions have already")
	fmt.Println("killed all but polylog(ℓ) of any algorithm's survivors (Theorem 2).")
}

type clairvoyant struct{ planted []bool }

func (c *clairvoyant) Name() string                      { return "clairvoyant (cheats)" }
func (c *clairvoyant) Reset(core.Info, *rand.Rand) error { return nil }
func (c *clairvoyant) Choose(ev core.ElementView) []setsystem.SetID {
	for _, s := range ev.Members {
		if c.planted[s] {
			return []setsystem.SetID{s}
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
