// Adversary: play the Theorem 3 game. The adaptive adversary builds the
// instance online against each deterministic policy, forcing it down to a
// single completed set while certifying σ^(k−1) disjoint completable sets
// — then randPr replays the very same materialized instance and recovers
// most of the optimum, showing what randomization buys.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/osp"
)

func main() {
	const sigma, k = 3, 3
	fmt.Printf("Theorem 3 adversary: σ=%d, k=%d → m = σ^k = %d unweighted sets of size %d\n\n",
		sigma, k, 27, k)

	for _, alg := range core.Baselines() {
		res, inst, certOPT, err := lowerbound.RunDuel(sigma, k, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("vs %-22s ALG completed %d set(s); certified OPT ≥ %d → ratio ≥ %d\n",
			alg.Name(), len(res.Completed), certOPT, certOPT)

		// Replay the materialized instance (now a fixed, oblivious input)
		// with randPr.
		var acc float64
		const trials = 300
		for t := 0; t < trials; t++ {
			r, err := osp.Run(inst, osp.NewRandPr(), rand.New(rand.NewSource(int64(t))))
			if err != nil {
				log.Fatal(err)
			}
			acc += r.Benefit
		}
		fmt.Printf("   randPr on the same instance: E[ALG] = %.2f (ratio %.1f)\n",
			acc/trials, float64(certOPT)/(acc/trials))
	}

	fmt.Println("\nThe adversary wins against any fixed deterministic rule because it")
	fmt.Println("can watch the rule's choices; randPr's priorities are unknown to the")
	fmt.Println("instance, so on every *fixed* input it keeps its kmax·sqrt(σmax)")
	fmt.Println("guarantee (Corollary 6). Against an adaptive adversary no online")
	fmt.Println("algorithm — randomized or not — survives; competitive analysis of")
	fmt.Println("randomized algorithms is against oblivious adversaries.")
}
