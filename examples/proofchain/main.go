// Proofchain: watch Theorem 1's proof execute numerically. The example
// builds a weighted instance, computes the offline optimum, and then
// evaluates every inequality the proof composes — Lemma 1's exact survival
// law, Lemma 3 applied to OPT and to the whole collection, the Lemma 4
// disjointness step, the Lemma 5 element-wise sum, Eq. (4), and the final
// Theorem 1 floor — verifying each one on real numbers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/analysis"
	"repro/osp"
)

func main() {
	rng := rand.New(rand.NewSource(2010)) // PODC 2010
	inst, err := osp.RandomInstance(osp.UniformConfig{
		M: 14, N: 32, Load: 4, MinLoad: 1,
		WeightFn: osp.ZipfWeights(1, 5),
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	sol, err := osp.Exact(inst)
	if err != nil {
		log.Fatal(err)
	}

	chain, err := analysis.Verify(inst, sol.Sets)
	if err != nil {
		log.Fatalf("proof chain broken (engine bug!): %v", err)
	}
	fmt.Println(chain.Describe())

	fmt.Println("\nPer-set survival probabilities (Lemma 1):")
	ps := analysis.SurvivalProbabilities(inst)
	for i, p := range ps {
		marker := " "
		for _, s := range sol.Sets {
			if int(s) == i {
				marker = "*" // chosen by OPT
			}
		}
		fmt.Printf("  set %2d%s  w=%5.2f  Pr[survives] = %.3f\n", i, marker, inst.Weights[i], p)
	}
	fmt.Println("\n(* = in the offline optimum. randPr doesn't know which sets those")
	fmt.Println("are, yet its expected benefit is guaranteed within the Theorem 1")
	fmt.Println("factor of their total weight.)")
}
