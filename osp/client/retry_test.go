package client_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultproxy"
	"repro/osp"
	"repro/osp/client"
)

// startProxiedServer runs a real server and a fault proxy in front of
// its HTTP listener; the returned client talks through the proxy.
func startProxiedServer(t *testing.T, opts ...client.Option) (*client.Client, *faultproxy.Proxy) {
	t.Helper()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	p, err := faultproxy.New(hs.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c, err := client.New("http://"+p.Addr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

// TestRetryTransientThenSuccess pins the ride-through: the node drops
// connections for a while (a failover in progress), the retry policy
// keeps the batch alive, the node heals, the batch lands — and the
// drain still matches the serial oracle exactly, proving the retries
// neither lost nor doubled elements.
func TestRetryTransientThenSuccess(t *testing.T) {
	ctx := context.Background()
	c, p := startProxiedServer(t, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 10, BaseBackoff: 25 * time.Millisecond, Budget: 10 * time.Second,
	}))
	const seed = 77
	inst := uniform(t, 25, 600, 4, 3)
	h := registerTwin(t, c, inst, seed)

	half := len(inst.Elements) / 2
	if _, err := h.Ingest(ctx, inst.Elements[:half]); err != nil {
		t.Fatalf("healthy ingest: %v", err)
	}
	// Break the network, heal it while the client is mid-backoff.
	p.Set(faultproxy.Fault{Mode: faultproxy.Drop})
	p.CutConns()
	time.AfterFunc(120*time.Millisecond, func() { p.Set(faultproxy.Fault{Mode: faultproxy.Pass}) })
	if _, err := h.Ingest(ctx, inst.Elements[half:]); err != nil {
		t.Fatalf("ingest through transient fault: %v", err)
	}
	res, err := h.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(oracle) {
		t.Error("drain after transient-fault retries differs from oracle")
	}
}

// TestRetryBudgetExhausted pins the give-up: a blackholed node (writes
// vanish, replies never come) burns one PerAttempt timeout per try
// until the total Budget expires, and the error says so.
func TestRetryBudgetExhausted(t *testing.T) {
	ctx := context.Background()
	c, p := startProxiedServer(t, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 100,
		BaseBackoff: 10 * time.Millisecond,
		PerAttempt:  80 * time.Millisecond,
		Budget:      400 * time.Millisecond,
	}))
	inst := uniform(t, 10, 100, 3, 4)
	h := registerTwin(t, c, inst, 1)

	p.Set(faultproxy.Fault{Mode: faultproxy.Blackhole})
	start := time.Now()
	_, err := h.Ingest(ctx, inst.Elements[:10])
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ingest through a blackhole succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget-exhausted error = %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed < 350*time.Millisecond || elapsed > 5*time.Second {
		t.Errorf("gave up after %v, want ≈ the 400ms budget", elapsed)
	}
}

// TestRetryPermanent4xxNotRetried pins the must-NOT-retry arm: a batch
// the server rejects as malformed is returned immediately — exactly one
// request on the wire, no backoff burned on a request that can never
// succeed.
func TestRetryPermanent4xxNotRetried(t *testing.T) {
	ctx := context.Background()
	srv := osp.NewServer(osp.ServerConfig{})
	var ingestPosts atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "POST" && len(r.URL.Path) > 9 && r.URL.Path[len(r.URL.Path)-9:] == "/elements" {
			ingestPosts.Add(1)
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	// CodecJSON: one HTTP request per attempt (CodecAuto's binary→JSON
	// probe would legitimately double the first attempt's request count).
	c, err := client.New(hs.URL, client.WithCodec(client.CodecJSON),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 6, BaseBackoff: 5 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	inst := uniform(t, 10, 100, 3, 5)
	h := registerTwin(t, c, inst, 2)

	bad := []osp.Element{{Members: []osp.SetID{9999}, Capacity: 1}} // set 9999 does not exist
	_, err = h.Ingest(ctx, bad)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch error = %v, want *APIError 400", err)
	}
	if n := ingestPosts.Load(); n != 1 {
		t.Fatalf("server saw %d ingest requests for a permanent 400, want exactly 1 (no retries)", n)
	}
}

// TestRetryStreamReconnectCallbackOrdering pins verdict-callback
// semantics across a mid-stream reconnect: the pinned verdict stream is
// cut under the client, the retry re-dials it, and the resent batch's
// callbacks fire exactly once per element, in batch order — then the
// drain proves no element was delivered to the engine twice.
func TestRetryStreamReconnectCallbackOrdering(t *testing.T) {
	ctx := context.Background()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln) //nolint:errcheck // closed by cleanup
	p, err := faultproxy.New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	c, err := client.New(hs.URL,
		client.WithStreamAddr(p.Addr()),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 8, BaseBackoff: 20 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	inst := uniform(t, 30, 800, 4, 6)
	h := registerTwin(t, c, inst, seed)

	half := len(inst.Elements) / 2
	if err := h.IngestAuto(ctx, inst.Elements[:half], nil); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	if h.Transport() != "stream" {
		t.Fatalf("transport = %q, want stream", h.Transport())
	}

	// Kill the pinned stream between batches — the crashed-node
	// signature — and send the second half through the reconnect.
	if n := p.CutConns(); n == 0 {
		t.Fatal("no pinned stream connection to cut")
	}
	var order []int
	second := inst.Elements[half:]
	err = h.IngestAuto(ctx, second, func(i int, admitted []osp.SetID) {
		order = append(order, i)
	})
	if err != nil {
		t.Fatalf("ingest across reconnect: %v", err)
	}
	if len(order) != len(second) {
		t.Fatalf("got %d callbacks for %d elements — duplicates or drops across the reconnect", len(order), len(second))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("callback %d fired for element %d, want batch order", i, got)
		}
	}
	if h.Transport() != "stream" {
		t.Errorf("transport fell back to %q after reconnect, want stream", h.Transport())
	}

	res, err := h.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(oracle) {
		t.Error("drain after mid-stream reconnect differs from oracle — an element was lost or doubled")
	}
}
