package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"repro/osp"
	"repro/osp/client"
)

// Example walks the full client protocol against a live admission
// server: register a set system, stream its elements for immediate
// verdicts, drain the final result, and verify it bit-for-bit against
// the serial distributed-randPr oracle under the same seed.
func Example() {
	// A real deployment points at a running `ospserve -listen` daemon;
	// here we mount the same service on a loopback test listener.
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	var b osp.Builder
	a := b.AddSet(1)   // weight-1 frame
	c := b.AddSet(2)   // weight-2 frame
	b.AddElement(a, c) // a slot where both frames have a packet: one must drop
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	ctx := context.Background()
	cl, err := client.New(hs.URL)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	const seed = 42
	h, err := cl.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: seed, Label: "demo"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	verdicts, err := h.Ingest(ctx, inst.Elements)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("contested slot: admitted %v, dropped %v\n", verdicts[0].Admitted, verdicts[0].Dropped)

	res, err := h.Drain(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	serial, _ := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	fmt.Printf("benefit %.0f, identical to serial oracle: %v\n", res.Benefit, res.Equal(serial))
	// Output:
	// contested slot: admitted [1], dropped [0]
	// benefit 2, identical to serial oracle: true
}
