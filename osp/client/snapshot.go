package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/wire"
)

// Snapshot quiesces the instance on the server and returns its binary
// snapshot frame (POST /v1/instances/{id}/snapshot) — the instance's
// full recoverable state. Hand the frame to Client.Restore (on this
// server or another) to rebuild the instance under the same ID with its
// stream position intact; a server running with -snapshot-dir also
// persists the frame on disk as a side effect of this call.
func (in *Instance) Snapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", in.c.base+"/v1/instances/"+in.id+"/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := in.c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: snapshot %s: %w", in.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read snapshot %s: %w", in.id, err)
	}
	return raw, nil
}

// Restore rebuilds an instance on the server from a snapshot frame
// (POST /v1/instances with the snapshot content type) and returns its
// handle. The instance resumes under its original ID: a half-ingested
// stream continues exactly where the snapshot left it, and the eventual
// drain is bit-for-bit what the uninterrupted instance would have
// reported.
func (c *Client) Restore(ctx context.Context, frame []byte) (*Instance, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", c.base+"/v1/instances", bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeSnapshot)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: restore: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, apiError(resp)
	}
	var rr registerResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("client: decode restore response: %w", err)
	}
	return &Instance{c: c, id: rr.ID, shards: rr.Shards, policy: rr.Policy}, nil
}

// Instance reattaches a handle to an instance that already exists on
// the server — the resume path after a server restart restored the
// instance from its snapshot directory, when this process never held
// (or lost) the original handle. The ID is verified against the server.
func (c *Client) Instance(ctx context.Context, id string) (*Instance, error) {
	var st Status
	if err := c.doJSON(ctx, "GET", "/v1/instances/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &Instance{c: c, id: st.ID, shards: st.Shards, policy: st.Policy}, nil
}
