package client

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/osp"
)

// Transport negotiation: IngestAuto prefers the pipelined stream
// transport (one long-lived TCP connection to the server's
// -stream-listen port) and falls back to binary HTTP — once, pinned per
// instance — when the target node has no stream listener. This is the
// transport-level mirror of CodecAuto's JSON fallback: a fleet
// coordinator can point the same client code at a mixed fleet where
// some nodes expose the stream port and some predate it, and every node
// settles onto the fastest transport it actually speaks after at most
// one failed dial.

// Transport pinning outcomes for IngestAuto, reported by Transport.
const (
	transportUnresolved int32 = iota
	transportStream
	transportHTTP
)

// IngestAuto streams one batch like IngestFunc but negotiates the
// transport as well as the codec: when the client has a stream address
// (WithStreamAddr), the first call dials it and pins a long-lived
// verdict stream for this instance; if the dial or handshake fails —
// the node has no stream listener, or something else answers the port —
// the batch is retried over binary HTTP exactly once and the instance
// stays pinned to HTTP, never re-dialing per batch. A server that
// speaks the stream protocol but *refuses* the instance (an Error
// frame, surfaced as *APIError) is authoritative: no fallback, the
// error is returned. The HTTP arm inherits CodecAuto's per-instance
// JSON fallback unchanged.
//
// fn (nil allowed: verdicts are discarded) runs once per element, in
// batch order, with the parent sets the element was admitted to; the
// admitted slice is reused scratch, valid
// only during the callback. IngestAuto serializes concurrent callers on
// the instance's transport mutex (the pinned stream is a single
// in-order connection); after a terminal stream error the connection is
// closed and the next call re-dials. Call Close when done to release a
// pinned stream gracefully.
//
// With WithRetry configured, a terminal stream error drops the pinned
// connection and the retry re-dials it — the reconnect path a node
// failover rides through. Callbacks are buffered per attempt and fire
// only after an attempt succeeds, so a mid-stream reconnect never
// delivers a verdict twice and never delivers them out of batch order.
func (in *Instance) IngestAuto(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	if fn == nil {
		fn = func(int, []osp.SetID) {} // verdicts wanted for their side effect only
	}
	in.tmu.Lock()
	defer in.tmu.Unlock()
	if in.c.retry == nil {
		return in.ingestAutoOnce(ctx, els, fn)
	}
	buf := verdictBufPool.Get().(*verdictBuf)
	defer verdictBufPool.Put(buf)
	err := in.c.withRetry(ctx, func(ctx context.Context) error {
		buf.reset()
		return in.ingestAutoOnce(ctx, els, buf.collect)
	})
	if err != nil {
		return err
	}
	buf.flush(fn)
	return nil
}

// ingestAutoOnce is one transport-negotiated attempt; the caller holds
// tmu.
func (in *Instance) ingestAutoOnce(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	if in.transport.Load() == transportHTTP || in.c.streamAddr == "" {
		in.transport.Store(transportHTTP)
		return in.ingestFuncOnce(ctx, els, fn)
	}
	if in.pinned == nil {
		st, err := in.OpenStream(ctx)
		if err != nil {
			var apiErr *APIError
			if in.transport.Load() == transportUnresolved && !errors.As(err, &apiErr) {
				// The node does not speak the stream protocol on that
				// address (no listener, or a different service). Fall back
				// to binary HTTP and stay pinned: one failed dial per
				// instance, not one per batch.
				in.transport.Store(transportHTTP)
				return in.ingestFuncOnce(ctx, els, fn)
			}
			return err
		}
		in.pinned = st
		in.transport.Store(transportStream)
	}
	if err := in.pinned.Send(els); err != nil {
		return in.dropPinned(err)
	}
	if err := in.pinned.Recv(fn); err != nil {
		return in.dropPinned(err)
	}
	return nil
}

// dropPinned tears down the pinned stream after a terminal error; the
// transport stays pinned to stream, so the next IngestAuto re-dials.
func (in *Instance) dropPinned(err error) error {
	in.pinned.Close() //nolint:errcheck // the stream is already broken
	in.pinned = nil
	return err
}

// StreamConnElements reports, per striped stream connection, how many
// elements IngestAuto's pinned stream has sent down it — the
// observable stripe balance for loadgen reporting. Nil when no stream
// is pinned (HTTP transport, or before the first IngestAuto).
func (in *Instance) StreamConnElements() []uint64 {
	in.tmu.Lock()
	defer in.tmu.Unlock()
	if in.pinned == nil {
		return nil
	}
	return in.pinned.ConnElements()
}

// Transport reports IngestAuto's pinned transport for this instance:
// "stream" or "http" once the first call settles it, "auto" before.
func (in *Instance) Transport() string {
	switch in.transport.Load() {
	case transportStream:
		return "stream"
	case transportHTTP:
		return "http"
	default:
		return "auto"
	}
}

// Close releases the instance's pinned stream, if IngestAuto opened
// one, with a clean half-close handshake (every pipelined batch is
// answered before the server confirms). The instance handle itself
// stays usable — the next IngestAuto re-dials. Safe to call when no
// stream is pinned.
func (in *Instance) Close() error {
	in.tmu.Lock()
	defer in.tmu.Unlock()
	if in.pinned == nil {
		return nil
	}
	st := in.pinned
	in.pinned = nil
	err := st.CloseSend()
	for err == nil {
		err = st.Recv(func(int, []osp.SetID) {})
	}
	if cerr := st.Close(); cerr != nil && err == io.EOF {
		err = cerr
	}
	if err != nil && err != io.EOF {
		return fmt.Errorf("client: close stream: %w", err)
	}
	return nil
}
