package client_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http/httptest"
	"testing"

	"repro/osp"
	"repro/osp/client"
)

// startStreamServer runs the full service with BOTH transports live: the
// HTTP API on an httptest listener and the stream listener on its own
// loopback port, wired into one client via WithStreamAddr.
func startStreamServer(t *testing.T, opts ...client.Option) (*client.Client, *osp.Server) {
	t.Helper()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ServeStream(ln)                                   //nolint:errcheck // closed by cleanup or Shutdown
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	c, err := client.New(hs.URL, append([]client.Option{client.WithStreamAddr(ln.Addr().String())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func registerTwin(t *testing.T, c *client.Client, inst *osp.Instance, seed uint64) *client.Instance {
	t.Helper()
	h, err := c.Register(context.Background(), client.Spec{
		Info: osp.InfoOf(inst), Seed: seed,
		Engine: osp.EngineConfig{Shards: 2, BatchSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestStreamMatchesHTTPAndOracle is the client-side equivalence anchor:
// the same workload through the pipelined stream and through HTTP
// Ingest on twin instances (same seed) produces bit-for-bit identical
// per-element verdicts, and both drain to the serial oracle's result.
func TestStreamMatchesHTTPAndOracle(t *testing.T) {
	ctx := context.Background()
	c, _ := startStreamServer(t)
	const seed = 41
	inst := uniform(t, 40, 1200, 4, 7)
	httpH := registerTwin(t, c, inst, seed)
	streamH := registerTwin(t, c, inst, seed)

	st, err := streamH.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Window() < 1 {
		t.Fatalf("window = %d", st.Window())
	}
	if st.Policy() != osp.DefaultPolicy {
		t.Fatalf("stream policy = %q, want %q", st.Policy(), osp.DefaultPolicy)
	}
	if got := streamH.Codec(); got != "stream" {
		t.Fatalf("codec with open stream = %q, want stream", got)
	}

	// The classic pipeline dance: keep up to 4 batches in flight, odd
	// batch size so verdict masks pad mid-byte.
	const batch = 77
	type sent struct{ off int }
	var queue []sent
	collect := func() {
		t.Helper()
		s := queue[0]
		queue = queue[1:]
		els := inst.Elements[s.off:min(s.off+batch, len(inst.Elements))]
		want, err := httpH.Ingest(ctx, els)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Recv(func(i int, admitted []osp.SetID) {
			if fmt.Sprint(admitted) != fmt.Sprint(want[i].Admitted) {
				t.Fatalf("element %d: stream admitted %v, http %v", s.off+i, admitted, want[i].Admitted)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for off := 0; off < len(inst.Elements); off += batch {
		if len(queue) == 4 {
			collect()
		}
		if err := st.Send(inst.Elements[off:min(off+batch, len(inst.Elements))]); err != nil {
			t.Fatal(err)
		}
		queue = append(queue, sent{off})
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	for len(queue) > 0 {
		collect()
	}
	if err := st.Recv(func(int, []osp.SetID) {}); err != io.EOF {
		t.Fatalf("Recv after fin = %v, want io.EOF", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := streamH.Codec(); got == "stream" {
		t.Fatalf("codec still %q after Close", got)
	}

	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*client.Instance{httpH, streamH} {
		res, err := h.Drain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(serial) {
			t.Fatalf("instance %s drained result differs from serial oracle", h.ID())
		}
	}
}

// TestStreamWindowBackpressure pins the flow-control contract: Send
// fails with ErrWindowFull at exactly Window unanswered batches and
// succeeds again after one Recv frees a slot.
func TestStreamWindowBackpressure(t *testing.T) {
	ctx := context.Background()
	c, _ := startStreamServer(t)
	inst := uniform(t, 20, 400, 3, 5)
	h := registerTwin(t, c, inst, 3)
	st, err := h.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for k := 0; k < st.Window(); k++ {
		if err := st.Send(inst.Elements[k : k+1]); err != nil {
			t.Fatalf("send %d/%d: %v", k, st.Window(), err)
		}
	}
	if st.Outstanding() != st.Window() {
		t.Fatalf("outstanding = %d, want %d", st.Outstanding(), st.Window())
	}
	if err := st.Send(inst.Elements[:1]); !errors.Is(err, client.ErrWindowFull) {
		t.Fatalf("send past window = %v, want ErrWindowFull", err)
	}
	if err := st.Recv(func(int, []osp.SetID) {}); err != nil {
		t.Fatal(err)
	}
	if err := st.Send(inst.Elements[:1]); err != nil {
		t.Fatalf("send after recv: %v", err)
	}
	for st.Outstanding() > 0 {
		if err := st.Recv(func(int, []osp.SetID) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := st.Send(inst.Elements[:1]); err == nil {
		t.Fatal("Send after CloseSend succeeded")
	}
	if err := st.Recv(func(int, []osp.SetID) {}); err != io.EOF {
		t.Fatalf("final Recv = %v, want io.EOF", err)
	}
}

// TestStreamMultiConnOrderingMatchesHTTP pins the striping contract:
// with N connections, batches stripe round-robin but Recv still fires
// verdict callbacks in exact submit order, bit-for-bit equal to HTTP
// Ingest on a twin instance, and the batch count deliberately not a
// multiple of N exercises the per-stripe fin accounting. Also checks
// the stripe balance ConnElements reports.
func TestStreamMultiConnOrderingMatchesHTTP(t *testing.T) {
	for _, conns := range []int{2, 4} {
		t.Run(fmt.Sprintf("conns=%d", conns), func(t *testing.T) {
			ctx := context.Background()
			c, _ := startStreamServer(t, client.WithStreamConns(conns))
			const seed = 97
			inst := uniform(t, 40, 1100, 4, 7)
			httpH := registerTwin(t, c, inst, seed)
			streamH := registerTwin(t, c, inst, seed)

			st, err := streamH.OpenStream(ctx)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if st.Conns() != conns {
				t.Fatalf("Conns() = %d, want %d", st.Conns(), conns)
			}
			if st.Window()%conns != 0 || st.Window() < conns {
				t.Fatalf("window = %d, want a positive multiple of %d", st.Window(), conns)
			}

			// Odd batch size so 1100 elements yield a batch count that
			// is not a multiple of 2 or 4 (15 batches of ≤75).
			const batch = 75
			var offs []int
			collect := func() {
				t.Helper()
				off := offs[0]
				offs = offs[1:]
				els := inst.Elements[off:min(off+batch, len(inst.Elements))]
				want, err := httpH.Ingest(ctx, els)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Recv(func(i int, admitted []osp.SetID) {
					if fmt.Sprint(admitted) != fmt.Sprint(want[i].Admitted) {
						t.Fatalf("element %d: stream admitted %v, http %v", off+i, admitted, want[i].Admitted)
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			sent := 0
			for off := 0; off < len(inst.Elements); off += batch {
				if len(offs) == st.Window() {
					collect()
				}
				if err := st.Send(inst.Elements[off:min(off+batch, len(inst.Elements))]); err != nil {
					t.Fatal(err)
				}
				offs = append(offs, off)
				sent++
			}
			if sent%conns == 0 {
				t.Fatalf("test wants a ragged stripe: %d batches is a multiple of %d conns", sent, conns)
			}
			if err := st.CloseSend(); err != nil {
				t.Fatal(err)
			}
			for len(offs) > 0 {
				collect()
			}
			if err := st.Recv(func(int, []osp.SetID) {}); err != io.EOF {
				t.Fatalf("Recv after fin = %v, want io.EOF", err)
			}

			per := st.ConnElements()
			if len(per) != conns {
				t.Fatalf("ConnElements len = %d, want %d", len(per), conns)
			}
			var total uint64
			for ci, n := range per {
				if n == 0 {
					t.Fatalf("conn %d carried no elements: %v", ci, per)
				}
				total += n
			}
			if total != uint64(len(inst.Elements)) {
				t.Fatalf("ConnElements sums to %d, want %d", total, len(inst.Elements))
			}

			serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := streamH.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(serial) {
				t.Fatal("multi-conn drained result differs from serial oracle")
			}
		})
	}
}

// TestStreamOpenErrors covers the handshake failure modes: a client
// without a stream address, and an instance the server has never heard
// of (the server's Error frame surfaces as an APIError).
func TestStreamOpenErrors(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t) // no WithStreamAddr
	inst := uniform(t, 10, 50, 2, 1)
	h := registerTwin(t, c, inst, 1)
	if _, err := h.OpenStream(ctx); err == nil {
		t.Fatal("OpenStream without a stream address succeeded")
	}

	c2, _ := startStreamServer(t)
	h2 := registerTwin(t, c2, inst, 1)
	if err := h2.Remove(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := h2.OpenStream(ctx)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("OpenStream on removed instance = %v, want APIError", err)
	}
}

// TestIngestFuncMatchesIngest checks the callback ingest arm against
// the materializing one on twin instances, over both the binary and
// the pinned-JSON codec.
func TestIngestFuncMatchesIngest(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec client.Codec
	}{{"auto", client.CodecAuto}, {"json", client.CodecJSON}} {
		t.Run(tc.name, func(t *testing.T) {
			codec := tc.codec
			ctx := context.Background()
			c, _ := startServerWith(t, client.WithCodec(codec))
			const seed = 13
			inst := uniform(t, 30, 900, 3, 11)
			ingestH := registerTwin(t, c, inst, seed)
			funcH := registerTwin(t, c, inst, seed)

			const batch = 111
			for off := 0; off < len(inst.Elements); off += batch {
				els := inst.Elements[off:min(off+batch, len(inst.Elements))]
				want, err := ingestH.Ingest(ctx, els)
				if err != nil {
					t.Fatal(err)
				}
				calls := 0
				err = funcH.IngestFunc(ctx, els, func(i int, admitted []osp.SetID) {
					if i != calls {
						t.Fatalf("callback order: got element %d, want %d", i, calls)
					}
					calls++
					if fmt.Sprint(admitted) != fmt.Sprint(want[i].Admitted) {
						t.Fatalf("element %d: IngestFunc admitted %v, Ingest %v", off+i, admitted, want[i].Admitted)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if calls != len(els) {
					t.Fatalf("callback ran %d times for %d elements", calls, len(els))
				}
			}

			serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range []*client.Instance{ingestH, funcH} {
				res, err := h.Drain(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Equal(serial) {
					t.Fatalf("drained result differs from serial oracle (codec %s)", tc.name)
				}
			}
		})
	}
}

// BenchmarkStreamPipelined measures the full client+server stream round
// trip on loopback TCP — the profiling entry point for the transport
// (`go test -bench StreamPipelined -cpuprofile cpu.out ./osp/client`).
func BenchmarkStreamPipelined(b *testing.B) {
	srv := osp.NewServer(osp.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go srv.ServeStream(ln)                   //nolint:errcheck
	defer srv.Shutdown(context.Background()) //nolint:errcheck
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c, err := client.New(hs.URL, client.WithStreamAddr(ln.Addr().String()))
	if err != nil {
		b.Fatal(err)
	}
	inst, err := osp.RandomInstance(osp.UniformConfig{M: 8192, N: 65536, Load: 12, MinLoad: 4, Capacity: 4},
		rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := h.OpenStream(ctx)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	const batch = 4096
	discard := func(int, []osp.SetID) {}
	depth := min(8, st.Window())
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for off := 0; off < len(inst.Elements); off += batch {
			if st.Outstanding() == depth {
				if err := st.Recv(discard); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Send(inst.Elements[off:min(off+batch, len(inst.Elements))]); err != nil {
				b.Fatal(err)
			}
		}
	}
	for st.Outstanding() > 0 {
		if err := st.Recv(discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(inst.Elements)), "ns/element")
}
