package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/osp"
)

// RetryPolicy is a deadline-budgeted retry schedule for the ingest and
// drain paths (WithRetry). An attempt that fails with a retryable error
// — any transport-level failure, plus HTTP 429 and 5xx — is re-run
// after a jittered exponential backoff, until it succeeds, a permanent
// error surfaces, MaxAttempts is spent, or the total Budget runs out.
// Permanent errors (4xx other than 429: malformed batch, unknown
// instance, ingest after drain) are authoritative and are NEVER
// retried — a bad request does not become good by repetition.
//
// Retried ingest is at-least-once: a batch whose connection died after
// the server processed it but before the verdicts arrived is resent on
// retry and ingested twice. Single-node callers that need exactness
// should treat a retried-then-failed batch as poisoned and drain; the
// cluster coordinator gets exactness back by journaling acknowledged
// shares and replaying onto a fresh replacement node, where resending
// is safe by construction.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// 0 means the default, 4.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, jittered to a uniform draw from [b/2, b]. 0 means the
	// default, 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. 0 means the default, 2s.
	MaxBackoff time.Duration
	// PerAttempt bounds each attempt with its own timeout, so one hung
	// connection (a blackholed node) cannot eat the whole budget.
	// 0 means attempts are bounded only by the caller's context.
	PerAttempt time.Duration
	// Budget bounds the whole retrying call, backoffs included. When it
	// expires the last attempt's error is returned joined with
	// context.DeadlineExceeded. 0 means no budget beyond the caller's
	// context.
	Budget time.Duration
}

// WithRetry enables the deadline-budgeted retry policy on this client's
// ingest paths (Ingest, IngestFunc, IngestAuto — including re-dialing a
// broken verdict stream) and on Drain (idempotent server-side). Verdict
// callbacks are buffered per attempt and delivered only after the
// attempt succeeds, so a batch that rides through a failover fires each
// element's callback exactly once, in batch order.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = &p }
}

// retryable reports whether an attempt error is worth repeating: every
// transport-level failure (dial refused, connection reset, attempt
// timeout — the server may never have seen the request), plus the
// transient statuses 429 (pool full) and 5xx (shutting down, upstream
// hiccup). All other *APIErrors are permanent.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests || apiErr.StatusCode >= 500
	}
	return true
}

// withRetry runs f under the client's retry policy; without one, f runs
// exactly once with zero overhead.
func (c *Client) withRetry(ctx context.Context, f func(ctx context.Context) error) error {
	p := c.retry
	if p == nil {
		return f(ctx)
	}
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Budget)
		defer cancel()
	}
	maxAttempts := p.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	backoff := p.BaseBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	maxBackoff := p.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	for attempt := 1; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc
		if p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err := f(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The budget (or the caller) expired — the attempt's error is
			// circumstance, the deadline is the cause; joined, errors.Is
			// finds either.
			return fmt.Errorf("client: retry budget exhausted after %d attempt(s): %w",
				attempt, errors.Join(err, ctx.Err()))
		}
		if !retryable(err) || attempt >= maxAttempts {
			return err
		}
		// Jitter: a uniform draw from [backoff/2, backoff] so a fleet of
		// retrying clients does not stampede the replacement node in step.
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return fmt.Errorf("client: retry budget exhausted after %d attempt(s): %w",
				attempt, errors.Join(err, ctx.Err()))
		}
	}
}

// verdictBuf holds one attempt's verdict callbacks — element index plus
// a copy of the admitted sets, flat in one arena — so a failed attempt
// delivers nothing and the successful one delivers everything, in batch
// order, exactly once.
type verdictBuf struct {
	idx  []int
	offs []int // start offset of callback k's admitted sets in sets
	sets []osp.SetID
}

func (b *verdictBuf) reset() {
	b.idx, b.offs, b.sets = b.idx[:0], b.offs[:0], b.sets[:0]
}

// collect is the per-attempt callback: it copies, because the admitted
// slice it receives is reused scratch.
func (b *verdictBuf) collect(i int, admitted []osp.SetID) {
	b.idx = append(b.idx, i)
	b.offs = append(b.offs, len(b.sets))
	b.sets = append(b.sets, admitted...)
}

// flush replays the buffered callbacks into the caller's fn.
func (b *verdictBuf) flush(fn func(i int, admitted []osp.SetID)) {
	for k, i := range b.idx {
		end := len(b.sets)
		if k+1 < len(b.offs) {
			end = b.offs[k+1]
		}
		fn(i, b.sets[b.offs[k]:end:end])
	}
}

var verdictBufPool = sync.Pool{New: func() any { return new(verdictBuf) }}
