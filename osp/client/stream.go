package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
	"repro/osp"
)

// The stream transport: one long-lived TCP connection to the server's
// -stream-listen port, carrying pipelined binary batch frames instead
// of one HTTP request per batch. Registration, drain and removal stay
// on the HTTP API — the stream carries only the hot path, element
// batches and their verdicts. Verdict frames are decoded in place
// against the elements the caller sent: the per-element callback
// receives a reused admitted slice, so a steady-state Send/Recv loop
// allocates nothing per element — the []Verdict materialization of
// Ingest, today's dominant client-side allocation, never happens.

// ErrWindowFull is returned by Stream.Send when the pipelining window
// is exhausted: Recv must consume a verdict frame before another batch
// may go out.
var ErrWindowFull = errors.New("client: stream window full (Recv before Send)")

// WithStreamAddr sets the host:port of the server's raw-TCP stream
// listener (ospserve -stream-listen), enabling Instance.OpenStream.
func WithStreamAddr(addr string) Option {
	return func(c *Client) { c.streamAddr = addr }
}

// WithStreamConns stripes each verdict stream over n TCP connections
// (default 1). Batches are distributed round-robin — batch k rides
// connection k mod n with its own per-connection sequence numbers —
// and Recv restores global submit order, so the caller-visible
// contract is unchanged: verdict callbacks fire in the exact order the
// batches were sent. What changes is the parallelism underneath: each
// connection has its own server-side read loop, ingest lane and
// pipeline window (the effective window is n × the server's per-
// connection grant), so one producer can keep several engine shards
// busy at once. Values below 1 mean 1.
func WithStreamConns(n int) Option {
	return func(c *Client) { c.streamConns = n }
}

// Stream is one pipelined verdict stream, opened with
// Instance.OpenStream — one TCP connection by default, striped over N
// connections with WithStreamConns. Up to Window batches may be in
// flight: Send errors with ErrWindowFull when the window is exhausted,
// so a producer runs the classic pipeline dance — Send until full,
// then alternate Recv/Send, then drain with CloseSend + Recv-to-EOF.
// The elements passed to Send must stay unmodified until their Recv:
// verdict masks are decoded against them.
//
// Striping is invisible in the contract: batch k rides connection
// k mod N under per-connection sequence numbers, and Recv reads
// connection k mod N when global batch k is the oldest unanswered —
// each connection delivers its verdicts in its own send order (TCP
// FIFO through the server's seq-ordered writer), so this single read
// position restores exact global submit order with no reorder buffer.
//
// A Stream is not safe for concurrent use. Errors other than
// ErrWindowFull are terminal for the stream; Close the stream and open
// a fresh one.
type Stream struct {
	in     *Instance
	conns  []*stream.Conn
	window int // global: per-connection server grant × len(conns)
	policy string

	pending  [][]osp.Element // ring of unanswered batches, len = window
	head     int             // ring index of the oldest unanswered batch
	count    int             // unanswered batches
	sendSeq  uint32          // next global batch sequence = batches sent
	recvSeq  uint32          // next global verdict sequence expected
	finSent  bool
	finsRecv int         // server fin confirmations collected after CloseSend
	connEls  []uint64    // elements sent per connection
	admitted []osp.SetID // reused callback scratch
	err      error       // sticky terminal error
	closed   atomic.Bool
}

// dialStreamConn dials one stream connection and runs the handshake,
// returning the framed connection with the server's window grant and
// resolved policy name.
func dialStreamConn(ctx context.Context, addr, id string) (*stream.Conn, uint32, string, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, "", fmt.Errorf("client: dial stream %s: %w", addr, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		nc.SetDeadline(dl) //nolint:errcheck // handshake-scoped, cleared below
	}
	fc := stream.NewConn(nc, 0)
	if err := fc.WriteFrame(stream.FrameHello, 0, stream.AppendHello(nil, id)); err != nil {
		nc.Close()
		return nil, 0, "", fmt.Errorf("client: stream hello: %w", err)
	}
	if err := fc.Flush(); err != nil {
		nc.Close()
		return nil, 0, "", fmt.Errorf("client: stream hello: %w", err)
	}
	typ, _, payload, err := fc.ReadFrame()
	if err != nil {
		nc.Close()
		return nil, 0, "", fmt.Errorf("client: stream handshake: %w", err)
	}
	if typ == stream.FrameError {
		msg := string(payload)
		nc.Close()
		return nil, 0, "", &APIError{StatusCode: http.StatusBadRequest, Message: msg}
	}
	if typ != stream.FrameAck {
		nc.Close()
		return nil, 0, "", fmt.Errorf("client: stream handshake answered with frame %c, want ack", typ)
	}
	window, policy, err := stream.ParseAck(payload)
	if err != nil {
		nc.Close()
		return nil, 0, "", fmt.Errorf("client: stream handshake: %w", err)
	}
	nc.SetDeadline(time.Time{}) //nolint:errcheck
	return fc, window, policy, nil
}

// OpenStream dials the server's stream listener (WithStreamAddr) — one
// connection, or WithStreamConns of them — and runs the handshake for
// this instance on each. The returned Stream pins Instance.Codec to
// "stream" until it is closed.
func (in *Instance) OpenStream(ctx context.Context) (*Stream, error) {
	addr := in.c.streamAddr
	if addr == "" {
		return nil, errors.New("client: no stream address configured (WithStreamAddr)")
	}
	n := in.c.streamConns
	if n < 1 {
		n = 1
	}
	conns := make([]*stream.Conn, 0, n)
	window := uint32(0)
	policy := ""
	for i := 0; i < n; i++ {
		fc, w, pol, err := dialStreamConn(ctx, addr, in.id)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		conns = append(conns, fc)
		// The grants should agree (one server config); hold every
		// connection to the smallest so no single pipe is overrun.
		if window == 0 || w < window {
			window = w
		}
		policy = pol
	}
	in.streams.Add(1)
	return &Stream{
		in:      in,
		conns:   conns,
		window:  int(window) * n,
		policy:  policy,
		pending: make([][]osp.Element, int(window)*n),
		connEls: make([]uint64, n),
	}, nil
}

// Window returns the pipelining window: the maximum number of
// unanswered batches this stream may have in flight — the server's
// per-connection grant times the number of striped connections.
func (s *Stream) Window() int { return s.window }

// Outstanding returns the number of batches sent but not yet answered.
func (s *Stream) Outstanding() int { return s.count }

// Conns returns the number of TCP connections this stream stripes
// over (WithStreamConns; 1 by default).
func (s *Stream) Conns() int { return len(s.conns) }

// ConnElements returns the number of elements sent over each striped
// connection so far — the per-connection balance a load generator
// reports to show the stripes actually carried traffic.
func (s *Stream) ConnElements() []uint64 {
	return append([]uint64(nil), s.connEls...)
}

// Policy returns the instance's resolved admission-policy name as
// announced by the server's stream handshake.
func (s *Stream) Policy() string { return s.policy }

// Send pipelines one batch of elements in arrival order. It returns
// ErrWindowFull when Window batches are unanswered — Recv first — and
// fails after CloseSend. The els slice is retained until the matching
// Recv decodes its verdicts against it.
func (s *Stream) Send(els []osp.Element) error {
	switch {
	case s.err != nil:
		return s.err
	case s.finSent:
		return errors.New("client: Send after CloseSend")
	case len(els) == 0:
		return errors.New("client: empty batch")
	case s.count == s.window:
		return ErrWindowFull
	}
	bufp := framePool.Get().(*[]byte)
	frame := wire.AppendElements((*bufp)[:0], els)
	*bufp = frame
	// Batch k rides connection k mod N with that connection's own
	// sequence numbering (k div N): each stripe is a self-contained
	// stream to the server.
	n := uint32(len(s.conns))
	ci := int(s.sendSeq % n)
	fc := s.conns[ci]
	err := fc.WriteFrame(stream.FrameBatch, s.sendSeq/n, frame)
	if err == nil {
		err = fc.Flush()
	}
	framePool.Put(bufp)
	if err != nil {
		s.err = fmt.Errorf("client: stream send: %w", err)
		return s.err
	}
	s.pending[(s.head+s.count)%s.window] = els
	s.connEls[ci] += uint64(len(els))
	s.count++
	s.sendSeq++
	return nil
}

// Recv blocks for the next verdict frame — answering the OLDEST
// unanswered Send — and invokes fn once per element of that batch, in
// batch order, with the parent sets the element was admitted to. The
// admitted slice is reused scratch, valid only during the callback;
// copy it to retain. After CloseSend, Recv returns io.EOF once every
// pipelined batch has been answered.
func (s *Stream) Recv(fn func(i int, admitted []osp.SetID)) error {
	if s.err != nil {
		return s.err
	}
	n := uint32(len(s.conns))
	if s.finSent && s.count == 0 {
		// Every batch is answered: collect each connection's fin
		// confirmation (the next frame on each stripe), then EOF.
		for ; s.finsRecv < len(s.conns); s.finsRecv++ {
			typ, _, payload, err := s.conns[s.finsRecv].ReadFrame()
			switch {
			case err != nil:
				s.err = fmt.Errorf("client: stream recv: %w", err)
				return s.err
			case typ == stream.FrameError:
				s.err = &APIError{StatusCode: http.StatusBadRequest, Message: string(payload)}
				return s.err
			case typ != stream.FrameFin:
				s.err = fmt.Errorf("client: unexpected stream frame %c, want fin", typ)
				return s.err
			}
		}
		s.err = io.EOF
		return io.EOF
	}
	// Global batch recvSeq rides connection recvSeq mod N, and that
	// connection's frames arrive in its own send order — so reading
	// here, and only here, restores global submit order.
	fc := s.conns[int(s.recvSeq%n)]
	typ, seq, payload, err := fc.ReadFrame()
	if err != nil {
		s.err = fmt.Errorf("client: stream recv: %w", err)
		return s.err
	}
	switch typ {
	case stream.FrameVerdicts:
		if s.count == 0 {
			s.err = fmt.Errorf("client: verdict frame %d with no batch in flight", seq)
			return s.err
		}
		if seq != s.recvSeq/n {
			s.err = fmt.Errorf("client: verdict frame %d, want %d", seq, s.recvSeq/n)
			return s.err
		}
		els := s.pending[s.head]
		s.pending[s.head] = nil
		s.head = (s.head + 1) % s.window
		s.count--
		s.recvSeq++
		if err := s.decodeVerdicts(payload, els, fn); err != nil {
			s.err = err
			return s.err
		}
		return nil
	case stream.FrameFin:
		if s.count != 0 {
			s.err = fmt.Errorf("client: server finished with %d batches unanswered", s.count)
			return s.err
		}
		s.err = io.EOF
		return io.EOF
	case stream.FrameError:
		s.err = &APIError{StatusCode: http.StatusBadRequest, Message: string(payload)}
		return s.err
	default:
		s.err = fmt.Errorf("client: unexpected stream frame %c", typ)
		return s.err
	}
}

// decodeVerdicts walks one verdicts frame in place against the batch
// it answers, reusing the stream's admitted scratch.
func (s *Stream) decodeVerdicts(raw []byte, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	payload, count, err := wire.DecodeVerdicts(raw)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if count != len(els) {
		return fmt.Errorf("client: verdicts frame counts %d elements, batch sent %d", count, len(els))
	}
	for i, el := range els {
		var mask []byte
		mask, payload, err = wire.MaskAt(payload, len(el.Members))
		if err != nil {
			return fmt.Errorf("client: element %d: %w", i, err)
		}
		admitted, err := wire.AppendAdmitted(s.admitted[:0], mask, el.Members)
		if err != nil {
			return fmt.Errorf("client: element %d: %w", i, err)
		}
		s.admitted = admitted
		fn(i, admitted)
	}
	if len(payload) != 0 {
		return fmt.Errorf("client: %d verdict mask bytes left over after the last element", len(payload))
	}
	return nil
}

// CloseSend half-closes the stream: no more batches will be sent. The
// server answers every pipelined batch, then confirms; keep calling
// Recv until io.EOF to collect the tail.
func (s *Stream) CloseSend() error {
	if s.err != nil {
		return s.err
	}
	if s.finSent {
		return nil
	}
	s.finSent = true
	// Each stripe gets its own fin carrying the count of batches that
	// rode it: connection c saw batches c, c+N, c+2N, … below sendSeq.
	n := uint32(len(s.conns))
	for c, fc := range s.conns {
		sent := (s.sendSeq + n - 1 - uint32(c)) / n
		if err := fc.WriteFrame(stream.FrameFin, sent, nil); err != nil {
			s.err = fmt.Errorf("client: stream close-send: %w", err)
			return s.err
		}
		if err := fc.Flush(); err != nil {
			s.err = fmt.Errorf("client: stream close-send: %w", err)
			return s.err
		}
	}
	return nil
}

// Close releases the connection. Safe to call more than once; the
// instance's Codec reverts to its HTTP negotiation once no stream is
// open.
func (s *Stream) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		s.in.streams.Add(-1)
		var first error
		for _, fc := range s.conns {
			if err := fc.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return nil
}

// funcScratch is the pooled working set of the HTTP IngestFunc path.
type funcScratch struct {
	frame    []byte
	resp     []byte
	admitted []osp.SetID
}

var funcPool = sync.Pool{New: func() any { return new(funcScratch) }}

// IngestFunc streams one batch like Ingest but delivers verdicts
// through a callback instead of materializing []Verdict — fn runs once
// per element, in batch order, with the parent sets the element was
// admitted to. The admitted slice is reused scratch, valid only during
// the callback. Over the binary codec the whole round trip reuses
// pooled buffers; under CodecAuto the same one-time JSON fallback as
// Ingest applies.
//
// With WithRetry configured, attempts buffer their callbacks and fn
// fires only after an attempt succeeds — each element exactly once, in
// batch order, no matter how many retries the batch rode through.
func (in *Instance) IngestFunc(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	if in.c.retry == nil {
		return in.ingestFuncOnce(ctx, els, fn)
	}
	buf := verdictBufPool.Get().(*verdictBuf)
	defer verdictBufPool.Put(buf)
	err := in.c.withRetry(ctx, func(ctx context.Context) error {
		buf.reset()
		return in.ingestFuncOnce(ctx, els, buf.collect)
	})
	if err != nil {
		return err
	}
	buf.flush(fn)
	return nil
}

// ingestFuncOnce is one callback-shaped ingest attempt: codec
// negotiation included, retry policy excluded.
func (in *Instance) ingestFuncOnce(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	codec := in.c.codec
	if codec == CodecJSON || (codec == CodecAuto && in.negotiated.Load() == codecJSON) {
		return in.ingestFuncJSON(ctx, els, fn)
	}
	err := in.ingestFuncBinary(ctx, els, fn)
	switch {
	case err == nil:
		in.negotiated.CompareAndSwap(codecUnresolved, codecBinary)
		return nil
	case codec == CodecAuto && in.negotiated.Load() == codecUnresolved && isCodecRejection(err):
		if jerr := in.ingestFuncJSON(ctx, els, fn); jerr != nil {
			return jerr
		}
		in.negotiated.Store(codecJSON)
		return nil
	default:
		return err
	}
}

// ingestFuncJSON adapts the JSON arm to the callback shape.
func (in *Instance) ingestFuncJSON(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	verdicts, err := in.ingestJSON(ctx, els)
	if err != nil {
		return err
	}
	if len(verdicts) != len(els) {
		return fmt.Errorf("client: %d verdicts for %d elements", len(verdicts), len(els))
	}
	for i, v := range verdicts {
		fn(i, v.Admitted)
	}
	return nil
}

// ingestFuncBinary is the pooled binary arm: request frame, response
// frame and the per-element admitted scratch all come from one pooled
// working set, so nothing is allocated per element.
func (in *Instance) ingestFuncBinary(ctx context.Context, els []osp.Element, fn func(i int, admitted []osp.SetID)) error {
	sc := funcPool.Get().(*funcScratch)
	defer funcPool.Put(sc)
	sc.frame = wire.AppendElements(sc.frame[:0], els)

	req, err := http.NewRequestWithContext(ctx, "POST", in.c.base+"/v1/instances/"+in.id+"/elements", bytes.NewReader(sc.frame))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeBatch)
	resp, err := in.c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: POST elements (binary): %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeVerdicts {
		return fmt.Errorf("client: binary ingest answered with Content-Type %q, want %q", ct, wire.ContentTypeVerdicts)
	}
	sc.resp, err = readInto(resp.Body, sc.resp[:0])
	if err != nil {
		return fmt.Errorf("client: read verdicts frame: %w", err)
	}
	payload, count, err := wire.DecodeVerdicts(sc.resp)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if count != len(els) {
		return fmt.Errorf("client: verdicts frame counts %d elements, batch sent %d", count, len(els))
	}
	for i, el := range els {
		var mask []byte
		mask, payload, err = wire.MaskAt(payload, len(el.Members))
		if err != nil {
			return fmt.Errorf("client: element %d: %w", i, err)
		}
		admitted, err := wire.AppendAdmitted(sc.admitted[:0], mask, el.Members)
		if err != nil {
			return fmt.Errorf("client: element %d: %w", i, err)
		}
		sc.admitted = admitted
		fn(i, admitted)
	}
	if len(payload) != 0 {
		return fmt.Errorf("client: %d verdict mask bytes left over after the last element", len(payload))
	}
	return nil
}

// readInto reads r to EOF appending onto buf, reusing its storage.
func readInto(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
