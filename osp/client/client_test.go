package client_test

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/osp"
	"repro/osp/client"
)

// startServer runs a full admission service on a loopback listener.
func startServer(t *testing.T) (*client.Client, *osp.Server) {
	t.Helper()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	c, err := client.New(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

// uniform builds a deterministic test workload.
func uniform(t *testing.T, m, n, load int, seed int64) *osp.Instance {
	t.Helper()
	inst, err := osp.RandomInstance(osp.UniformConfig{M: m, N: n, Load: load, Capacity: 2},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestClientRoundTrip pins the whole client protocol against a live
// server: register, batched ingest with verdicts, status, drain matching
// the serial oracle bit-for-bit, metrics text, list, remove.
func TestClientRoundTrip(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t)
	const seed = 17
	inst := uniform(t, 30, 600, 3, 3)

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	h, err := c.Register(ctx, client.Spec{
		Info: osp.InfoOf(inst), Seed: seed,
		Engine: osp.EngineConfig{Shards: 2, BatchSize: 16},
		Label:  "round-trip",
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "" || h.Shards() != 2 {
		t.Fatalf("handle = id %q, %d shards", h.ID(), h.Shards())
	}
	if h.Policy() != osp.DefaultPolicy {
		t.Fatalf("handle policy = %q, want the resolved default %q", h.Policy(), osp.DefaultPolicy)
	}

	var admitted, dropped int
	const batch = 64
	for off := 0; off < len(inst.Elements); off += batch {
		end := min(off+batch, len(inst.Elements))
		verdicts, err := h.Ingest(ctx, inst.Elements[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if len(verdicts) != end-off {
			t.Fatalf("got %d verdicts for a batch of %d", len(verdicts), end-off)
		}
		for i, v := range verdicts {
			el := inst.Elements[off+i]
			if len(v.Admitted) > el.Capacity {
				t.Fatalf("element %d admitted to %d sets, capacity %d", off+i, len(v.Admitted), el.Capacity)
			}
			admitted += len(v.Admitted)
			dropped += len(v.Dropped)
		}
	}

	st, err := h.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "streaming" && st.State != "idle" {
		t.Errorf("mid-stream state = %q", st.State)
	}
	if st.Label != "round-trip" || st.Seed != seed || st.Sets != inst.NumSets() {
		t.Errorf("status = %+v", st)
	}
	if st.Policy != osp.DefaultPolicy {
		t.Errorf("status policy = %q, want %q", st.Policy, osp.DefaultPolicy)
	}

	res, err := h.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Fatalf("drained result differs from serial oracle: %v vs %v", res.Benefit, serial.Benefit)
	}
	// The verdict stream and the drained result agree in aggregate.
	var assigned int
	for _, cnt := range res.Assigned {
		assigned += int(cnt)
	}
	if assigned != admitted {
		t.Errorf("verdicts admitted %d memberships, result assigns %d", admitted, assigned)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`osp_engine_processed_elements_total{instance="` + h.ID() + `",label="round-trip"}`,
		`osp_instances{state="drained"} 1`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("metrics missing %q", frag)
		}
	}

	list, err := c.Instances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != h.ID() || list[0].State != "drained" {
		t.Errorf("list = %+v", list)
	}

	if err := h.Remove(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Status(ctx); !isStatus(err, 404) {
		t.Errorf("status after remove = %v, want 404 APIError", err)
	}
}

// TestClientPolicySelection registers each non-default built-in policy
// over the wire, checks the resolved name round-trips through handle and
// status, and verifies the drained result against that policy's serial
// oracle end to end.
func TestClientPolicySelection(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t)
	const seed = 23
	inst := uniform(t, 25, 500, 3, 5)

	for _, name := range osp.PolicyNames() {
		h, err := c.Register(ctx, client.Spec{
			Info: osp.InfoOf(inst), Seed: seed,
			Engine: osp.EngineConfig{Shards: 2, BatchSize: 16, Policy: name},
			Label:  name,
		})
		if err != nil {
			t.Fatalf("%s: register: %v", name, err)
		}
		if h.Policy() != name {
			t.Errorf("%s: handle policy = %q", name, h.Policy())
		}
		if _, err := h.Ingest(ctx, inst.Elements); err != nil {
			t.Fatalf("%s: ingest: %v", name, err)
		}
		res, err := h.Drain(ctx)
		if err != nil {
			t.Fatalf("%s: drain: %v", name, err)
		}
		alg, err := osp.NewPolicyAlgorithm(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := osp.Run(inst, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(serial) {
			t.Errorf("%s: drained result differs from serial oracle (%v vs %v)",
				name, res.Benefit, serial.Benefit)
		}
	}

	// Unknown policy → 400 with the registered names in the message.
	_, err := c.Register(ctx, client.Spec{
		Info: osp.InfoOf(inst), Engine: osp.EngineConfig{Policy: "bogus"},
	})
	if !isStatus(err, 400) {
		t.Errorf("bogus policy register = %v, want 400 APIError", err)
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && !strings.Contains(apiErr.Message, osp.DefaultPolicy) {
		t.Errorf("400 body should list registered policies: %s", apiErr.Message)
	}
}

// TestClientErrors pins the typed error surface.
func TestClientErrors(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t)

	if _, err := client.New("not a url\x00"); err == nil {
		t.Error("New accepted a bad URL")
	}
	if _, err := client.New("ftp://host"); err == nil {
		t.Error("New accepted a non-http scheme")
	}

	// Register with no sets → 400.
	if _, err := c.Register(ctx, client.Spec{}); !isStatus(err, 400) {
		t.Errorf("empty register = %v, want 400 APIError", err)
	}

	inst := uniform(t, 5, 20, 2, 1)
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Invalid element → 400, batch atomic.
	bad := []osp.Element{{Members: []osp.SetID{99}, Capacity: 1}}
	if _, err := h.Ingest(ctx, bad); !isStatus(err, 400) {
		t.Errorf("bad ingest = %v, want 400 APIError", err)
	}

	// Ingest after drain → 409.
	if _, err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Ingest(ctx, inst.Elements[:1]); !isStatus(err, 409) {
		t.Errorf("ingest after drain = %v, want 409 APIError", err)
	}

	// Error text is surfaced.
	var apiErr *client.APIError
	_, err = h.Ingest(ctx, inst.Elements[:1])
	if !errors.As(err, &apiErr) || apiErr.Message == "" || !strings.Contains(apiErr.Error(), "409") {
		t.Errorf("APIError not descriptive: %v", err)
	}
}

// isStatus reports whether err is an *client.APIError with the given
// HTTP status.
func isStatus(err error, code int) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == code
}

// startServerWith is startServer with client options.
func startServerWith(t *testing.T, opts ...client.Option) (*client.Client, *osp.Server) {
	t.Helper()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	c, err := client.New(hs.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

// startLegacyServer emulates a server predating the binary codec: it
// strips the negotiating Content-Type before the real handler sees the
// request, so binary frames hit the JSON decoder and 400 — exactly what
// a pre-binary server does.
func startLegacyServer(t *testing.T, opts ...client.Option) *client.Client {
	t.Helper()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Content-Type")
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	c, err := client.New(hs.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ingestAll streams the whole instance in batches and sums the verdict
// memberships.
func ingestAll(ctx context.Context, t *testing.T, h *client.Instance, inst *osp.Instance, batch int) (admitted, dropped int) {
	t.Helper()
	for off := 0; off < len(inst.Elements); off += batch {
		end := min(off+batch, len(inst.Elements))
		verdicts, err := h.Ingest(ctx, inst.Elements[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range verdicts {
			admitted += len(v.Admitted)
			dropped += len(v.Dropped)
		}
	}
	return admitted, dropped
}

// TestCodecEquivalence is the client-side codec contract: the same
// stream ingested with CodecJSON and CodecBinary produces identical
// verdict aggregates and bit-for-bit identical drained results, both
// equal to the serial oracle.
func TestCodecEquivalence(t *testing.T) {
	ctx := context.Background()
	const seed = 23
	inst := uniform(t, 40, 2000, 5, 8)
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}

	results := map[client.Codec]*osp.Result{}
	admits := map[client.Codec]int{}
	for _, codec := range []client.Codec{client.CodecJSON, client.CodecBinary} {
		c, _ := startServerWith(t, client.WithCodec(codec))
		h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := h.Codec(); got != codec.String() {
			t.Errorf("forced %v: Codec() = %q", codec, got)
		}
		adm, _ := ingestAll(ctx, t, h, inst, 170)
		admits[codec] = adm
		res, err := h.Drain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		results[codec] = res
	}
	if admits[client.CodecJSON] != admits[client.CodecBinary] {
		t.Errorf("admitted memberships differ: json %d, binary %d",
			admits[client.CodecJSON], admits[client.CodecBinary])
	}
	if !results[client.CodecJSON].Equal(results[client.CodecBinary]) {
		t.Errorf("drained results differ across codecs")
	}
	if !results[client.CodecBinary].Equal(serial) {
		t.Errorf("binary-codec result differs from the serial oracle")
	}
}

// TestCodecAutoNegotiatesBinary pins the happy path of CodecAuto: on a
// binary-capable server the first ingest settles on the binary codec.
func TestCodecAutoNegotiatesBinary(t *testing.T) {
	ctx := context.Background()
	inst := uniform(t, 20, 200, 3, 5)
	c, _ := startServer(t)
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Codec(); got != "auto" {
		t.Errorf("before first ingest: Codec() = %q, want auto", got)
	}
	if _, err := h.Ingest(ctx, inst.Elements[:50]); err != nil {
		t.Fatal(err)
	}
	if got := h.Codec(); got != "binary" {
		t.Errorf("after first ingest: Codec() = %q, want binary", got)
	}
}

// TestCodecAutoFallsBackToJSON pins the compatibility path: against a
// pre-binary server, CodecAuto retries the first batch as JSON, sticks
// with JSON, and the run still verifies against the serial oracle.
func TestCodecAutoFallsBackToJSON(t *testing.T) {
	ctx := context.Background()
	const seed = 31
	inst := uniform(t, 30, 900, 4, 6)
	c := startLegacyServer(t)
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(ctx, t, h, inst, 128)
	if got := h.Codec(); got != "json" {
		t.Errorf("after fallback: Codec() = %q, want json", got)
	}
	res, err := h.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Errorf("fallback run differs from the serial oracle")
	}
}

// TestCodecBinaryForcedSurfacesRejection: with CodecBinary pinned, a
// server without the codec is an error, not a silent downgrade.
func TestCodecBinaryForcedSurfacesRejection(t *testing.T) {
	ctx := context.Background()
	inst := uniform(t, 10, 50, 3, 4)
	c := startLegacyServer(t, client.WithCodec(client.CodecBinary))
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Ingest(ctx, inst.Elements[:10]); !isStatus(err, http.StatusBadRequest) {
		t.Errorf("forced binary against a legacy server: err = %v, want 400 APIError", err)
	}
}

// TestCodecAutoInvalidBatchStays400: the fallback must not mask a
// genuinely invalid batch — the JSON retry's authoritative 400 comes
// back, and valid batches keep flowing afterwards.
func TestCodecAutoInvalidBatchStays400(t *testing.T) {
	ctx := context.Background()
	inst := uniform(t, 10, 50, 3, 4)
	c, _ := startServer(t)
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []osp.Element{{Members: []osp.SetID{42}, Capacity: 1}} // out of range
	if _, err := h.Ingest(ctx, bad); !isStatus(err, http.StatusBadRequest) {
		t.Errorf("invalid batch: err = %v, want 400 APIError", err)
	}
	if _, err := h.Ingest(ctx, inst.Elements[:10]); err != nil {
		t.Errorf("valid batch after a 400: %v", err)
	}
}

// TestClientPolicies covers the discovery endpoint through the client.
func TestClientPolicies(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t)
	infos, err := c.Policies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, info := range infos {
		if info.Description == "" {
			t.Errorf("policy %q has no description", info.Name)
		}
		found[info.Name] = true
	}
	for _, name := range osp.PolicyNames() {
		if !found[name] {
			t.Errorf("registered policy %q missing from Policies()", name)
		}
	}
}
