// Package client is the Go client for the networked admission service
// (osp.NewServer / ospserve -listen): registering set-system instances,
// streaming element batches for immediate admit/drop verdicts, and
// draining the final Result.
//
// The protocol mirrors the OSP model: Register ships only the up-front
// information — per-set weights and declared sizes plus the shared
// priority seed — then elements stream in batches, each answered with
// the verdict the engine's coordination-free admission policy reached.
// The drained Result is bit-for-bit identical to a serial osp.Run with
// the matching osp.NewPolicyAlgorithm(policy, seed) over the same
// elements — osp.NewHashRandPr(seed) for the default randpr policy —
// which is how cmd/osploadgen verifies a live server. The HTTP API and
// its operational semantics are documented in docs/OPERATIONS.md.
//
//	c, _ := client.New("http://localhost:8080")
//	inst, _ := c.Register(ctx, client.Spec{
//	    Info: osp.InfoOf(workload), Seed: 42,
//	})
//	verdicts, _ := inst.Ingest(ctx, workload.Elements)
//	res, _ := inst.Drain(ctx)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
	"repro/osp"
)

// Codec selects the ingest wire representation (see WithCodec).
type Codec int

const (
	// CodecAuto — the default — drives the compact binary codec and
	// falls back to JSON transparently, per instance, when the server
	// does not speak it (any server predating the binary ingest path).
	CodecAuto Codec = iota
	// CodecJSON forces the JSON wire shapes on every request.
	CodecJSON
	// CodecBinary forces the binary codec; a server without it surfaces
	// the resulting *APIError instead of falling back.
	CodecBinary
)

// String returns the flag-friendly codec name.
func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	default:
		return "auto"
	}
}

// Client talks to one admission server. Safe for concurrent use (the
// underlying http.Client is).
type Client struct {
	base        string
	hc          *http.Client
	codec       Codec
	streamAddr  string       // host:port of the raw-TCP stream listener, "" = none
	streamConns int          // TCP connections per verdict stream, 0/1 = one
	retry       *RetryPolicy // nil = no retries (WithRetry)
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every request
// (timeouts, transports, instrumentation). The default is a plain
// &http.Client{}.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithCodec pins the ingest wire codec. The default, CodecAuto, sends
// binary batches (internal/wire's flat frames — the zero-allocation
// server path, measured severalfold faster than JSON end to end) and
// falls back to JSON once, per instance, if the server rejects the
// binary content type.
func WithCodec(codec Codec) Option {
	return func(c *Client) { c.codec = codec }
}

// New returns a client for the admission server at baseURL, e.g.
// "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// APIError is a non-2xx response from the server, carrying the HTTP
// status code and the server's error message.
type APIError struct {
	// StatusCode is the HTTP status (400 malformed, 404 unknown
	// instance, 409 ingest after drain, 413 body too large, 429 pool
	// full, 503 shutting down).
	StatusCode int
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// Spec describes one instance registration.
type Spec struct {
	// Info is the up-front information: per-set weights and declared
	// sizes — all an online algorithm may know before the stream.
	Info osp.Info
	// Seed is the shared 64-bit policy seed; a serial osp.Run with
	// osp.NewPolicyAlgorithm(Engine.Policy, Seed) is the verification
	// oracle (osp.NewHashRandPr(Seed) for the default randpr policy).
	Seed uint64
	// Engine sizes the server-side engine and names its admission policy
	// (Engine.Policy, "" = the server default "randpr"; valid names are
	// osp.PolicyNames()). Zero fields take the engine defaults.
	Engine osp.EngineConfig
	// Label optionally tags the instance's Prometheus series.
	Label string
}

// Verdict is the server's immediate decision for one element: the at
// most b(u) parent sets it was admitted to and the memberships dropped,
// both in ascending SetID order.
type Verdict struct {
	// Admitted lists the sets the element was assigned to.
	Admitted []osp.SetID `json:"admitted"`
	// Dropped lists the memberships denied — in the paper's router
	// reading, the frames whose packet was dropped at this slot.
	Dropped []osp.SetID `json:"dropped"`
}

// MetricsSnapshot is the wire form of the server-side engine's live
// counters (see osp.EngineSnapshot for field semantics).
type MetricsSnapshot struct {
	// Submitted counts elements flushed to shard queues; Processed
	// counts elements already decided. Submitted−Processed is the
	// queued backlog.
	Submitted uint64 `json:"submitted"`
	// Processed counts elements decided by shard workers.
	Processed uint64 `json:"processed"`
	// Batches counts ingestion batches handed to shards.
	Batches uint64 `json:"batches"`
	// Assigned counts admitted memberships; Dropped counts denied ones.
	Assigned uint64 `json:"assigned"`
	// Dropped counts memberships denied (packets dropped).
	Dropped uint64 `json:"dropped"`
	// CompletedSets and CompletedWeight are the drain-time completion
	// totals (zero while the stream is open).
	CompletedSets int `json:"completed_sets"`
	// CompletedWeight is the total weight of completed sets at drain.
	CompletedWeight float64 `json:"completed_weight"`
	// ElapsedSeconds is time since the engine opened, frozen at drain.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ElementsPerSec is Processed divided by ElapsedSeconds.
	ElementsPerSec float64 `json:"elements_per_sec"`
}

// Status is one instance's registration and live-metrics row.
type Status struct {
	// ID is the server-assigned instance identifier.
	ID string `json:"id"`
	// Label is the metrics label supplied at registration, if any.
	Label string `json:"label,omitempty"`
	// State is the lifecycle state: "idle", "streaming" or "drained".
	State string `json:"state"`
	// Seed is the shared policy seed.
	Seed uint64 `json:"seed"`
	// Policy is the instance's resolved admission-policy name.
	Policy string `json:"policy"`
	// Shards is the resolved shard-worker count.
	Shards int `json:"shards"`
	// Sets is m, the number of sets in the instance's universe.
	Sets int `json:"sets"`
	// Metrics is the engine's live counter snapshot.
	Metrics MetricsSnapshot `json:"metrics"`
}

// Instance is a handle to one registered instance on the server.
type Instance struct {
	c      *Client
	id     string
	shards int
	policy string

	// negotiated is the per-instance CodecAuto outcome: 0 until the
	// first ingest settles it, then codecBinary or codecJSON.
	negotiated atomic.Int32
	// streams counts this instance's open verdict streams (OpenStream);
	// while positive, Codec reports "stream".
	streams atomic.Int32

	// transport is the per-instance IngestAuto outcome: 0 until the
	// first call settles it, then transportStream or transportHTTP.
	transport atomic.Int32
	// tmu serializes IngestAuto/Close over the pinned stream, which is
	// a single in-order connection.
	tmu sync.Mutex
	// pinned is the long-lived verdict stream IngestAuto opened, nil
	// when none is open (guarded by tmu).
	pinned *Stream
}

// Codec negotiation outcomes.
const (
	codecUnresolved int32 = iota
	codecBinary
	codecJSON
)

// wire shapes (mirroring internal/serve; the contract is the JSON).
type wireElement struct {
	Members  []osp.SetID `json:"members"`
	Capacity int         `json:"capacity"`
}

type registerRequest struct {
	Weights    []float64 `json:"weights"`
	Sizes      []int     `json:"sizes"`
	Seed       uint64    `json:"seed"`
	Shards     int       `json:"shards,omitempty"`
	BatchSize  int       `json:"batch_size,omitempty"`
	QueueDepth int       `json:"queue_depth,omitempty"`
	Policy     string    `json:"policy,omitempty"`
	Label      string    `json:"label,omitempty"`
}

type registerResponse struct {
	ID     string `json:"id"`
	Shards int    `json:"shards"`
	Policy string `json:"policy"`
	State  string `json:"state"`
}

type ingestRequest struct {
	Elements []wireElement `json:"elements"`
}

type ingestResponse struct {
	Verdicts []Verdict `json:"verdicts"`
	Ingested int       `json:"ingested"`
}

type wireResult struct {
	Completed []osp.SetID `json:"completed"`
	Benefit   float64     `json:"benefit"`
	Assigned  []int32     `json:"assigned"`
}

type drainResponse struct {
	Result  wireResult      `json:"result"`
	Metrics MetricsSnapshot `json:"metrics"`
}

type listResponse struct {
	Instances []Status `json:"instances"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// PolicyInfo is one row of GET /v1/policies: a policy name the server
// accepts at registration and the registry's one-line description.
type PolicyInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

type policiesResponse struct {
	Policies []PolicyInfo `json:"policies"`
}

// apiError reads a non-2xx response body into an *APIError.
func apiError(resp *http.Response) error {
	var er errorResponse
	msg := ""
	if raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); rerr == nil {
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		} else {
			msg = strings.TrimSpace(string(raw))
		}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}

// doJSON performs one request; a non-2xx answer decodes into *APIError.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Register opens a new instance on the server and returns its handle.
func (c *Client) Register(ctx context.Context, spec Spec) (*Instance, error) {
	req := registerRequest{
		Weights:    spec.Info.Weights,
		Sizes:      spec.Info.Sizes,
		Seed:       spec.Seed,
		Shards:     spec.Engine.Shards,
		BatchSize:  spec.Engine.BatchSize,
		QueueDepth: spec.Engine.QueueDepth,
		Policy:     spec.Engine.Policy,
		Label:      spec.Label,
	}
	var resp registerResponse
	if err := c.doJSON(ctx, "POST", "/v1/instances", req, &resp); err != nil {
		return nil, err
	}
	return &Instance{c: c, id: resp.ID, shards: resp.Shards, policy: resp.Policy}, nil
}

// Instances lists every instance on the server with live metrics.
func (c *Client) Instances(ctx context.Context) ([]Status, error) {
	var resp listResponse
	if err := c.doJSON(ctx, "GET", "/v1/instances", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Instances, nil
}

// Policies lists the admission policies this server accepts at
// registration, each with the registry's one-line description — the
// discovery call that replaces hardcoding the built-in names.
func (c *Client) Policies(ctx context.Context) ([]PolicyInfo, error) {
	var resp policiesResponse
	if err := c.doJSON(ctx, "GET", "/v1/policies", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Policies, nil
}

// Metrics fetches the raw Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: read /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}
	return string(raw), nil
}

// Health probes /healthz; nil means the server is up and accepting work.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: GET /healthz: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // probe body is disposable
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode}
	}
	return nil
}

// ID returns the server-assigned instance identifier.
func (in *Instance) ID() string { return in.id }

// Shards returns the resolved shard-worker count of the server-side
// engine.
func (in *Instance) Shards() int { return in.shards }

// Policy returns the resolved admission-policy name of the server-side
// engine ("randpr" when the registration left it empty).
func (in *Instance) Policy() string { return in.policy }

// Ingest streams one batch of elements in arrival order and returns the
// immediate admit/drop verdict for each. Batches are atomic: on any
// invalid element the whole batch is rejected (an *APIError with status
// 400) and nothing is ingested. When the server-side shard queues are
// full the call blocks — backpressure propagates to the producer, which
// is the paper's admission deadline made tangible.
//
// The wire representation follows the client's codec (WithCodec). Under
// the default CodecAuto the first batch goes out binary; a server that
// rejects the binary content type (any server predating it answers 400)
// gets the same batch retried as JSON, and the instance sticks with
// JSON from then on. Either way the verdicts and the eventual drained
// result are bit-for-bit identical — the serve-side decode paths share
// one policy state.
//
// With WithRetry configured, transient failures (transport errors, 429,
// 5xx) are retried under the policy's backoff and budget; permanent 4xx
// rejections are returned immediately.
func (in *Instance) Ingest(ctx context.Context, els []osp.Element) ([]Verdict, error) {
	if in.c.retry == nil {
		return in.ingestOnce(ctx, els)
	}
	var verdicts []Verdict
	err := in.c.withRetry(ctx, func(ctx context.Context) error {
		v, err := in.ingestOnce(ctx, els)
		verdicts = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return verdicts, nil
}

// ingestOnce is one ingest attempt: codec negotiation included, retry
// policy excluded.
func (in *Instance) ingestOnce(ctx context.Context, els []osp.Element) ([]Verdict, error) {
	codec := in.c.codec
	if codec == CodecJSON || (codec == CodecAuto && in.negotiated.Load() == codecJSON) {
		return in.ingestJSON(ctx, els)
	}
	verdicts, err := in.ingestBinary(ctx, els)
	switch {
	case err == nil:
		in.negotiated.CompareAndSwap(codecUnresolved, codecBinary)
		return verdicts, nil
	case codec == CodecAuto && in.negotiated.Load() == codecUnresolved && isCodecRejection(err):
		// The server may simply not speak the binary codec — or the
		// batch may be genuinely invalid. The JSON retry distinguishes
		// the two: success pins the fallback, failure is authoritative.
		verdicts, jerr := in.ingestJSON(ctx, els)
		if jerr != nil {
			return nil, jerr
		}
		in.negotiated.Store(codecJSON)
		return verdicts, nil
	default:
		return nil, err
	}
}

// isCodecRejection reports whether an ingest error could mean "this
// server does not speak the binary codec" rather than "this batch is
// bad": a JSON-only server answers a binary frame with 400 (its JSON
// decoder chokes) and a strict intermediary may answer 415.
func isCodecRejection(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) &&
		(apiErr.StatusCode == http.StatusBadRequest || apiErr.StatusCode == http.StatusUnsupportedMediaType)
}

// Codec reports the wire transport this instance currently ingests
// over: "stream" while a verdict stream is open (OpenStream), else
// "json" or "binary" once pinned (by WithCodec or by CodecAuto's first
// ingest), "auto" before the first ingest settles it — so a benchmark
// or loadgen report can prove which arm it actually exercised.
func (in *Instance) Codec() string {
	switch {
	case in.streams.Load() > 0:
		return "stream"
	case in.c.codec != CodecAuto:
		return in.c.codec.String()
	case in.negotiated.Load() == codecBinary:
		return "binary"
	case in.negotiated.Load() == codecJSON:
		return "json"
	default:
		return "auto"
	}
}

// ingestJSON is the JSON arm of Ingest — the wire shapes every server
// speaks.
func (in *Instance) ingestJSON(ctx context.Context, els []osp.Element) ([]Verdict, error) {
	req := ingestRequest{Elements: make([]wireElement, len(els))}
	for i, el := range els {
		req.Elements[i] = wireElement{Members: el.Members, Capacity: el.Capacity}
	}
	var resp ingestResponse
	if err := in.c.doJSON(ctx, "POST", "/v1/instances/"+in.id+"/elements", req, &resp); err != nil {
		return nil, err
	}
	return resp.Verdicts, nil
}

// framePool recycles binary request/response buffers across Ingest
// calls (client-side; the server pools its own).
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// ingestBinary is the binary arm of Ingest: the batch goes out as one
// flat wire frame, the reply comes back as one bitmask per element over
// the members this client just sent.
func (in *Instance) ingestBinary(ctx context.Context, els []osp.Element) ([]Verdict, error) {
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	frame := wire.AppendElements((*bufp)[:0], els)
	*bufp = frame

	req, err := http.NewRequestWithContext(ctx, "POST", in.c.base+"/v1/instances/"+in.id+"/elements", bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeBatch)
	resp, err := in.c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: POST elements (binary): %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, apiError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeVerdicts {
		return nil, fmt.Errorf("client: binary ingest answered with Content-Type %q, want %q", ct, wire.ContentTypeVerdicts)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read verdicts frame: %w", err)
	}
	return decodeVerdictFrame(raw, els)
}

// decodeVerdictFrame unpacks a verdicts frame into the same []Verdict
// the JSON path returns, batching the backing storage: two arrays for
// the whole batch instead of two slices per element.
func decodeVerdictFrame(raw []byte, els []osp.Element) ([]Verdict, error) {
	payload, count, err := wire.DecodeVerdicts(raw)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if count != len(els) {
		return nil, fmt.Errorf("client: verdicts frame counts %d elements, batch sent %d", count, len(els))
	}
	totalMembers := 0
	for _, el := range els {
		totalMembers += len(el.Members)
	}
	admitted := make([]osp.SetID, 0, totalMembers)
	dropped := make([]osp.SetID, 0, totalMembers)
	verdicts := make([]Verdict, len(els))
	for i, el := range els {
		var mask []byte
		mask, payload, err = wire.MaskAt(payload, len(el.Members))
		if err != nil {
			return nil, fmt.Errorf("client: element %d: %w", i, err)
		}
		aStart, dStart := len(admitted), len(dropped)
		for j, s := range el.Members {
			if wire.MaskBit(mask, j) {
				admitted = append(admitted, s)
			} else {
				dropped = append(dropped, s)
			}
		}
		verdicts[i] = Verdict{
			Admitted: admitted[aStart:len(admitted):len(admitted)],
			Dropped:  dropped[dStart:len(dropped):len(dropped)],
		}
	}
	if len(payload) != 0 {
		// A length mismatch here means the server's mask boundaries do
		// not line up with the elements we sent (version skew, proxy
		// mangling) — the verdicts above would be misaligned garbage.
		return nil, fmt.Errorf("client: %d verdict mask bytes left over after the last element", len(payload))
	}
	return verdicts, nil
}

// Drain closes the stream and returns the final Result — bit-for-bit
// identical to a serial osp.Run with osp.NewHashRandPr under the
// instance's seed over the same elements. Idempotent: draining again
// returns the same Result — which is also what makes it safe to retry
// under WithRetry.
func (in *Instance) Drain(ctx context.Context) (*osp.Result, error) {
	var resp drainResponse
	err := in.c.withRetry(ctx, func(ctx context.Context) error {
		return in.c.doJSON(ctx, "POST", "/v1/instances/"+in.id+"/drain", nil, &resp)
	})
	if err != nil {
		return nil, err
	}
	return &osp.Result{
		Completed: resp.Result.Completed,
		Benefit:   resp.Result.Benefit,
		Assigned:  resp.Result.Assigned,
	}, nil
}

// Status fetches the instance's lifecycle state and live metrics.
func (in *Instance) Status(ctx context.Context) (*Status, error) {
	var st Status
	if err := in.c.doJSON(ctx, "GET", "/v1/instances/"+in.id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Remove drains the instance server-side and deletes it from the pool,
// freeing its memory. The handle is dead afterwards.
func (in *Instance) Remove(ctx context.Context) error {
	return in.c.doJSON(ctx, "DELETE", "/v1/instances/"+in.id, nil, nil)
}
