package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/osp"
	"repro/osp/client"
)

// These tests pin the IngestAuto transport-negotiation contract the way
// the PR 5 codec tests pin CodecAuto: a node without a stream listener
// costs exactly one failed dial, the instance falls back to binary HTTP
// and stays pinned there, and both arms produce verdicts bit-for-bit
// equal to the serial oracle.

// countingProxy listens on its own port and forwards accepted
// connections to dst, counting accepts — a stand-in for "the node's
// stream port" that lets a test observe dial attempts. When dst is "",
// accepted connections are closed immediately (a listener that is not a
// stream server: the handshake dies before an Ack frame).
func countingProxy(t *testing.T, dst string) (addr string, accepts *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepts = new(atomic.Int32)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			if dst == "" {
				conn.Close()
				continue
			}
			up, err := net.Dial("tcp", dst)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { pipe(conn, up) }()
		}
	}()
	return ln.Addr().String(), accepts
}

func pipe(a, b net.Conn) {
	done := make(chan struct{}, 2)
	cp := func(dst, src net.Conn) {
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		done <- struct{}{}
	}
	go cp(a, b)
	go cp(b, a)
	<-done
	a.Close()
	b.Close()
}

// ingestAuto drives a whole instance through IngestAuto in fixed-size
// batches, checking callback order, and returns the per-element admitted
// sets flattened for comparison.
func ingestAuto(t *testing.T, h *client.Instance, inst *osp.Instance, batch int) []string {
	t.Helper()
	ctx := context.Background()
	var got []string
	for off := 0; off < len(inst.Elements); off += batch {
		els := inst.Elements[off:min(off+batch, len(inst.Elements))]
		calls := 0
		err := h.IngestAuto(ctx, els, func(i int, admitted []osp.SetID) {
			if i != calls {
				t.Fatalf("callback order: got element %d, want %d", i, calls)
			}
			calls++
			got = append(got, fmt.Sprint(admitted))
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != len(els) {
			t.Fatalf("callback ran %d times for %d elements", calls, len(els))
		}
	}
	return got
}

// TestIngestAutoPinsStream is the happy path: with a live stream
// listener, the first IngestAuto dials once, pins the stream transport,
// and every later batch reuses the same connection. Verdicts match an
// HTTP twin and the drain matches the serial oracle.
func TestIngestAutoPinsStream(t *testing.T) {
	ctx := context.Background()
	srv := osp.NewServer(osp.ServerConfig{})
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	streamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { streamLn.Close() })
	go srv.ServeStream(streamLn)                             //nolint:errcheck // closed by cleanup or Shutdown
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck

	const seed = 17
	inst := uniform(t, 35, 1100, 4, 9)
	c0, err := client.New(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	httpH := registerTwin(t, c0, inst, seed)

	// Same server, but the stream port goes through a counting proxy so
	// the test can assert the dial count.
	proxyAddr, accepts := countingProxy(t, streamLn.Addr().String())
	c, err := client.New(hs.URL, client.WithStreamAddr(proxyAddr))
	if err != nil {
		t.Fatal(err)
	}
	autoH := registerTwin(t, c, inst, seed)
	if got := autoH.Transport(); got != "auto" {
		t.Fatalf("transport before first ingest = %q, want auto", got)
	}

	const batch = 97
	gotAuto := ingestAuto(t, autoH, inst, batch)
	var wantHTTP []string
	for off := 0; off < len(inst.Elements); off += batch {
		vs, err := httpH.Ingest(ctx, inst.Elements[off:min(off+batch, len(inst.Elements))])
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			wantHTTP = append(wantHTTP, fmt.Sprint(v.Admitted))
		}
	}
	for i := range wantHTTP {
		if gotAuto[i] != wantHTTP[i] {
			t.Fatalf("element %d: IngestAuto admitted %s, HTTP twin %s", i, gotAuto[i], wantHTTP[i])
		}
	}
	if got := autoH.Transport(); got != "stream" {
		t.Fatalf("transport = %q, want stream", got)
	}
	if got := autoH.Codec(); got != "stream" {
		t.Fatalf("codec = %q, want stream", got)
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("stream port dialed %d times across %d batches, want 1", n, (len(inst.Elements)+batch-1)/batch)
	}
	if err := autoH.Close(); err != nil {
		t.Fatal(err)
	}
	if got := autoH.Codec(); got == "stream" {
		t.Fatalf("codec still %q after Close", got)
	}

	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*client.Instance{httpH, autoH} {
		res, err := h.Drain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(serial) {
			t.Fatalf("instance %s drained result differs from serial oracle", h.ID())
		}
	}
}

// TestIngestAutoFallsBackToHTTP is the satellite fix under test: the
// target node has no stream listener behind the configured address (the
// port answers, then hangs up before the handshake — or nothing listens
// at all). IngestAuto must retry the batch over binary HTTP once, pin
// HTTP for the instance, and never dial the dead port again.
func TestIngestAutoFallsBackToHTTP(t *testing.T) {
	for _, tc := range []struct {
		name string
		addr func(t *testing.T) (string, *atomic.Int32)
	}{
		{"listener-not-stream-server", func(t *testing.T) (string, *atomic.Int32) {
			return countingProxy(t, "") // accepts, then closes: handshake fails
		}},
		{"nothing-listening", func(t *testing.T) (string, *atomic.Int32) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close() // free the port: dials are refused
			return addr, nil
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			// HTTP only — this node predates the stream port.
			srv := osp.NewServer(osp.ServerConfig{})
			hs := httptest.NewServer(srv)
			t.Cleanup(hs.Close)
			t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
			deadAddr, accepts := tc.addr(t)
			c, err := client.New(hs.URL, client.WithStreamAddr(deadAddr))
			if err != nil {
				t.Fatal(err)
			}
			const seed = 23
			inst := uniform(t, 25, 700, 3, 5)
			h := registerTwin(t, c, inst, seed)

			const batch = 64
			ingestAuto(t, h, inst, batch)
			if got := h.Transport(); got != "http" {
				t.Fatalf("transport after fallback = %q, want http", got)
			}
			// The HTTP arm underneath is the binary codec (the PR 5
			// negotiation, untouched by the transport fallback).
			if got := h.Codec(); got != "binary" {
				t.Fatalf("codec after fallback = %q, want binary", got)
			}
			if accepts != nil {
				if n := accepts.Load(); n != 1 {
					t.Fatalf("dead stream port dialed %d times across %d batches, want exactly 1",
						n, (len(inst.Elements)+batch-1)/batch)
				}
			}

			serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(serial) {
				t.Fatal("drained result differs from serial oracle after HTTP fallback")
			}
		})
	}
}

// TestIngestAutoNoStreamAddr pins the degenerate configuration: a client
// built without WithStreamAddr goes straight to HTTP with no dial at
// all, so cluster code can use IngestAuto unconditionally.
func TestIngestAutoNoStreamAddr(t *testing.T) {
	ctx := context.Background()
	c, _ := startServer(t)
	const seed = 7
	inst := uniform(t, 15, 300, 3, 3)
	h := registerTwin(t, c, inst, seed)
	ingestAuto(t, h, inst, 50)
	if got := h.Transport(); got != "http" {
		t.Fatalf("transport = %q, want http", got)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Fatal("drained result differs from serial oracle")
	}
}

// TestIngestAutoServerRefusalIsAuthoritative: a server that SPEAKS the
// stream protocol but refuses the instance (Error frame → *APIError)
// must surface the error — falling back to HTTP would mask a real
// registration problem, exactly like CodecAuto treats a JSON-retry
// failure as authoritative.
func TestIngestAutoServerRefusalIsAuthoritative(t *testing.T) {
	ctx := context.Background()
	c, _ := startStreamServer(t)
	inst := uniform(t, 10, 60, 2, 1)
	h := registerTwin(t, c, inst, 1)
	if err := h.Remove(ctx); err != nil {
		t.Fatal(err)
	}
	err := h.IngestAuto(ctx, inst.Elements[:1], func(int, []osp.SetID) {})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("IngestAuto on removed instance = %v, want APIError (no HTTP fallback)", err)
	}
	if got := h.Transport(); got != "auto" {
		t.Fatalf("transport after authoritative refusal = %q, want auto (unpinned)", got)
	}
}
