package osp_test

import (
	"fmt"
	"math/rand"

	"repro/osp"
)

// ExampleRun replays the README's three-element instance against the
// paper's randomized algorithm and prints the completed weight.
func ExampleRun() {
	var b osp.Builder
	a := b.AddSet(1)   // weight-1 frame
	c := b.AddSet(2)   // weight-2 frame
	b.AddElement(a, c) // a time slot where both frames have a packet
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	res, err := osp.Run(inst, osp.NewRandPr(), rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("benefit %.0f of %.0f offered\n", res.Benefit, inst.TotalWeight())
	// Output:
	// benefit 2 of 3 offered
}

// ExampleNewEngine streams an instance through the sharded concurrent
// engine and shows the headline guarantee: the drained result is
// bit-for-bit identical to the serial distributed randPr under the same
// seed.
func ExampleNewEngine() {
	var b osp.Builder
	a := b.AddSet(1)
	c := b.AddSet(2)
	b.AddElement(a, c)
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	const seed = 42
	eng, err := osp.NewEngine(osp.InfoOf(inst), seed, osp.EngineConfig{Shards: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, el := range inst.Elements {
		if err := eng.Submit(el); err != nil { // blocks only when shard queues fill
			fmt.Println("error:", err)
			return
		}
	}
	res, err := eng.Drain()
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	serial, _ := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	fmt.Printf("engine benefit %.0f, state %v, identical to serial: %v\n",
		res.Benefit, eng.State(), res.Equal(serial))
	// Output:
	// engine benefit 2, state drained, identical to serial: true
}
