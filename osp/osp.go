// Package osp is the public API of this repository: a Go implementation of
// online set packing and the randPr algorithm from
//
//	Emek, Halldórsson, Mansour, Patt-Shamir, Radhakrishnan, Rawitz.
//	"Online Set Packing and Competitive Scheduling of Multi-Part Tasks",
//	PODC 2010.
//
// # The problem
//
// A weighted set system's elements arrive online; each element announces
// the sets containing it and a capacity b(u), and must immediately be
// assigned to at most b(u) of them. A set pays its weight only if it
// receives every one of its elements. OSP models a bottleneck router
// dropping packets of multi-packet frames (elements = time slots, sets =
// frames) and, more generally, multi-part tasks served at bounded-capacity
// servers.
//
// # Quick start
//
//	var b osp.Builder
//	a := b.AddSet(1)      // weight-1 frame
//	c := b.AddSet(2)      // weight-2 frame
//	b.AddElement(a, c)    // a time slot where both frames have a packet
//	b.AddElement(a)
//	b.AddElement(c)
//	inst := b.MustBuild()
//
//	res, err := osp.Run(inst, osp.NewRandPr(), rand.New(rand.NewSource(1)))
//	// res.Benefit is the completed weight; compare with osp.Exact(inst).
//
// The subpackage layout mirrors the paper: the core algorithm, the
// sharded concurrent streaming engine (NewEngine) that serves live
// element streams at multi-core throughput, offline optima for
// competitive-ratio measurements, the lower-bound constructions of
// Section 4, workload generators for the systems scenarios, and an
// experiment harness reproducing every theorem (see DESIGN.md and
// EXPERIMENTS.md).
package osp

import (
	"io"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hashpr"
	"repro/internal/lowerbound"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/partial"
	"repro/internal/serve"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// Core problem types, re-exported from the engine.
type (
	// Instance is a complete OSP instance: set weights/sizes plus the
	// element arrival order.
	Instance = setsystem.Instance
	// Element is one online arrival: parent sets and capacity.
	Element = setsystem.Element
	// SetID identifies a set (dense indices 0..m-1).
	SetID = setsystem.SetID
	// Builder assembles instances incrementally.
	Builder = setsystem.Builder
	// Stats aggregates the instance parameters the paper's bounds use.
	Stats = setsystem.Stats

	// Algorithm is an online OSP algorithm (see core.Algorithm).
	Algorithm = core.Algorithm
	// Result summarizes one run: completed sets and total benefit.
	Result = core.Result
	// Source produces a (possibly adaptive) element stream.
	Source = core.Source
	// Info is the up-front knowledge an online algorithm receives:
	// per-set weights and declared sizes.
	Info = core.Info

	// Engine is the sharded concurrent streaming admission engine: it
	// serves a live element stream through a coordination-free admission
	// policy (EngineConfig.Policy, randPr by default) at multi-core
	// throughput, with results bit-for-bit identical to a serial run of
	// NewPolicyAlgorithm under the same policy and seed —
	// NewHashRandPr(seed) for the default policy.
	Engine = engine.Engine
	// EngineConfig sizes the engine — shard workers, ingestion batch size
	// and per-shard queue depth (backpressure) — and names its admission
	// policy (Policy field, "" = "randpr"; see PolicyNames for the
	// registered names).
	EngineConfig = engine.Config
	// EngineMetrics exposes the engine's live lock-free counters.
	EngineMetrics = engine.Metrics
	// EngineSnapshot is a point-in-time view of EngineMetrics.
	EngineSnapshot = engine.Snapshot
	// EngineState is an engine's lifecycle position: EngineIdle at
	// creation, EngineStreaming after the first accepted Submit,
	// EngineDrained (terminal) once Drain closes the stream.
	EngineState = engine.State

	// Server is the network-facing admission service: an http.Handler
	// exposing instance registration, batched element ingest with
	// immediate admit/drop verdicts, drains, and a Prometheus /metrics
	// endpoint, all backed by a pool of concurrent engines. Create with
	// NewServer, mount on any net/http server, and call Server.Shutdown
	// for a graceful drain of every live engine. The osp/client package
	// is the matching Go client; docs/OPERATIONS.md documents the HTTP
	// API and operational semantics.
	Server = serve.Server
	// ServerConfig sizes the admission service: the engine-pool instance
	// limit, the per-request ingest batch cap and the request body byte
	// cap.
	ServerConfig = serve.Config

	// Solution is an offline packing with its weight.
	Solution = offline.Solution

	// DecisionLog is the sampled decision log: bounded lock-free
	// per-shard rings capture every Nth admission decision, a drainer
	// goroutine flushes them asynchronously to per-instance tails and an
	// optional sink, and the hot path stays at zero allocations per
	// element (DESIGN.md §13). Create with NewDecisionLog, wire it into
	// ServerConfig.Decisions (or an EngineTelemetry directly) and Close
	// it when done.
	DecisionLog = obs.DecisionLog
	// DecisionLogConfig sizes a DecisionLog: sample rate, ring and tail
	// capacities, flush period and sink. The zero value is usable.
	DecisionLogConfig = obs.DecisionLogConfig
	// Decision is one sampled admission decision — the record the
	// decision log ships to sinks and the
	// GET /v1/instances/{id}/decisions endpoint serves.
	Decision = obs.Decision
	// DecisionSink receives flushed decision batches (JSON-lines and
	// in-memory implementations ship with the package; see NewJSONLSink).
	DecisionSink = obs.Sink
	// JSONLSink is the JSON-lines DecisionSink: one JSON object per
	// decision, buffered, flushed per batch and on Close.
	JSONLSink = obs.JSONLSink
	// EngineTelemetry bundles the instruments an engine records into:
	// a decision logger plus queue-wait and decide-latency histograms.
	// Attach via EngineConfig.Telemetry; any field may be nil.
	EngineTelemetry = obs.EngineTelemetry
	// Histogram is the fixed power-of-two-bucket latency histogram the
	// telemetry layer uses: one atomic add per observation, no locks, no
	// allocations.
	Histogram = obs.Histogram
	// HistogramSnapshot is a point-in-time copy of a Histogram with
	// merge and quantile helpers.
	HistogramSnapshot = obs.HistogramSnapshot
)

// ComputeStats scans an instance and returns its parameter statistics
// (σ, σmax, kmax, weighted loads, adjusted loads, …).
func ComputeStats(inst *Instance) Stats { return setsystem.Compute(inst) }

// InfoOf extracts the up-front information (weights and sizes) of an
// instance — what NewEngine needs before the stream starts.
func InfoOf(inst *Instance) Info { return core.InfoOf(inst) }

// NewEngine opens a sharded concurrent streaming engine over the given
// up-front information, running the admission policy named by cfg.Policy
// ("" = "randpr") set up deterministically from the shared 64-bit seed,
// so shards — and any serial or remote replica running the same (policy,
// seed) pair — agree on all decisions without coordination (Section 3.1,
// generalized by the policy contract in DESIGN.md §11). Feed arriving
// elements with Engine.Submit and close the stream with Engine.Drain; the
// drained Result is bit-for-bit identical to Run with
// NewPolicyAlgorithm(cfg.Policy, seed) — NewHashRandPr(seed) for the
// default policy. Submit copies each element's Members into the engine's
// flat batch buffers immediately, so callers may reuse one scratch member
// slice for every Submit; steady-state ingestion performs zero
// allocations per element (the tracked baseline BENCH_2.json,
// regenerated by cmd/ospperf, pins this along with the throughput matrix
// and the per-policy bench).
func NewEngine(info Info, seed uint64, cfg EngineConfig) (*Engine, error) {
	return engine.New(info, seed, cfg)
}

// RunEngine streams a whole instance through a fresh engine — the
// concurrent counterpart of Run(inst, alg, nil) with the matching
// NewPolicyAlgorithm.
func RunEngine(inst *Instance, seed uint64, cfg EngineConfig) (*Result, error) {
	return engine.Replay(inst, seed, cfg)
}

// PolicyNames returns the registered admission-policy names, sorted:
// "first-fit", "greedy-remaining", "randpr" (the default) and
// "randpr-weighted" as built-ins. Any of them is valid in
// EngineConfig.Policy and in a service registration's policy field.
func PolicyNames() []string { return core.PolicyNames() }

// PolicyInfo pairs a registered admission-policy name with its one-line
// description — the rows the admission service's GET /v1/policies
// discovery endpoint serves.
type PolicyInfo = core.PolicyInfo

// PolicyInfos returns every registered policy with its description,
// sorted by name.
func PolicyInfos() []PolicyInfo { return core.PolicyInfos() }

// DefaultPolicy is the admission policy used when none is named: the
// paper's randPr.
const DefaultPolicy = core.DefaultPolicy

// NewPolicyAlgorithm returns the serial oracle of the named admission
// policy under seed: an Algorithm whose Run result is bit-for-bit
// identical to a streaming-engine run of the same policy and seed at any
// shard count. The empty name resolves to DefaultPolicy; unknown names
// error with the registered alternatives.
func NewPolicyAlgorithm(name string, seed uint64) (Algorithm, error) {
	pol, err := core.LookupPolicy(name)
	if err != nil {
		return nil, err
	}
	return &core.PolicyAlgorithm{Policy: pol, Seed: seed}, nil
}

// Engine lifecycle states (see EngineState).
const (
	// EngineIdle: created, no element submitted yet.
	EngineIdle = engine.StateIdle
	// EngineStreaming: at least one element submitted, not yet drained.
	EngineStreaming = engine.StateStreaming
	// EngineDrained: Drain has run; the Result is final.
	EngineDrained = engine.StateDrained
)

// NewServer builds the networked admission service: HTTP ingest over a
// concurrent engine pool. The returned Server is an http.Handler; serve
// it with net/http and shut it down gracefully with Server.Shutdown,
// which drains every live engine so in-flight elements are decided, not
// lost. cmd/ospserve -listen wraps exactly this, and cmd/osploadgen is a
// ready-made traffic source that cross-checks drained results against
// the serial NewHashRandPr oracle.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// NewDecisionLog builds a sampled decision log and starts its drainer
// goroutine. Wire it into ServerConfig.Decisions to enable the
// service's decision endpoint and sampling on every registered engine,
// or hand out loggers directly via DecisionLog.Logger for in-process
// engines. Close flushes the remaining records and stops the drainer.
func NewDecisionLog(cfg DecisionLogConfig) *DecisionLog { return obs.NewDecisionLog(cfg) }

// NewJSONLSink wraps a writer as a decision sink emitting one JSON
// object per decision per line — the ospserve -decision-log format,
// documented in docs/OPERATIONS.md. If w is an io.Closer, the sink's
// Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRandPr returns the paper's randomized algorithm: per-set priorities
// drawn from R_w(S), each element assigned to its highest-priority
// parents.
func NewRandPr() *core.RandPr { return &core.RandPr{} }

// NewRandPrActiveOnly returns the practical refinement of randPr that
// skips already-incompletable parents (ablation variant; the analysis
// applies to NewRandPr).
func NewRandPrActiveOnly() *core.RandPr { return &core.RandPr{ActiveOnly: true} }

// NewHashRandPr returns the distributed variant: priorities derived from a
// shared 64-bit seed via SplitMix64, so independent servers agree on every
// priority without coordination (Section 3.1).
func NewHashRandPr(seed uint64) *core.HashRandPr {
	return &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}
}

// Baselines returns the deterministic baseline policies (max-weight,
// fewest-remaining, first-listed).
func Baselines() []Algorithm { return core.Baselines() }

// Run replays a static instance against an algorithm. rng seeds the
// algorithm's randomness; it may be nil for deterministic algorithms.
func Run(inst *Instance, alg Algorithm, rng *rand.Rand) (*Result, error) {
	return core.Run(inst, alg, rng)
}

// RunSource streams elements from a (possibly adaptive) source and also
// returns the materialized instance.
func RunSource(src Source, alg Algorithm, rng *rand.Rand) (*Result, *Instance, error) {
	return core.RunSource(src, alg, rng)
}

// MeanBenefit estimates E[w(ALG)] over repeated runs, returning mean and
// standard error.
func MeanBenefit(inst *Instance, alg Algorithm, trials int, seed int64) (mean, stderr float64, err error) {
	return core.MeanBenefit(inst, alg, trials, seed)
}

// ExpectedBenefit returns the exact expected benefit of randPr on a
// unit-capacity instance via the Lemma 1 closed form Σ w(S)²/w(N[S]).
func ExpectedBenefit(inst *Instance) float64 { return core.RandPrExpectedBenefit(inst) }

// Exact computes the offline optimum by branch-and-bound.
func Exact(inst *Instance) (*Solution, error) { return offline.Exact(inst) }

// GreedyOffline computes the offline greedy packing (a k-approximation and
// OPT lower bound).
func GreedyOffline(inst *Instance) *Solution { return offline.Greedy(inst) }

// LPBound returns the LP-relaxation optimum, an upper bound on OPT.
func LPBound(inst *Instance) (float64, error) { return offline.LPBound(inst) }

// Competitive-ratio bounds from the paper, as functions of instance
// statistics.
var (
	// Theorem1Bound: kmax·sqrt(mean(σ·σ$)/mean(σ$)) (unit capacity).
	Theorem1Bound = setsystem.Theorem1Bound
	// Corollary6Bound: kmax·sqrt(σmax).
	Corollary6Bound = setsystem.Corollary6Bound
	// Theorem4Bound: 16e·kmax·sqrt(mean(ν·σ$)/mean(σ$)) (variable capacity).
	Theorem4Bound = setsystem.Theorem4Bound
	// Theorem5Bound: k·mean(σ²)/mean(σ)² (uniform set size).
	Theorem5Bound = setsystem.Theorem5Bound
	// Theorem6Bound: mean(k)·sqrt(σ) (uniform load).
	Theorem6Bound = setsystem.Theorem6Bound
)

// NewDeterministicAdversary returns the Theorem 3 adaptive adversary as a
// Source: σ^k sets of size k; every deterministic algorithm completes at
// most one set while an offline packing of σ^(k−1) sets is certified.
func NewDeterministicAdversary(sigma, k int) (*lowerbound.DeterministicAdversary, error) {
	return lowerbound.NewDeterministicAdversary(sigma, k)
}

// NewLemma9 draws an instance from the randomized lower-bound distribution
// of Lemma 9 (Figure 1) for a prime power ℓ, with its planted optimum of
// ℓ³ disjoint sets.
func NewLemma9(l int, rng *rand.Rand) (*lowerbound.Lemma9Instance, error) {
	return lowerbound.NewLemma9(l, rng)
}

// Workload generators (see package workload for the full configuration
// surface).
var (
	// RandomInstance generates a uniform-load random instance.
	RandomInstance = workload.Uniform
	// VideoInstance synthesizes the bottleneck-router video scenario.
	VideoInstance = workload.Video
	// MultihopInstance synthesizes the multi-hop switch-line scenario.
	MultihopInstance = workload.Multihop
	// BurstyInstance synthesizes Markov-modulated on/off video sources.
	BurstyInstance = workload.Bursty
	// ZipfWeights builds a skewed frame-weight function.
	ZipfWeights = workload.ZipfWeights
)

// Workload configuration types.
type (
	// UniformConfig parameterizes RandomInstance.
	UniformConfig = workload.UniformConfig
	// VideoConfig parameterizes VideoInstance.
	VideoConfig = workload.VideoConfig
	// MultihopConfig parameterizes MultihopInstance.
	MultihopConfig = workload.MultihopConfig
	// BurstyConfig parameterizes BurstyInstance.
	BurstyConfig = workload.BurstyConfig
)

// Encode writes an instance in the repository's text trace format.
func Encode(w io.Writer, inst *Instance) error { return setsystem.Encode(w, inst) }

// Decode parses an instance from the text trace format.
func Decode(r io.Reader) (*Instance, error) { return setsystem.Decode(r) }

// PartialBenefit evaluates a run under the partial-credit relaxation of
// Section 5 (open problem 3): a set earns its weight when it missed at
// most slack of its elements.
func PartialBenefit(inst *Instance, res *Result, slack int) (float64, error) {
	return partial.Benefit(inst, res, slack)
}

// NewSlackAware wraps an algorithm so it keeps fighting for sets that are
// still within the partial-credit slack.
func NewSlackAware(inner Algorithm, slack int) Algorithm {
	return &partial.SlackAware{Inner: inner, Slack: slack}
}

// VerifyProofChain evaluates every inequality of Theorem 1's proof
// (Lemmas 1, 3, 4, 5, Eq. 4 and the final bound) on a unit-capacity
// instance with the given optimal packing, returning the intermediate
// values; see examples/proofchain.
func VerifyProofChain(inst *Instance, opt []SetID) (*analysis.Chain, error) {
	return analysis.Verify(inst, opt)
}

// SurvivalProbabilities returns randPr's exact per-set survival
// probabilities w(S)/w(N[S]) (Lemma 1) on a unit-capacity instance.
func SurvivalProbabilities(inst *Instance) []float64 {
	return analysis.SurvivalProbabilities(inst)
}
