package osp_test

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/osp"
)

func buildTriangle(t *testing.T) *osp.Instance {
	t.Helper()
	var b osp.Builder
	a := b.AddSet(1)
	bb := b.AddSet(2)
	c := b.AddSet(3)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	return b.MustBuild()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	inst := buildTriangle(t)

	res, err := osp.Run(inst, osp.NewRandPr(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit < 0 || res.Benefit > 6 {
		t.Errorf("Benefit = %v out of range", res.Benefit)
	}

	sol, err := osp.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 3 {
		t.Errorf("Exact = %v, want 3", sol.Weight)
	}

	if got, want := osp.ExpectedBenefit(inst), 14.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedBenefit = %v, want %v", got, want)
	}

	lp, err := osp.LPBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lp < sol.Weight-1e-9 {
		t.Errorf("LPBound %v < exact %v", lp, sol.Weight)
	}

	st := osp.ComputeStats(inst)
	if b := osp.Theorem1Bound(st); math.Abs(b-2*math.Sqrt2) > 1e-9 {
		t.Errorf("Theorem1Bound = %v", b)
	}
	if osp.Corollary6Bound(st) < osp.Theorem1Bound(st)-1e-9 {
		t.Error("bound ordering violated")
	}
}

func TestPublicAPIRatioRespectsTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst, err := osp.RandomInstance(osp.UniformConfig{M: 14, N: 30, Load: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ealg := osp.ExpectedBenefit(inst)
	sol, err := osp.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	st := osp.ComputeStats(inst)
	if ratio := sol.Weight / ealg; ratio > osp.Theorem1Bound(st)+1e-9 {
		t.Errorf("ratio %v exceeds Theorem 1 bound %v", ratio, osp.Theorem1Bound(st))
	}
}

func TestPublicAdversary(t *testing.T) {
	adv, err := osp.NewDeterministicAdversary(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, inst, err := osp.RunSource(adv, osp.Baselines()[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit > 1 {
		t.Errorf("deterministic baseline completed %v sets against the adversary", res.Benefit)
	}
	if inst.NumSets() != 9 {
		t.Errorf("m = %d, want 9", inst.NumSets())
	}
	if got := len(adv.Certificate()); got != 3 {
		t.Errorf("certificate = %d, want σ^(k−1) = 3", got)
	}
}

func TestPublicLemma9(t *testing.T) {
	li, err := osp.NewLemma9(2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := li.VerifyPlanted(); err != nil {
		t.Fatal(err)
	}
	if li.Inst.NumSets() != 16 {
		t.Errorf("m = %d, want ℓ⁴ = 16", li.Inst.NumSets())
	}
}

func TestPublicDistributedConsistency(t *testing.T) {
	inst := buildTriangle(t)
	r1, err := osp.Run(inst, osp.NewHashRandPr(99), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := osp.Run(inst, osp.NewHashRandPr(99), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Benefit != r2.Benefit {
		t.Error("same-seed distributed runs disagree")
	}
}

func TestPublicWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vi, err := osp.VideoInstance(osp.VideoConfig{Streams: 2, FramesPerStream: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := vi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	mi, err := osp.MultihopInstance(osp.MultihopConfig{Hops: 4, Packets: 10, Horizon: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := mi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	w := osp.ZipfWeights(1, 4)
	if w(0) != 4 {
		t.Errorf("ZipfWeights(0) = %v", w(0))
	}
	if g := osp.GreedyOffline(vi.Inst); g.Weight <= 0 {
		t.Errorf("GreedyOffline weight = %v", g.Weight)
	}
	if _, _, err := osp.MeanBenefit(vi.Inst, osp.NewRandPrActiveOnly(), 5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCodecRoundTrip(t *testing.T) {
	inst := buildTriangle(t)
	var buf bytes.Buffer
	if err := osp.Encode(&buf, inst); err != nil {
		t.Fatal(err)
	}
	out, err := osp.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumSets() != 3 || out.NumElements() != 3 {
		t.Errorf("round trip shape (%d,%d)", out.NumSets(), out.NumElements())
	}
}

func TestPublicPartialCredit(t *testing.T) {
	inst := buildTriangle(t)
	res, err := osp.Run(inst, osp.NewSlackAware(osp.NewRandPr(), 1), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b0, err := osp.PartialBenefit(inst, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := osp.PartialBenefit(inst, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b2 < b0 {
		t.Errorf("partial benefit not monotone: %v < %v", b2, b0)
	}
	if b2 != 6 {
		t.Errorf("slack 2 covers every triangle set, got %v", b2)
	}
}

func TestPublicProofChain(t *testing.T) {
	inst := buildTriangle(t)
	sol, err := osp.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := osp.VerifyProofChain(inst, sol.Sets)
	if err != nil {
		t.Fatal(err)
	}
	if chain.EAlg <= 0 {
		t.Error("chain not populated")
	}
	ps := osp.SurvivalProbabilities(inst)
	if len(ps) != 3 || math.Abs(ps[2]-0.5) > 1e-12 {
		t.Errorf("survival probabilities = %v", ps)
	}
}

func TestPublicEngineMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := osp.RandomInstance(osp.UniformConfig{M: 60, N: 600, Load: 5, Capacity: 2,
		WeightFn: osp.ZipfWeights(1.1, 10)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	want, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming path: NewEngine + Submit + Drain.
	eng, err := osp.NewEngine(osp.InfoOf(inst), seed, osp.EngineConfig{Shards: 4, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := eng.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	got, err := eng.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("engine result differs from serial HashRandPr:\nengine %+v\nserial %+v", got, want)
	}
	if snap := eng.Metrics().Snapshot(); snap.CompletedWeight != want.Benefit {
		t.Errorf("metrics completed weight %v != %v", snap.CompletedWeight, want.Benefit)
	}

	// Convenience path: RunEngine.
	got2, err := osp.RunEngine(inst, seed, osp.EngineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Error("RunEngine result differs from serial HashRandPr")
	}
}
