package repro_test

// The benchmark harness: one testing.B benchmark per experiment in the
// reproduction index (DESIGN.md §3) — each iteration regenerates the
// experiment's table on reduced sweeps — plus micro-benchmarks of the
// engine's hot paths (priority sampling, runner throughput, exact OPT,
// LP bound, gadget construction). Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks are the programmatic hook for regenerating
// every "table/figure" of the paper; cmd/ospbench prints the same tables
// at full parameter sweeps.

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gadget"
	"repro/internal/gf"
	"repro/internal/hashpr"
	"repro/internal/lowerbound"
	"repro/internal/offline"
	"repro/internal/router"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// benchExperiment runs one experiment in quick mode per iteration. The
// experiment benchmarks regenerate whole result tables and are the heavy
// end of the suite, so they are skipped under -short.
func benchExperiment(b *testing.B, id string, trials int) {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment benchmarks skipped in -short mode")
	}
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Seed: 1, Quick: true, Trials: trials}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX1Lemma1(b *testing.B)        { benchExperiment(b, "X1", 2000) }
func BenchmarkX2Theorem1(b *testing.B)      { benchExperiment(b, "X2", 5) }
func BenchmarkX3Theorem5(b *testing.B)      { benchExperiment(b, "X3", 5) }
func BenchmarkX4Corollary7(b *testing.B)    { benchExperiment(b, "X4", 5) }
func BenchmarkX5Theorem6(b *testing.B)      { benchExperiment(b, "X5", 5) }
func BenchmarkX6Theorem4(b *testing.B)      { benchExperiment(b, "X6", 3) }
func BenchmarkX7Deterministic(b *testing.B) { benchExperiment(b, "X7", 0) }
func BenchmarkX8RandomizedLB(b *testing.B)  { benchExperiment(b, "X8", 2) }
func BenchmarkX9Video(b *testing.B)         { benchExperiment(b, "X9", 3) }
func BenchmarkX10Multihop(b *testing.B)     { benchExperiment(b, "X10", 3) }
func BenchmarkX11Distributed(b *testing.B)  { benchExperiment(b, "X11", 500) }
func BenchmarkX12Partial(b *testing.B)      { benchExperiment(b, "X12", 2) }
func BenchmarkX13Buffered(b *testing.B)     { benchExperiment(b, "X13", 3) }
func BenchmarkX14Ablation(b *testing.B)     { benchExperiment(b, "X14", 30) }
func BenchmarkX15GenPack(b *testing.B)      { benchExperiment(b, "X15", 2) }
func BenchmarkX16Grid(b *testing.B)         { benchExperiment(b, "X16", 3) }

// --- engine micro-benchmarks ---

// BenchmarkRandPrRun measures full online runs of randPr on a mid-size
// random instance (the engine's end-to-end hot path).
func BenchmarkRandPrRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst, err := workload.Uniform(workload.UniformConfig{M: 200, N: 1000, Load: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	alg := &core.RandPr{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(inst, alg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashRandPrRun measures the distributed variant on the same
// instance shape (hash evaluation replaces RNG sampling).
func BenchmarkHashRandPrRun(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	inst, err := workload.Uniform(workload.UniformConfig{M: 200, N: 1000, Load: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg := &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(i)}}
		if _, err := core.Run(inst, alg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyRun measures the deterministic baseline throughput.
func BenchmarkGreedyRun(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	inst, err := workload.Uniform(workload.UniformConfig{M: 200, N: 1000, Load: 8}, rng)
	if err != nil {
		b.Fatal(err)
	}
	alg := &core.GreedyMaxWeight{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(inst, alg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpectedBenefit measures the Lemma 1 closed-form evaluation
// (neighborhood weight computation).
func BenchmarkExpectedBenefit(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	inst, err := workload.Uniform(workload.UniformConfig{M: 300, N: 1500, Load: 6}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RandPrExpectedBenefit(inst)
	}
}

// BenchmarkExactOPT measures branch-and-bound on an m=20 instance.
func BenchmarkExactOPT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	inst, err := workload.Uniform(workload.UniformConfig{M: 20, N: 40, Load: 4}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.Exact(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPBound measures the simplex relaxation on an m=60 instance.
func BenchmarkLPBound(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	inst, err := workload.Uniform(workload.UniformConfig{M: 60, N: 120, Load: 4}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := offline.LPBound(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGF measures field multiplication in GF(81).
func BenchmarkGF(b *testing.B) {
	f, err := gf.NewField(81)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	acc := 1
	for i := 0; i < b.N; i++ {
		acc = f.Mul(acc, 1+i%80)
		if acc == 0 {
			acc = 1
		}
	}
}

// BenchmarkGadgetApply measures a full (8,64)-gadget line enumeration.
func BenchmarkGadgetApply(b *testing.B) {
	g, err := gadget.New(8, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		g.VisitLines(true, func(line []gadget.Item) { count += len(line) })
	}
}

// BenchmarkLemma9Build measures one draw of the ℓ=5 lower-bound
// distribution (Figure 1 construction end to end).
func BenchmarkLemma9Build(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := lowerbound.NewLemma9(5, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDuel measures a full Theorem 3 duel (σ=4, k=3: 64 sets).
func BenchmarkDuel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := lowerbound.RunDuel(4, 3, &core.GreedyFirstListed{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVideoSimulate measures the bottleneck-router simulation
// (trace synthesis + policy run + goodput accounting).
func BenchmarkVideoSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vi, err := workload.Video(workload.VideoConfig{Streams: 16, FramesPerStream: 32, Jitter: 3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	alg := &core.RandPr{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.Simulate(vi, alg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultihopSimulate measures the distributed switch-line
// simulation with drop propagation.
func BenchmarkMultihopSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	mi, err := workload.Multihop(workload.MultihopConfig{Hops: 12, Packets: 500, Horizon: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := router.SimulateMultihop(mi, hashpr.Mixer{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- admission kernel micro-benchmarks ---

// selectSample generates the decide microbenchmark sample: elements whose
// loads exceed their capacity so selection always trims, plus the shared
// priority vector.
func selectSample(b *testing.B, capacity, maxLoad int) ([]setsystem.Element, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(20))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: 4096, N: 10_000, Load: maxLoad, MinLoad: capacity + 1, Capacity: capacity,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: 20}, nil)
	return inst.Elements, prio
}

// benchSelect times one selection implementation over the whole sample per
// iteration, reporting ns/element.
func benchSelect(b *testing.B, capacity, maxLoad int,
	sel func([]setsystem.SetID, int, []float64, []setsystem.SetID) []setsystem.SetID) {
	b.Helper()
	elems, prio := selectSample(b, capacity, maxLoad)
	buf := make([]setsystem.SetID, 0, maxLoad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, el := range elems {
			buf = sel(el.Members, el.Capacity, prio, buf)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(len(elems))), "ns/element")
}

// The capacity<=8 regime (bounded insertion kernel) against the sort path
// it replaced — the headline 2x+ of the zero-allocation rewrite.
func BenchmarkSelectKernelCap4(b *testing.B) { benchSelect(b, 4, 16, core.SelectTopPriority) }
func BenchmarkSelectSortCap4(b *testing.B)   { benchSelect(b, 4, 16, core.SelectTopPrioritySort) }

// The large-capacity regime (quickselect kernel) against the same sort
// path.
func BenchmarkSelectKernelCap16(b *testing.B) { benchSelect(b, 16, 48, core.SelectTopPriority) }
func BenchmarkSelectSortCap16(b *testing.B)   { benchSelect(b, 16, 48, core.SelectTopPrioritySort) }

// --- streaming engine benchmarks ---

// benchEngineShards replays a dense generated video workload through the
// sharded streaming engine and reports end-to-end element throughput.
// Comparing Shards{1,2,4,8} is the scaling trajectory of the admission
// hot path; speedup tracks GOMAXPROCS (shards time-slice on fewer cores).
func benchEngineShards(b *testing.B, shards int) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	vi, err := workload.Video(workload.VideoConfig{
		Streams: 256, FramesPerStream: 24, Jitter: 6, LinkCapacity: 4,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.Config{Shards: shards, BatchSize: 128, QueueDepth: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Replay(vi.Inst, uint64(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elems := float64(b.N) * float64(vi.Inst.NumElements())
	b.ReportMetric(elems/b.Elapsed().Seconds(), "elements/s")
}

func BenchmarkEngineShards1(b *testing.B) { benchEngineShards(b, 1) }
func BenchmarkEngineShards2(b *testing.B) { benchEngineShards(b, 2) }
func BenchmarkEngineShards4(b *testing.B) { benchEngineShards(b, 4) }
func BenchmarkEngineShards8(b *testing.B) { benchEngineShards(b, 8) }

// BenchmarkEngineVsSerial pins the engine's single-shard overhead against
// the serial HashRandPr runner on the same workload.
func BenchmarkEngineVsSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	vi, err := workload.Video(workload.VideoConfig{
		Streams: 256, FramesPerStream: 24, Jitter: 6, LinkCapacity: 4,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alg := &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(i)}}
			if _, err := core.Run(vi.Inst, alg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		cfg := engine.Config{Shards: 1, BatchSize: 128}
		for i := 0; i < b.N; i++ {
			if _, err := engine.Replay(vi.Inst, uint64(i), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
