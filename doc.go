// Package repro is the root of a Go reproduction of
//
//	Emek, Halldórsson, Mansour, Patt-Shamir, Radhakrishnan, Rawitz.
//	"Online Set Packing and Competitive Scheduling of Multi-Part Tasks",
//	PODC 2010.
//
// The public API lives in package repro/osp; the implementation in
// internal/{setsystem,dist,hashpr,gf,gadget,core,engine,offline,
// lowerbound,workload,router,stats,experiments}. See README.md for the
// tour,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the measured
// reproduction of every theorem. The root package holds only the
// repository-level benchmark harness (bench_test.go), which regenerates
// each experiment table as a testing.B benchmark.
package repro
