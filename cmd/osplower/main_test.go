package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDuelMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "duel", "-sigma", "3", "-k", "2", "-alg", "greedyMaxWeight"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "certified OPT ≥ 3") {
		t.Errorf("duel output missing certificate:\n%s", out)
	}
	if !strings.Contains(out, "completed 1 set(s)") {
		t.Errorf("duel output missing ALG result:\n%s", out)
	}
}

func TestDuelUnknownAlgorithm(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "duel", "-alg", "nope"}, &buf); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestLemma9Mode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "lemma9", "-l", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "planted OPT: 8") {
		t.Errorf("lemma9 output missing planted OPT:\n%s", out)
	}
}

func TestLemma9BadEll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "lemma9", "-l", "6"}, &buf); err == nil {
		t.Error("ℓ=6 (not a prime power) should error")
	}
}

func TestUnknownMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "nope"}, &buf); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestPow(t *testing.T) {
	if pow(3, 4) != 81 || pow(2, 0) != 1 {
		t.Error("pow wrong")
	}
}

func TestMaxF(t *testing.T) {
	if maxF(1, 2) != 2 || maxF(3, 2) != 3 {
		t.Error("maxF wrong")
	}
}
