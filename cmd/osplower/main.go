// Command osplower explores the paper's lower-bound constructions
// interactively: Theorem 3 duels between the adaptive adversary and a
// deterministic policy, and draws from the Lemma 9 randomized
// distribution.
//
// Usage:
//
//	osplower -mode duel -sigma 3 -k 3 -alg greedyMaxWeight
//	osplower -mode lemma9 -l 4 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/setsystem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "osplower:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("osplower", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "duel", `"duel" (Theorem 3) or "lemma9" (Theorem 2 distribution)`)
		sigma   = fs.Int("sigma", 3, "duel: burst size σ")
		k       = fs.Int("k", 3, "duel: set size k")
		algName = fs.String("alg", "greedyFirstListed", "duel: deterministic algorithm name")
		l       = fs.Int("l", 3, "lemma9: prime power ℓ")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "duel":
		return duel(w, *sigma, *k, *algName)
	case "lemma9":
		return lemma9(w, *l, *seed)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func duel(w io.Writer, sigma, k int, algName string) error {
	var alg core.Algorithm
	for _, a := range core.Baselines() {
		if a.Name() == algName {
			alg = a
			break
		}
	}
	if alg == nil {
		return fmt.Errorf("unknown deterministic algorithm %q (try greedyMaxWeight, greedyFewestRemaining, greedyFirstListed)", algName)
	}
	res, inst, certOPT, err := lowerbound.RunDuel(sigma, k, alg)
	if err != nil {
		return err
	}
	st := setsystem.Compute(inst)
	fmt.Fprintf(w, "Theorem 3 duel: σ=%d, k=%d, m=%d sets, n=%d elements\n", sigma, k, st.M, st.N)
	fmt.Fprintf(w, "  algorithm %s completed %d set(s), weight %.0f\n", alg.Name(), len(res.Completed), res.Benefit)
	fmt.Fprintf(w, "  certified OPT ≥ %d  (σ^(k−1) = %d)\n", certOPT, pow(sigma, k-1))
	fmt.Fprintf(w, "  competitive ratio forced: ≥ %d\n", certOPT)
	return nil
}

func lemma9(w io.Writer, l int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	li, err := lowerbound.NewLemma9(l, rng)
	if err != nil {
		return err
	}
	if err := li.VerifyPlanted(); err != nil {
		return err
	}
	st := setsystem.Compute(li.Inst)
	fmt.Fprintf(w, "Lemma 9 draw: ℓ=%d → m=%d sets, n=%d elements, k=%d, σmax=%d, mean σ=%.2f\n",
		l, st.M, st.N, st.KMax, st.SigmaMax, st.SigmaMean)
	fmt.Fprintf(w, "  planted OPT: %d pairwise-disjoint sets (= ℓ³)\n", len(li.Planted))
	for _, alg := range []core.Algorithm{&core.RandPr{}, &core.GreedyFirstListed{}} {
		res, err := core.Run(li.Inst, alg, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-22s completed %4d sets  (ratio %.1f)\n",
			alg.Name(), len(res.Completed), float64(len(li.Planted))/maxF(res.Benefit, 1))
	}
	return nil
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
