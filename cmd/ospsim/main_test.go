package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestVideoScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "video", "-streams", "3", "-frames", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"video:", "offline OPT", "randPr", "taildrop"} {
		if !strings.Contains(out, frag) {
			t.Errorf("video output missing %q:\n%s", frag, out)
		}
	}
}

func TestMultihopScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "multihop", "-hops", "4", "-packets", "20", "-horizon", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "distributed network") || !strings.Contains(out, "abstract OSP run") {
		t.Errorf("multihop output incomplete:\n%s", out)
	}
}

func TestUnknownScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Error("unknown scenario should error")
	}
}

func TestBadParams(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "video", "-streams", "0"}, &buf); err == nil {
		t.Error("zero streams should error")
	}
	if err := run([]string{"-scenario", "multihop", "-hops", "1"}, &buf); err == nil {
		t.Error("one hop should error")
	}
}
