// Command ospsim runs the systems simulators: video streams through a
// bottleneck router, or multi-hop packets across a switch line with
// coordination-free hash priorities.
//
// Usage:
//
//	ospsim -scenario video -streams 8 -frames 16 -cap 1
//	ospsim -scenario multihop -hops 8 -packets 200 -horizon 20
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/hashpr"
	"repro/internal/offline"
	"repro/internal/router"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ospsim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "video", `"video" or "multihop"`)
		streams  = fs.Int("streams", 8, "video: concurrent streams")
		frames   = fs.Int("frames", 16, "video: frames per stream")
		linkCap  = fs.Int("cap", 1, "video: link capacity (packets/slot)")
		jitter   = fs.Int("jitter", 3, "video: max start jitter (slots)")
		bursty   = fs.Bool("bursty", false, "video: Markov on/off sources instead of jittered starts")
		hops     = fs.Int("hops", 8, "multihop: switches on the line")
		packets  = fs.Int("packets", 200, "multihop: packets injected")
		horizon  = fs.Int("horizon", 20, "multihop: injection window (slots)")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *scenario {
	case "video":
		return videoSim(w, *streams, *frames, *linkCap, *jitter, *bursty, *seed)
	case "multihop":
		return multihopSim(w, *hops, *packets, *horizon, *seed)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
}

func videoSim(w io.Writer, streams, frames, linkCap, jitter int, bursty bool, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	var vi *workload.VideoInstance
	var err error
	if bursty {
		vi, err = workload.Bursty(workload.BurstyConfig{
			Streams: streams, Frames: frames, LinkCapacity: linkCap,
		}, rng)
	} else {
		vi, err = workload.Video(workload.VideoConfig{
			Streams: streams, FramesPerStream: frames,
			LinkCapacity: linkCap, Jitter: jitter,
		}, rng)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "video: %d frames (%d packets) over %d busy slots, link capacity %d\n\n",
		vi.Inst.NumSets(), vi.TotalPackets, vi.Slots, linkCap)

	bound, exact, err := offline.BestUpperBound(vi.Inst, offline.Options{MaxNodes: 2_000_000})
	if err != nil {
		return err
	}
	kind := "LP bound"
	if exact {
		kind = "exact"
	}
	fmt.Fprintf(w, "offline OPT (%s): %.1f frame value\n\n", kind, bound)

	for _, p := range router.Policies() {
		rep, err := router.Simulate(vi, p, rand.New(rand.NewSource(seed+7)))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %s\n", p.Name(), rep)
		for _, class := range []string{"I", "P", "B"} {
			if cr, ok := rep.ByClass[class]; ok {
				fmt.Fprintf(w, "    %s-frames %d/%d\n", class, cr.Delivered, cr.Offered)
			}
		}
	}
	return nil
}

func multihopSim(w io.Writer, hops, packets, horizon int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	mi, err := workload.Multihop(workload.MultihopConfig{
		Hops: hops, Packets: packets, Horizon: horizon,
	}, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "multihop: %d packets over %d switches, %d (time,hop) cells\n\n",
		packets, hops, mi.Inst.NumElements())
	network, abstract, err := router.SimulateMultihop(mi, hashpr.Mixer{Seed: uint64(seed)})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "distributed network (drops propagate): %s\n", network)
	fmt.Fprintf(w, "abstract OSP run (analysis bound):     %s\n", abstract)
	return nil
}
