package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateInfoRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.osp")

	var buf bytes.Buffer
	if err := run([]string{"-gen", "random", "-m", "8", "-n", "16", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}

	buf.Reset()
	if err := run([]string{"-info", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "m=8 sets") {
		t.Errorf("info output wrong:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-run", path, "-alg", "randPr", "-trials", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E[w(ALG)]") {
		t.Errorf("run output wrong:\n%s", buf.String())
	}
}

func TestGenerateToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gen", "video", "-streams", "2", "-frames", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "osp 1\n") {
		t.Errorf("stdout trace missing header:\n%.80s", buf.String())
	}
}

func TestGenerateMultihop(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gen", "multihop", "-hops", "4", "-packets", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "elem ") {
		t.Error("multihop trace has no elements")
	}
}

func TestUnknownGenerator(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gen", "nope"}, &buf); err == nil {
		t.Error("unknown generator should error")
	}
}

func TestAllAlgorithmsResolvable(t *testing.T) {
	names := []string{
		"randPr", "randPrActive", "hashRandPr", "redrawRandPr",
		"detWeightPriority", "uniformRandom",
		"greedyMaxWeight", "greedyFewestRemaining", "greedyFirstListed",
	}
	for _, n := range names {
		alg, err := algorithmByName(n, 1)
		if err != nil || alg == nil {
			t.Errorf("algorithmByName(%q): %v", n, err)
		}
	}
	if _, err := algorithmByName("nope", 1); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestRunMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "/nonexistent/file.osp"}, &buf); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"-info", "/nonexistent/file.osp"}, &buf); err == nil {
		t.Error("missing file should error")
	}
}

func TestNoAction(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no flags should error")
	}
}
