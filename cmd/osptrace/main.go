// Command osptrace generates, inspects and replays OSP instance files in
// the repository's text trace format, decoupling workload generation from
// algorithm runs (e.g. to share a trace between experiments or machines).
//
// Usage:
//
//	osptrace -gen video -streams 8 -out trace.osp
//	osptrace -info trace.osp
//	osptrace -run trace.osp -alg randPr -trials 100
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/offline"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "osptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("osptrace", flag.ContinueOnError)
	var (
		gen     = fs.String("gen", "", `generate a trace: "video", "multihop", "random"`)
		out     = fs.String("out", "", "output file for -gen (default stdout)")
		info    = fs.String("info", "", "print statistics of a trace file")
		runPath = fs.String("run", "", "replay algorithms over a trace file")
		algName = fs.String("alg", "randPr", "algorithm for -run (randPr, hashRandPr, greedyMaxWeight, greedyFewestRemaining, greedyFirstListed, taildrop... see -run output)")
		trials  = fs.Int("trials", 100, "Monte-Carlo trials for randomized algorithms")
		seed    = fs.Int64("seed", 1, "random seed")
		streams = fs.Int("streams", 8, "video: streams")
		frames  = fs.Int("frames", 16, "video: frames per stream")
		m       = fs.Int("m", 20, "random: sets")
		n       = fs.Int("n", 60, "random: elements")
		load    = fs.Int("load", 4, "random: element load")
		hops    = fs.Int("hops", 8, "multihop: switches")
		packets = fs.Int("packets", 120, "multihop: packets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *gen != "":
		return generate(*gen, *out, w, genParams{
			seed: *seed, streams: *streams, frames: *frames,
			m: *m, n: *n, load: *load, hops: *hops, packets: *packets,
		})
	case *info != "":
		return printInfo(*info, w)
	case *runPath != "":
		return replay(*runPath, *algName, *trials, *seed, w)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -gen, -info or -run")
	}
}

type genParams struct {
	seed                                       int64
	streams, frames, m, n, load, hops, packets int
}

func generate(kind, out string, w io.Writer, p genParams) error {
	rng := rand.New(rand.NewSource(p.seed))
	var inst *setsystem.Instance
	var err error
	switch kind {
	case "video":
		var vi *workload.VideoInstance
		vi, err = workload.Video(workload.VideoConfig{
			Streams: p.streams, FramesPerStream: p.frames, Jitter: 3,
		}, rng)
		if err == nil {
			inst = vi.Inst
		}
	case "multihop":
		var mi *workload.MultihopInstance
		mi, err = workload.Multihop(workload.MultihopConfig{
			Hops: p.hops, Packets: p.packets, Horizon: 20,
		}, rng)
		if err == nil {
			inst = mi.Inst
		}
	case "random":
		inst, err = workload.Uniform(workload.UniformConfig{
			M: p.m, N: p.n, Load: p.load, MinLoad: 1,
			WeightFn: workload.ZipfWeights(1, 4),
		}, rng)
	default:
		return fmt.Errorf("unknown generator %q", kind)
	}
	if err != nil {
		return err
	}
	dst := w
	if out != "" {
		f, ferr := os.Create(out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		dst = f
	}
	if err := setsystem.Encode(dst, inst); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(w, "wrote %s: %v\n", out, inst)
	}
	return nil
}

func printInfo(path string, w io.Writer) error {
	inst, err := loadTrace(path)
	if err != nil {
		return err
	}
	st := setsystem.Compute(inst)
	fmt.Fprintf(w, "%v\n", inst)
	fmt.Fprintf(w, "  mean set size %.2f, mean load %.2f, mean weighted load %.2f\n",
		st.KMean, st.SigmaMean, st.SigmaWMean)
	fmt.Fprintf(w, "  total weight %.2f; unit capacity: %v; unweighted: %v\n",
		st.TotalWeight, inst.IsUnitCapacity(), inst.IsUnweighted())
	fmt.Fprintf(w, "  Theorem 1 bound %.2f; Corollary 6 bound %.2f\n",
		setsystem.Theorem1Bound(st), setsystem.Corollary6Bound(st))
	if inst.IsUnitCapacity() {
		fmt.Fprintf(w, "  exact E[w(randPr)] (Lemma 1): %.4f\n", core.RandPrExpectedBenefit(inst))
	}
	return nil
}

func replay(path, algName string, trials int, seed int64, w io.Writer) error {
	inst, err := loadTrace(path)
	if err != nil {
		return err
	}
	alg, err := algorithmByName(algName, seed)
	if err != nil {
		return err
	}
	mean, stderr, err := core.MeanBenefit(inst, alg, trials, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s on %v\n", alg.Name(), inst)
	fmt.Fprintf(w, "  E[w(ALG)] = %.4f ± %.4f (%d trials)\n", mean, stderr, trials)
	if bound, exact, err := offline.BestUpperBound(inst, offline.Options{MaxNodes: 2_000_000}); err == nil {
		kind := "LP bound"
		if exact {
			kind = "exact"
		}
		fmt.Fprintf(w, "  OPT (%s) = %.4f → measured ratio %.3f\n", kind, bound, bound/mean)
	}
	return nil
}

func loadTrace(path string) (*setsystem.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return setsystem.Decode(f)
}

// algorithmByName resolves the -alg flag.
func algorithmByName(name string, seed int64) (core.Algorithm, error) {
	switch name {
	case "randPr":
		return &core.RandPr{}, nil
	case "randPrActive":
		return &core.RandPr{ActiveOnly: true}, nil
	case "hashRandPr":
		return &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(seed)}}, nil
	case "redrawRandPr":
		return &core.RedrawRandPr{}, nil
	case "detWeightPriority":
		return &core.DetWeightPriority{}, nil
	case "uniformRandom":
		return &core.UniformRandom{}, nil
	case "greedyMaxWeight":
		return &core.GreedyMaxWeight{}, nil
	case "greedyFewestRemaining":
		return &core.GreedyFewestRemaining{}, nil
	case "greedyFirstListed":
		return &core.GreedyFirstListed{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
