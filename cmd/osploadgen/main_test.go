package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/osp"
)

// TestLoadgenEmbeddedVerified runs the generator end to end against the
// embedded server and requires the bit-for-bit oracle check to pass.
func TestLoadgenEmbeddedVerified(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "40", "-n", "5000", "-load", "4", "-batch", "250", "-seed", "9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"workload: osp instance: m=40",
		"(embedded), instance i-1",
		"loadgen:  5000 elements",
		"verdicts:",
		"goodput:",
		"verify:   drained result bit-for-bit identical",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestLoadgenPolicies runs the generator against the embedded server once
// per registered policy and requires each drained result to match that
// policy's serial oracle.
func TestLoadgenPolicies(t *testing.T) {
	for _, pol := range osp.PolicyNames() {
		var buf bytes.Buffer
		err := run([]string{"-m", "20", "-n", "1000", "-load", "3", "-batch", "200",
			"-seed", "4", "-policy", pol}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for _, frag := range []string{
			"policy " + pol,
			"verify:   drained result bit-for-bit identical to serial " + pol + " oracle",
		} {
			if !strings.Contains(buf.String(), frag) {
				t.Errorf("%s: output missing %q:\n%s", pol, frag, buf.String())
			}
		}
	}
}

// TestLoadgenUnknownPolicy pins the registry rejection surfacing through
// the client as a 400.
func TestLoadgenUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "5", "-n", "10", "-policy", "bogus"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown policy error = %v, want the bad name in the message", err)
	}
}

// TestLoadgenRatePacing exercises the pacing branch with a small run.
func TestLoadgenRatePacing(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "10", "-n", "400", "-load", "2", "-batch", "100", "-rate", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rate target 20000 elements/s") {
		t.Errorf("rate target not echoed:\n%s", buf.String())
	}
}

// TestLoadgenNoVerify covers the -verify=false path.
func TestLoadgenNoVerify(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "10", "-n", "200", "-load", "2", "-batch", "50", "-verify=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "verify:") {
		t.Errorf("verify line printed despite -verify=false:\n%s", buf.String())
	}
}

// TestLoadgenErrors pins flag and connection failures.
func TestLoadgenErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-batch", "0"}, &buf); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := run([]string{"-addr", "ftp://nope", "-n", "10"}, &buf); err == nil {
		t.Error("bad scheme accepted")
	}
	// A dead server fails the health probe, not the stream.
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-n", "10"}, &buf); err == nil {
		t.Error("unreachable server accepted")
	}
}
