package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/osp"
)

// TestLoadgenEmbeddedVerified runs the generator end to end against the
// embedded server and requires the bit-for-bit oracle check to pass.
func TestLoadgenEmbeddedVerified(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "40", "-n", "5000", "-load", "4", "-batch", "250", "-seed", "9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"workload: osp instance: m=40",
		"(embedded), instance i-1",
		"loadgen:  5000 elements",
		"verdicts:",
		"goodput:",
		"verify:   drained result bit-for-bit identical",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestLoadgenPolicies runs the generator against the embedded server once
// per registered policy and requires each drained result to match that
// policy's serial oracle.
func TestLoadgenPolicies(t *testing.T) {
	for _, pol := range osp.PolicyNames() {
		var buf bytes.Buffer
		err := run([]string{"-m", "20", "-n", "1000", "-load", "3", "-batch", "200",
			"-seed", "4", "-policy", pol}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for _, frag := range []string{
			"policy " + pol,
			"verify:   drained result bit-for-bit identical to serial " + pol + " oracle",
		} {
			if !strings.Contains(buf.String(), frag) {
				t.Errorf("%s: output missing %q:\n%s", pol, frag, buf.String())
			}
		}
	}
}

// TestLoadgenStreamTransport runs the pipelined stream path against the
// embedded server: the oracle check must pass, and the report must name
// both the transport and the stream codec it actually used.
func TestLoadgenStreamTransport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "40", "-n", "6000", "-load", "4", "-batch", "250",
		"-seed", "9", "-transport", "stream", "-pipeline", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"transport stream, codec stream",
		"latency:  per-batch client-observed p50",
		"verify:   drained result bit-for-bit identical",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}

	if err := run([]string{"-transport", "bogus", "-n", "10"}, &buf); err == nil {
		t.Error("bogus transport accepted")
	}
	if err := run([]string{"-pipeline", "0", "-n", "10"}, &buf); err == nil {
		t.Error("pipeline depth 0 accepted")
	}
	if err := run([]string{"-conns", "0", "-n", "10"}, &buf); err == nil {
		t.Error("conns 0 accepted")
	}
	// A remote server without a stream address cannot carry the stream
	// transport.
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-transport", "stream", "-n", "10"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "stream-addr") {
		t.Errorf("remote stream without -stream-addr = %v, want config error", err)
	}
}

// TestLoadgenStreamConns runs the striped multi-connection stream path:
// the oracle check must still pass and the stripe-balance line must
// report every connection carrying elements.
func TestLoadgenStreamConns(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "40", "-n", "6000", "-load", "4", "-batch", "250",
		"-seed", "9", "-transport", "stream", "-pipeline", "4", "-conns", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"stripes:  3 connections, elements per connection",
		"verify:   drained result bit-for-bit identical",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestLoadgenUnknownPolicy pins the registry rejection surfacing through
// the client as a 400.
func TestLoadgenUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "5", "-n", "10", "-policy", "bogus"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown policy error = %v, want the bad name in the message", err)
	}
}

// TestLoadgenRatePacing exercises the pacing branch with a small run.
func TestLoadgenRatePacing(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "10", "-n", "400", "-load", "2", "-batch", "100", "-rate", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rate target 20000 elements/s") {
		t.Errorf("rate target not echoed:\n%s", buf.String())
	}
}

// TestLoadgenNoVerify covers the -verify=false path.
func TestLoadgenNoVerify(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-m", "10", "-n", "200", "-load", "2", "-batch", "50", "-verify=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "verify:") {
		t.Errorf("verify line printed despite -verify=false:\n%s", buf.String())
	}
}

// TestLoadgenErrors pins flag and connection failures.
func TestLoadgenErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-batch", "0"}, &buf); err == nil {
		t.Error("batch 0 accepted")
	}
	if err := run([]string{"-addr", "ftp://nope", "-n", "10"}, &buf); err == nil {
		t.Error("bad scheme accepted")
	}
	// A dead server fails the health probe, not the stream.
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-n", "10"}, &buf); err == nil {
		t.Error("unreachable server accepted")
	}
}

// TestLoadgenCodecs runs the generator once per forced codec and once in
// auto mode; all three must verify against the serial oracle — the
// "-verify passes over the new codec" acceptance — and report the codec
// actually used.
func TestLoadgenCodecs(t *testing.T) {
	for _, tc := range []struct{ flag, want string }{
		{"auto", "codec binary"}, // auto negotiates binary on our server
		{"json", "codec json"},
		{"binary", "codec binary"},
	} {
		var buf bytes.Buffer
		err := run([]string{"-m", "30", "-n", "3000", "-load", "4", "-batch", "300",
			"-seed", "11", "-codec", tc.flag}, &buf)
		if err != nil {
			t.Fatalf("codec %s: %v", tc.flag, err)
		}
		for _, frag := range []string{
			tc.want,
			"verify:   drained result bit-for-bit identical",
		} {
			if !strings.Contains(buf.String(), frag) {
				t.Errorf("codec %s: output missing %q:\n%s", tc.flag, frag, buf.String())
			}
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-codec", "bogus", "-n", "10"}, &buf); err == nil {
		t.Error("bogus codec accepted")
	}
}

// TestLoadgenClusterMode routes the generator through a 2-node cluster
// coordinator (-nodes): the element stream fans across both nodes by
// element hash, forwards over each node's stream listener, and the
// merged drain still verifies bit-for-bit against the serial oracle.
func TestLoadgenClusterMode(t *testing.T) {
	var nodes, streams []string
	for i := 0; i < 2; i++ {
		ln, err := cluster.StartLocalNode(osp.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Shutdown(context.Background()) }) //nolint:errcheck
		nodes = append(nodes, ln.Config().BaseURL)
		streams = append(streams, ln.Config().StreamAddr)
	}
	var buf bytes.Buffer
	err := run([]string{"-m", "30", "-n", "3000", "-load", "3", "-batch", "250", "-seed", "21",
		"-conns", "2",
		"-nodes", strings.Join(nodes, ","), "-stream-nodes", strings.Join(streams, ",")}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"target:   cluster of 2 nodes, instance c-0 on slots [0 1]",
		"loadgen:  3000 elements",
		"stripes:  node 0: 2 connections, elements per connection",
		"stripes:  node 1: 2 connections, elements per connection",
		"verify:   merged cluster drain bit-for-bit identical to serial randpr oracle",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}

	// Cluster mode and a single -addr target are mutually exclusive.
	if err := run([]string{"-nodes", nodes[0], "-addr", nodes[0], "-n", "10"}, &buf); err == nil {
		t.Error("-nodes with -addr accepted")
	}
	// Mismatched stream list lengths are a config error.
	if err := run([]string{"-nodes", strings.Join(nodes, ","), "-stream-nodes", streams[0], "-n", "10"}, &buf); err == nil {
		t.Error("mismatched -stream-nodes length accepted")
	}
}

// TestLoadgenZipfWeights runs the skewed-weight scenario: under Zipf
// weights randpr-weighted must verify against ITS oracle, and its
// benefit must diverge from plain randpr's on the same workload — the
// distinguishing comparison unit weights cannot provide.
func TestLoadgenZipfWeights(t *testing.T) {
	goodput := func(policy string) string {
		t.Helper()
		var buf bytes.Buffer
		err := run([]string{"-m", "30", "-n", "2000", "-load", "2", "-cap", "1",
			"-batch", "250", "-seed", "3", "-zipf", "1.2", "-policy", policy}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		out := buf.String()
		if !strings.Contains(out, "verify:   drained result bit-for-bit identical to serial "+policy+" oracle") {
			t.Fatalf("%s: oracle check missing:\n%s", policy, out)
		}
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "goodput:") {
				return line
			}
		}
		t.Fatalf("%s: no goodput line:\n%s", policy, out)
		return ""
	}
	plain := goodput("randpr")
	weighted := goodput("randpr-weighted")
	if plain == weighted {
		t.Errorf("zipf weights: randpr and randpr-weighted report identical goodput %q — the scenario is not distinguishing", plain)
	}

	var buf bytes.Buffer
	if err := run([]string{"-zipf", "-1", "-n", "10"}, &buf); err == nil {
		t.Error("negative zipf exponent accepted")
	}
}
