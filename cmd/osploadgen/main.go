// Command osploadgen is the load generator for the networked admission
// service (ospserve -listen): it sustains a target element rate against
// a live server over the HTTP client, then drains and cross-checks the
// result bit-for-bit against a serial run of the registered admission
// policy on the same workload under the same seed — the remote producers
// of the paper's bottleneck-router story, with the admission guarantee
// verified end to end through the network.
//
// Usage:
//
//	osploadgen -addr http://localhost:8080 -n 200000 -rate 100000
//	osploadgen -n 500000                 # no -addr: embeds a server in-process
//	osploadgen -n 200000 -rate 0        # full speed, report the sustained rate
//	osploadgen -policy first-fit -n 100000  # register a non-default policy
//	osploadgen -codec json -n 200000    # force the JSON wire path (-codec binary forces binary)
//	osploadgen -transport stream -n 500000  # pipelined frames over one TCP connection
//	osploadgen -transport stream -conns 4   # stripe the stream across 4 TCP connections
//	osploadgen -addr http://host:8080 -stream-addr host:8081 -transport stream
//	osploadgen -policy randpr-weighted -zipf 1.2  # skewed Zipf(1.2) set weights,
//	                                    # where the weighted variant actually diverges
//	osploadgen -nodes http://a:8080,http://b:8080 -stream-nodes a:8081,b:8081
//	                                    # cluster mode: fan the stream across a fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/osp"
	"repro/osp/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "osploadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("osploadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "admission server base URL; empty embeds a server in-process")
		m        = fs.Int("m", 200, "uniform workload: number of sets")
		n        = fs.Int("n", 200000, "uniform workload: number of elements")
		load     = fs.Int("load", 8, "uniform workload: element load σ(u)")
		capacity = fs.Int("cap", 2, "uniform workload: element capacity b(u)")
		seed     = fs.Int64("seed", 1, "workload seed and shared priority seed")
		rate     = fs.Float64("rate", 0, "target arrival rate in elements/sec (0 = full speed)")
		batch    = fs.Int("batch", 1000, "elements per ingest request")
		shards   = fs.Int("shards", 0, "server-side engine shards (0 = server default)")
		policy   = fs.String("policy", "", "admission policy: "+strings.Join(osp.PolicyNames(), ", ")+` ("" = server default randpr)`)
		codec    = fs.String("codec", "auto", "ingest wire codec: auto (binary with JSON fallback), json, binary")
		trans    = fs.String("transport", "http", "ingest transport: http (one request per batch) or stream (pipelined frames over one TCP connection)")
		pipeline = fs.Int("pipeline", 8, "stream transport: batches kept in flight (capped by the server's window)")
		conns    = fs.Int("conns", 1, "stream transport: striped TCP connections per stream (verdict order preserved; applies per node in cluster mode)")
		strmAddr = fs.String("stream-addr", "", "host:port of the server's stream listener (ospserve -stream-listen); defaults to the embedded server's")
		nodesCSV = fs.String("nodes", "", "cluster mode: comma-separated node base URLs, in slot order; ingest routes through a cluster coordinator instead of one server")
		strmCSV  = fs.String("stream-nodes", "", "cluster mode: comma-separated stream listener host:ports, parallel to -nodes (\"\" entries = HTTP-only node)")
		zipf     = fs.Float64("zipf", 0, "Zipf exponent s for skewed set weights w(S_i) ∝ 1/(i+1)^s (0 = unit weights)")
		label    = fs.String("label", "loadgen", "metrics label for the registered instance")
		verify   = fs.Bool("verify", true, "cross-check the drained result against the policy's serial oracle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}
	var wireCodec client.Codec
	switch *codec {
	case "auto":
		wireCodec = client.CodecAuto
	case "json":
		wireCodec = client.CodecJSON
	case "binary":
		wireCodec = client.CodecBinary
	default:
		return fmt.Errorf("unknown codec %q (auto, json, binary)", *codec)
	}
	switch *trans {
	case "http", "stream":
	default:
		return fmt.Errorf("unknown transport %q (http, stream)", *trans)
	}
	if *pipeline < 1 {
		return fmt.Errorf("pipeline depth must be >= 1, got %d", *pipeline)
	}
	if *conns < 1 {
		return fmt.Errorf("conns must be >= 1, got %d", *conns)
	}
	var weightFn func(i int) float64
	if *zipf > 0 {
		// The skewed-weight scenario: without it, randpr-weighted decides
		// identically to randpr (unit weights scale priorities by a
		// constant, preserving order), so weighted-variant comparisons
		// need -zipf to be distinguishing.
		weightFn = osp.ZipfWeights(*zipf, 10)
	} else if *zipf < 0 {
		return fmt.Errorf("zipf exponent must be >= 0, got %v", *zipf)
	}

	inst, err := osp.RandomInstance(osp.UniformConfig{
		M: *m, N: *n, Load: *load, Capacity: *capacity, WeightFn: weightFn,
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: %v\n", inst)

	if *nodesCSV != "" {
		if *addr != "" {
			return errors.New("-nodes (cluster mode) and -addr (single server) are mutually exclusive")
		}
		return runCluster(w, inst, clusterRun{
			nodes: *nodesCSV, streamNodes: *strmCSV,
			seed: *seed, rate: *rate, batch: *batch, shards: *shards,
			conns: *conns, policy: *policy, label: *label, verify: *verify,
		})
	}

	base := *addr
	streamAddr := *strmAddr
	embedded := ""
	if base == "" {
		stopEmbedded, bound, streamBound, err := startEmbedded()
		if err != nil {
			return err
		}
		defer stopEmbedded()
		base = "http://" + bound
		if streamAddr == "" {
			streamAddr = streamBound
		}
		embedded = " (embedded)"
	}
	if *trans == "stream" && streamAddr == "" {
		return errors.New("-transport stream against a remote server needs -stream-addr (ospserve -stream-listen)")
	}

	ctx := context.Background()
	opts := []client.Option{client.WithCodec(wireCodec)}
	if streamAddr != "" {
		opts = append(opts, client.WithStreamAddr(streamAddr))
		if *conns > 1 {
			opts = append(opts, client.WithStreamConns(*conns))
		}
	}
	c, err := client.New(base, opts...)
	if err != nil {
		return err
	}
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("server not healthy: %w", err)
	}
	h, err := c.Register(ctx, client.Spec{
		Info:   osp.InfoOf(inst),
		Seed:   uint64(*seed),
		Engine: osp.EngineConfig{Shards: *shards, Policy: *policy},
		Label:  *label,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "target:   %s%s, instance %s, %d shards, policy %s, rate target %s\n",
		base, embedded, h.ID(), h.Shards(), h.Policy(), rateString(*rate))

	var admitted, dropped uint64
	start := time.Now()
	batches := 0
	codecName := ""
	var perConn []uint64
	lat := make([]time.Duration, 0, (len(inst.Elements)+*batch-1)/(*batch))
	pace := func(off int) {
		if *rate > 0 {
			target := start.Add(time.Duration(float64(off) / *rate * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
	}

	ingestHTTP := func() error {
		for off := 0; off < len(inst.Elements); off += *batch {
			pace(off)
			end := min(off+*batch, len(inst.Elements))
			sent := time.Now()
			verdicts, err := h.Ingest(ctx, inst.Elements[off:end])
			lat = append(lat, time.Since(sent))
			if err != nil {
				return fmt.Errorf("ingest batch at %d (policy %s): %w", off, h.Policy(), err)
			}
			for _, v := range verdicts {
				admitted += uint64(len(v.Admitted))
				dropped += uint64(len(v.Dropped))
			}
			batches++
		}
		codecName = h.Codec()
		return nil
	}

	// ingestStream runs the pipeline dance: keep up to -pipeline batches
	// in flight on one connection, collect the oldest verdict frame when
	// the window is full, then drain the tail after CloseSend. Latency is
	// send-to-verdict per batch, so under deep pipelining it includes the
	// time a batch spends queued behind its predecessors.
	ingestStream := func() error {
		st, err := h.OpenStream(ctx)
		if err != nil {
			return err
		}
		defer st.Close()
		depth := min(*pipeline, st.Window())
		type inFlight struct {
			off, end int
			sent     time.Time
		}
		queue := make([]inFlight, 0, depth)
		collect := func() error {
			fl := queue[0]
			queue = queue[1:]
			els := inst.Elements[fl.off:fl.end]
			err := st.Recv(func(i int, adm []osp.SetID) {
				admitted += uint64(len(adm))
				dropped += uint64(len(els[i].Members) - len(adm))
			})
			lat = append(lat, time.Since(fl.sent))
			if err != nil {
				return fmt.Errorf("stream verdicts for batch at %d (policy %s): %w", fl.off, h.Policy(), err)
			}
			batches++
			return nil
		}
		for off := 0; off < len(inst.Elements); off += *batch {
			pace(off)
			if len(queue) == depth {
				if err := collect(); err != nil {
					return err
				}
			}
			end := min(off+*batch, len(inst.Elements))
			if err := st.Send(inst.Elements[off:end]); err != nil {
				return fmt.Errorf("stream send at %d: %w", off, err)
			}
			queue = append(queue, inFlight{off, end, time.Now()})
		}
		if err := st.CloseSend(); err != nil {
			return err
		}
		for len(queue) > 0 {
			if err := collect(); err != nil {
				return err
			}
		}
		if err := st.Recv(func(int, []osp.SetID) {}); err != io.EOF {
			return fmt.Errorf("stream fin: %v", err)
		}
		perConn = st.ConnElements()
		codecName = h.Codec() // "stream" while the stream is open
		return nil
	}

	ingest := ingestHTTP
	if *trans == "stream" {
		ingest = ingestStream
	}
	if err := ingest(); err != nil {
		// Drain the instance anyway so the server side stops cleanly,
		// and surface both errors — as engine.Replay does for a
		// mid-stream Submit failure.
		_, derr := h.Drain(ctx)
		return errors.Join(err, derr)
	}
	elapsed := time.Since(start)

	res, err := h.Drain(ctx)
	if err != nil {
		return err
	}
	sustained := float64(len(inst.Elements)) / elapsed.Seconds()
	fmt.Fprintf(w, "loadgen:  %d elements in %v (%.0f elements/sec over %d batches, transport %s, codec %s)\n",
		len(inst.Elements), elapsed.Round(time.Microsecond), sustained, batches, *trans, codecName)
	if len(perConn) > 1 {
		fmt.Fprintf(w, "stripes:  %d connections, elements per connection %v\n", len(perConn), perConn)
	}
	p50, p95, p99 := latencyPercentiles(lat)
	fmt.Fprintf(w, "latency:  per-batch client-observed p50 %v, p95 %v, p99 %v\n",
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
	fmt.Fprintf(w, "verdicts: %d admitted, %d dropped memberships\n", admitted, dropped)
	fmt.Fprintf(w, "goodput:  %d sets completed, weight %.1f of %.1f offered\n",
		len(res.Completed), res.Benefit, inst.TotalWeight())

	// The verdict stream and the drained result must agree in aggregate:
	// every admitted membership is an assignment in the final result.
	var assigned uint64
	for _, cnt := range res.Assigned {
		assigned += uint64(cnt)
	}
	if assigned != admitted {
		return fmt.Errorf("verdicts admitted %d memberships but drained result assigns %d", admitted, assigned)
	}

	if *verify {
		alg, err := osp.NewPolicyAlgorithm(h.Policy(), uint64(*seed))
		if err != nil {
			return err
		}
		serial, err := osp.Run(inst, alg, nil)
		if err != nil {
			return err
		}
		if !res.Equal(serial) {
			return fmt.Errorf("policy %s: drained result differs from its serial oracle (server %.3f, serial %.3f, seed %d)",
				h.Policy(), res.Benefit, serial.Benefit, *seed)
		}
		fmt.Fprintf(w, "verify:   drained result bit-for-bit identical to serial %s oracle (seed %d)\n", h.Policy(), *seed)
	}
	return nil
}

// clusterRun carries the -nodes arm's parameters.
type clusterRun struct {
	nodes, streamNodes string
	seed               int64
	rate               float64
	batch, shards      int
	conns              int
	policy, label      string
	verify             bool
}

// runCluster is the -nodes arm: the same load-and-verify loop, routed
// through a cluster coordinator that fans the element stream across the
// fleet by element hash, forwards each share over the best transport
// the node speaks, and merges the per-node drains. The merged result is
// still checked bit-for-bit against the serial oracle — placement
// cannot change a verdict.
func runCluster(w io.Writer, inst *osp.Instance, p clusterRun) error {
	bases := strings.Split(p.nodes, ",")
	streams := make([]string, len(bases))
	if p.streamNodes != "" {
		got := strings.Split(p.streamNodes, ",")
		if len(got) != len(bases) {
			return fmt.Errorf("-stream-nodes lists %d addrs for %d nodes", len(got), len(bases))
		}
		streams = got
	}
	fleet := make([]cluster.Node, len(bases))
	for i, b := range bases {
		fleet[i] = cluster.Node{BaseURL: strings.TrimSpace(b), StreamAddr: strings.TrimSpace(streams[i])}
	}
	co, err := cluster.New(cluster.Config{Nodes: fleet, StreamConns: p.conns})
	if err != nil {
		return err
	}
	defer co.Close() //nolint:errcheck
	ctx := context.Background()
	in, err := co.Register(ctx, cluster.Spec{
		Info: osp.InfoOf(inst), Seed: uint64(p.seed), FanOut: true,
		Engine: osp.EngineConfig{Shards: p.shards, Policy: p.policy},
		Label:  p.label,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "target:   cluster of %d nodes, instance %s on slots %v, rate target %s\n",
		len(fleet), in.ID(), in.Slots(), rateString(p.rate))

	var admitted, dropped uint64
	start := time.Now()
	batches := 0
	lat := make([]time.Duration, 0, (len(inst.Elements)+p.batch-1)/p.batch)
	for off := 0; off < len(inst.Elements); off += p.batch {
		if p.rate > 0 {
			target := start.Add(time.Duration(float64(off) / p.rate * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
		els := inst.Elements[off:min(off+p.batch, len(inst.Elements))]
		sent := time.Now()
		err := in.Ingest(ctx, els, func(i int, adm []osp.SetID) {
			admitted += uint64(len(adm))
			dropped += uint64(len(els[i].Members) - len(adm))
		})
		lat = append(lat, time.Since(sent))
		if err != nil {
			return fmt.Errorf("cluster ingest batch at %d: %w", off, err)
		}
		batches++
	}
	elapsed := time.Since(start)

	// Capture stripe balance before Drain — draining closes each node's
	// pinned stream, and the per-connection counters go with it.
	striped := in.StreamConnElements()
	res, err := in.Drain(ctx)
	if err != nil {
		return err
	}
	sustained := float64(len(inst.Elements)) / elapsed.Seconds()
	fmt.Fprintf(w, "loadgen:  %d elements in %v (%.0f elements/sec over %d batches, cluster fan-out)\n",
		len(inst.Elements), elapsed.Round(time.Microsecond), sustained, batches)
	if p.conns > 1 {
		for _, slot := range in.Slots() {
			if per, ok := striped[slot]; ok {
				fmt.Fprintf(w, "stripes:  node %d: %d connections, elements per connection %v\n", slot, len(per), per)
			}
		}
	}
	p50, p95, p99 := latencyPercentiles(lat)
	fmt.Fprintf(w, "latency:  per-batch client-observed p50 %v, p95 %v, p99 %v\n",
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
	fmt.Fprintf(w, "verdicts: %d admitted, %d dropped memberships\n", admitted, dropped)
	fmt.Fprintf(w, "goodput:  %d sets completed, weight %.1f of %.1f offered\n",
		len(res.Completed), res.Benefit, inst.TotalWeight())

	var assigned uint64
	for _, cnt := range res.Assigned {
		assigned += uint64(cnt)
	}
	if assigned != admitted {
		return fmt.Errorf("verdicts admitted %d memberships but drained result assigns %d", admitted, assigned)
	}
	if p.verify {
		alg, err := osp.NewPolicyAlgorithm(p.policy, uint64(p.seed))
		if err != nil {
			return err
		}
		serial, err := osp.Run(inst, alg, nil)
		if err != nil {
			return err
		}
		if !res.Equal(serial) {
			return fmt.Errorf("cluster drain differs from its serial oracle (cluster %.3f, serial %.3f, seed %d)",
				res.Benefit, serial.Benefit, p.seed)
		}
		pol := p.policy
		if pol == "" {
			pol = osp.DefaultPolicy
		}
		fmt.Fprintf(w, "verify:   merged cluster drain bit-for-bit identical to serial %s oracle (seed %d)\n", pol, p.seed)
	}
	return nil
}

// startEmbedded runs a full admission service on loopback listeners in
// this process — the zero-setup path for benchmarking and CI smoke runs.
// Both transports are live: the HTTP API on addr, the stream transport
// on streamAddr (Server.Shutdown closes the stream listener).
func startEmbedded() (stop func(), addr, streamAddr string, err error) {
	srv := osp.NewServer(osp.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", "", err
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return nil, "", "", err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)         //nolint:errcheck // closed via stop
	go srv.ServeStream(sln) //nolint:errcheck // closed via stop
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)  //nolint:errcheck
		srv.Shutdown(ctx) //nolint:errcheck
	}
	return stop, ln.Addr().String(), sln.Addr().String(), nil
}

// latencyPercentiles sorts the recorded per-batch round-trip times and
// returns the p50/p95/p99 order statistics (nearest-rank on a sorted
// copy; zero durations for an empty sample).
func latencyPercentiles(lat []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	slices.Sort(sorted)
	rank := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}

// rateString formats the pacing target.
func rateString(rate float64) string {
	if rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0f elements/s", rate)
}
