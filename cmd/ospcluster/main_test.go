package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunEmbeddedVerify is the happy path: an embedded 2-node fleet,
// fan-out ingest, merged drain verified against the serial oracle.
func TestRunEmbeddedVerify(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-spawn", "2", "-m", "30", "-n", "3000", "-load", "3", "-batch", "250"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"fleet:    2 nodes (embedded), journal on",
		"on slots [0 1]",
		"verify:   merged drain bit-for-bit identical to serial randpr oracle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunPinned covers the ring arm: a non-fan-out instance lands on
// exactly one slot and still verifies.
func TestRunPinned(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-spawn", "2", "-fanout=false", "-m", "20", "-n", "2000", "-load", "3", "-batch", "200"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "verify:") {
		t.Errorf("output missing verify line:\n%s", b.String())
	}
}

// TestRunFailoverJournal is the CLI failover demo: kill a node halfway,
// replace it, and the journaled replay keeps the drain exact.
func TestRunFailoverJournal(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-spawn", "3", "-kill", "1", "-kill-at", "0.4",
		"-m", "30", "-n", "3000", "-load", "3", "-batch", "200", "-print-metrics"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"kill:     slot 1 down",
		"failover: slot 1 replaced by",
		"verify:   merged drain bit-for-bit identical to serial randpr oracle",
		"osp_cluster_failovers_total 1",
		"osp_cluster_lost_elements_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFailoverNoJournal pins the lossy arm: journal off, the dead
// node's acked share is reported as lost and the drain verifies against
// the surviving-subsequence oracle.
func TestRunFailoverNoJournal(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-spawn", "3", "-kill", "0", "-kill-at", "0.5", "-journal=false",
		"-m", "30", "-n", "3000", "-load", "3", "-batch", "200"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"lost:     ",
		"surviving-subsequence",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunAutoFailover is the zero-operator arm: the health monitor is
// armed with a spare, a node is killed mid-stream, and recovery happens
// with no ReplaceNode anywhere in the loop — the drain still verifies
// bit-for-bit and the metrics attribute the failover to the monitor.
func TestRunAutoFailover(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-spawn", "3", "-kill", "1", "-kill-at", "0.4",
		"-spares", "1", "-auto-failover", "-health-interval", "25ms",
		"-m", "30", "-n", "3000", "-load", "3", "-batch", "200", "-print-metrics"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"health:   monitor armed, probe every 25ms, 1 spare(s), auto-failover on",
		"kill:     slot 1 down",
		"health:   slot 1 auto-failover -> ",
		"verify:   merged drain bit-for-bit identical to serial randpr oracle",
		"osp_cluster_auto_failovers_total 1",
		"osp_cluster_spares 0",
		"osp_cluster_lost_elements_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "failover: slot") {
		t.Errorf("manual failover path ran with -auto-failover armed:\n%s", out)
	}
}

// TestRunFileLog: the registration log lands on disk and survives the
// run — one JSONL entry for the one registration.
func TestRunFileLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	var b strings.Builder
	err := run([]string{"-spawn", "2", "-log", path,
		"-m", "20", "-n", "1000", "-load", "3", "-batch", "200"}, &b)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, b.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; n != 1 {
		t.Fatalf("registration log has %d lines, want 1:\n%s", n, data)
	}
	if !strings.Contains(string(data), `"id":"c-0"`) {
		t.Errorf("log entry missing instance id:\n%s", data)
	}
}

// TestRunFlagValidation: the error arms that must not silently
// misbehave.
func TestRunFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"kill-external":     {"-nodes", "http://localhost:1", "-kill", "0"},
		"kill-range":        {"-spawn", "2", "-kill", "5"},
		"kill-at-range":     {"-spawn", "2", "-kill", "0", "-kill-at", "1.5"},
		"batch-zero":        {"-batch", "0"},
		"spawn-zero":        {"-spawn", "0"},
		"zipf-negative":     {"-zipf", "-1"},
		"spares-external":   {"-nodes", "http://localhost:1", "-spares", "1"},
		"autofail-no-spare": {"-spawn", "2", "-kill", "0", "-auto-failover"},
		"unknown-policy":    {"-spawn", "1", "-policy", "nope", "-n", "100"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var b strings.Builder
			if err := run(args, &b); err == nil {
				t.Errorf("run(%v) succeeded, want error", args)
			}
		})
	}
}
