// Command ospcluster runs an admission cluster end to end: a
// coordinator over N service nodes, one instance placed by consistent
// hashing or fanned out across the fleet by element hash, ingest
// forwarded over the stream transport with per-node HTTP fallback, and
// the per-node drains merged and cross-checked bit-for-bit against the
// serial policy oracle. With -kill it doubles as the failover demo:
// kill a node mid-stream, replay the registration log onto a fresh
// replacement, and verify the merged drain is still exact (journal on)
// or exactly accounted (journal off, Instance.Lost).
//
// Usage:
//
//	ospcluster -spawn 3 -n 100000            # embedded 3-node fleet
//	ospcluster -nodes http://a:8080,http://b:8080 -stream-nodes a:8081,b:8081
//	ospcluster -spawn 3 -kill 1 -kill-at 0.5 # failover demo mid-stream
//	ospcluster -spawn 3 -kill 1 -journal=false  # lossy failover, accounted
//	ospcluster -spawn 3 -kill 1 -spares 1 -auto-failover  # zero-operator recovery
//	ospcluster -spawn 2 -fanout=false        # pinned placement by ring
//	ospcluster -spawn 2 -log reg.jsonl -print-metrics
//
// With -auto-failover the health monitor probes every slot, declares the
// killed node dead, and replaces it from the -spares pool on its own —
// the ingest loop below never calls ReplaceNode; failed shares ride
// through the failover inside Ingest.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/osp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospcluster:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ospcluster", flag.ContinueOnError)
	var (
		spawn     = fs.Int("spawn", 3, "embedded fleet: number of in-process nodes (ignored with -nodes)")
		nodesFlag = fs.String("nodes", "", "external fleet: comma-separated node base URLs, in slot order")
		strmFlag  = fs.String("stream-nodes", "", "external fleet: comma-separated stream listener host:ports, parallel to -nodes (\"\" entries = HTTP-only node)")
		m         = fs.Int("m", 200, "uniform workload: number of sets")
		n         = fs.Int("n", 100000, "uniform workload: number of elements")
		load      = fs.Int("load", 8, "uniform workload: element load σ(u)")
		capacity  = fs.Int("cap", 2, "uniform workload: element capacity b(u)")
		seed      = fs.Int64("seed", 1, "workload seed and shared priority seed")
		batch     = fs.Int("batch", 1000, "elements per coordinator ingest batch")
		shards    = fs.Int("shards", 0, "engine shards PER NODE (0 = node default)")
		policy    = fs.String("policy", "", "admission policy: "+strings.Join(osp.PolicyNames(), ", ")+` ("" = `+osp.DefaultPolicy+")")
		fanOut    = fs.Bool("fanout", true, "split the element stream across all nodes by element hash (false pins the instance to one ring slot)")
		journal   = fs.Bool("journal", true, "retain acked shares so node failover is exact")
		logPath   = fs.String("log", "", "file-backed registration log (JSONL); empty keeps it in memory")
		kill      = fs.Int("kill", -1, "failover demo: kill the node at this slot mid-stream and replace it (embedded fleet only)")
		killAt    = fs.Float64("kill-at", 0.5, "failover demo: kill after this fraction of the element stream")
		spares    = fs.Int("spares", 0, "embedded fleet: spare nodes booted as the automatic-failover replacement pool")
		autoFail  = fs.Bool("auto-failover", false, "arm the health monitor: dead slots are replaced from the spare pool with zero operator involvement")
		healthIv  = fs.Duration("health-interval", 100*time.Millisecond, "health probe period (with -auto-failover)")
		zipf      = fs.Float64("zipf", 0, "Zipf exponent s for skewed set weights (0 = unit weights)")
		label     = fs.String("label", "cluster", "metrics label for the registered instance")
		verify    = fs.Bool("verify", true, "cross-check the merged drain against the policy's serial oracle")
		printMet  = fs.Bool("print-metrics", false, "dump the coordinator's Prometheus exposition after the drain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The health monitor's event hook logs from its own goroutine, so
	// every write to w goes through one lock.
	w = &lockedWriter{w: w}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}
	if *killAt < 0 || *killAt >= 1 {
		return fmt.Errorf("kill-at must be in [0,1), got %v", *killAt)
	}
	if *spares < 0 {
		return fmt.Errorf("spares must be >= 0, got %d", *spares)
	}
	if *spares > 0 && *nodesFlag != "" {
		return errors.New("-spares needs an embedded fleet (-spawn); spares are booted in-process")
	}
	if *autoFail && *kill >= 0 && *spares < 1 {
		return errors.New("-auto-failover with -kill needs at least one spare to fail over to")
	}
	var weightFn func(i int) float64
	if *zipf > 0 {
		weightFn = osp.ZipfWeights(*zipf, 10)
	} else if *zipf < 0 {
		return fmt.Errorf("zipf exponent must be >= 0, got %v", *zipf)
	}

	inst, err := osp.RandomInstance(osp.UniformConfig{
		M: *m, N: *n, Load: *load, Capacity: *capacity, WeightFn: weightFn,
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: %v\n", inst)

	// The fleet: embedded loopback nodes by default, external addresses
	// with -nodes. Slot order is the -nodes order — slot identity is what
	// ReplaceNode preserves.
	var (
		fleet    []cluster.Node
		locals   []*cluster.LocalNode
		embedded = ""
	)
	if *nodesFlag != "" {
		bases := strings.Split(*nodesFlag, ",")
		streams := make([]string, len(bases))
		if *strmFlag != "" {
			got := strings.Split(*strmFlag, ",")
			if len(got) != len(bases) {
				return fmt.Errorf("-stream-nodes lists %d addrs for %d nodes", len(got), len(bases))
			}
			streams = got
		}
		for i, b := range bases {
			fleet = append(fleet, cluster.Node{
				BaseURL:    strings.TrimSpace(b),
				StreamAddr: strings.TrimSpace(streams[i]),
			})
		}
		if *kill >= 0 {
			return errors.New("-kill needs an embedded fleet (-spawn); external nodes cannot be killed from here")
		}
	} else {
		if *spawn < 1 {
			return fmt.Errorf("spawn must be >= 1, got %d", *spawn)
		}
		for i := 0; i < *spawn; i++ {
			ln, err := cluster.StartLocalNode(osp.ServerConfig{})
			if err != nil {
				return err
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				ln.Shutdown(ctx) //nolint:errcheck
			}()
			locals = append(locals, ln)
			fleet = append(fleet, ln.Config())
		}
		embedded = " (embedded)"
	}
	if *kill >= len(fleet) {
		return fmt.Errorf("kill slot %d out of range for %d nodes", *kill, len(fleet))
	}

	// The spare pool: booted up front so a failover only swaps addresses,
	// never waits on process startup.
	var spareNodes []cluster.Node
	for i := 0; i < *spares; i++ {
		sp, err := cluster.StartLocalNode(osp.ServerConfig{})
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			sp.Shutdown(ctx) //nolint:errcheck
		}()
		spareNodes = append(spareNodes, sp.Config())
	}

	var lg *cluster.Log
	if *logPath != "" {
		if lg, err = cluster.OpenLog(*logPath); err != nil {
			return err
		}
	}
	co, err := cluster.New(cluster.Config{Nodes: fleet, Journal: *journal, Log: lg})
	if err != nil {
		return err
	}
	defer co.Close() //nolint:errcheck

	var mon *cluster.Monitor
	if *autoFail {
		mon = co.StartHealth(cluster.HealthConfig{
			Interval:      *healthIv,
			FailThreshold: 2,
			Spares:        spareNodes,
			AutoFailover:  true,
			OnEvent: func(ev cluster.HealthEvent) {
				switch {
				case ev.Failover && ev.Err == nil:
					fmt.Fprintf(w, "health:   slot %d auto-failover -> %s, registration replayed, retained shares resent\n",
						ev.Slot, ev.Node)
				case ev.Failover:
					fmt.Fprintf(w, "health:   slot %d auto-failover to %s FAILED: %v\n", ev.Slot, ev.Node, ev.Err)
				default:
					fmt.Fprintf(w, "health:   slot %d %s -> %s\n", ev.Slot, ev.From, ev.To)
				}
			},
		})
		defer mon.Stop()
		fmt.Fprintf(w, "health:   monitor armed, probe every %v, %d spare(s), auto-failover on\n",
			*healthIv, len(spareNodes))
	}

	ctx := context.Background()
	in, err := co.Register(ctx, cluster.Spec{
		Info: osp.InfoOf(inst), Seed: uint64(*seed), FanOut: *fanOut,
		Engine: osp.EngineConfig{Shards: *shards, Policy: *policy},
		Label:  *label,
	})
	if err != nil {
		return err
	}
	journalState := "on"
	if !*journal {
		journalState = "off"
	}
	fmt.Fprintf(w, "fleet:    %d nodes%s, journal %s, registration log %d entries\n",
		len(fleet), embedded, journalState, co.Log().Len())
	fmt.Fprintf(w, "instance: %s on slots %v, policy %s\n", in.ID(), in.Slots(), policyName(*policy))
	if *kill >= 0 && !slices.Contains(in.Slots(), *kill) {
		return fmt.Errorf("kill slot %d does not host instance %s (slots %v) — killing it would be inert",
			*kill, in.ID(), in.Slots())
	}

	// Ingest, with the optional mid-stream kill. The batch that fails
	// against the dead node is retained by the coordinator and resent
	// during ReplaceNode's replay — it is NOT re-ingested here (the
	// surviving nodes' shares of it were already acknowledged).
	killOff := -1
	if *kill >= 0 {
		killOff = int(*killAt*float64(len(inst.Elements))) / *batch * *batch
	}
	var admitted uint64
	count := func(i int, adm []osp.SetID) { admitted += uint64(len(adm)) }
	start := time.Now()
	batches, failedOver := 0, false
	for off := 0; off < len(inst.Elements); off += *batch {
		if off == killOff {
			locals[*kill].Kill()
			fmt.Fprintf(w, "kill:     slot %d down after %d elements\n", *kill, off)
		}
		els := inst.Elements[off:min(off+*batch, len(inst.Elements))]
		err := in.Ingest(ctx, els, count)
		if err == nil {
			batches++
			continue
		}
		var ne *cluster.NodeError
		if !failedOver && killOff >= 0 && !*autoFail && errors.As(err, &ne) && ne.Slot == *kill {
			repl, rerr := cluster.StartLocalNode(osp.ServerConfig{})
			if rerr != nil {
				return rerr
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				repl.Shutdown(ctx) //nolint:errcheck
			}()
			if rerr := co.ReplaceNode(ctx, *kill, repl.Config()); rerr != nil {
				return fmt.Errorf("replace node %d: %w", *kill, rerr)
			}
			failedOver = true
			fmt.Fprintf(w, "failover: slot %d replaced by %s — registration replayed, retained shares resent\n",
				*kill, repl.Config().BaseURL)
			continue
		}
		return fmt.Errorf("ingest batch at %d: %w", off, err)
	}
	elapsed := time.Since(start)
	if killOff >= 0 && *autoFail {
		// With the monitor armed, the failed ingest rode through the
		// automatic failover inside Ingest — no error ever surfaced here.
		// The success counter can lag the ride-through by one beat.
		for i := 0; mon.AutoFailovers() == 0 && i < 200; i++ {
			time.Sleep(10 * time.Millisecond)
		}
		if mon.AutoFailovers() == 0 {
			return errors.New("kill requested but the health monitor never failed over")
		}
		failedOver = true
	}
	if killOff >= 0 && !failedOver {
		return errors.New("kill requested but no ingest failed against the dead node")
	}

	res, err := in.Drain(ctx)
	if err != nil {
		return err
	}
	sustained := float64(len(inst.Elements)) / elapsed.Seconds()
	fmt.Fprintf(w, "cluster:  %d elements in %v (%.0f elements/sec over %d batches)\n",
		len(inst.Elements), elapsed.Round(time.Microsecond), sustained, batches)
	fmt.Fprintf(w, "goodput:  %d sets completed, weight %.1f of %.1f offered\n",
		len(res.Completed), res.Benefit, inst.TotalWeight())
	if in.Lost() > 0 {
		fmt.Fprintf(w, "lost:     %d elements acked by the dead node (journal off)\n", in.Lost())
	}

	// Without a failover every verdict callback fired exactly once, so
	// the drained assignment counters must equal the admitted total.
	// (Replayed shares are resent verdict-less, so the cross-check is
	// only exact on uninterrupted runs.)
	if !failedOver {
		var assigned uint64
		for _, cnt := range res.Assigned {
			assigned += uint64(cnt)
		}
		if assigned != admitted {
			return fmt.Errorf("verdicts admitted %d memberships but drained result assigns %d", admitted, assigned)
		}
	}

	if *verify {
		oracle := inst
		if in.Lost() > 0 {
			// Journal-off failover: the dead node's acked elements (its
			// share of everything before the kill) are gone. Decisions are
			// pure per element, so the oracle over the surviving
			// subsequence is exact ground truth — and the filter must
			// account for exactly Lost() elements.
			oracle = &osp.Instance{Weights: inst.Weights, Sizes: inst.Sizes}
			lost := uint64(0)
			for i, el := range inst.Elements {
				if i < killOff && in.Owner(el) == *kill {
					lost++
					continue
				}
				oracle.Elements = append(oracle.Elements, el)
			}
			if lost != in.Lost() {
				return fmt.Errorf("Lost() reports %d elements but the dead node's acked share is %d", in.Lost(), lost)
			}
		}
		alg, err := osp.NewPolicyAlgorithm(*policy, uint64(*seed))
		if err != nil {
			return err
		}
		serial, err := osp.Run(oracle, alg, nil)
		if err != nil {
			return err
		}
		if !res.Equal(serial) {
			return fmt.Errorf("policy %s: merged drain differs from its serial oracle (cluster %.3f, serial %.3f, seed %d)",
				policyName(*policy), res.Benefit, serial.Benefit, *seed)
		}
		scope := "serial"
		if in.Lost() > 0 {
			scope = fmt.Sprintf("surviving-subsequence (%d lost) serial", in.Lost())
		}
		fmt.Fprintf(w, "verify:   merged drain bit-for-bit identical to %s %s oracle (seed %d)\n",
			scope, policyName(*policy), *seed)
	}

	if *printMet {
		fmt.Fprintln(w, "--- metrics ---")
		co.WriteMetrics(w)
	}
	return nil
}

// lockedWriter serializes output: the health monitor's event hook
// writes from the monitor goroutine, concurrent with the main loop.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// policyName resolves the empty policy flag to the default's name.
func policyName(p string) string {
	if p == "" {
		return osp.DefaultPolicy
	}
	return p
}
