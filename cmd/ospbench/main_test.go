package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"X1", "X7", "X15"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "X7", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 3") {
		t.Errorf("X7 output missing title:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "NO") {
		t.Errorf("X7 has failed verdicts:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "X99"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestNoAction(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no flags should error")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}
