// Command ospbench regenerates the paper's results: it runs any (or all)
// of the experiments X1…X11 indexed in DESIGN.md and prints their tables.
//
// Usage:
//
//	ospbench -list
//	ospbench -exp X2 -seed 1 -trials 50
//	ospbench -all -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ospbench", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiments and exit")
		expID  = fs.String("exp", "", "experiment ID to run (e.g. X2)")
		all    = fs.Bool("all", false, "run every experiment")
		seed   = fs.Int64("seed", 1, "base random seed")
		trials = fs.Int("trials", 0, "Monte-Carlo repetitions per cell (0 = experiment default)")
		quick  = fs.Bool("quick", false, "shrink sweeps for a fast pass")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	switch {
	case *all:
		return experiments.RunAll(cfg, w)
	case *expID != "":
		e, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "=== %s: %s ===\nClaim: %s\n\n", e.ID, e.Title, e.Claim)
		return e.Run(cfg, w)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -exp <ID> or -all")
	}
}
