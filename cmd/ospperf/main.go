// Command ospperf measures the admission hot path and emits the tracked
// benchmark baseline (BENCH_2.json): ns/element and allocs/element for the
// top-k decide kernel (against the sort-based path it replaced), the
// serial runner, the streaming engine across a shard-count matrix, and —
// since the policy-layer refactor — every registered admission policy
// (ns/element, allocs/element, elements/sec, mean benefit on a fixed
// workload). The per-policy rows prove the Policy abstraction did not
// regress the randPr kernel against the pre-refactor BENCH_1.json.
//
// Usage:
//
//	ospperf                       # full matrix, writes BENCH_2.json
//	ospperf -quick -out /dev/null # CI smoke sizes
//	ospperf -failonalloc          # exit 1 on any allocs/element > 0
//
// The JSON is the regression contract: future PRs rerun ospperf and
// compare. CI runs the -quick -failonalloc mode on every push.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// Report is the schema of BENCH_2.json (a superset of BENCH_1.json's:
// the policies section is new).
type Report struct {
	Bench         string        `json:"bench"`
	GeneratedUnix int64         `json:"generated_unix"`
	GoVersion     string        `json:"go_version"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Quick         bool          `json:"quick"`
	Decide        DecideBench   `json:"decide"`
	Serial        SerialBench   `json:"serial"`
	Engine        []ShardBench  `json:"engine"`
	Policies      []PolicyBench `json:"policies"`
}

// DecideBench is the capacity<=8 selection microbenchmark: the new
// partial-selection kernel versus the sort-based path it replaced, on the
// same element sample.
type DecideBench struct {
	Elements           int     `json:"elements"`
	MeanLoad           float64 `json:"mean_load"`
	CapacityMax        int     `json:"capacity_max"`
	KernelNsPerElement float64 `json:"kernel_ns_per_element"`
	SortNsPerElement   float64 `json:"sort_ns_per_element"`
	Speedup            float64 `json:"speedup"`
	AllocsPerElement   float64 `json:"allocs_per_element"`
}

// SerialBench is the serial HashRandPr runner on the matrix workload.
type SerialBench struct {
	Elements     int     `json:"elements"`
	NsPerElement float64 `json:"ns_per_element"`
}

// ShardBench is one engine configuration on the matrix workload.
type ShardBench struct {
	Shards           int     `json:"shards"`
	Elements         int     `json:"elements"`
	NsPerElement     float64 `json:"ns_per_element"`
	ElementsPerSec   float64 `json:"elements_per_sec"`
	AllocsPerElement float64 `json:"allocs_per_element"`
}

// PolicyBench is one registered admission policy streamed through the
// engine on the matrix workload: end-to-end timing, the steady-state
// allocation probe, and the mean benefit over a handful of seeds of the
// policy's serial oracle (deterministic policies repeat one value).
type PolicyBench struct {
	Policy           string  `json:"policy"`
	Shards           int     `json:"shards"`
	Elements         int     `json:"elements"`
	NsPerElement     float64 `json:"ns_per_element"`
	ElementsPerSec   float64 `json:"elements_per_sec"`
	AllocsPerElement float64 `json:"allocs_per_element"`
	MeanBenefit      float64 `json:"mean_benefit"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospperf:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ospperf", flag.ContinueOnError)
	var (
		out         = fs.String("out", "BENCH_2.json", "output JSON path (- prints the JSON to stdout)")
		shardsFlag  = fs.String("shards", "1,2,4,8", "comma-separated shard counts for the engine matrix")
		quick       = fs.Bool("quick", false, "small sizes for a CI smoke pass")
		reps        = fs.Int("reps", 3, "timed repetitions per cell (best-of)")
		seed        = fs.Int64("seed", 1, "workload generation seed")
		failOnAlloc = fs.Bool("failonalloc", false, "exit nonzero if any steady-state allocs/element > 0")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardCounts, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}

	rep := Report{
		Bench:         "admission-hot-path",
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         *quick,
	}

	// Matrix workload: a long uniform element stream in the engine's
	// target shape — loads well above the link capacity so every decide
	// trims, capacity in the small-b(u) regime.
	m, n := 8192, 300_000
	if *quick {
		m, n = 1024, 20_000
	}
	rng := rand.New(rand.NewSource(*seed))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: m, N: n, Load: 12, MinLoad: 4, Capacity: 4,
	}, rng)
	if err != nil {
		return err
	}

	rep.Decide, err = benchDecide(*quick, *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "decide kernel: %.1f ns/element (sort path %.1f, speedup %.2fx, allocs %.3f)\n",
		rep.Decide.KernelNsPerElement, rep.Decide.SortNsPerElement, rep.Decide.Speedup, rep.Decide.AllocsPerElement)

	rep.Serial = benchSerial(inst, *reps, *seed)
	fmt.Fprintf(w, "serial runner: %.1f ns/element over %d elements\n", rep.Serial.NsPerElement, rep.Serial.Elements)

	for _, sc := range shardCounts {
		sb, err := benchEngine(inst, sc, *reps, *seed)
		if err != nil {
			return err
		}
		rep.Engine = append(rep.Engine, sb)
		fmt.Fprintf(w, "engine shards=%d: %.1f ns/element, %.0f elements/s, allocs/element %.3f\n",
			sb.Shards, sb.NsPerElement, sb.ElementsPerSec, sb.AllocsPerElement)
	}

	for _, name := range core.PolicyNames() {
		pb, err := benchPolicy(inst, name, *reps, *seed)
		if err != nil {
			return err
		}
		rep.Policies = append(rep.Policies, pb)
		fmt.Fprintf(w, "policy %s: %.1f ns/element, %.0f elements/s, allocs/element %.3f, mean benefit %.1f\n",
			pb.Policy, pb.NsPerElement, pb.ElementsPerSec, pb.AllocsPerElement, pb.MeanBenefit)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *out == "-" {
		fmt.Fprintf(w, "%s\n", buf)
	} else {
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}

	if *failOnAlloc {
		if rep.Decide.AllocsPerElement > 0 {
			return fmt.Errorf("decide kernel allocates %.3f/element, want 0", rep.Decide.AllocsPerElement)
		}
		for _, sb := range rep.Engine {
			if sb.AllocsPerElement > 0 {
				return fmt.Errorf("engine shards=%d allocates %.3f/element in steady state, want 0", sb.Shards, sb.AllocsPerElement)
			}
		}
		for _, pb := range rep.Policies {
			if pb.AllocsPerElement > 0 {
				return fmt.Errorf("policy %s allocates %.3f/element in steady state, want 0", pb.Policy, pb.AllocsPerElement)
			}
		}
	}
	return nil
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// benchDecide times the pure selection kernel on a sample of capacity<=8
// elements with loads exceeding capacity (so selection always trims), and
// the sort-based reference on the identical sample.
func benchDecide(quick bool, reps int, seed int64) (DecideBench, error) {
	const m = 4096
	n := 200_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(seed + 100))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: m, N: n, Load: 16, MinLoad: 6, Capacity: 4,
	}, rng)
	if err != nil {
		return DecideBench{}, err
	}
	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: uint64(seed)}, nil)
	elems := inst.Elements
	var totalLoad int
	for _, el := range elems {
		totalLoad += len(el.Members)
	}

	buf := make([]setsystem.SetID, 0, 64)
	kernelNs := timeBest(reps, func() {
		for _, el := range elems {
			buf = core.SelectTopPriority(el.Members, el.Capacity, prio, buf)
		}
	})
	sortNs := timeBest(reps, func() {
		for _, el := range elems {
			buf = core.SelectTopPrioritySort(el.Members, el.Capacity, prio, buf)
		}
	})

	allocs := allocsDuring(3, func() {
		for _, el := range elems {
			buf = core.SelectTopPriority(el.Members, el.Capacity, prio, buf)
		}
	})

	return DecideBench{
		Elements:           len(elems),
		MeanLoad:           float64(totalLoad) / float64(len(elems)),
		CapacityMax:        4,
		KernelNsPerElement: float64(kernelNs) / float64(len(elems)),
		SortNsPerElement:   float64(sortNs) / float64(len(elems)),
		Speedup:            float64(sortNs) / float64(kernelNs),
		AllocsPerElement:   float64(allocs) / float64(len(elems)),
	}, nil
}

// benchSerial times core.Run with HashRandPr — the single-threaded
// reference the engine matrix is compared against.
func benchSerial(inst *setsystem.Instance, reps int, seed int64) SerialBench {
	ns := timeBest(reps, func() {
		alg := &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(seed)}}
		if _, err := core.Run(inst, alg, nil); err != nil {
			panic(err)
		}
	})
	return SerialBench{
		Elements:     inst.NumElements(),
		NsPerElement: float64(ns) / float64(inst.NumElements()),
	}
}

// benchEngine times a full engine replay at the given shard count and
// measures steady-state ingestion allocations on a persistent engine.
func benchEngine(inst *setsystem.Instance, shards, reps int, seed int64) (ShardBench, error) {
	ns, allocs, err := benchEngineConfig(inst,
		engine.Config{Shards: shards, BatchSize: 128, QueueDepth: 8}, reps, seed)
	if err != nil {
		return ShardBench{}, err
	}
	n := inst.NumElements()
	return ShardBench{
		Shards:           shards,
		Elements:         n,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
	}, nil
}

// benchPolicy streams the matrix workload through the engine under one
// registered policy: replay timing, the steady-state allocation probe,
// and the mean serial-oracle benefit over a few seeds.
func benchPolicy(inst *setsystem.Instance, name string, reps int, seed int64) (PolicyBench, error) {
	const policyShards = 4
	cfg := engine.Config{Shards: policyShards, BatchSize: 128, QueueDepth: 8, Policy: name}
	ns, allocs, err := benchEngineConfig(inst, cfg, reps, seed)
	if err != nil {
		return PolicyBench{}, err
	}

	pol, err := core.LookupPolicy(name)
	if err != nil {
		return PolicyBench{}, err
	}
	const trials = 5
	var benefit float64
	for t := 0; t < trials; t++ {
		res, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: uint64(seed) + uint64(t)}, nil)
		if err != nil {
			return PolicyBench{}, err
		}
		benefit += res.Benefit
	}

	n := inst.NumElements()
	return PolicyBench{
		Policy:           name,
		Shards:           policyShards,
		Elements:         n,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
		MeanBenefit:      benefit / trials,
	}, nil
}

// benchEngineConfig is the shared measurement body: best-of replay wall
// time plus the steady-state allocation probe on a persistent engine.
func benchEngineConfig(inst *setsystem.Instance, cfg engine.Config, reps int, seed int64) (ns int64, allocs uint64, err error) {
	var replayErr error
	ns = timeBest(reps, func() {
		if replayErr != nil {
			return
		}
		if _, err := engine.Replay(inst, uint64(seed), cfg); err != nil {
			replayErr = err
		}
	})
	if replayErr != nil {
		return 0, 0, replayErr
	}

	// Steady-state allocation probe: warm a persistent engine past its
	// high-water mark, then count mallocs over a second full pass.
	e, err := engine.New(core.InfoOf(inst), uint64(seed), cfg)
	if err != nil {
		return 0, 0, err
	}
	submitAll := func() {
		for _, el := range inst.Elements {
			if err := e.Submit(el); err != nil {
				panic(err)
			}
		}
	}
	submitAll() // warm-up pass grows every buffer
	allocs = allocsDuring(5, submitAll)
	if _, err := e.Drain(); err != nil {
		return 0, 0, err
	}
	return ns, allocs, nil
}

// timeBest runs f reps times and returns the fastest wall time in
// nanoseconds — best-of filtering strips scheduler noise.
func timeBest(reps int, f func()) int64 {
	if reps < 1 {
		reps = 1
	}
	best := int64(-1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if d := time.Since(start).Nanoseconds(); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// allocsDuring returns the minimum number of heap allocations (across all
// goroutines) observed over passes runs of f. The minimum is the sound
// regression detector: stray runtime-internal allocations (GC work
// buffers, parked-goroutine bookkeeping) land in some passes but not all,
// while a genuine per-element allocation shows in every pass.
func allocsDuring(passes int, f func()) uint64 {
	var min uint64
	for p := 0; p < passes; p++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; p == 0 || d < min {
			min = d
		}
		if min == 0 {
			break
		}
	}
	return min
}
