// Command ospperf measures the admission hot path and emits the tracked
// benchmark baseline (BENCH_6.json): ns/element and allocs/element for the
// top-k decide kernel (against the sort-based path it replaced), the
// serial runner, the streaming engine across a shard-count matrix (plus
// an interface-dispatch row proving the VectorState fast path is ≥
// neutral), every registered admission policy on both the uniform and
// the skewed Zipf-weight workload, the service-level mode — the full
// networked ingest path over an embedded server: JSON over HTTP, the
// zero-allocation binary codec over HTTP, and the same binary frames
// pipelined over the raw-TCP stream transport, across a striped
// connection-count matrix (conns=1,2,4) plus a forced copying-decode
// row that quantifies the server's zero-copy frame→batch ingest — and
// the cluster scaling rows: the same workload fanned across N
// coordinator-fronted nodes by element hash and merged on drain.
//
// Usage:
//
//	ospperf                       # full matrix, writes BENCH_6.json
//	ospperf -quick -out /dev/null # CI smoke sizes
//	ospperf -failonalloc          # exit 1 on any allocs/element > 0
//	ospperf -compare BENCH_5.json BENCH_6.json
//	                              # per-row ns/element deltas; exit 1 when
//	                              # any shared row regresses past -regress
//
// The JSON is the regression contract: future PRs rerun ospperf and
// diff against the committed baseline with -compare (engine rows must
// stay within noise; the binary and stream service rows anchor the
// wire-path win; the cluster and conns>1 rows anchor scaling,
// meaningful only on multi-core runners). CI runs the -quick
// -failonalloc mode on every push, uploads the artifact, and compares
// it against the committed baseline — informational on single-vCPU
// runners, enforced where parallelism is real.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hashpr"
	"repro/internal/obs"
	"repro/internal/setsystem"
	"repro/internal/workload"
	"repro/osp"
	"repro/osp/client"
)

// Report is the schema of BENCH_6.json (a superset of BENCH_5.json's:
// the stream service row becomes a striped-connection matrix with an
// explicit decode column).
type Report struct {
	Bench         string       `json:"bench"`
	GeneratedUnix int64        `json:"generated_unix"`
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Quick         bool         `json:"quick"`
	Decide        DecideBench  `json:"decide"`
	Serial        SerialBench  `json:"serial"`
	Engine        []ShardBench `json:"engine"`
	// EngineInterface re-runs the shards=4 engine row with the policy
	// state hidden behind an opaque wrapper, forcing interface dispatch
	// in the shard loop — the "before" of the VectorState fast-path
	// comparison (the engine rows above are the "after").
	EngineInterface ShardBench `json:"engine_interface"`
	// EngineTelemetry re-runs the shards=4 engine row with full
	// observability attached — sampled decision log (hot drainer, nil
	// sink) plus queue-wait and decide histograms — proving telemetry
	// keeps the hot path at 0 allocs/element. Included in -failonalloc.
	EngineTelemetry ShardBench    `json:"engine_telemetry"`
	Policies        []PolicyBench `json:"policies"`
	// Service is the end-to-end networked ingest path (embedded HTTP
	// server, real client, loopback TCP), one row per wire codec.
	Service []ServiceBench `json:"service"`
	// Cluster is the horizontal-scaling matrix: the same workload fanned
	// across N coordinator-fronted nodes by element hash, one row per
	// fleet size. Nodes=1 is the cluster-overhead baseline the speedup
	// column is relative to.
	Cluster []ClusterBench `json:"cluster"`
}

// DecideBench is the capacity<=8 selection microbenchmark: the new
// partial-selection kernel versus the sort-based path it replaced, on the
// same element sample.
type DecideBench struct {
	Elements           int     `json:"elements"`
	MeanLoad           float64 `json:"mean_load"`
	CapacityMax        int     `json:"capacity_max"`
	KernelNsPerElement float64 `json:"kernel_ns_per_element"`
	SortNsPerElement   float64 `json:"sort_ns_per_element"`
	Speedup            float64 `json:"speedup"`
	AllocsPerElement   float64 `json:"allocs_per_element"`
}

// SerialBench is the serial HashRandPr runner on the matrix workload.
type SerialBench struct {
	Elements     int     `json:"elements"`
	NsPerElement float64 `json:"ns_per_element"`
}

// ShardBench is one engine configuration on the matrix workload.
type ShardBench struct {
	Shards           int     `json:"shards"`
	Elements         int     `json:"elements"`
	NsPerElement     float64 `json:"ns_per_element"`
	ElementsPerSec   float64 `json:"elements_per_sec"`
	AllocsPerElement float64 `json:"allocs_per_element"`
}

// PolicyBench is one registered admission policy streamed through the
// engine on one workload: end-to-end timing, the steady-state
// allocation probe, and the mean benefit over a handful of seeds of the
// policy's serial oracle (deterministic policies repeat one value).
// Workload "uniform" is the unit-weight matrix workload; "zipf" is the
// skewed-weight scenario (w(S_i) ∝ 1/(i+1)^1.2) where randpr-weighted
// actually diverges from randpr — on unit weights the two decide
// identically, so only the zipf rows distinguish them.
type PolicyBench struct {
	Policy           string  `json:"policy"`
	Workload         string  `json:"workload"`
	Shards           int     `json:"shards"`
	Elements         int     `json:"elements"`
	NsPerElement     float64 `json:"ns_per_element"`
	ElementsPerSec   float64 `json:"elements_per_sec"`
	AllocsPerElement float64 `json:"allocs_per_element"`
	MeanBenefit      float64 `json:"mean_benefit"`
}

// ServiceBench is the networked ingest path under one wire codec and
// transport: the matrix workload streamed through a real server on
// loopback sockets via osp/client, timed end to end (register, batched
// ingest with verdicts, drain). Transport "http" is one keep-alive
// request per batch; "stream" is pipelined batch frames over one
// long-lived TCP connection. AllocsPerElement is process-wide — client
// encode + server decode + verdict paths together — so it bounds the
// serve-side number from above; the serve package's alloc-regression
// tests pin the decode paths themselves at 0. SpeedupVsJSON is filled
// on non-JSON rows; SpeedupVsBinary compares the stream row against the
// binary-HTTP row — the same codec, so it isolates the transport win.
// Stream rows carry two extra columns: Conns is the striped
// TCP-connection count (client.WithStreamConns; 0 or 1 is the single
// connection), and Decode distinguishes the server's default zero-copy
// frame→batch ingest ("zero-copy") from the forced copying decoder
// ("copy", ospserve -stream-copy-decode) — the pair isolates the
// in-place aliasing win at identical wire traffic.
type ServiceBench struct {
	Codec            string  `json:"codec"`
	Transport        string  `json:"transport"`
	Conns            int     `json:"conns,omitempty"`
	Decode           string  `json:"decode,omitempty"`
	Elements         int     `json:"elements"`
	Batch            int     `json:"batch"`
	NsPerElement     float64 `json:"ns_per_element"`
	ElementsPerSec   float64 `json:"elements_per_sec"`
	AllocsPerElement float64 `json:"allocs_per_element"`
	SpeedupVsJSON    float64 `json:"speedup_vs_json,omitempty"`
	SpeedupVsBinary  float64 `json:"speedup_vs_binary,omitempty"`
}

// ClusterBench is one fleet size of the cluster scaling matrix: the
// matrix workload streamed through a coordinator that scatters each
// batch across N embedded nodes by element hash (stream transport per
// node) and merges the per-node drains. SpeedupVsSingle compares
// against the nodes=1 row — the coordinator overhead included on both
// sides, so it isolates the horizontal win. On a single-core runner the
// fan-out cannot beat one node; CI gates the 2-node floor only on
// multi-core runners.
type ClusterBench struct {
	Nodes           int     `json:"nodes"`
	Elements        int     `json:"elements"`
	Batch           int     `json:"batch"`
	NsPerElement    float64 `json:"ns_per_element"`
	ElementsPerSec  float64 `json:"elements_per_sec"`
	SpeedupVsSingle float64 `json:"speedup_vs_single,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospperf:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ospperf", flag.ContinueOnError)
	var (
		out         = fs.String("out", "BENCH_6.json", "output JSON path (- prints the JSON to stdout)")
		shardsFlag  = fs.String("shards", "1,2,4,8", "comma-separated shard counts for the engine matrix")
		quick       = fs.Bool("quick", false, "small sizes for a CI smoke pass")
		reps        = fs.Int("reps", 3, "timed repetitions per cell (best-of)")
		seed        = fs.Int64("seed", 1, "workload generation seed")
		failOnAlloc = fs.Bool("failonalloc", false, "exit nonzero if any steady-state allocs/element > 0 (service rows excluded: they include client-side JSON marshal)")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		compare     = fs.Bool("compare", false, "compare mode: ospperf -compare OLD.json NEW.json prints per-row ns/element deltas and exits nonzero on regressions past -regress")
		regress     = fs.Float64("regress", 0.25, "compare mode: fail when a shared row's ns/element grows by more than this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare wants exactly two report paths (old new), got %d args", fs.NArg())
		}
		return compareReports(fs.Arg(0), fs.Arg(1), *regress, w)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	shardCounts, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}

	rep := Report{
		Bench:         "admission-hot-path",
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         *quick,
	}

	// Matrix workload: a long uniform element stream in the engine's
	// target shape — loads well above the link capacity so every decide
	// trims, capacity in the small-b(u) regime.
	m, n := 8192, 300_000
	if *quick {
		m, n = 1024, 20_000
	}
	rng := rand.New(rand.NewSource(*seed))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: m, N: n, Load: 12, MinLoad: 4, Capacity: 4,
	}, rng)
	if err != nil {
		return err
	}
	// Skewed-weight companion workload: same shape, Zipf(1.2) weights.
	// Unit weights make randpr-weighted decide identically to randpr
	// (scaling priorities by a constant preserves order), so only this
	// workload separates the weighted variant's policy rows.
	zipfInst, err := workload.Uniform(workload.UniformConfig{
		M: m, N: n, Load: 12, MinLoad: 4, Capacity: 4,
		WeightFn: workload.ZipfWeights(1.2, 10),
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	rep.Decide, err = benchDecide(*quick, *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "decide kernel: %.1f ns/element (sort path %.1f, speedup %.2fx, allocs %.3f)\n",
		rep.Decide.KernelNsPerElement, rep.Decide.SortNsPerElement, rep.Decide.Speedup, rep.Decide.AllocsPerElement)

	rep.Serial = benchSerial(inst, *reps, *seed)
	fmt.Fprintf(w, "serial runner: %.1f ns/element over %d elements\n", rep.Serial.NsPerElement, rep.Serial.Elements)

	for _, sc := range shardCounts {
		sb, err := benchEngine(inst, sc, *reps, *seed)
		if err != nil {
			return err
		}
		rep.Engine = append(rep.Engine, sb)
		fmt.Fprintf(w, "engine shards=%d: %.1f ns/element, %.0f elements/s, allocs/element %.3f\n",
			sb.Shards, sb.NsPerElement, sb.ElementsPerSec, sb.AllocsPerElement)
	}

	rep.EngineInterface, err = benchEngineInterface(inst, *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "engine shards=%d (interface dispatch): %.1f ns/element, %.0f elements/s, allocs/element %.3f\n",
		rep.EngineInterface.Shards, rep.EngineInterface.NsPerElement,
		rep.EngineInterface.ElementsPerSec, rep.EngineInterface.AllocsPerElement)

	rep.EngineTelemetry, err = benchEngineTelemetry(inst, *reps, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "engine shards=%d (telemetry on): %.1f ns/element, %.0f elements/s, allocs/element %.3f\n",
		rep.EngineTelemetry.Shards, rep.EngineTelemetry.NsPerElement,
		rep.EngineTelemetry.ElementsPerSec, rep.EngineTelemetry.AllocsPerElement)

	for _, wl := range []struct {
		name string
		inst *setsystem.Instance
	}{{"uniform", inst}, {"zipf", zipfInst}} {
		for _, name := range core.PolicyNames() {
			pb, err := benchPolicy(wl.inst, wl.name, name, *reps, *seed)
			if err != nil {
				return err
			}
			rep.Policies = append(rep.Policies, pb)
			fmt.Fprintf(w, "policy %s (%s): %.1f ns/element, %.0f elements/s, allocs/element %.3f, mean benefit %.1f\n",
				pb.Policy, pb.Workload, pb.NsPerElement, pb.ElementsPerSec, pb.AllocsPerElement, pb.MeanBenefit)
		}
	}

	svcBatch := 4096
	if *quick {
		svcBatch = 1024
	}
	var jsonRate, binRate float64
	for _, codec := range []client.Codec{client.CodecJSON, client.CodecBinary} {
		sb, err := benchService(inst, codec, svcBatch, *reps, *seed)
		if err != nil {
			return err
		}
		if codec == client.CodecJSON {
			jsonRate = sb.ElementsPerSec
		} else {
			binRate = sb.ElementsPerSec
			if jsonRate > 0 {
				sb.SpeedupVsJSON = sb.ElementsPerSec / jsonRate
			}
		}
		rep.Service = append(rep.Service, sb)
		printService(w, sb)
	}
	// Stream matrix: the striped connection counts, then the forced
	// copying decoder at conns=1 — same wire traffic as the first row,
	// so the pair isolates the server's zero-copy ingest win. On a
	// single-core runner conns>1 cannot beat conns=1; CI gates the
	// striping floor only on multi-core runners.
	for _, conns := range []int{1, 2, 4} {
		sb, err := benchServiceStream(inst, svcBatch, *reps, *seed, conns, false)
		if err != nil {
			return err
		}
		if jsonRate > 0 {
			sb.SpeedupVsJSON = sb.ElementsPerSec / jsonRate
		}
		if binRate > 0 {
			sb.SpeedupVsBinary = sb.ElementsPerSec / binRate
		}
		rep.Service = append(rep.Service, sb)
		printService(w, sb)
	}
	sb, err := benchServiceStream(inst, svcBatch, *reps, *seed, 1, true)
	if err != nil {
		return err
	}
	if jsonRate > 0 {
		sb.SpeedupVsJSON = sb.ElementsPerSec / jsonRate
	}
	if binRate > 0 {
		sb.SpeedupVsBinary = sb.ElementsPerSec / binRate
	}
	rep.Service = append(rep.Service, sb)
	printService(w, sb)

	clusterSizes := []int{1, 2}
	if !*quick {
		clusterSizes = append(clusterSizes, 4)
	}
	var singleRate float64
	for _, nodes := range clusterSizes {
		cb, err := benchCluster(inst, nodes, svcBatch, *reps, *seed)
		if err != nil {
			return err
		}
		if nodes == 1 {
			singleRate = cb.ElementsPerSec
		} else if singleRate > 0 {
			cb.SpeedupVsSingle = cb.ElementsPerSec / singleRate
		}
		rep.Cluster = append(rep.Cluster, cb)
		fmt.Fprintf(w, "cluster nodes=%d: %.1f ns/element, %.0f elements/s", cb.Nodes, cb.NsPerElement, cb.ElementsPerSec)
		if cb.SpeedupVsSingle > 0 {
			fmt.Fprintf(w, ", %.2fx single-node", cb.SpeedupVsSingle)
		}
		fmt.Fprintln(w)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *out == "-" {
		fmt.Fprintf(w, "%s\n", buf)
	} else {
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *out)
	}

	if *failOnAlloc {
		if rep.Decide.AllocsPerElement > 0 {
			return fmt.Errorf("decide kernel allocates %.3f/element, want 0", rep.Decide.AllocsPerElement)
		}
		for _, sb := range append(append([]ShardBench(nil), rep.Engine...), rep.EngineInterface, rep.EngineTelemetry) {
			if sb.AllocsPerElement > 0 {
				return fmt.Errorf("engine shards=%d allocates %.3f/element in steady state, want 0", sb.Shards, sb.AllocsPerElement)
			}
		}
		for _, pb := range rep.Policies {
			if pb.AllocsPerElement > 0 {
				return fmt.Errorf("policy %s (%s) allocates %.3f/element in steady state, want 0", pb.Policy, pb.Workload, pb.AllocsPerElement)
			}
		}
		// Service rows are measured process-wide (client marshal included),
		// so the JSON row legitimately allocates; the serve-side decode
		// path's 0 allocs/element is enforced by the alloc-regression tests
		// in internal/serve instead. Still guard the binary row against
		// gross per-element regressions, and hold the stream row — whose
		// client and server sides both run on pooled buffers — near zero.
		for _, sb := range rep.Service {
			if sb.Codec == "binary" && sb.Transport == "http" && sb.AllocsPerElement > 1 {
				return fmt.Errorf("binary service path allocates %.3f/element process-wide, want <= 1", sb.AllocsPerElement)
			}
			if sb.Transport == "stream" && sb.AllocsPerElement > 0.1 {
				return fmt.Errorf("stream service path allocates %.3f/element process-wide, want <= 0.1", sb.AllocsPerElement)
			}
		}
	}
	return nil
}

// printService renders one service row on the progress log.
func printService(w io.Writer, sb ServiceBench) {
	extra := ""
	if sb.Conns > 0 {
		extra = fmt.Sprintf(" conns=%d", sb.Conns)
	}
	if sb.Decode != "" {
		extra += " decode=" + sb.Decode
	}
	fmt.Fprintf(w, "service codec=%s transport=%s%s: %.1f ns/element, %.0f elements/s, allocs/element %.3f",
		sb.Codec, sb.Transport, extra, sb.NsPerElement, sb.ElementsPerSec, sb.AllocsPerElement)
	if sb.SpeedupVsJSON > 0 {
		fmt.Fprintf(w, ", %.2fx JSON", sb.SpeedupVsJSON)
	}
	if sb.SpeedupVsBinary > 0 {
		fmt.Fprintf(w, ", %.2fx binary-HTTP", sb.SpeedupVsBinary)
	}
	fmt.Fprintln(w)
}

// compareRow is one comparable cell of a report: a stable key and the
// row's ns/element. Keys are chosen so the same measurement matches
// across schema generations — BENCH_5's single stream row carried no
// conns/decode columns and keys identically to the conns=1 zero-copy
// row it became.
type compareRow struct {
	key string
	ns  float64
}

// reportRows flattens a report into keyed ns/element rows, in display
// order.
func reportRows(rep Report) []compareRow {
	rows := []compareRow{
		{"decide/kernel", rep.Decide.KernelNsPerElement},
		{"serial", rep.Serial.NsPerElement},
	}
	for _, sb := range rep.Engine {
		rows = append(rows, compareRow{fmt.Sprintf("engine/shards=%d", sb.Shards), sb.NsPerElement})
	}
	if rep.EngineInterface.Elements > 0 {
		rows = append(rows, compareRow{"engine/interface", rep.EngineInterface.NsPerElement})
	}
	if rep.EngineTelemetry.Elements > 0 {
		rows = append(rows, compareRow{"engine/telemetry", rep.EngineTelemetry.NsPerElement})
	}
	for _, pb := range rep.Policies {
		rows = append(rows, compareRow{fmt.Sprintf("policy/%s/%s", pb.Policy, pb.Workload), pb.NsPerElement})
	}
	for _, sb := range rep.Service {
		key := fmt.Sprintf("service/%s/%s", sb.Codec, sb.Transport)
		if sb.Conns > 1 {
			key += fmt.Sprintf("/conns=%d", sb.Conns)
		}
		if sb.Decode == "copy" {
			key += "/copy-decode"
		}
		rows = append(rows, compareRow{key, sb.NsPerElement})
	}
	for _, cb := range rep.Cluster {
		rows = append(rows, compareRow{fmt.Sprintf("cluster/nodes=%d", cb.Nodes), cb.NsPerElement})
	}
	return rows
}

func readReport(path string) (Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compareReports is the -compare arm: per-row ns/element deltas between
// two report files, new rows and vanished rows called out, and a
// nonzero exit when any row shared by both reports slows down by more
// than threshold (a fraction: 0.25 = 25%). Speedups and new rows never
// fail — the gate is one-sided, a regression detector, not a diff.
func compareReports(oldPath, newPath string, threshold float64, w io.Writer) error {
	if threshold < 0 {
		return fmt.Errorf("regress threshold must be >= 0, got %v", threshold)
	}
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "comparing %s (%s) -> %s (%s), regression threshold %.0f%%\n",
		oldPath, oldRep.Bench, newPath, newRep.Bench, threshold*100)
	if oldRep.Quick != newRep.Quick || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Fprintf(w, "note: configurations differ (quick %v -> %v, GOMAXPROCS %d -> %d); deltas are indicative only\n",
			oldRep.Quick, newRep.Quick, oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}

	oldRows := reportRows(oldRep)
	oldNs := make(map[string]float64, len(oldRows))
	for _, r := range oldRows {
		oldNs[r.key] = r.ns
	}
	newKeys := make(map[string]bool)
	var regressions []string
	for _, r := range reportRows(newRep) {
		newKeys[r.key] = true
		old, ok := oldNs[r.key]
		if !ok {
			fmt.Fprintf(w, "%-40s %31s %10.1f ns/el\n", r.key, "(new row)", r.ns)
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = (r.ns - old) / old
		}
		mark := ""
		if old > 0 && r.ns > old*(1+threshold) {
			mark = "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f ns/el (%+.1f%%)", r.key, old, r.ns, delta*100))
		}
		fmt.Fprintf(w, "%-40s %10.1f -> %10.1f ns/el  %+6.1f%%%s\n", r.key, old, r.ns, delta*100, mark)
	}
	for _, r := range oldRows {
		if !newKeys[r.key] {
			fmt.Fprintf(w, "%-40s %31s\n", r.key, "(row absent from new report)")
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d row(s) regressed past %.0f%%:\n  %s",
			len(regressions), threshold*100, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "no row regressed past %.0f%%\n", threshold*100)
	return nil
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// benchDecide times the pure selection kernel on a sample of capacity<=8
// elements with loads exceeding capacity (so selection always trims), and
// the sort-based reference on the identical sample.
func benchDecide(quick bool, reps int, seed int64) (DecideBench, error) {
	const m = 4096
	n := 200_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(seed + 100))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: m, N: n, Load: 16, MinLoad: 6, Capacity: 4,
	}, rng)
	if err != nil {
		return DecideBench{}, err
	}
	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: uint64(seed)}, nil)
	elems := inst.Elements
	var totalLoad int
	for _, el := range elems {
		totalLoad += len(el.Members)
	}

	buf := make([]setsystem.SetID, 0, 64)
	kernelNs := timeBest(reps, func() {
		for _, el := range elems {
			buf = core.SelectTopPriority(el.Members, el.Capacity, prio, buf)
		}
	})
	sortNs := timeBest(reps, func() {
		for _, el := range elems {
			buf = core.SelectTopPrioritySort(el.Members, el.Capacity, prio, buf)
		}
	})

	allocs := allocsDuring(3, func() {
		for _, el := range elems {
			buf = core.SelectTopPriority(el.Members, el.Capacity, prio, buf)
		}
	})

	return DecideBench{
		Elements:           len(elems),
		MeanLoad:           float64(totalLoad) / float64(len(elems)),
		CapacityMax:        4,
		KernelNsPerElement: float64(kernelNs) / float64(len(elems)),
		SortNsPerElement:   float64(sortNs) / float64(len(elems)),
		Speedup:            float64(sortNs) / float64(kernelNs),
		AllocsPerElement:   float64(allocs) / float64(len(elems)),
	}, nil
}

// benchSerial times core.Run with HashRandPr — the single-threaded
// reference the engine matrix is compared against.
func benchSerial(inst *setsystem.Instance, reps int, seed int64) SerialBench {
	ns := timeBest(reps, func() {
		alg := &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(seed)}}
		if _, err := core.Run(inst, alg, nil); err != nil {
			panic(err)
		}
	})
	return SerialBench{
		Elements:     inst.NumElements(),
		NsPerElement: float64(ns) / float64(inst.NumElements()),
	}
}

// benchEngine times a full engine replay at the given shard count and
// measures steady-state ingestion allocations on a persistent engine.
func benchEngine(inst *setsystem.Instance, shards, reps int, seed int64) (ShardBench, error) {
	ns, allocs, err := benchEngineConfig(inst,
		engine.Config{Shards: shards, BatchSize: 128, QueueDepth: 8}, nil, reps, seed)
	if err != nil {
		return ShardBench{}, err
	}
	n := inst.NumElements()
	return ShardBench{
		Shards:           shards,
		Elements:         n,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
	}, nil
}

// benchPolicy streams one workload through the engine under one
// registered policy: replay timing, the steady-state allocation probe,
// and the mean serial-oracle benefit over a few seeds.
func benchPolicy(inst *setsystem.Instance, workloadName, name string, reps int, seed int64) (PolicyBench, error) {
	const policyShards = 4
	cfg := engine.Config{Shards: policyShards, BatchSize: 128, QueueDepth: 8, Policy: name}
	ns, allocs, err := benchEngineConfig(inst, cfg, nil, reps, seed)
	if err != nil {
		return PolicyBench{}, err
	}

	pol, err := core.LookupPolicy(name)
	if err != nil {
		return PolicyBench{}, err
	}
	const trials = 5
	var benefit float64
	for t := 0; t < trials; t++ {
		res, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: uint64(seed) + uint64(t)}, nil)
		if err != nil {
			return PolicyBench{}, err
		}
		benefit += res.Benefit
	}

	n := inst.NumElements()
	return PolicyBench{
		Policy:           name,
		Workload:         workloadName,
		Shards:           policyShards,
		Elements:         n,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
		MeanBenefit:      benefit / trials,
	}, nil
}

// opaquePolicy hides the wrapped policy's state behind a wrapper type,
// defeating the engine's *core.VectorState type switch — the shard loop
// then dispatches every decision through the PolicyState interface,
// which is exactly the pre-fast-path configuration (plus one forwarding
// call, so the row slightly OVERSTATES the interface path's cost; the
// fast path only has to be ≥ this to be ≥ neutral).
type opaquePolicy struct{ inner core.Policy }

func (p opaquePolicy) Name() string { return p.inner.Name() + "-opaque" }

func (p opaquePolicy) Setup(info core.Info, seed uint64) (core.PolicyState, error) {
	st, err := p.inner.Setup(info, seed)
	if err != nil {
		return nil, err
	}
	return opaqueState{st}, nil
}

type opaqueState struct{ inner core.PolicyState }

func (s opaqueState) DecideInPlace(members []setsystem.SetID, capacity int) []setsystem.SetID {
	return s.inner.DecideInPlace(members, capacity)
}

func (s opaqueState) Decide(members []setsystem.SetID, capacity int, buf []setsystem.SetID) []setsystem.SetID {
	return s.inner.Decide(members, capacity, buf)
}

// benchEngineInterface is the devirtualization "before" row: the
// default policy forced through interface dispatch at the same shape as
// the shards=4 engine row.
func benchEngineInterface(inst *setsystem.Instance, reps int, seed int64) (ShardBench, error) {
	const shards = 4
	pol, err := core.LookupPolicy(core.DefaultPolicy)
	if err != nil {
		return ShardBench{}, err
	}
	ns, allocs, err := benchEngineConfig(inst,
		engine.Config{Shards: shards, BatchSize: 128, QueueDepth: 8}, opaquePolicy{pol}, reps, seed)
	if err != nil {
		return ShardBench{}, err
	}
	n := inst.NumElements()
	return ShardBench{
		Shards:           shards,
		Elements:         n,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
	}, nil
}

// benchEngineTelemetry is the telemetry-enabled engine row: the shards=4
// configuration with a sampled decision log (drainer flushing every
// millisecond into a discarding log) and queue-wait/decide histograms
// attached — the exact instrumentation ospserve wires up. Its
// allocs/element must stay 0: sampling copies members into a
// preallocated shard scratch buffer and records into preallocated
// rings, so telemetry never touches the allocator on the hot path
// (DESIGN.md §13).
func benchEngineTelemetry(inst *setsystem.Instance, reps int, seed int64) (ShardBench, error) {
	const shards = 4
	dlog := obs.NewDecisionLog(obs.DecisionLogConfig{
		SampleEvery: 64, RingSize: 1024, FlushEvery: time.Millisecond,
	})
	defer dlog.Close()
	pol, err := core.LookupPolicy(core.DefaultPolicy)
	if err != nil {
		return ShardBench{}, err
	}
	var qwait, decide obs.Histogram
	cfg := engine.Config{
		Shards: shards, BatchSize: 128, QueueDepth: 8,
		Telemetry: &obs.EngineTelemetry{
			Decisions: dlog.Logger("bench", pol.Name(), shards),
			QueueWait: &qwait,
			Decide:    &decide,
		},
	}
	ns, allocs, err := benchEngineConfig(inst, cfg, pol, reps, seed)
	if err != nil {
		return ShardBench{}, err
	}
	n := inst.NumElements()
	return ShardBench{
		Shards:           shards,
		Elements:         n,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
	}, nil
}

// benchEngineConfig is the shared measurement body: best-of replay wall
// time plus the steady-state allocation probe on a persistent engine.
// A non-nil pol overrides cfg.Policy (the interface-dispatch row).
func benchEngineConfig(inst *setsystem.Instance, cfg engine.Config, pol core.Policy, reps int, seed int64) (ns int64, allocs uint64, err error) {
	if pol == nil {
		if pol, err = core.LookupPolicy(cfg.Policy); err != nil {
			return 0, 0, err
		}
	}
	var replayErr error
	ns = timeBest(reps, func() {
		if replayErr != nil {
			return
		}
		if _, err := engine.ReplayWithPolicy(inst, pol, uint64(seed), cfg); err != nil {
			replayErr = err
		}
	})
	if replayErr != nil {
		return 0, 0, replayErr
	}

	// Steady-state allocation probe: warm a persistent engine past its
	// high-water mark, then count mallocs over a second full pass.
	e, err := engine.NewWithPolicy(core.InfoOf(inst), pol, uint64(seed), cfg)
	if err != nil {
		return 0, 0, err
	}
	submitAll := func() {
		for _, el := range inst.Elements {
			if err := e.Submit(el); err != nil {
				panic(err)
			}
		}
	}
	submitAll() // warm-up pass grows every buffer
	allocs = allocsDuring(5, submitAll)
	if _, err := e.Drain(); err != nil {
		return 0, 0, err
	}
	return ns, allocs, nil
}

// benchService measures the full networked ingest path: an embedded
// admission server on a loopback listener, the real osp/client driving
// one codec, the matrix workload streamed in fixed batches. Each timed
// pass registers a fresh instance, ingests everything, drains and
// removes it; the drained result of the first pass is verified
// bit-for-bit against the serial randpr oracle.
func benchService(inst *setsystem.Instance, codec client.Codec, batch, reps int, seed int64) (ServiceBench, error) {
	srv := osp.NewServer(osp.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServiceBench{}, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)  //nolint:errcheck
		srv.Shutdown(ctx) //nolint:errcheck
	}()

	// Pin the HTTP client's connection reuse so the rows are comparable
	// run to run and against the stream transport: one warm keep-alive
	// connection, no compression — the best case HTTP can put up.
	c, err := client.New("http://"+ln.Addr().String(), client.WithCodec(codec),
		client.WithHTTPClient(&http.Client{Transport: &http.Transport{
			MaxIdleConns:        4,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
			DisableCompression:  true,
		}}))
	if err != nil {
		return ServiceBench{}, err
	}
	ctx := context.Background()
	pass := func() (*core.Result, error) {
		h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: uint64(seed)})
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(inst.Elements); off += batch {
			end := min(off+batch, len(inst.Elements))
			if _, err := h.Ingest(ctx, inst.Elements[off:end]); err != nil {
				return nil, err
			}
		}
		res, err := h.Drain(ctx)
		if err != nil {
			return nil, err
		}
		return res, h.Remove(ctx)
	}

	// Correctness first: one verified pass before any timing.
	res, err := pass()
	if err != nil {
		return ServiceBench{}, err
	}
	serial, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(seed)}}, nil)
	if err != nil {
		return ServiceBench{}, err
	}
	if !res.Equal(serial) {
		return ServiceBench{}, fmt.Errorf("service codec=%s: drained result differs from the serial oracle", codec)
	}

	var passErr error
	ns := timeBest(reps, func() {
		if passErr != nil {
			return
		}
		_, passErr = pass()
	})
	if passErr != nil {
		return ServiceBench{}, passErr
	}
	allocs := allocsDuring(2, func() {
		if passErr == nil {
			_, passErr = pass()
		}
	})
	if passErr != nil {
		return ServiceBench{}, passErr
	}

	n := inst.NumElements()
	return ServiceBench{
		Codec:            codec.String(),
		Transport:        "http",
		Elements:         n,
		Batch:            batch,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
	}, nil
}

// benchServiceStream measures one stream-transport row: the same
// embedded server and workload as benchService, but batches go out as
// pipelined frames over conns long-lived striped TCP connections
// (depth 8 in flight overall) and verdicts come back as in-order frames
// decoded in place — no request envelope, no response materialization.
// copyDecode forces the server's copying frame decoder (the "before" of
// the zero-copy comparison; the default server path aliases each frame's
// payload in place). Registration and drain stay on the HTTP API,
// outside the timed ingest loop's hot path but inside the pass (same as
// the HTTP rows, so the comparison is like for like).
func benchServiceStream(inst *setsystem.Instance, batch, reps int, seed int64, conns int, copyDecode bool) (ServiceBench, error) {
	srv := osp.NewServer(osp.ServerConfig{StreamCopyDecode: copyDecode})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServiceBench{}, err
	}
	sln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return ServiceBench{}, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)         //nolint:errcheck // closed below
	go srv.ServeStream(sln) //nolint:errcheck // closed below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)  //nolint:errcheck
		srv.Shutdown(ctx) //nolint:errcheck
	}()

	copts := []client.Option{client.WithStreamAddr(sln.Addr().String())}
	if conns > 1 {
		copts = append(copts, client.WithStreamConns(conns))
	}
	c, err := client.New("http://"+ln.Addr().String(), copts...)
	if err != nil {
		return ServiceBench{}, err
	}
	ctx := context.Background()
	const depth = 8
	discard := func(int, []osp.SetID) {}
	pass := func() (*core.Result, error) {
		h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: uint64(seed)})
		if err != nil {
			return nil, err
		}
		st, err := h.OpenStream(ctx)
		if err != nil {
			return nil, err
		}
		defer st.Close()
		window := min(depth, st.Window())
		for off := 0; off < len(inst.Elements); off += batch {
			if st.Outstanding() == window {
				if err := st.Recv(discard); err != nil {
					return nil, err
				}
			}
			end := min(off+batch, len(inst.Elements))
			if err := st.Send(inst.Elements[off:end]); err != nil {
				return nil, err
			}
		}
		if err := st.CloseSend(); err != nil {
			return nil, err
		}
		for {
			if err := st.Recv(discard); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
		}
		if err := st.Close(); err != nil {
			return nil, err
		}
		res, err := h.Drain(ctx)
		if err != nil {
			return nil, err
		}
		return res, h.Remove(ctx)
	}

	// Correctness first: one verified pass before any timing.
	res, err := pass()
	if err != nil {
		return ServiceBench{}, err
	}
	serial, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(seed)}}, nil)
	if err != nil {
		return ServiceBench{}, err
	}
	if !res.Equal(serial) {
		return ServiceBench{}, fmt.Errorf("service transport=stream: drained result differs from the serial oracle")
	}

	var passErr error
	ns := timeBest(reps, func() {
		if passErr != nil {
			return
		}
		_, passErr = pass()
	})
	if passErr != nil {
		return ServiceBench{}, passErr
	}
	allocs := allocsDuring(2, func() {
		if passErr == nil {
			_, passErr = pass()
		}
	})
	if passErr != nil {
		return ServiceBench{}, passErr
	}

	decode := "zero-copy"
	if copyDecode {
		decode = "copy"
	}
	n := inst.NumElements()
	return ServiceBench{
		Codec:            "binary",
		Transport:        "stream",
		Conns:            conns,
		Decode:           decode,
		Elements:         n,
		Batch:            batch,
		NsPerElement:     float64(ns) / float64(n),
		ElementsPerSec:   float64(n) / (float64(ns) * 1e-9),
		AllocsPerElement: float64(allocs) / float64(n),
	}, nil
}

// benchCluster measures one cluster scaling row: N embedded nodes, a
// coordinator fanning the matrix workload across them by element hash
// (stream transport per node), merged on drain. Each pass builds a
// fresh coordinator over the same fleet and registers a fresh fan-out
// instance; the first pass's merged drain is verified bit-for-bit
// against the serial oracle before any timing — scale must not change
// a verdict.
func benchCluster(inst *setsystem.Instance, nodes, batch, reps int, seed int64) (ClusterBench, error) {
	fleet := make([]cluster.Node, nodes)
	locals := make([]*cluster.LocalNode, nodes)
	for i := range fleet {
		ln, err := cluster.StartLocalNode(osp.ServerConfig{})
		if err != nil {
			return ClusterBench{}, err
		}
		locals[i] = ln
		fleet[i] = ln.Config()
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, ln := range locals {
			ln.Shutdown(ctx) //nolint:errcheck
		}
	}()

	ctx := context.Background()
	pass := func() (*core.Result, error) {
		co, err := cluster.New(cluster.Config{Nodes: fleet})
		if err != nil {
			return nil, err
		}
		defer co.Close() //nolint:errcheck
		in, err := co.Register(ctx, cluster.Spec{
			Info: osp.InfoOf(inst), Seed: uint64(seed), FanOut: true,
		})
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(inst.Elements); off += batch {
			end := min(off+batch, len(inst.Elements))
			if err := in.Ingest(ctx, inst.Elements[off:end], nil); err != nil {
				return nil, err
			}
		}
		return in.Drain(ctx)
	}

	// Correctness first: one verified pass before any timing.
	res, err := pass()
	if err != nil {
		return ClusterBench{}, err
	}
	serial, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(seed)}}, nil)
	if err != nil {
		return ClusterBench{}, err
	}
	if !res.Equal(serial) {
		return ClusterBench{}, fmt.Errorf("cluster nodes=%d: merged drain differs from the serial oracle", nodes)
	}

	var passErr error
	ns := timeBest(reps, func() {
		if passErr != nil {
			return
		}
		_, passErr = pass()
	})
	if passErr != nil {
		return ClusterBench{}, passErr
	}

	n := inst.NumElements()
	return ClusterBench{
		Nodes:          nodes,
		Elements:       n,
		Batch:          batch,
		NsPerElement:   float64(ns) / float64(n),
		ElementsPerSec: float64(n) / (float64(ns) * 1e-9),
	}, nil
}

// timeBest runs f reps times and returns the fastest wall time in
// nanoseconds — best-of filtering strips scheduler noise.
func timeBest(reps int, f func()) int64 {
	if reps < 1 {
		reps = 1
	}
	best := int64(-1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		f()
		if d := time.Since(start).Nanoseconds(); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// allocsDuring returns the minimum number of heap allocations (across all
// goroutines) observed over passes runs of f. The minimum is the sound
// regression detector: stray runtime-internal allocations (GC work
// buffers, parked-goroutine bookkeeping) land in some passes but not all,
// while a genuine per-element allocation shows in every pass.
func allocsDuring(passes int, f func()) uint64 {
	var min uint64
	for p := 0; p < passes; p++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; p == 0 || d < min {
			min = d
		}
		if min == 0 {
			break
		}
	}
	return min
}
