package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestQuickMatrix runs the CI smoke configuration end to end: the quick
// matrix must produce a parseable report with zero steady-state
// allocations per element in every cell.
func TestQuickMatrix(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{"-quick", "-shards", "1,2", "-reps", "1", "-failonalloc", "-out", out}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Bench != "admission-hot-path" || !rep.Quick {
		t.Errorf("unexpected header: %+v", rep)
	}
	if len(rep.Engine) != 2 || rep.Engine[0].Shards != 1 || rep.Engine[1].Shards != 2 {
		t.Errorf("engine matrix = %+v, want shards 1,2", rep.Engine)
	}
	if rep.Decide.KernelNsPerElement <= 0 || rep.Serial.NsPerElement <= 0 {
		t.Errorf("timings not populated: %+v", rep)
	}
	for _, sb := range rep.Engine {
		if sb.ElementsPerSec <= 0 {
			t.Errorf("shards=%d: no throughput recorded", sb.Shards)
		}
	}
	if len(rep.Policies) != len(core.PolicyNames()) {
		t.Fatalf("policy bench has %d rows, want one per registered policy (%d)",
			len(rep.Policies), len(core.PolicyNames()))
	}
	for i, pb := range rep.Policies {
		if pb.Policy != core.PolicyNames()[i] {
			t.Errorf("policies[%d] = %q, want %q (sorted registry order)", i, pb.Policy, core.PolicyNames()[i])
		}
		if pb.NsPerElement <= 0 || pb.ElementsPerSec <= 0 {
			t.Errorf("policy %s: timings not populated: %+v", pb.Policy, pb)
		}
		if pb.AllocsPerElement > 0 {
			t.Errorf("policy %s: %.3f allocs/element in steady state, want 0", pb.Policy, pb.AllocsPerElement)
		}
		if pb.Policy != "first-fit" && pb.MeanBenefit <= 0 {
			t.Errorf("policy %s: mean benefit %.3f not populated", pb.Policy, pb.MeanBenefit)
		}
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("parseShards = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestStdoutOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-shards", "1", "-reps", "1", "-out", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "decide kernel") {
		t.Errorf("missing report lines:\n%s", buf.String())
	}
	// -out - must emit the JSON report itself, not just the summary.
	start := strings.Index(buf.String(), "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", buf.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()[start:]), &rep); err != nil {
		t.Errorf("stdout JSON does not parse: %v", err)
	}
}
