package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestQuickMatrix runs the CI smoke configuration end to end: the quick
// matrix must produce a parseable report with zero steady-state
// allocations per element in every cell.
func TestQuickMatrix(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{"-quick", "-shards", "1,2", "-reps", "1", "-failonalloc", "-out", out}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Bench != "admission-hot-path" || !rep.Quick {
		t.Errorf("unexpected header: %+v", rep)
	}
	if len(rep.Engine) != 2 || rep.Engine[0].Shards != 1 || rep.Engine[1].Shards != 2 {
		t.Errorf("engine matrix = %+v, want shards 1,2", rep.Engine)
	}
	if rep.Decide.KernelNsPerElement <= 0 || rep.Serial.NsPerElement <= 0 {
		t.Errorf("timings not populated: %+v", rep)
	}
	for _, sb := range rep.Engine {
		if sb.ElementsPerSec <= 0 {
			t.Errorf("shards=%d: no throughput recorded", sb.Shards)
		}
	}
	// One row per registered policy per workload (uniform, then zipf),
	// sorted registry order within each workload block.
	names := core.PolicyNames()
	if len(rep.Policies) != 2*len(names) {
		t.Fatalf("policy bench has %d rows, want one per registered policy (%d) per workload (2)",
			len(rep.Policies), len(names))
	}
	benefit := map[string]float64{}
	for i, pb := range rep.Policies {
		wantName := names[i%len(names)]
		wantWorkload := "uniform"
		if i >= len(names) {
			wantWorkload = "zipf"
		}
		if pb.Policy != wantName || pb.Workload != wantWorkload {
			t.Errorf("policies[%d] = %q on %q, want %q on %q", i, pb.Policy, pb.Workload, wantName, wantWorkload)
		}
		if pb.NsPerElement <= 0 || pb.ElementsPerSec <= 0 {
			t.Errorf("policy %s (%s): timings not populated: %+v", pb.Policy, pb.Workload, pb)
		}
		if pb.AllocsPerElement > 0 {
			t.Errorf("policy %s (%s): %.3f allocs/element in steady state, want 0", pb.Policy, pb.Workload, pb.AllocsPerElement)
		}
		if pb.Policy != "first-fit" && pb.MeanBenefit <= 0 {
			t.Errorf("policy %s (%s): mean benefit %.3f not populated", pb.Policy, pb.Workload, pb.MeanBenefit)
		}
		benefit[pb.Policy+"/"+pb.Workload] = pb.MeanBenefit
	}
	// The zipf workload exists to distinguish the weighted variant: its
	// mean benefit must diverge from plain randpr's there.
	if benefit["randpr/zipf"] == benefit["randpr-weighted/zipf"] {
		t.Errorf("zipf rows: randpr and randpr-weighted report identical mean benefit %.3f — the skewed scenario is not distinguishing",
			benefit["randpr/zipf"])
	}

	// The interface-dispatch row (fast-path "before") must be populated
	// at the engine matrix shape.
	if rep.EngineInterface.Shards != 4 || rep.EngineInterface.ElementsPerSec <= 0 {
		t.Errorf("engine_interface row not populated: %+v", rep.EngineInterface)
	}
	if rep.EngineInterface.AllocsPerElement > 0 {
		t.Errorf("interface-dispatch engine allocates %.3f/element, want 0", rep.EngineInterface.AllocsPerElement)
	}

	// Service rows: json and binary over HTTP, then the stream matrix —
	// striped connection counts 1/2/4 and the forced copying-decode row
	// that anchors the zero-copy comparison.
	if len(rep.Service) != 6 ||
		rep.Service[0].Codec != "json" || rep.Service[0].Transport != "http" ||
		rep.Service[1].Codec != "binary" || rep.Service[1].Transport != "http" ||
		rep.Service[2].Transport != "stream" || rep.Service[2].Conns != 1 || rep.Service[2].Decode != "zero-copy" ||
		rep.Service[3].Transport != "stream" || rep.Service[3].Conns != 2 || rep.Service[3].Decode != "zero-copy" ||
		rep.Service[4].Transport != "stream" || rep.Service[4].Conns != 4 || rep.Service[4].Decode != "zero-copy" ||
		rep.Service[5].Transport != "stream" || rep.Service[5].Conns != 1 || rep.Service[5].Decode != "copy" {
		t.Fatalf("service rows = %+v, want [json/http binary/http stream/conns=1,2,4 stream/copy]", rep.Service)
	}
	for _, sb := range rep.Service {
		if sb.ElementsPerSec <= 0 || sb.NsPerElement <= 0 {
			t.Errorf("service %s/%s: timings not populated: %+v", sb.Codec, sb.Transport, sb)
		}
	}
	// The tentpole floors (>= 4x JSON for binary-HTTP, stream faster
	// still) even at smoke sizes.
	if sp := rep.Service[1].SpeedupVsJSON; sp < 4 {
		t.Errorf("binary service path is %.2fx JSON, want >= 4x", sp)
	}
	if sp := rep.Service[2].SpeedupVsBinary; sp <= 1 {
		t.Errorf("stream service path is %.2fx binary-HTTP, want > 1x", sp)
	}
	for _, i := range []int{2, 3, 4, 5} {
		if a := rep.Service[i].AllocsPerElement; a > 0.1 {
			t.Errorf("stream service row %d allocates %.3f/element process-wide, want <= 0.1", i, a)
		}
	}

	// Cluster scaling rows: the quick matrix runs fleets of 1 and 2, the
	// multi-node row carrying its speedup against the single-node
	// baseline. The speedup itself is informational here — a 1-vCPU
	// runner cannot make fan-out pay — but every row must be populated
	// and oracle-verified (benchCluster fails otherwise).
	if len(rep.Cluster) != 2 || rep.Cluster[0].Nodes != 1 || rep.Cluster[1].Nodes != 2 {
		t.Fatalf("cluster rows = %+v, want fleets of 1 and 2", rep.Cluster)
	}
	for _, cb := range rep.Cluster {
		if cb.ElementsPerSec <= 0 || cb.NsPerElement <= 0 {
			t.Errorf("cluster nodes=%d: timings not populated: %+v", cb.Nodes, cb)
		}
	}
	if rep.Cluster[1].SpeedupVsSingle <= 0 {
		t.Errorf("2-node cluster row missing its speedup-vs-single column: %+v", rep.Cluster[1])
	}
}

// TestCompareMode pins the -compare arm: matched rows get deltas (the
// BENCH_5-era stream row, carrying no conns/decode columns, must match
// the new conns=1 zero-copy row), regressions past -regress fail, pure
// speedups and new rows pass, and bad invocations error cleanly.
func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		t.Helper()
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldRep := Report{
		Bench:  "admission-hot-path",
		Serial: SerialBench{Elements: 100, NsPerElement: 100},
		Engine: []ShardBench{{Shards: 1, Elements: 100, NsPerElement: 200}},
		Service: []ServiceBench{
			{Codec: "binary", Transport: "stream", NsPerElement: 370}, // BENCH_5 schema: no conns/decode
		},
	}
	newRep := Report{
		Bench:  "admission-hot-path",
		Serial: SerialBench{Elements: 100, NsPerElement: 105}, // +5%: within threshold
		Engine: []ShardBench{{Shards: 1, Elements: 100, NsPerElement: 150}},
		Service: []ServiceBench{
			{Codec: "binary", Transport: "stream", Conns: 1, Decode: "zero-copy", NsPerElement: 290},
			{Codec: "binary", Transport: "stream", Conns: 4, Decode: "zero-copy", NsPerElement: 250}, // new row
		},
	}
	oldPath, newPath := write("old.json", oldRep), write("new.json", newRep)

	var buf bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, &buf); err != nil {
		t.Fatalf("compare of an improved report failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, frag := range []string{
		"service/binary/stream ", // the schema-bridged match gets a delta line
		"service/binary/stream/conns=4",
		"(new row)",
		"no row regressed",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("compare output missing %q:\n%s", frag, out)
		}
	}

	// A >threshold slowdown on a shared row must fail and name the row.
	slow := newRep
	slow.Serial = SerialBench{Elements: 100, NsPerElement: 160} // +60%
	slowPath := write("slow.json", slow)
	buf.Reset()
	err := run([]string{"-compare", "-regress", "0.5", oldPath, slowPath}, &buf)
	if err == nil || !strings.Contains(err.Error(), "serial") {
		t.Fatalf("compare with a 60%% serial regression = %v, want failure naming the row", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("regressed row not marked in output:\n%s", buf.String())
	}

	// The same pair passes with a permissive threshold.
	buf.Reset()
	if err := run([]string{"-compare", "-regress", "0.7", oldPath, slowPath}, &buf); err != nil {
		t.Fatalf("compare with threshold 0.7 failed: %v", err)
	}

	if err := run([]string{"-compare", oldPath}, &buf); err == nil {
		t.Error("compare with one path accepted")
	}
	if err := run([]string{"-compare", oldPath, filepath.Join(dir, "missing.json")}, &buf); err == nil {
		t.Error("compare with a missing file accepted")
	}
	if err := run([]string{"-compare", "-regress", "-1", oldPath, newPath}, &buf); err == nil {
		t.Error("negative regress threshold accepted")
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("parseShards = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,,2"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) accepted", bad)
		}
	}
}

func TestStdoutOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-shards", "1", "-reps", "1", "-out", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "decide kernel") {
		t.Errorf("missing report lines:\n%s", buf.String())
	}
	// -out - must emit the JSON report itself, not just the summary.
	start := strings.Index(buf.String(), "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", buf.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()[start:]), &rep); err != nil {
		t.Errorf("stdout JSON does not parse: %v", err)
	}
}
