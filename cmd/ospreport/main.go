// Command ospreport regenerates a complete, self-contained experiment
// report — every table of the reproduction index X1…X16 with a header
// recording the seed and configuration — suitable for diffing against
// EXPERIMENTS.md after code changes.
//
// Usage:
//
//	ospreport -out report.txt            # full sweeps (~1 min)
//	ospreport -quick                     # reduced sweeps to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ospreport", flag.ContinueOnError)
	var (
		out    = fs.String("out", "", "output file (default stdout)")
		seed   = fs.Int64("seed", 1, "base random seed")
		trials = fs.Int("trials", 0, "Monte-Carlo repetitions per cell (0 = defaults)")
		quick  = fs.Bool("quick", false, "reduced sweeps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	if _, err := fmt.Fprintf(w,
		"OSP reproduction report\npaper: Emek et al., Online Set Packing (PODC 2010)\nseed: %d  quick: %v  trials: %d\n\n",
		*seed, *quick, *trials); err != nil {
		return err
	}
	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick}
	if err := experiments.RunAll(cfg, w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "report generated in %v\n", time.Since(start).Round(time.Millisecond)); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return nil
}
