package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuickReportToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-trials", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"OSP reproduction report", "=== X1", "=== X16", "report generated in"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	if strings.Contains(out, "NO") {
		t.Errorf("report contains failed verdicts:\n%s", out)
	}
}

func TestReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-trials", "2", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "=== X7") {
		t.Error("file report missing experiment sections")
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Error("stdout missing confirmation")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}
