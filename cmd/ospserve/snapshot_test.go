package main

import (
	"context"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/osp"
	"repro/osp/client"
)

// bootService starts runService with the given config on random ports
// and returns the HTTP address, the stop channel and the exit channel.
func bootService(t *testing.T, cfg osp.ServerConfig, out *syncWriter) (addr string, stop chan os.Signal, done chan error) {
	t.Helper()
	stop = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done = make(chan error, 1)
	go func() { done <- runService("127.0.0.1:0", "", cfg, out, stop, ready) }()
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("service exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("service did not come up")
	}
	return addr, stop, done
}

// stopService signals the daemon and waits out its graceful drain.
func stopService(t *testing.T, stop chan os.Signal, done chan error) {
	t.Helper()
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("service did not shut down")
	}
}

// TestServiceRestartResumesFromSnapshotDir is the daemon-level recovery
// pin: for EVERY built-in policy, ingest half an instance, SIGTERM the
// daemon (which writes its snapshot directory), boot a fresh daemon on
// the same directory, ingest the rest, and the final drained Result
// must be bit-for-bit the uninterrupted serial oracle's.
func TestServiceRestartResumesFromSnapshotDir(t *testing.T) {
	inst, err := workload.Uniform(workload.UniformConfig{
		M: 30, N: 900, Load: 4, Capacity: 2,
		WeightFn: func(i int) float64 { return 1 + float64(i%5) },
	}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	const seed = 9090
	half := len(inst.Elements) / 2
	ctx := context.Background()

	for _, policy := range osp.PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			var out1 syncWriter
			addr, stop, done := bootService(t, osp.ServerConfig{SnapshotDir: dir}, &out1)
			c1, err := client.New("http://" + addr)
			if err != nil {
				t.Fatal(err)
			}
			h, err := c1.Register(ctx, client.Spec{
				Info: osp.InfoOf(inst), Seed: seed,
				Engine: osp.EngineConfig{Shards: 3, BatchSize: 16, Policy: policy},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.Ingest(ctx, inst.Elements[:half]); err != nil {
				t.Fatal(err)
			}
			stopService(t, stop, done)
			if !strings.Contains(out1.String(), "wrote 1 instance snapshot(s)") {
				t.Fatalf("shutdown log missing snapshot write:\n%s", out1.String())
			}

			// The restart: same snapshot directory, fresh everything else.
			var out2 syncWriter
			addr2, stop2, done2 := bootService(t, osp.ServerConfig{SnapshotDir: dir}, &out2)
			if !strings.Contains(out2.String(), "restored 1 instance(s)") {
				t.Fatalf("boot log missing restore:\n%s", out2.String())
			}
			c2, err := client.New("http://" + addr2)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := c2.Instance(ctx, h.ID())
			if err != nil {
				t.Fatalf("reattach %s: %v", h.ID(), err)
			}
			if h2.Policy() != policy {
				t.Fatalf("restored policy = %q, want %q", h2.Policy(), policy)
			}
			if _, err := h2.Ingest(ctx, inst.Elements[half:]); err != nil {
				t.Fatal(err)
			}
			res, err := h2.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			alg, err := osp.NewPolicyAlgorithm(policy, seed)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := osp.Run(inst, alg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(oracle) {
				t.Errorf("%s: resumed drain (benefit %v) differs from uninterrupted oracle (benefit %v)",
					policy, res.Benefit, oracle.Benefit)
			}
			stopService(t, stop2, done2)
		})
	}
}

// TestServiceSnapshotEndpointPersistsOnDemand pins the kill -9 story:
// POST .../snapshot persists the frame to -snapshot-dir immediately, so
// state taken up to that point survives even an abrupt kill with no
// shutdown hook at all.
func TestServiceSnapshotEndpointPersistsOnDemand(t *testing.T) {
	inst, err := workload.Uniform(workload.UniformConfig{M: 15, N: 300, Load: 3, Capacity: 2},
		rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	const seed = 17
	half := len(inst.Elements) / 2
	ctx := context.Background()
	dir := t.TempDir()

	var out syncWriter
	addr, stop, done := bootService(t, osp.ServerConfig{SnapshotDir: dir}, &out)
	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Ingest(ctx, inst.Elements[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	// Simulate kill -9: tear the daemon down with no snapshot write of
	// its own (the pool is empty of news — we remove the instance first
	// so shutdown's WriteSnapshots pass has nothing fresher than the
	// on-demand file... except WriteSnapshots would overwrite it; so
	// instead verify the on-demand file exists and restores elsewhere).
	frame, err := os.ReadFile(dir + "/" + h.ID() + ".osps")
	if err != nil {
		t.Fatalf("on-demand snapshot not persisted: %v", err)
	}
	stopService(t, stop, done)

	var out2 syncWriter
	addr2, stop2, done2 := bootService(t, osp.ServerConfig{}, &out2)
	c2, err := client.New("http://" + addr2)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Restore(ctx, frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Ingest(ctx, inst.Elements[half:]); err != nil {
		t.Fatal(err)
	}
	res, err := h2.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(oracle) {
		t.Error("restore-from-frame drain differs from oracle")
	}
	stopService(t, stop2, done2)
}
