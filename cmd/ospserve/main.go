// Command ospserve is the admission daemon of the paper's
// bottleneck-router story: elements (time slots with packet bursts)
// stream in, each is admitted or dropped immediately by
// coordination-free randPr priorities, and frames that keep every packet
// pay out their weight.
//
// It has two modes. Replay mode (the default) pushes a generated
// workload or a decoded trace through the sharded concurrent streaming
// engine at a configurable arrival rate and reports throughput and
// goodput. Service mode (-listen) mounts the networked admission
// service instead: an HTTP API for remote producers (register a set
// system, stream element batches for immediate verdicts, drain the
// final result) with Prometheus metrics at /metrics and graceful drain
// of every live engine on SIGINT/SIGTERM. -stream-listen additionally
// mounts the raw-TCP stream transport: one long-lived connection per
// producer carrying pipelined binary batch frames, for when even
// keep-alive HTTP per-batch overhead is too much. See docs/OPERATIONS.md
// for the endpoint and metrics reference, and cmd/osploadgen for a
// traffic source.
//
// Usage:
//
//	ospserve -workload video -streams 64 -frames 32 -shards 4
//	ospserve -workload multihop -hops 8 -packets 500 -rate 50000
//	ospserve -workload uniform -policy greedy-remaining -verify
//	ospserve -trace trace.osp -verify
//	ospserve -listen :8080
//	ospserve -listen :8080 -stream-listen :8081
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/setsystem"
	"repro/internal/workload"
	"repro/osp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ospserve:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ospserve", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "", "service mode: serve the HTTP admission API on this address (e.g. :8080)")
		strmLn  = fs.String("stream-listen", "", "service mode: also serve the raw-TCP stream transport on this address (e.g. :8081)")
		strmWin = fs.Int("stream-window", 0, "stream transport: pipelined batches allowed in flight per connection (0 = default 32)")
		strmCpy = fs.Bool("stream-copy-decode", false, "stream transport: force the copying batch decoder instead of zero-copy aliasing (A/B escape hatch)")
		strmTim = fs.Bool("stream-timings", false, "stream transport: record per-batch decode latency into the osp_stream_decode histogram (two time.Now stamps per frame)")
		nodeLbl = fs.String("node", "", "service mode: node name exported as the osp_node_info metric (cluster deployments)")
		snapDir = fs.String("snapshot-dir", "", "service mode: restore instance snapshots from this directory on boot and write them on drain/SIGTERM; POST /v1/instances/{id}/snapshot persists there on demand")
		maxInst = fs.Int("max-instances", 0, "service mode: engine pool limit (0 = default 1024)")
		maxBat  = fs.Int("max-batch", 0, "service mode: per-request ingest batch cap (0 = default 65536)")
		maxBody = fs.Int64("max-body", 0, "service mode: request body byte cap (0 = default 256 MiB)")
		kind    = fs.String("workload", "video", `"video", "bursty", "multihop" or "uniform"`)
		trace   = fs.String("trace", "", "replay a trace file instead of generating a workload")
		streams = fs.Int("streams", 64, "video/bursty: concurrent streams")
		frames  = fs.Int("frames", 32, "video/bursty: frames per stream")
		linkCap = fs.Int("cap", 1, "video/bursty: link capacity (packets/slot)")
		jitter  = fs.Int("jitter", 3, "video: max start jitter (slots)")
		hops    = fs.Int("hops", 8, "multihop: switches on the line")
		packets = fs.Int("packets", 200, "multihop: packets injected")
		horizon = fs.Int("horizon", 20, "multihop: injection window (slots)")
		m       = fs.Int("m", 200, "uniform: number of sets")
		n       = fs.Int("n", 2000, "uniform: number of elements")
		load    = fs.Int("load", 8, "uniform: element load σ(u)")
		shards  = fs.Int("shards", 0, "engine shard workers (0 = GOMAXPROCS)")
		policy  = fs.String("policy", "", "admission policy: "+strings.Join(core.PolicyNames(), ", ")+` ("" = randpr)`)
		batch   = fs.Int("batch", 0, "engine ingestion batch size (0 = default)")
		queue   = fs.Int("queue", 0, "engine per-shard queue depth in batches (0 = default)")
		rate    = fs.Float64("rate", 0, "target arrival rate in elements/sec (0 = full speed)")
		report  = fs.Duration("report", 0, "live metrics interval (0 = final report only)")
		seed    = fs.Int64("seed", 1, "random seed (workload and shared priority seed)")
		verify  = fs.Bool("verify", false, "also run serial hashRandPr and check bit-for-bit equality")
		decLog  = fs.String("decision-log", "", `sampled decision log sink: a JSON-lines file path, or "-" for stderr ("" = disabled)`)
		decEach = fs.Int("decision-sample", 1024, "decision log: record every Nth decision per shard (1 = all)")
		pprofOn = fs.Bool("pprof", false, "service mode: mount net/http/pprof at /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	dlog, closeLog, err := openDecisionLog(*decLog, *decEach)
	if err != nil {
		return err
	}
	defer closeLog()

	if *listen != "" {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(stop)
		return runService(*listen, *strmLn, osp.ServerConfig{
			MaxInstances: *maxInst, MaxBatch: *maxBat, MaxBodyBytes: *maxBody,
			StreamWindow: *strmWin, StreamCopyDecode: *strmCpy, StreamTimings: *strmTim,
			Decisions: dlog, EnablePprof: *pprofOn,
			NodeLabel: *nodeLbl, SnapshotDir: *snapDir,
		}, w, stop, nil)
	}

	inst, desc, err := buildWorkload(*trace, *kind, workloadParams{
		streams: *streams, frames: *frames, linkCap: *linkCap, jitter: *jitter,
		hops: *hops, packets: *packets, horizon: *horizon,
		m: *m, n: *n, load: *load,
	}, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: %s\n", desc)
	fmt.Fprintf(w, "instance: %v\n", inst)

	cfg := engine.Config{Shards: *shards, BatchSize: *batch, QueueDepth: *queue, Policy: *policy}
	if dlog != nil {
		pol, err := core.LookupPolicy(*policy)
		if err != nil {
			return err
		}
		cfg.Telemetry = &obs.EngineTelemetry{
			Decisions: dlog.Logger("replay", pol.Name(), cfg.Resolved().Shards),
		}
	}
	eng, err := engine.New(core.InfoOf(inst), uint64(*seed), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "engine: %d shards, policy %s, rate target %s\n\n",
		eng.NumShards(), eng.PolicyName(), rateString(*rate))

	stopReport := startReporter(w, eng, *report)
	start := time.Now()
	for i, el := range inst.Elements {
		if *rate > 0 {
			target := start.Add(time.Duration(float64(i) / *rate * float64(time.Second)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
		if err := eng.Submit(el); err != nil {
			// Drain anyway so the shard workers stop; surface both errors,
			// as engine.Replay does.
			_, derr := eng.Drain()
			stopReport()
			return errors.Join(err, derr)
		}
	}
	res, err := eng.Drain()
	stopReport()
	if err != nil {
		return err
	}

	printReport(w, inst, res, eng.Metrics().Snapshot())

	if *verify {
		pol, err := core.LookupPolicy(*policy)
		if err != nil {
			return err
		}
		serial, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: uint64(*seed)}, nil)
		if err != nil {
			return err
		}
		if !res.Equal(serial) {
			return fmt.Errorf("policy %s: engine result differs from its serial oracle (engine %.3f, serial %.3f, seed %d)",
				pol.Name(), res.Benefit, serial.Benefit, *seed)
		}
		fmt.Fprintf(w, "verify: engine output identical to serial %s oracle (seed %d)\n", pol.Name(), *seed)
	}
	return nil
}

// openDecisionLog builds the sampled decision log selected by the
// -decision-log flag. "" disables logging (nil log, no-op close); "-"
// or "stderr" streams JSON lines to stderr; anything else truncates and
// writes that file. The returned close function flushes the log's rings
// and the sink's buffer — callers must run it after the last engine has
// drained so the tail of the stream is captured.
func openDecisionLog(path string, every int) (*osp.DecisionLog, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	var sink *osp.JSONLSink
	switch path {
	case "-", "stderr":
		// Hide os.Stderr's Close from the sink: flushing on exit is
		// wanted, closing the process's stderr is not.
		sink = osp.NewJSONLSink(struct{ io.Writer }{os.Stderr})
	default:
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, fmt.Errorf("decision-log: %w", err)
		}
		sink = osp.NewJSONLSink(f)
	}
	dlog := osp.NewDecisionLog(osp.DecisionLogConfig{SampleEvery: every, Sink: sink})
	return dlog, func() {
		dlog.Close()
		sink.Close()
	}, nil
}

// runService mounts the networked admission service and blocks until a
// stop signal arrives, then shuts down gracefully: both listeners stop
// accepting, open streams are drained, and every live engine is drained
// so in-flight elements are decided, not lost. ready (may be nil)
// receives the bound HTTP address, then — when streamListen is set —
// the bound stream address; tests use it to connect to ":0" listeners.
func runService(listen, streamListen string, cfg osp.ServerConfig, w io.Writer, stop <-chan os.Signal, ready chan<- string) error {
	srv := osp.NewServer(cfg)
	if cfg.SnapshotDir != "" {
		// Restore before the listeners open: a resuming client must never
		// reach a server that has not yet reloaded its instances.
		n, err := srv.RestoreDir(cfg.SnapshotDir)
		if err != nil {
			return fmt.Errorf("restore snapshots from %s: %w", cfg.SnapshotDir, err)
		}
		if n > 0 {
			fmt.Fprintf(w, "ospserve: restored %d instance(s) from %s\n", n, cfg.SnapshotDir)
		}
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ospserve: admission service listening on http://%s\n", ln.Addr())
	fmt.Fprintf(w, "ospserve: POST /v1/instances to register, GET /metrics for Prometheus, SIGINT/SIGTERM to drain\n")
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 2)
	go func() { errc <- hs.Serve(ln) }()
	if streamListen != "" {
		sln, err := net.Listen("tcp", streamListen)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ospserve: stream transport listening on %s\n", sln.Addr())
		if ready != nil {
			ready <- sln.Addr().String()
		}
		// ServeStream returns nil once Shutdown closes the listener, so
		// only a real accept failure lands in errc.
		go func() {
			if err := srv.ServeStream(sln); err != nil {
				errc <- fmt.Errorf("stream listener: %w", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-stop:
	}

	fmt.Fprintf(w, "ospserve: shutting down, draining %d instances\n", srv.Pool().Len())
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	httpErr := hs.Shutdown(ctx)
	drainErr := srv.Shutdown(ctx)
	var snapErr error
	if cfg.SnapshotDir != "" {
		// The engines are quiesced now, so every export is instant; the
		// atomic writes make the directory safe against a crash mid-write.
		if err := srv.WriteSnapshots(ctx, cfg.SnapshotDir); err != nil {
			snapErr = fmt.Errorf("write snapshots to %s: %w", cfg.SnapshotDir, err)
		} else {
			fmt.Fprintf(w, "ospserve: wrote %d instance snapshot(s) to %s\n", srv.Pool().Len(), cfg.SnapshotDir)
		}
	}
	if err := errors.Join(httpErr, drainErr, snapErr); err != nil {
		return err
	}
	fmt.Fprintf(w, "ospserve: all engines drained, bye\n")
	return nil
}

// workloadParams bundles the generator knobs.
type workloadParams struct {
	streams, frames, linkCap, jitter int
	hops, packets, horizon           int
	m, n, load                       int
}

// buildWorkload produces the instance to serve: decoded from a trace file,
// or generated by the named scenario.
func buildWorkload(trace, kind string, p workloadParams, seed int64) (*setsystem.Instance, string, error) {
	if trace != "" {
		f, err := os.Open(trace)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		inst, err := setsystem.Decode(f)
		if err != nil {
			return nil, "", err
		}
		return inst, fmt.Sprintf("trace %s", trace), nil
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "video":
		vi, err := workload.Video(workload.VideoConfig{
			Streams: p.streams, FramesPerStream: p.frames,
			LinkCapacity: p.linkCap, Jitter: p.jitter,
		}, rng)
		if err != nil {
			return nil, "", err
		}
		return vi.Inst, fmt.Sprintf("video, %d streams × %d frames, link capacity %d",
			p.streams, p.frames, p.linkCap), nil
	case "bursty":
		vi, err := workload.Bursty(workload.BurstyConfig{
			Streams: p.streams, Frames: p.frames, LinkCapacity: p.linkCap,
		}, rng)
		if err != nil {
			return nil, "", err
		}
		return vi.Inst, fmt.Sprintf("bursty video, %d on/off streams × %d frames", p.streams, p.frames), nil
	case "multihop":
		mi, err := workload.Multihop(workload.MultihopConfig{
			Hops: p.hops, Packets: p.packets, Horizon: p.horizon,
		}, rng)
		if err != nil {
			return nil, "", err
		}
		return mi.Inst, fmt.Sprintf("multihop, %d packets over %d switches", p.packets, p.hops), nil
	case "uniform":
		inst, err := workload.Uniform(workload.UniformConfig{M: p.m, N: p.n, Load: p.load}, rng)
		if err != nil {
			return nil, "", err
		}
		return inst, fmt.Sprintf("uniform, m=%d n=%d load=%d", p.m, p.n, p.load), nil
	default:
		return nil, "", fmt.Errorf("unknown workload %q", kind)
	}
}

// startReporter prints live metric snapshots every interval until the
// returned stop function is called. A zero interval disables reporting.
func startReporter(w io.Writer, eng *engine.Engine, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "live: %v\n", eng.Metrics().Snapshot())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// printReport writes the final throughput/goodput summary.
func printReport(w io.Writer, inst *setsystem.Instance, res *core.Result, s engine.Snapshot) {
	offered := inst.TotalWeight()
	fmt.Fprintf(w, "throughput: %d elements in %v (%.0f elements/s, %d batches)\n",
		s.Processed, s.Elapsed.Round(time.Microsecond), s.ElementsPerSec, s.Batches)
	fmt.Fprintf(w, "admission:  %d assigned, %d dropped (%.1f%% of %d offered memberships)\n",
		s.Assigned, s.Dropped, pct(s.Dropped, s.Assigned+s.Dropped), s.Assigned+s.Dropped)
	fmt.Fprintf(w, "goodput:    %d sets completed, weight %.1f of %.1f offered (%.1f%%)\n",
		len(res.Completed), res.Benefit, offered, 100*safeDiv(res.Benefit, offered))
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func rateString(rate float64) string {
	if rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0f elements/s", rate)
}
