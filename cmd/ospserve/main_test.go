package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/setsystem"
	"repro/osp"
	"repro/osp/client"
)

// syncWriter serializes writes so the test can read the buffer while the
// service goroutine logs.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServiceMode boots -listen and -stream-listen on random ports,
// drives one full register/ingest/drain round trip through the HTTP
// client — plus a pipelined batch over the stream transport — with an
// oracle check, and then shuts the daemon down gracefully via the
// signal channel.
func TestServiceMode(t *testing.T) {
	var out syncWriter
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 2)
	done := make(chan error, 1)
	go func() {
		done <- runService("127.0.0.1:0", "127.0.0.1:0", osp.ServerConfig{}, &out, stop, ready)
	}()
	var addr, streamAddr string
	select {
	case addr = <-ready:
		streamAddr = <-ready
	case err := <-done:
		t.Fatalf("service exited early: %v", err)
	}

	ctx := context.Background()
	c, err := client.New("http://"+addr, client.WithStreamAddr(streamAddr))
	if err != nil {
		t.Fatal(err)
	}

	var b setsystem.Builder
	a := b.AddSet(1)
	cs := b.AddSet(2)
	b.AddElement(a, cs)
	b.AddElement(a)
	b.AddElement(cs)
	inst := b.MustBuild()

	const seed = 11
	h, err := c.Register(ctx, client.Spec{Info: osp.InfoOf(inst), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Ingest over the stream transport: the daemon's second listener.
	st, err := h.OpenStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(inst.Elements); err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	if err := st.Recv(func(int, []osp.SetID) { verdicts++ }); err != nil {
		t.Fatal(err)
	}
	if verdicts != len(inst.Elements) {
		t.Fatalf("stream answered %d verdicts for %d elements", verdicts, len(inst.Elements))
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := st.Recv(func(int, []osp.SetID) {}); err != io.EOF {
		t.Fatalf("Recv after fin = %v, want io.EOF", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := h.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := osp.Run(inst, osp.NewHashRandPr(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(serial) {
		t.Errorf("service result differs from serial oracle")
	}
	if text, err := c.Metrics(ctx); err != nil || !strings.Contains(text, "osp_engine_processed_elements_total") {
		t.Errorf("metrics fetch = %v, text missing engine counters", err)
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("service did not shut down")
	}
	for _, frag := range []string{"admission service listening on http://", "stream transport listening on ", "all engines drained, bye"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("service log missing %q:\n%s", frag, out.String())
		}
	}
}

func TestServeVideoVerified(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "video", "-streams", "8", "-frames", "6",
		"-shards", "3", "-batch", "8", "-verify",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"workload: video", "engine: 3 shards", "throughput:", "admission:", "goodput:", "verify: engine output identical"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestServeAllWorkloads(t *testing.T) {
	for _, kind := range []string{"video", "bursty", "multihop", "uniform"} {
		var buf bytes.Buffer
		args := []string{"-workload", kind, "-streams", "4", "-frames", "4",
			"-hops", "4", "-packets", "30", "-horizon", "6",
			"-m", "20", "-n", "100", "-load", "3", "-verify"}
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestServeRateLimited(t *testing.T) {
	var buf bytes.Buffer
	// ~66 elements at 5000/s ≈ 13ms — enough to exercise the pacing
	// branch without slowing the suite.
	err := run([]string{"-workload", "uniform", "-m", "10", "-n", "66", "-load", "2",
		"-rate", "5000", "-report", "5ms"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rate target 5000 elements/s") {
		t.Errorf("rate target not echoed:\n%s", buf.String())
	}
}

func TestServeTrace(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	c := b.AddSet(2)
	b.AddElement(a, c)
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	path := filepath.Join(t.TempDir(), "trace.osp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.Encode(f, inst); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-verify"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload: trace") {
		t.Errorf("trace workload not reported:\n%s", buf.String())
	}
}

// TestServePolicyFlag runs every registered policy through replay mode
// with -verify: the engine must match that policy's serial oracle, and
// the verify line must name the policy it checked.
func TestServePolicyFlag(t *testing.T) {
	for _, pol := range osp.PolicyNames() {
		var buf bytes.Buffer
		err := run([]string{"-workload", "uniform", "-m", "20", "-n", "200", "-load", "3",
			"-shards", "2", "-policy", pol, "-verify"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for _, frag := range []string{"policy " + pol, "verify: engine output identical to serial " + pol + " oracle"} {
			if !strings.Contains(buf.String(), frag) {
				t.Errorf("%s: output missing %q:\n%s", pol, frag, buf.String())
			}
		}
	}
}

func TestServeUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "uniform", "-m", "5", "-n", "10", "-policy", "nope"}, &buf)
	if err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("unknown policy error = %v, want the bad name in the message", err)
	}
}

func TestServeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-trace", "/definitely/missing"}, &buf); err == nil {
		t.Error("missing trace should error")
	}
	if err := run([]string{"-workload", "video", "-streams", "0"}, &buf); err == nil {
		t.Error("bad generator config should error")
	}
}
