package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/setsystem"
)

func TestServeVideoVerified(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "video", "-streams", "8", "-frames", "6",
		"-shards", "3", "-batch", "8", "-verify",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"workload: video", "engine: 3 shards", "throughput:", "admission:", "goodput:", "verify: engine output identical"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestServeAllWorkloads(t *testing.T) {
	for _, kind := range []string{"video", "bursty", "multihop", "uniform"} {
		var buf bytes.Buffer
		args := []string{"-workload", kind, "-streams", "4", "-frames", "4",
			"-hops", "4", "-packets", "30", "-horizon", "6",
			"-m", "20", "-n", "100", "-load", "3", "-verify"}
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestServeRateLimited(t *testing.T) {
	var buf bytes.Buffer
	// ~66 elements at 5000/s ≈ 13ms — enough to exercise the pacing
	// branch without slowing the suite.
	err := run([]string{"-workload", "uniform", "-m", "10", "-n", "66", "-load", "2",
		"-rate", "5000", "-report", "5ms"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rate target 5000 elements/s") {
		t.Errorf("rate target not echoed:\n%s", buf.String())
	}
}

func TestServeTrace(t *testing.T) {
	var b setsystem.Builder
	a := b.AddSet(1)
	c := b.AddSet(2)
	b.AddElement(a, c)
	b.AddElement(a)
	b.AddElement(c)
	inst := b.MustBuild()

	path := filepath.Join(t.TempDir(), "trace.osp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := setsystem.Encode(f, inst); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-verify"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload: trace") {
		t.Errorf("trace workload not reported:\n%s", buf.String())
	}
}

func TestServeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "nope"}, &buf); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-trace", "/definitely/missing"}, &buf); err == nil {
		t.Error("missing trace should error")
	}
	if err := run([]string{"-workload", "video", "-streams", "0"}, &buf); err == nil {
		t.Error("bad generator config should error")
	}
}
