package genpack

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/setsystem"
)

// twoSetInstance: elements with mixed demands.
// e0: A wants 2, B wants 1, capacity 2 → can admit A alone or B alone (A
// uses the whole budget) — actually B(1) + nothing else of A(2) since 1+2>2.
func twoSetInstance() *Instance {
	return &Instance{
		Weights: []float64{5, 3},
		Sizes:   []int{2, 2},
		Elements: []Element{
			{Demands: []Demand{{0, 2}, {1, 1}}, Capacity: 2},
			{Demands: []Demand{{0, 1}, {1, 1}}, Capacity: 2},
		},
	}
}

func TestValidate(t *testing.T) {
	in := twoSetInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoSetInstance()
	bad.Elements[0].Capacity = 0
	if err := bad.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
	bad2 := twoSetInstance()
	bad2.Elements[0].Demands[0].Amount = 0
	if err := bad2.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
	bad3 := twoSetInstance()
	bad3.Sizes[0] = 9
	if err := bad3.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
	bad4 := twoSetInstance()
	bad4.Elements[0].Demands = []Demand{{1, 1}, {0, 2}} // out of order
	if err := bad4.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
}

func TestRunGreedyWeight(t *testing.T) {
	in := twoSetInstance()
	res, err := Run(in, &GreedyWeight{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// e0: admits A (weight 5, demand 2 fills capacity); B dies.
	// e1: admits A (1 ≤ 2). A completes.
	if res.Benefit != 5 || len(res.Completed) != 1 || res.Completed[0] != 0 {
		t.Errorf("res = %+v, want A completed", res)
	}
}

func TestRunGreedySmallDemand(t *testing.T) {
	in := twoSetInstance()
	res, err := Run(in, &GreedySmallDemand{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// e0: B first (demand 1), then A does not fit (2 > 1 left): B admitted,
	// A dies. e1: B admitted. B completes.
	if res.Benefit != 3 || len(res.Completed) != 1 || res.Completed[0] != 1 {
		t.Errorf("res = %+v, want B completed", res)
	}
}

func TestRunRejectsMisbehavior(t *testing.T) {
	in := twoSetInstance()
	if _, err := Run(in, badAlg{choose: []setsystem.SetID{0, 1}}, nil); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("err = %v, want ErrOverCapacity", err)
	}
	in2 := &Instance{
		Weights:  []float64{1, 1},
		Sizes:    []int{1, 1},
		Elements: []Element{{Demands: []Demand{{0, 1}}, Capacity: 1}, {Demands: []Demand{{1, 1}}, Capacity: 1}},
	}
	if _, err := Run(in2, badAlg{choose: []setsystem.SetID{1}}, nil); !errors.Is(err, ErrChoseNonDemand) {
		t.Errorf("err = %v, want ErrChoseNonDemand", err)
	}
}

type badAlg struct{ choose []setsystem.SetID }

func (badAlg) Name() string                                                  { return "bad" }
func (badAlg) Reset([]float64, []int, *rand.Rand) error                      { return nil }
func (b badAlg) Admit(Element, func(setsystem.SetID) bool) []setsystem.SetID { return b.choose }

func TestRandPrNeedsRNG(t *testing.T) {
	in := twoSetInstance()
	if _, err := Run(in, &RandPr{}, nil); err == nil {
		t.Error("genRandPr without rng should error")
	}
}

func TestRandPrValidRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, err := Random(RandomConfig{M: 12, N: 30, Load: 4, MaxDemand: 3, Capacity: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		res, err := Run(in, &RandPr{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Benefit < 0 || res.Benefit > in.TotalWeight() {
			t.Fatalf("benefit %v out of range", res.Benefit)
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		in, err := Random(RandomConfig{
			M: 3 + rng.Intn(8), N: 4 + rng.Intn(8),
			Load: 2, MaxDemand: 3, Capacity: 3,
			WeightFn: func(i int) float64 { return float64(1 + i%5) },
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Exact(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForce(in); math.Abs(sol.Benefit-want) > 1e-9 {
			t.Fatalf("trial %d: Exact = %v, brute = %v", trial, sol.Benefit, want)
		}
	}
}

func bruteForce(in *Instance) float64 {
	m := in.NumSets()
	best := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		ok := true
		w := 0.0
		for j, e := range in.Elements {
			used := 0
			for _, d := range e.Demands {
				if mask&(1<<int(d.Set)) != 0 {
					used += d.Amount
				}
			}
			if used > e.Capacity {
				ok = false
				break
			}
			_ = j
		}
		if !ok {
			continue
		}
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				w += in.Weights[i]
			}
		}
		if w > best {
			best = w
		}
	}
	return best
}

func TestExactNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, err := Random(RandomConfig{M: 14, N: 20, Load: 3, MaxDemand: 2, Capacity: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(in, 2); err == nil {
		t.Error("tiny budget should exhaust")
	}
}

func TestRandomRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, cfg := range []RandomConfig{
		{M: 0, N: 1, Load: 1, MaxDemand: 1, Capacity: 1},
		{M: 1, N: 0, Load: 1, MaxDemand: 1, Capacity: 1},
		{M: 1, N: 1, Load: 0, MaxDemand: 1, Capacity: 1},
		{M: 1, N: 1, Load: 1, MaxDemand: 0, Capacity: 1},
		{M: 1, N: 1, Load: 1, MaxDemand: 1, Capacity: 0},
	} {
		if _, err := Random(cfg, rng); !errors.Is(err, ErrInvalid) {
			t.Errorf("Random(%+v) err = %v, want ErrInvalid", cfg, err)
		}
	}
}

// With unit demands the generalized model must agree with OSP: genRandPr's
// admit rule degenerates to "top-b by priority".
func TestUnitDemandDegeneratesToOSP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in, err := Random(RandomConfig{M: 10, N: 25, Load: 4, MaxDemand: 1, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, &RandPr{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit < 0 || res.Benefit > in.TotalWeight() {
		t.Fatalf("benefit %v out of range", res.Benefit)
	}
	// The exact optimum dominates the online run.
	sol, err := Exact(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit > sol.Benefit+1e-9 {
		t.Errorf("online %v beat the optimum %v", res.Benefit, sol.Benefit)
	}
}

func TestDemandOfBinarySearch(t *testing.T) {
	e := Element{Demands: []Demand{{1, 4}, {5, 2}, {9, 7}}}
	if amt, ok := demandOf(e, 5); !ok || amt != 2 {
		t.Errorf("demandOf(5) = %d,%v", amt, ok)
	}
	if _, ok := demandOf(e, 4); ok {
		t.Error("demandOf(4) should miss")
	}
}
