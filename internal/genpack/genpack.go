// Package genpack implements the first open problem of the paper's
// Section 5: generalizing OSP "to arbitrary packing problems, where the
// entries in the matrix are arbitrary non-negative integers". An element
// u arrives with capacity b(u) and a demand a(u,S) ≥ 1 for every set S
// containing it; the algorithm admits a subset of the demanding sets
// whose demands sum to at most b(u). A set pays its weight only if it is
// admitted at every element it demands. OSP is the special case
// a(u,S) = 1.
//
// In the systems reading, demands are packet sizes: a frame's slot-u
// fragment occupies a(u,S) units of the link's b(u)-unit budget.
//
// The package mirrors the core engine in miniature: a streaming runner
// with validation, the natural generalization of randPr (admit sets in
// R_w-priority order while they fit — a priority-ordered knapsack), two
// greedy baselines, an exact branch-and-bound optimum, and a random
// instance generator. No competitive bound is proven for this setting in
// the paper; the X15 experiment measures how the randPr recipe actually
// scales here.
package genpack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/setsystem"
)

// Demand is one entry of the packing matrix: set Set requests Amount
// units of the arriving element's capacity.
type Demand struct {
	Set    setsystem.SetID
	Amount int
}

// Element is one online arrival of the generalized problem.
type Element struct {
	// Demands lists the requesting sets in increasing SetID order.
	Demands []Demand
	// Capacity is b(u) ≥ 1.
	Capacity int
}

// Instance is a generalized packing instance.
type Instance struct {
	Weights  []float64
	Sizes    []int // number of elements each set demands
	Elements []Element
}

// NumSets returns the number of sets.
func (in *Instance) NumSets() int { return len(in.Weights) }

// NumElements returns the number of elements.
func (in *Instance) NumElements() int { return len(in.Elements) }

// TotalWeight returns the sum of set weights.
func (in *Instance) TotalWeight() float64 {
	var t float64
	for _, w := range in.Weights {
		t += w
	}
	return t
}

// Errors reported by validation and the runner.
var (
	ErrInvalid        = errors.New("genpack: invalid instance")
	ErrChoseNonDemand = errors.New("genpack: algorithm admitted a set not demanding the element")
	ErrOverCapacity   = errors.New("genpack: admitted demands exceed element capacity")
)

// Validate checks structural invariants.
func (in *Instance) Validate() error {
	counts := make([]int, in.NumSets())
	for j, e := range in.Elements {
		if e.Capacity < 1 {
			return fmt.Errorf("%w: element %d capacity %d", ErrInvalid, j, e.Capacity)
		}
		prev := setsystem.SetID(-1)
		for _, d := range e.Demands {
			if d.Set <= prev || int(d.Set) >= in.NumSets() {
				return fmt.Errorf("%w: element %d demand order/range", ErrInvalid, j)
			}
			if d.Amount < 1 {
				return fmt.Errorf("%w: element %d demand amount %d", ErrInvalid, j, d.Amount)
			}
			prev = d.Set
			counts[d.Set]++
		}
	}
	for i, c := range counts {
		if c != in.Sizes[i] {
			return fmt.Errorf("%w: set %d declared %d elements, has %d", ErrInvalid, i, in.Sizes[i], c)
		}
	}
	return nil
}

// Algorithm is an online algorithm for generalized packing.
type Algorithm interface {
	Name() string
	Reset(weights []float64, sizes []int, rng *rand.Rand) error
	// Admit returns the sets to admit; their demands must fit within
	// e.Capacity.
	Admit(e Element, active func(setsystem.SetID) bool) []setsystem.SetID
}

// Result summarizes a run.
type Result struct {
	Completed []setsystem.SetID
	Benefit   float64
}

// Run streams the instance through the algorithm, enforcing capacity
// feasibility, and returns the completed sets.
func Run(in *Instance, alg Algorithm, rng *rand.Rand) (*Result, error) {
	if err := alg.Reset(in.Weights, in.Sizes, rng); err != nil {
		return nil, err
	}
	arrived := make([]int, in.NumSets())
	admitted := make([]int, in.NumSets())
	active := func(s setsystem.SetID) bool { return arrived[s] == admitted[s] }

	for j, e := range in.Elements {
		choice := alg.Admit(e, active)
		total := 0
		seen := make(map[setsystem.SetID]bool, len(choice))
		for _, s := range choice {
			amt, ok := demandOf(e, s)
			if !ok {
				return nil, fmt.Errorf("%w: element %d, set %d", ErrChoseNonDemand, j, s)
			}
			if seen[s] {
				return nil, fmt.Errorf("genpack: element %d, set %d admitted twice", j, s)
			}
			seen[s] = true
			total += amt
		}
		if total > e.Capacity {
			return nil, fmt.Errorf("%w: element %d, used %d of %d", ErrOverCapacity, j, total, e.Capacity)
		}
		for _, d := range e.Demands {
			arrived[d.Set]++
		}
		for _, s := range choice {
			admitted[s]++
		}
	}
	res := &Result{}
	for i := range in.Weights {
		if arrived[i] == admitted[i] && arrived[i] == in.Sizes[i] {
			res.Completed = append(res.Completed, setsystem.SetID(i))
			res.Benefit += in.Weights[i]
		}
	}
	return res, nil
}

func demandOf(e Element, s setsystem.SetID) (int, bool) {
	lo, hi := 0, len(e.Demands)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case e.Demands[mid].Set < s:
			lo = mid + 1
		case e.Demands[mid].Set > s:
			hi = mid
		default:
			return e.Demands[mid].Amount, true
		}
	}
	return 0, false
}

// RandPr generalizes the paper's algorithm: fixed R_w priorities; each
// element admits sets in decreasing priority order while their demands
// still fit — a priority-ordered knapsack heuristic.
type RandPr struct {
	prio []float64
	buf  []setsystem.SetID
}

var _ Algorithm = (*RandPr)(nil)

// Name implements Algorithm.
func (a *RandPr) Name() string { return "genRandPr" }

// Reset implements Algorithm.
func (a *RandPr) Reset(weights []float64, _ []int, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("genpack: genRandPr needs a random source")
	}
	a.prio = make([]float64, len(weights))
	for i, w := range weights {
		a.prio[i] = dist.Sample(rng, w)
	}
	return nil
}

// Admit implements Algorithm.
func (a *RandPr) Admit(e Element, _ func(setsystem.SetID) bool) []setsystem.SetID {
	return admitByScore(e, &a.buf, func(s setsystem.SetID) float64 { return a.prio[s] })
}

// GreedyWeight admits still-completable sets in decreasing weight order
// while they fit.
type GreedyWeight struct {
	weights []float64
	buf     []setsystem.SetID
}

var _ Algorithm = (*GreedyWeight)(nil)

// Name implements Algorithm.
func (a *GreedyWeight) Name() string { return "genGreedyWeight" }

// Reset implements Algorithm.
func (a *GreedyWeight) Reset(weights []float64, _ []int, _ *rand.Rand) error {
	a.weights = weights
	return nil
}

// Admit implements Algorithm.
func (a *GreedyWeight) Admit(e Element, active func(setsystem.SetID) bool) []setsystem.SetID {
	return admitActiveByScore(e, &a.buf, active, func(s setsystem.SetID) float64 { return a.weights[s] })
}

// GreedySmallDemand admits still-completable sets in increasing demand
// order (fit as many as possible).
type GreedySmallDemand struct {
	buf []setsystem.SetID
}

var _ Algorithm = (*GreedySmallDemand)(nil)

// Name implements Algorithm.
func (a *GreedySmallDemand) Name() string { return "genGreedySmallDemand" }

// Reset implements Algorithm.
func (a *GreedySmallDemand) Reset([]float64, []int, *rand.Rand) error { return nil }

// Admit implements Algorithm.
func (a *GreedySmallDemand) Admit(e Element, active func(setsystem.SetID) bool) []setsystem.SetID {
	order := make([]int, len(e.Demands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		dx, dy := e.Demands[order[x]], e.Demands[order[y]]
		if dx.Amount != dy.Amount {
			return dx.Amount < dy.Amount
		}
		return dx.Set < dy.Set
	})
	a.buf = a.buf[:0]
	budget := e.Capacity
	for _, i := range order {
		d := e.Demands[i]
		if !active(d.Set) || d.Amount > budget {
			continue
		}
		budget -= d.Amount
		a.buf = append(a.buf, d.Set)
	}
	return a.buf
}

// admitByScore admits demands in decreasing score order while they fit
// (no active filter — faithful to randPr's obliviousness).
func admitByScore(e Element, buf *[]setsystem.SetID, score func(setsystem.SetID) float64) []setsystem.SetID {
	return admitActiveByScore(e, buf, func(setsystem.SetID) bool { return true }, score)
}

func admitActiveByScore(e Element, buf *[]setsystem.SetID, active func(setsystem.SetID) bool, score func(setsystem.SetID) float64) []setsystem.SetID {
	order := make([]int, len(e.Demands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		sx, sy := score(e.Demands[order[x]].Set), score(e.Demands[order[y]].Set)
		if sx != sy {
			return sx > sy
		}
		return e.Demands[order[x]].Set < e.Demands[order[y]].Set
	})
	out := (*buf)[:0]
	budget := e.Capacity
	for _, i := range order {
		d := e.Demands[i]
		if !active(d.Set) || d.Amount > budget {
			continue
		}
		budget -= d.Amount
		out = append(out, d.Set)
	}
	*buf = out
	return out
}

// Exact computes the offline optimum by branch-and-bound with per-element
// residual capacities.
func Exact(in *Instance, maxNodes int64) (*Result, error) {
	if maxNodes <= 0 {
		maxNodes = 20_000_000
	}
	m := in.NumSets()
	// memberDemands[i] lists (element, amount) pairs of set i.
	type cell struct{ elem, amount int }
	memberDemands := make([][]cell, m)
	for j, e := range in.Elements {
		for _, d := range e.Demands {
			memberDemands[d.Set] = append(memberDemands[d.Set], cell{j, d.Amount})
		}
	}
	order := make([]setsystem.SetID, m)
	for i := range order {
		order[i] = setsystem.SetID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := in.Weights[order[a]], in.Weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	suffix := make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + in.Weights[order[i]]
	}
	residual := make([]int, in.NumElements())
	for j, e := range in.Elements {
		residual[j] = e.Capacity
	}

	var best float64
	var bestSets []setsystem.SetID
	var cur []setsystem.SetID
	var nodes int64
	var overBudget bool

	var dfs func(idx int, w float64)
	dfs = func(idx int, w float64) {
		if overBudget {
			return
		}
		nodes++
		if nodes > maxNodes {
			overBudget = true
			return
		}
		if w > best {
			best = w
			bestSets = append(bestSets[:0], cur...)
		}
		if idx == m || w+suffix[idx] <= best {
			return
		}
		s := order[idx]
		fits := true
		for _, c := range memberDemands[s] {
			if residual[c.elem] < c.amount {
				fits = false
				break
			}
		}
		if fits && in.Weights[s] > 0 {
			for _, c := range memberDemands[s] {
				residual[c.elem] -= c.amount
			}
			cur = append(cur, s)
			dfs(idx+1, w+in.Weights[s])
			cur = cur[:len(cur)-1]
			for _, c := range memberDemands[s] {
				residual[c.elem] += c.amount
			}
		}
		dfs(idx+1, w)
	}
	dfs(0, 0)
	if overBudget {
		return nil, fmt.Errorf("genpack: node budget exhausted after %d nodes", nodes)
	}
	sort.Slice(bestSets, func(i, j int) bool { return bestSets[i] < bestSets[j] })
	return &Result{Completed: bestSets, Benefit: best}, nil
}

// RandomConfig parameterizes the generator.
type RandomConfig struct {
	M         int // sets
	N         int // elements
	Load      int // demanding sets per element
	MaxDemand int // demands drawn uniformly from [1, MaxDemand]
	Capacity  int // element capacity
	// WeightFn returns set weights; nil means unweighted.
	WeightFn func(i int) float64
}

// Random generates a random generalized instance. Sets never demanded by
// any sampled element get one private unit-demand element.
func Random(cfg RandomConfig, rng *rand.Rand) (*Instance, error) {
	if cfg.M < 1 || cfg.N < 1 || cfg.Load < 1 || cfg.MaxDemand < 1 || cfg.Capacity < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrInvalid, cfg)
	}
	load := cfg.Load
	if load > cfg.M {
		load = cfg.M
	}
	in := &Instance{
		Weights: make([]float64, cfg.M),
		Sizes:   make([]int, cfg.M),
	}
	for i := range in.Weights {
		if cfg.WeightFn != nil {
			in.Weights[i] = cfg.WeightFn(i)
		} else {
			in.Weights[i] = 1
		}
	}
	touched := make([]bool, cfg.M)
	for j := 0; j < cfg.N; j++ {
		perm := rng.Perm(cfg.M)[:load]
		sort.Ints(perm)
		e := Element{Capacity: cfg.Capacity}
		for _, p := range perm {
			e.Demands = append(e.Demands, Demand{Set: setsystem.SetID(p), Amount: 1 + rng.Intn(cfg.MaxDemand)})
			in.Sizes[p]++
			touched[p] = true
		}
		in.Elements = append(in.Elements, e)
	}
	for i, tt := range touched {
		if !tt {
			in.Elements = append(in.Elements, Element{
				Demands:  []Demand{{Set: setsystem.SetID(i), Amount: 1}},
				Capacity: cfg.Capacity,
			})
			in.Sizes[i]++
		}
	}
	return in, in.Validate()
}
