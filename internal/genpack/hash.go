package genpack

import (
	"errors"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
)

// HashRandPr is the distributed variant of the generalized algorithm:
// priorities derive from a shared hash function exactly as in the
// unit-demand case (Section 3.1 of the paper), so bounded-capacity servers
// handling different elements of the same task admit consistently without
// coordination.
type HashRandPr struct {
	// Hasher maps set identifiers to uniform [0,1) variates.
	Hasher hashpr.UniformHasher

	prio []float64
	buf  []setsystem.SetID
}

var _ Algorithm = (*HashRandPr)(nil)

// Name implements Algorithm.
func (a *HashRandPr) Name() string { return "genHashRandPr" }

// Reset implements Algorithm. The rng parameter is unused: all randomness
// comes from the hasher.
func (a *HashRandPr) Reset(weights []float64, _ []int, _ *rand.Rand) error {
	if a.Hasher == nil {
		return errors.New("genpack: genHashRandPr needs a Hasher")
	}
	a.prio = make([]float64, len(weights))
	for i, w := range weights {
		a.prio[i] = dist.FromUniform(a.Hasher.Uniform(uint64(i)), w)
	}
	return nil
}

// Admit implements Algorithm: sets in decreasing hash-priority order while
// their demands fit.
func (a *HashRandPr) Admit(e Element, _ func(setsystem.SetID) bool) []setsystem.SetID {
	return admitByScore(e, &a.buf, func(s setsystem.SetID) float64 { return a.prio[s] })
}
