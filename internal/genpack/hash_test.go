package genpack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hashpr"
)

func TestHashRandPrDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, err := Random(RandomConfig{M: 10, N: 25, Load: 3, MaxDemand: 3, Capacity: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(in, &HashRandPr{Hasher: hashpr.Mixer{Seed: 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(in, &HashRandPr{Hasher: hashpr.Mixer{Seed: 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Benefit != r2.Benefit {
		t.Error("same-seed distributed runs disagree")
	}
	if _, err := Run(in, &HashRandPr{}, nil); err == nil {
		t.Error("missing hasher should error")
	}
}

// Over many seeds the hash variant's mean benefit matches the RNG
// variant's: the distributed implementation is behaviourally equivalent
// in the generalized model too.
func TestHashRandPrMatchesRNGVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in, err := Random(RandomConfig{
		M: 12, N: 30, Load: 4, MaxDemand: 2, Capacity: 3,
		WeightFn: func(i int) float64 { return float64(1 + i%4) },
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 4000
	var viaRNG, viaHash float64
	for s := 0; s < trials; s++ {
		r, err := Run(in, &RandPr{}, rand.New(rand.NewSource(int64(s))))
		if err != nil {
			t.Fatal(err)
		}
		viaRNG += r.Benefit
		r, err = Run(in, &HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(s)}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		viaHash += r.Benefit
	}
	viaRNG /= trials
	viaHash /= trials
	if math.Abs(viaRNG-viaHash) > 0.2 {
		t.Errorf("RNG mean %v vs hash mean %v — distributed parity broken", viaRNG, viaHash)
	}
}
