package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width text tables for experiment output, matching
// the row/series style of a paper's evaluation section. Rows are formatted
// with %v cells; numeric cells may be pre-formatted strings.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with fmt.Sprint. Short rows are
// padded with empty cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprint(cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
