package stats

import (
	"encoding/csv"
	"io"
)

// RenderCSV writes the table as RFC-4180 CSV (header row first), for
// machine-readable experiment output alongside the human-readable text
// rendering.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
