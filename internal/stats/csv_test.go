package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored title", "a", "b")
	tb.AddRow(1, "x,y") // comma in a cell must be quoted
	tb.AddRow(2.5, "z")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `1,"x,y"` {
		t.Errorf("row 1 = %q, want quoted comma cell", lines[1])
	}
}
