package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Error("zero accumulator should be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if got, want := a.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	// Population variance of this classic data set is 4; sample variance
	// = 32/7.
	if got, want := a.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min,Max = %v,%v want 2,9", a.Min(), a.Max())
	}
}

func TestAccumulatorMatchesDirectFormula(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			a.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStdErrAndCI(t *testing.T) {
	var a Accumulator
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 2)) // variance 0.2513...
	}
	se := a.StdDev() / 10
	if math.Abs(a.StdErr()-se) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", a.StdErr(), se)
	}
	if math.Abs(a.CI95()-1.96*se) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", a.CI95(), 1.96*se)
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	s := a.Summarize()
	if s.N != 2 || s.Mean != 1.5 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=2") {
		t.Errorf("String = %q", s.String())
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// input unchanged
	if data[0] != 5 {
		t.Error("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// interpolation
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-12 {
		t.Errorf("Quantile interpolation = %v, want 3", got)
	}
}

func TestRatioOfMeans(t *testing.T) {
	var num, den Accumulator
	num.Add(10)
	num.Add(20)
	den.Add(2)
	den.Add(3)
	if got, want := RatioOfMeans(&num, &den), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("RatioOfMeans = %v, want %v", got, want)
	}
	var zero Accumulator
	zero.Add(0)
	if !math.IsInf(RatioOfMeans(&num, &zero), 1) {
		t.Error("ratio with zero denominator should be +Inf")
	}
	var zn Accumulator
	zn.Add(0)
	if !math.IsNaN(RatioOfMeans(&zn, &zero)) {
		t.Error("0/0 ratio should be NaN")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "col1", "verywidecolumn", "x")
	tb.AddRow(1, "ab", 3.5)
	tb.AddRow("longervalue", 2)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "verywidecolumn") {
		t.Errorf("render missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as long as the header line.
	if len(lines[3]) < len("longervalue") {
		t.Errorf("row line too short: %q", lines[3])
	}
}
