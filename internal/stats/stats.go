// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming moments (Welford), normal confidence
// intervals, ratio summaries and fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance with Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the minimum observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the maximum observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 1 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Summary is a snapshot of an Accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize returns the accumulator's snapshot.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), StdErr: a.StdErr(),
		CI95: a.CI95(), Min: a.min, Max: a.max,
	}
}

// String formats the summary as "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95, s.N)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using linear
// interpolation between order statistics. The input is not modified.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// RatioOfMeans returns num.Mean()/den.Mean(), the standard estimator for a
// competitive ratio OPT/E[ALG] across repeated trials; it returns +Inf when
// the denominator mean is 0 and the numerator positive, and NaN when both
// are 0.
func RatioOfMeans(num, den *Accumulator) float64 {
	d := den.Mean()
	n := num.Mean()
	if d == 0 {
		if n == 0 {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return n / d
}
