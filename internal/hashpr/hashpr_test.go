package hashpr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMixerDeterministic(t *testing.T) {
	m := Mixer{Seed: 42}
	if m.Hash(7) != m.Hash(7) {
		t.Error("Mixer.Hash not deterministic")
	}
	m2 := Mixer{Seed: 43}
	if m.Hash(7) == m2.Hash(7) {
		t.Error("different seeds should give different hashes (w.h.p.)")
	}
}

func TestMixerUniformRange(t *testing.T) {
	m := Mixer{Seed: 1}
	for x := uint64(0); x < 10000; x++ {
		u := m.Uniform(x)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform(%d) = %v out of [0,1)", x, u)
		}
	}
}

func TestMixerUniformity(t *testing.T) {
	m := Mixer{Seed: 99}
	const buckets, samples = 16, 160000
	counts := make([]int, buckets)
	for x := uint64(0); x < samples; x++ {
		counts[int(m.Uniform(x)*buckets)]++
	}
	want := float64(samples) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: %d, want ~%v", i, c, want)
		}
	}
}

func TestMixerAvalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	m := Mixer{Seed: 7}
	var totalFlips, trials int
	for x := uint64(0); x < 2000; x++ {
		h := m.Hash(x)
		for bit := 0; bit < 64; bit += 7 {
			h2 := m.Hash(x ^ (1 << bit))
			totalFlips += popcount(h ^ h2)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %v bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMulmod61(t *testing.T) {
	// Cross-check against big-number arithmetic via repeated addition for
	// structured cases and against math/bits-free 128-bit multiply.
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {mersenne61 - 1, mersenne61 - 1},
		{mersenne61 - 1, 2}, {1 << 60, 1 << 60}, {123456789, 987654321},
	}
	for _, c := range cases {
		got := mulmod61(c.a, c.b)
		want := slowMulMod(c.a, c.b)
		if got != want {
			t.Errorf("mulmod61(%d,%d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// slowMulMod computes a*b mod 2^61-1 via double-and-add (no overflow since
// intermediate values stay below 2^62).
func slowMulMod(a, b uint64) uint64 {
	a %= mersenne61
	var acc uint64
	for b > 0 {
		if b&1 == 1 {
			acc = (acc + a) % mersenne61
		}
		a = (a + a) % mersenne61
		b >>= 1
	}
	return acc
}

func TestMulmod61Property(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		return mulmod61(a, b) == slowMulMod(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNewPolyFamilyRejectsLowDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{-1, 0, 1} {
		if _, err := NewPolyFamily(d, rng); !errors.Is(err, ErrBadDegree) {
			t.Errorf("NewPolyFamily(%d) err = %v, want ErrBadDegree", d, err)
		}
	}
	pf, err := NewPolyFamily(4, rng)
	if err != nil {
		t.Fatalf("NewPolyFamily(4): %v", err)
	}
	if pf.Degree() != 4 {
		t.Errorf("Degree = %d, want 4", pf.Degree())
	}
}

func TestPolyFamilyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pf, _ := NewPolyFamily(3, rng)
	if pf.Hash(12345) != pf.Hash(12345) {
		t.Error("PolyFamily.Hash not deterministic")
	}
}

// Pairwise independence: over random family members, the joint distribution
// of (h(x), h(y)) for x≠y should factorize. We verify the correlation of
// bucket indicators is near zero.
func TestPolyFamilyPairwiseIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const trials = 40000
	var bothLow, xLow, yLow int
	for i := 0; i < trials; i++ {
		pf, _ := NewPolyFamily(2, rng)
		ux, uy := pf.Uniform(17), pf.Uniform(91)
		if ux < 0.5 {
			xLow++
		}
		if uy < 0.5 {
			yLow++
		}
		if ux < 0.5 && uy < 0.5 {
			bothLow++
		}
	}
	px := float64(xLow) / trials
	py := float64(yLow) / trials
	pxy := float64(bothLow) / trials
	if math.Abs(px-0.5) > 0.02 || math.Abs(py-0.5) > 0.02 {
		t.Errorf("marginals: %v, %v want ~0.5", px, py)
	}
	if math.Abs(pxy-px*py) > 0.02 {
		t.Errorf("joint %v != product %v: not pairwise independent", pxy, px*py)
	}
}

func TestPolyFamilyUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pf, _ := NewPolyFamily(5, rng)
	for x := uint64(0); x < 5000; x++ {
		u := pf.Uniform(x)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform(%d) = %v out of [0,1)", x, u)
		}
	}
}

func TestHornerEvaluation(t *testing.T) {
	// h(x) = 3 + 2x + x² at x=5 → 3+10+25 = 38.
	pf := &PolyFamily{coeffs: []uint64{3, 2, 1}}
	if got := pf.Hash(5); got != 38 {
		t.Errorf("Hash(5) = %d, want 38", got)
	}
}
