// Package hashpr provides the hash-based priorities that make randPr a
// distributed algorithm (Section 3.1 of the paper): every server derives
// the priority of a set from a shared seed and the set's identifier, so no
// coordination is needed for all servers to agree on priorities.
//
// Two families are provided:
//
//   - Mixer: a SplitMix64 finalizer — the "any off-the-shelf hash function
//     would do" option. Full avalanche, effectively independent for
//     practical purposes.
//   - PolyFamily: polynomial hashing over the Mersenne prime 2^61−1, an
//     explicitly d-wise independent family — the theoretical option the
//     paper mentions (kmax·σmax-wise independence suffices).
//
// Both produce uniform variates in [0,1) which callers map through
// dist.FromUniform to obtain R_w priorities.
package hashpr

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// Mixer is a stateless 64-bit hash with a seed, based on the SplitMix64
// finalizer. The zero value is usable (seed 0), but distinct seeds give
// independent-looking priority assignments.
type Mixer struct {
	Seed uint64
}

// Hash returns the mixed 64-bit hash of x under the seed.
func (m Mixer) Hash(x uint64) uint64 {
	z := x + m.Seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uniform returns the hash of x mapped to [0,1) with 53 bits of precision.
func (m Mixer) Uniform(x uint64) float64 {
	return float64(m.Hash(x)>>11) / (1 << 53)
}

// mersenne61 is the Mersenne prime 2^61 − 1 used as the field modulus of
// PolyFamily.
const mersenne61 = (1 << 61) - 1

// mulmod61 multiplies a·b modulo 2^61−1. bits.Mul64 is a compiler
// intrinsic (a single MULX/UMULH pair on amd64/arm64), so the full 128-bit
// product costs one multiply instead of the four 32×32 limb products a
// portable schoolbook split needs.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Split the 128-bit product into 61-bit limbs and fold: since
	// 2^61 ≡ 1 (mod p), the product ≡ low61 + middle + high (mod p).
	l := lo & mersenne61
	h := (lo >> 61) | (hi << 3)
	s := l + h
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// ErrBadDegree is returned when a PolyFamily is requested with fewer than 2
// coefficients (pairwise independence is the minimum useful degree).
var ErrBadDegree = errors.New("hashpr: independence degree must be >= 2")

// PolyFamily is a d-wise independent hash family: h(x) = Σ c_i x^i mod p
// with p = 2^61−1 and d random coefficients. Evaluations at any d distinct
// points are independent and uniform over the field.
type PolyFamily struct {
	coeffs []uint64
}

// NewPolyFamily draws a random member of the d-wise independent family
// using rng. It returns ErrBadDegree if d < 2.
func NewPolyFamily(d int, rng *rand.Rand) (*PolyFamily, error) {
	if d < 2 {
		return nil, fmt.Errorf("%w: d=%d", ErrBadDegree, d)
	}
	coeffs := make([]uint64, d)
	for i := range coeffs {
		coeffs[i] = uint64(rng.Int63n(mersenne61))
	}
	// Leading coefficient nonzero keeps the polynomial degree exactly d−1.
	if coeffs[d-1] == 0 {
		coeffs[d-1] = 1
	}
	return &PolyFamily{coeffs: coeffs}, nil
}

// Degree returns the independence degree d.
func (p *PolyFamily) Degree() int { return len(p.coeffs) }

// Hash evaluates the polynomial at x by Horner's rule, returning a value
// in [0, 2^61−1).
func (p *PolyFamily) Hash(x uint64) uint64 {
	x %= mersenne61
	var acc uint64
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = mulmod61(acc, x)
		acc += p.coeffs[i]
		if acc >= mersenne61 {
			acc -= mersenne61
		}
	}
	return acc
}

// Uniform returns the hash of x mapped to [0,1).
func (p *PolyFamily) Uniform(x uint64) float64 {
	return float64(p.Hash(x)) / float64(uint64(mersenne61))
}

// UniformHasher is the interface shared by Mixer and PolyFamily: a
// deterministic map from 64-bit identifiers to uniform [0,1) variates.
// Any implementation can drive the distributed randPr.
type UniformHasher interface {
	Uniform(x uint64) float64
}

// FillUniform sets out[i] = h.Uniform(uint64(i)) for every i — the bulk
// fill path used when a whole priority vector is derived at once. The
// concrete-type branches devirtualize the per-index hash call so the
// known hashers inline into a tight loop instead of paying an interface
// dispatch per set.
func FillUniform(h UniformHasher, out []float64) {
	switch h := h.(type) {
	case Mixer:
		for i := range out {
			out[i] = h.Uniform(uint64(i))
		}
	case *PolyFamily:
		for i := range out {
			out[i] = h.Uniform(uint64(i))
		}
	default:
		for i := range out {
			out[i] = h.Uniform(uint64(i))
		}
	}
}

var (
	_ UniformHasher = Mixer{}
	_ UniformHasher = (*PolyFamily)(nil)
)
