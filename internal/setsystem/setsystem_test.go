package setsystem

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// tinyInstance is the worked example used across the tests:
// three sets A={u0,u1}, B={u0,u2}, C={u1,u2} with weights 1, 2, 3.
func tinyInstance(t *testing.T) *Instance {
	t.Helper()
	var b Builder
	a := b.AddSet(1)
	bb := b.AddSet(2)
	c := b.AddSet(3)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	in, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return in
}

func TestBuilderDerivesSizes(t *testing.T) {
	in := tinyInstance(t)
	if got, want := in.NumSets(), 3; got != want {
		t.Fatalf("NumSets = %d, want %d", got, want)
	}
	if got, want := in.NumElements(), 3; got != want {
		t.Fatalf("NumElements = %d, want %d", got, want)
	}
	for i, sz := range in.Sizes {
		if sz != 2 {
			t.Errorf("Sizes[%d] = %d, want 2", i, sz)
		}
	}
}

func TestTotalWeight(t *testing.T) {
	in := tinyInstance(t)
	if got, want := in.TotalWeight(), 6.0; got != want {
		t.Errorf("TotalWeight = %v, want %v", got, want)
	}
	if got, want := in.Weight([]SetID{0, 2}), 4.0; got != want {
		t.Errorf("Weight({0,2}) = %v, want %v", got, want)
	}
}

func TestIsUnitCapacityAndUnweighted(t *testing.T) {
	in := tinyInstance(t)
	if !in.IsUnitCapacity() {
		t.Error("IsUnitCapacity = false, want true")
	}
	if in.IsUnweighted() {
		t.Error("IsUnweighted = true, want false (weights 1,2,3)")
	}

	var b Builder
	s := b.AddSet(1)
	b.AddElementCap(2, s)
	in2 := b.MustBuild()
	if in2.IsUnitCapacity() {
		t.Error("IsUnitCapacity = true for capacity-2 element")
	}
	if !in2.IsUnweighted() {
		t.Error("IsUnweighted = false, want true")
	}
}

func TestMemberMatrix(t *testing.T) {
	in := tinyInstance(t)
	mm := in.MemberMatrix()
	want := [][]int{{0, 1}, {0, 2}, {1, 2}}
	for i := range want {
		if len(mm[i]) != len(want[i]) {
			t.Fatalf("set %d rows = %v, want %v", i, mm[i], want[i])
		}
		for j := range want[i] {
			if mm[i][j] != want[i][j] {
				t.Errorf("set %d rows = %v, want %v", i, mm[i], want[i])
			}
		}
	}
}

func TestValidateCatchesSizeMismatch(t *testing.T) {
	in := tinyInstance(t)
	in.Sizes[0] = 3
	if err := in.Validate(); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("Validate = %v, want ErrSizeMismatch", err)
	}
}

func TestValidateCatchesBadCapacity(t *testing.T) {
	in := tinyInstance(t)
	in.Elements[1].Capacity = 0
	if err := in.Validate(); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("Validate = %v, want ErrBadCapacity", err)
	}
	// Capacities past the int32 ceiling are invalid too: downstream
	// batch layouts store b(u) as int32, and a silent truncation there
	// would break the engine/serial equivalence.
	in = tinyInstance(t)
	in.Elements[1].Capacity = math.MaxInt32 + 1
	if err := in.Validate(); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("Validate(capacity 2^31) = %v, want ErrBadCapacity", err)
	}
}

func TestValidateCatchesUnsortedMembers(t *testing.T) {
	in := tinyInstance(t)
	in.Elements[0].Members = []SetID{1, 0}
	if err := in.Validate(); !errors.Is(err, ErrBadMemberOrder) {
		t.Errorf("Validate = %v, want ErrBadMemberOrder", err)
	}
}

func TestValidateCatchesDuplicateMembers(t *testing.T) {
	in := tinyInstance(t)
	in.Elements[0].Members = []SetID{0, 0}
	if err := in.Validate(); !errors.Is(err, ErrBadMemberOrder) {
		t.Errorf("Validate = %v, want ErrBadMemberOrder (duplicates)", err)
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	in := tinyInstance(t)
	in.Elements[0].Members = []SetID{0, 99}
	if err := in.Validate(); !errors.Is(err, ErrMemberRange) {
		t.Errorf("Validate = %v, want ErrMemberRange", err)
	}
}

func TestValidateCatchesNegativeWeight(t *testing.T) {
	in := tinyInstance(t)
	in.Weights[2] = -1
	if err := in.Validate(); !errors.Is(err, ErrNegativeWeight) {
		t.Errorf("Validate = %v, want ErrNegativeWeight", err)
	}
}

func TestValidateCatchesEmptyElement(t *testing.T) {
	in := tinyInstance(t)
	in.Elements[0].Members = nil
	if err := in.Validate(); !errors.Is(err, ErrEmptyElement) {
		t.Errorf("Validate = %v, want ErrEmptyElement", err)
	}
}

func TestValidateCatchesLengthMismatch(t *testing.T) {
	in := tinyInstance(t)
	in.Sizes = in.Sizes[:2]
	if err := in.Validate(); !errors.Is(err, ErrLengthsDiffer) {
		t.Errorf("Validate = %v, want ErrLengthsDiffer", err)
	}
}

func TestBuilderRejectsNegativeWeight(t *testing.T) {
	var b Builder
	b.AddSet(-5)
	if _, err := b.Build(); !errors.Is(err, ErrNegativeWeight) {
		t.Errorf("Build = %v, want ErrNegativeWeight", err)
	}
}

func TestBuilderRejectsBadCapacity(t *testing.T) {
	var b Builder
	s := b.AddSet(1)
	b.AddElementCap(0, s)
	if _, err := b.Build(); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("Build = %v, want ErrBadCapacity", err)
	}
}

func TestBuilderRejectsEmptyElement(t *testing.T) {
	var b Builder
	b.AddSet(1)
	b.AddElement()
	if _, err := b.Build(); !errors.Is(err, ErrEmptyElement) {
		t.Errorf("Build = %v, want ErrEmptyElement", err)
	}
}

func TestBuilderSortsAndDedupesMembers(t *testing.T) {
	var b Builder
	ids := b.AddSets(3, 1)
	b.AddElement(ids[2], ids[0], ids[2], ids[1])
	in := b.MustBuild()
	ms := in.Elements[0].Members
	if len(ms) != 3 || ms[0] != 0 || ms[1] != 1 || ms[2] != 2 {
		t.Errorf("Members = %v, want [0 1 2]", ms)
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := tinyInstance(t)
	cp := in.Clone()
	cp.Weights[0] = 99
	cp.Elements[0].Members[0] = 2
	if in.Weights[0] == 99 {
		t.Error("Clone shares Weights")
	}
	if in.Elements[0].Members[0] == 2 {
		t.Error("Clone shares Members")
	}
	if err := in.Validate(); err != nil {
		t.Errorf("original damaged by mutating clone: %v", err)
	}
}

func TestSortMembers(t *testing.T) {
	in := tinyInstance(t)
	in.Elements[0].Members = []SetID{1, 0}
	in.SortMembers()
	if err := in.Validate(); err != nil {
		t.Errorf("Validate after SortMembers: %v", err)
	}
}

func TestElementLoadAndAdjustedLoad(t *testing.T) {
	e := Element{Members: []SetID{0, 1, 2, 3}, Capacity: 2}
	if got, want := e.Load(), 4; got != want {
		t.Errorf("Load = %d, want %d", got, want)
	}
	if got, want := e.AdjustedLoad(), 2.0; got != want {
		t.Errorf("AdjustedLoad = %v, want %v", got, want)
	}
	bad := Element{Members: []SetID{0}, Capacity: 0}
	if got := bad.AdjustedLoad(); got != 0 {
		t.Errorf("AdjustedLoad with zero capacity = %v, want 0", got)
	}
}

func TestStringSummary(t *testing.T) {
	in := tinyInstance(t)
	s := in.String()
	for _, frag := range []string{"m=3", "n=3", "kmax=2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}
