package setsystem

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a line-oriented text format for OSP instances, so
// traces can be saved, shipped and replayed (cmd/osptrace). The format is
// deliberately trivial to parse with anything:
//
//	osp 1                     header: format name and version
//	# free-form comments
//	set <weight>              one line per set, in SetID order
//	elem <capacity> <id> ...  one line per element, in arrival order
//
// Declared sizes are derived on decode, exactly as the Builder does.

// codecVersion is the current format version.
const codecVersion = 1

// ErrCodec wraps all parse errors.
var ErrCodec = errors.New("setsystem: codec")

// Encode writes the instance in the text format.
func Encode(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "osp %d\n", codecVersion); err != nil {
		return err
	}
	for _, wt := range in.Weights {
		if _, err := fmt.Fprintf(bw, "set %s\n", strconv.FormatFloat(wt, 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, e := range in.Elements {
		if _, err := fmt.Fprintf(bw, "elem %d", e.Capacity); err != nil {
			return err
		}
		for _, s := range e.Members {
			if _, err := fmt.Fprintf(bw, " %d", s); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses an instance from the text format and validates it.
func Decode(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	line := 0
	readLine := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			return text, true
		}
		return "", false
	}

	header, ok := readLine()
	if !ok {
		return nil, fmt.Errorf("%w: empty input", ErrCodec)
	}
	var version int
	if _, err := fmt.Sscanf(header, "osp %d", &version); err != nil {
		return nil, fmt.Errorf("%w: line %d: bad header %q", ErrCodec, line, header)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, version)
	}

	var b Builder
	for {
		text, ok := readLine()
		if !ok {
			break
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "set":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: set needs exactly one weight", ErrCodec, line)
			}
			wt, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrCodec, line, err)
			}
			b.AddSet(wt)
		case "elem":
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: elem needs capacity and at least one set", ErrCodec, line)
			}
			capacity, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrCodec, line, err)
			}
			members := make([]SetID, 0, len(fields)-2)
			for _, f := range fields[2:] {
				id, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrCodec, line, err)
				}
				members = append(members, SetID(id))
			}
			b.AddElementCap(capacity, members...)
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrCodec, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	return inst, nil
}
