// Package setsystem defines weighted set systems with online element
// arrival, the combinatorial substrate of the online set packing (OSP)
// problem of Emek, Halldórsson, Mansour, Patt-Shamir, Radhakrishnan and
// Rawitz (PODC 2010).
//
// A set system consists of m sets over n elements. Each set S has a
// non-negative weight w(S) and a declared size |S| (the number of its
// elements, known to an online algorithm up front). Elements arrive one by
// one; element u arrives together with its capacity b(u) and the list C(u)
// of sets that contain it. In the paper's packet-network reading, elements
// are time steps, sets are multi-packet data frames, the capacity is the
// link rate, and C(u) lists the frames with a packet in the burst arriving
// at time u.
package setsystem

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SetID identifies a set within an Instance. IDs are dense indices in
// [0, m): the i-th declared set has SetID(i).
type SetID int32

// Element is one online arrival: the identifiers of all sets containing
// this element, and the number of sets the element may be assigned to
// (the paper's b(u); 1 in the unit-capacity model).
type Element struct {
	// Members lists the parent sets C(u) in strictly increasing SetID
	// order with no duplicates.
	Members []SetID
	// Capacity is b(u) >= 1, the number of parent sets this element may
	// be assigned to.
	Capacity int
}

// Load returns the element's load σ(u) = |C(u)|.
func (e Element) Load() int { return len(e.Members) }

// AdjustedLoad returns ν(u) = σ(u)/b(u), the paper's demand-to-supply
// ratio for variable-capacity instances (Definition 1).
func (e Element) AdjustedLoad() float64 {
	if e.Capacity <= 0 {
		return 0
	}
	return float64(len(e.Members)) / float64(e.Capacity)
}

// Instance is a complete OSP instance: per-set weights and declared sizes,
// plus the element arrival sequence. An online algorithm is shown Weights
// and Sizes at start (the paper: "Initially, for each set we know only its
// weight and size") and then Elements one at a time.
type Instance struct {
	// Weights[i] is w(S_i) >= 0.
	Weights []float64
	// Sizes[i] is |S_i|, the total number of elements of S_i.
	Sizes []int
	// Elements is the arrival order.
	Elements []Element
}

// NumSets returns m, the number of sets.
func (in *Instance) NumSets() int { return len(in.Weights) }

// NumElements returns n, the number of elements.
func (in *Instance) NumElements() int { return len(in.Elements) }

// TotalWeight returns w(C), the sum of all set weights.
func (in *Instance) TotalWeight() float64 {
	var t float64
	for _, w := range in.Weights {
		t += w
	}
	return t
}

// Weight returns the total weight of the given collection of sets.
func (in *Instance) Weight(sets []SetID) float64 {
	var t float64
	for _, s := range sets {
		t += in.Weights[s]
	}
	return t
}

// IsUnitCapacity reports whether every element has capacity exactly 1.
func (in *Instance) IsUnitCapacity() bool {
	for _, e := range in.Elements {
		if e.Capacity != 1 {
			return false
		}
	}
	return true
}

// IsUnweighted reports whether every set has weight exactly 1.
func (in *Instance) IsUnweighted() bool {
	for _, w := range in.Weights {
		if w != 1 {
			return false
		}
	}
	return true
}

// MemberMatrix returns, for each set, the indices of the elements it
// contains, in arrival order. It is the transpose of the element→set
// incidence and costs O(Σ σ(u)) time and space.
func (in *Instance) MemberMatrix() [][]int {
	rows := make([][]int, in.NumSets())
	for i, sz := range in.Sizes {
		rows[i] = make([]int, 0, sz)
	}
	for j, e := range in.Elements {
		for _, s := range e.Members {
			rows[s] = append(rows[s], j)
		}
	}
	return rows
}

// Errors returned by Validate.
var (
	ErrSizeMismatch   = errors.New("setsystem: declared set size differs from element membership count")
	ErrBadCapacity    = errors.New("setsystem: element capacity must be in [1, 2^31-1]")
	ErrBadMemberOrder = errors.New("setsystem: element members must be strictly increasing SetIDs")
	ErrMemberRange    = errors.New("setsystem: element member SetID out of range")
	ErrNegativeWeight = errors.New("setsystem: set weight must be non-negative")
	ErrLengthsDiffer  = errors.New("setsystem: Weights and Sizes must have equal length")
	ErrNegativeSize   = errors.New("setsystem: declared set size must be non-negative")
	ErrEmptyElement   = errors.New("setsystem: element must belong to at least one set")
	ErrEmptySet       = errors.New("setsystem: set must contain at least one element")
)

// Validate checks structural invariants: weights non-negative, capacities
// positive, member lists sorted, in range and non-empty, and every declared
// size equal to the number of elements actually listing the set.
func (in *Instance) Validate() error {
	if len(in.Weights) != len(in.Sizes) {
		return fmt.Errorf("%w: %d weights, %d sizes", ErrLengthsDiffer, len(in.Weights), len(in.Sizes))
	}
	for i, w := range in.Weights {
		if w < 0 {
			return fmt.Errorf("%w: set %d has weight %v", ErrNegativeWeight, i, w)
		}
	}
	for i, sz := range in.Sizes {
		if sz < 0 {
			return fmt.Errorf("%w: set %d has size %d", ErrNegativeSize, i, sz)
		}
		if sz == 0 {
			return fmt.Errorf("%w: set %d", ErrEmptySet, i)
		}
	}
	counts := make([]int, len(in.Sizes))
	for j, e := range in.Elements {
		if err := CheckElement(e, len(in.Weights)); err != nil {
			return fmt.Errorf("element %d: %w", j, err)
		}
		for _, s := range e.Members {
			counts[s]++
		}
	}
	for i, c := range counts {
		if c != in.Sizes[i] {
			return fmt.Errorf("%w: set %d declared %d, has %d", ErrSizeMismatch, i, in.Sizes[i], c)
		}
	}
	return nil
}

// CheckElement validates one element against a universe of m sets:
// capacity in [1, 2^31−1], at least one member, members strictly
// increasing and in [0, m). It is the per-element slice of Validate,
// shared with streaming ingestion paths that must reject elements as
// they arrive. The capacity ceiling keeps every downstream int32
// representation (the engine's flat batch layout) exact; no meaningful
// instance comes near it, since capacity is a per-slot link rate.
func CheckElement(e Element, m int) error {
	if e.Capacity < 1 || e.Capacity > math.MaxInt32 {
		return fmt.Errorf("%w: capacity %d", ErrBadCapacity, e.Capacity)
	}
	if len(e.Members) == 0 {
		return ErrEmptyElement
	}
	prev := SetID(-1)
	for _, s := range e.Members {
		if s < 0 || s >= SetID(m) {
			return fmt.Errorf("%w: set %d (m=%d)", ErrMemberRange, s, m)
		}
		if s <= prev {
			return fmt.Errorf("%w: set %d after %d", ErrBadMemberOrder, s, prev)
		}
		prev = s
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	cp := &Instance{
		Weights:  append([]float64(nil), in.Weights...),
		Sizes:    append([]int(nil), in.Sizes...),
		Elements: make([]Element, len(in.Elements)),
	}
	for j, e := range in.Elements {
		cp.Elements[j] = Element{
			Members:  append([]SetID(nil), e.Members...),
			Capacity: e.Capacity,
		}
	}
	return cp
}

// SortMembers sorts every element's member list in place into the canonical
// strictly-increasing order. Use after constructing elements whose member
// order is not already canonical.
func (in *Instance) SortMembers() {
	for j := range in.Elements {
		ms := in.Elements[j].Members
		sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
	}
}

// String returns a short human-readable summary such as
// "osp instance: m=12 sets, n=30 elements, kmax=4, σmax=3".
func (in *Instance) String() string {
	st := Compute(in)
	return fmt.Sprintf("osp instance: m=%d sets, n=%d elements, kmax=%d, σmax=%d",
		in.NumSets(), in.NumElements(), st.KMax, st.SigmaMax)
}
