package setsystem

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := tinyInstance(t)
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertInstancesEqual(t, in, out)
}

func assertInstancesEqual(t *testing.T, a, b *Instance) {
	t.Helper()
	if a.NumSets() != b.NumSets() || a.NumElements() != b.NumElements() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.NumSets(), a.NumElements(), b.NumSets(), b.NumElements())
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] || a.Sizes[i] != b.Sizes[i] {
			t.Fatalf("set %d differs", i)
		}
	}
	for j := range a.Elements {
		ea, eb := a.Elements[j], b.Elements[j]
		if ea.Capacity != eb.Capacity || len(ea.Members) != len(eb.Members) {
			t.Fatalf("element %d differs", j)
		}
		for x := range ea.Members {
			if ea.Members[x] != eb.Members[x] {
				t.Fatalf("element %d member %d differs", j, x)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng)
		var buf bytes.Buffer
		if err := Encode(&buf, in); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return Compute(in) == Compute(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCommentsAndBlankLines(t *testing.T) {
	src := `osp 1
# a comment

set 1.5
set 2

# elements
elem 1 0 1
elem 2 0
elem 1 1
`
	in, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumSets() != 2 || in.NumElements() != 3 {
		t.Errorf("decoded shape (%d,%d)", in.NumSets(), in.NumElements())
	}
	if in.Weights[0] != 1.5 || in.Elements[1].Capacity != 2 {
		t.Error("decoded values wrong")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"bad header", "hello\n"},
		{"bad version", "osp 99\nset 1\nelem 1 0\n"},
		{"set arity", "osp 1\nset 1 2\n"},
		{"set weight", "osp 1\nset abc\n"},
		{"elem arity", "osp 1\nset 1\nelem 1\n"},
		{"elem capacity", "osp 1\nset 1\nelem x 0\n"},
		{"elem member", "osp 1\nset 1\nelem 1 z\n"},
		{"unknown directive", "osp 1\nfrob 1\n"},
		{"out of range member", "osp 1\nset 1\nelem 1 5\n"},
		{"invalid instance", "osp 1\nset -1\nelem 1 0\n"},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.src)); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: err = %v, want ErrCodec", c.name, err)
		}
	}
}

func TestEncodePreservesWeightPrecision(t *testing.T) {
	var b Builder
	s := b.AddSet(0.1234567890123456)
	b.AddElement(s)
	in := b.MustBuild()
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Weights[0] != in.Weights[0] {
		t.Errorf("weight %v != %v after round trip", out.Weights[0], in.Weights[0])
	}
}
