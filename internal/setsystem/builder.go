package setsystem

import (
	"fmt"
	"sort"
)

// Builder assembles an Instance incrementally. Declare sets first (weights),
// then append elements in arrival order; Build derives the declared sizes
// from the memberships, so callers never state sizes by hand.
//
// The zero value is ready to use.
type Builder struct {
	weights  []float64
	elements []Element
	err      error
}

// AddSet declares a new set with the given weight and returns its SetID.
// Weights must be non-negative; violations are reported by Build.
func (b *Builder) AddSet(weight float64) SetID {
	if weight < 0 && b.err == nil {
		b.err = fmt.Errorf("%w: set %d has weight %v", ErrNegativeWeight, len(b.weights), weight)
	}
	b.weights = append(b.weights, weight)
	return SetID(len(b.weights) - 1)
}

// AddSets declares count sets of the given uniform weight and returns their
// IDs.
func (b *Builder) AddSets(count int, weight float64) []SetID {
	ids := make([]SetID, count)
	for i := range ids {
		ids[i] = b.AddSet(weight)
	}
	return ids
}

// AddElement appends a unit-capacity element belonging to the given sets.
func (b *Builder) AddElement(members ...SetID) {
	b.AddElementCap(1, members...)
}

// AddElementCap appends an element with capacity cap belonging to the given
// sets. The member list is copied, sorted and deduplicated.
func (b *Builder) AddElementCap(capacity int, members ...SetID) {
	ms := append([]SetID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	ms = dedupe(ms)
	if b.err == nil {
		switch {
		case capacity < 1:
			b.err = fmt.Errorf("%w: element %d has capacity %d", ErrBadCapacity, len(b.elements), capacity)
		case len(ms) == 0:
			b.err = fmt.Errorf("%w: element %d", ErrEmptyElement, len(b.elements))
		}
	}
	b.elements = append(b.elements, Element{Members: ms, Capacity: capacity})
}

// NumSets returns the number of sets declared so far.
func (b *Builder) NumSets() int { return len(b.weights) }

// NumElements returns the number of elements appended so far.
func (b *Builder) NumElements() int { return len(b.elements) }

// Build finalizes the instance, deriving set sizes from memberships, and
// validates it. It returns the first construction error encountered, if
// any.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	sizes := make([]int, len(b.weights))
	for _, e := range b.elements {
		for _, s := range e.Members {
			if int(s) >= len(sizes) || s < 0 {
				return nil, fmt.Errorf("%w: set %d (m=%d)", ErrMemberRange, s, len(sizes))
			}
			sizes[s]++
		}
	}
	in := &Instance{
		Weights:  append([]float64(nil), b.weights...),
		Sizes:    sizes,
		Elements: append([]Element(nil), b.elements...),
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// MustBuild is Build for tests and examples with known-good inputs; it
// panics on error.
func (b *Builder) MustBuild() *Instance {
	in, err := b.Build()
	if err != nil {
		panic(err)
	}
	return in
}

func dedupe(ms []SetID) []SetID {
	if len(ms) < 2 {
		return ms
	}
	out := ms[:1]
	for _, s := range ms[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
