package setsystem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestComputeOnTinyInstance(t *testing.T) {
	in := tinyInstance(t)
	st := Compute(in)

	if st.N != 3 || st.M != 3 {
		t.Fatalf("N,M = %d,%d want 3,3", st.N, st.M)
	}
	if st.KMax != 2 || !approxEq(st.KMean, 2) {
		t.Errorf("KMax,KMean = %d,%v want 2,2", st.KMax, st.KMean)
	}
	if st.SigmaMax != 2 || !approxEq(st.SigmaMean, 2) {
		t.Errorf("SigmaMax,SigmaMean = %d,%v want 2,2", st.SigmaMax, st.SigmaMean)
	}
	if !approxEq(st.Sigma2, 4) {
		t.Errorf("Sigma2 = %v, want 4", st.Sigma2)
	}
	// weighted loads: u0∈{A,B}: 3; u1∈{A,C}: 4; u2∈{B,C}: 5
	if !approxEq(st.SigmaWMean, 4) {
		t.Errorf("SigmaWMean = %v, want 4", st.SigmaWMean)
	}
	if !approxEq(st.SigmaWMax, 5) {
		t.Errorf("SigmaWMax = %v, want 5", st.SigmaWMax)
	}
	if !approxEq(st.SigmaSigmaW, 8) { // mean of 2·3, 2·4, 2·5 = mean(6,8,10)
		t.Errorf("SigmaSigmaW = %v, want 8", st.SigmaSigmaW)
	}
	if !approxEq(st.NuMean, 2) { // unit capacity: ν = σ
		t.Errorf("NuMean = %v, want 2", st.NuMean)
	}
	if !approxEq(st.TotalWeight, 6) {
		t.Errorf("TotalWeight = %v, want 6", st.TotalWeight)
	}
	if st.BMax != 1 {
		t.Errorf("BMax = %d, want 1", st.BMax)
	}
}

func TestComputeEmptyInstance(t *testing.T) {
	st := Compute(&Instance{})
	if st.N != 0 || st.M != 0 || st.KMax != 0 || st.SigmaMean != 0 {
		t.Errorf("empty instance stats not zero: %+v", st)
	}
}

func TestUniformSizeAndLoad(t *testing.T) {
	in := tinyInstance(t)
	if k, ok := UniformSize(in); !ok || k != 2 {
		t.Errorf("UniformSize = %d,%v want 2,true", k, ok)
	}
	if s, ok := UniformLoad(in); !ok || s != 2 {
		t.Errorf("UniformLoad = %d,%v want 2,true", s, ok)
	}

	var b Builder
	ids := b.AddSets(2, 1)
	b.AddElement(ids[0], ids[1])
	b.AddElement(ids[0])
	b.AddElement(ids[1])
	b.AddElement(ids[1])
	in2 := b.MustBuild() // sizes 2 and 3; loads 2,1,1,1
	if _, ok := UniformSize(in2); ok {
		t.Error("UniformSize = true for mixed sizes")
	}
	if _, ok := UniformLoad(in2); ok {
		t.Error("UniformLoad = true for mixed loads")
	}
}

func TestBoundsOnTinyInstance(t *testing.T) {
	in := tinyInstance(t)
	st := Compute(in)
	// Theorem 1: kmax·sqrt(mean(σσ$)/mean(σ$)) = 2·sqrt(8/4) = 2√2.
	if got, want := Theorem1Bound(st), 2*math.Sqrt2; !approxEq(got, want) {
		t.Errorf("Theorem1Bound = %v, want %v", got, want)
	}
	// Corollary 6: kmax·sqrt(σmax) = 2√2.
	if got, want := Corollary6Bound(st), 2*math.Sqrt2; !approxEq(got, want) {
		t.Errorf("Corollary6Bound = %v, want %v", got, want)
	}
	// Theorem 4 with unit capacities: 16e·kmax·sqrt(mean(νσ$)/mean(σ$)).
	if got, want := Theorem4Bound(st), 16*math.E*2*math.Sqrt2; !approxEq(got, want) {
		t.Errorf("Theorem4Bound = %v, want %v", got, want)
	}
	// Theorem 5: k·mean(σ²)/mean(σ)² = 2·4/4 = 2.
	if got, want := Theorem5Bound(st), 2.0; !approxEq(got, want) {
		t.Errorf("Theorem5Bound = %v, want %v", got, want)
	}
	if got, want := Corollary7Bound(st), 2.0; !approxEq(got, want) {
		t.Errorf("Corollary7Bound = %v, want %v", got, want)
	}
	// Theorem 6: mean(k)·sqrt(mean σ) = 2·√2.
	if got, want := Theorem6Bound(st), 2*math.Sqrt2; !approxEq(got, want) {
		t.Errorf("Theorem6Bound = %v, want %v", got, want)
	}
}

func TestBoundsZeroGuards(t *testing.T) {
	var st Stats
	if Theorem1Bound(st) != 0 || Theorem4Bound(st) != 0 || Theorem5Bound(st) != 0 {
		t.Error("bounds on empty stats should be 0")
	}
}

// randomInstance builds a valid random instance for property tests.
func randomInstance(rng *rand.Rand) *Instance {
	var b Builder
	m := 2 + rng.Intn(10)
	ids := make([]SetID, m)
	for i := range ids {
		ids[i] = b.AddSet(0.5 + rng.Float64()*4)
	}
	n := 3 + rng.Intn(20)
	touched := make(map[SetID]bool, m)
	for j := 0; j < n; j++ {
		sigma := 1 + rng.Intn(m)
		perm := rng.Perm(m)
		members := make([]SetID, 0, sigma)
		for _, p := range perm[:sigma] {
			members = append(members, ids[p])
			touched[ids[p]] = true
		}
		b.AddElementCap(1+rng.Intn(3), members...)
	}
	// Ensure every set has at least one element.
	for _, id := range ids {
		if !touched[id] {
			b.AddElement(id)
		}
	}
	return b.MustBuild()
}

// Property: the handshake identity Σ|S| = Σσ(u), i.e. m·mean(k) = n·mean(σ),
// and the weighted version n·mean(σ$) = Σ_S |S|·w(S) (the paper's Eq. (4)
// with equality before bounding).
func TestHandshakeIdentities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng)
		st := Compute(in)

		lhs := float64(st.M) * st.KMean
		rhs := float64(st.N) * st.SigmaMean
		if !approxEq(lhs, rhs) {
			t.Logf("m·k̄=%v n·σ̄=%v", lhs, rhs)
			return false
		}
		var sw float64
		for i, sz := range in.Sizes {
			sw += float64(sz) * in.Weights[i]
		}
		if !approxEq(float64(st.N)*st.SigmaWMean, sw) {
			t.Logf("n·σ$̄=%v Σ|S|w(S)=%v", float64(st.N)*st.SigmaWMean, sw)
			return false
		}
		// Eq. (4): n·mean(σ$) ≤ kmax·w(C).
		return float64(st.N)*st.SigmaWMean <= float64(st.KMax)*st.TotalWeight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem1Bound ≤ Corollary6Bound (the refined bound is never
// worse), and both are ≥ 1 on nonempty instances with kmax ≥ 1, σmax ≥ 1.
func TestBoundOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng)
		st := Compute(in)
		t1, c6 := Theorem1Bound(st), Corollary6Bound(st)
		if t1 > c6+1e-9 {
			t.Logf("Theorem1Bound %v > Corollary6Bound %v", t1, c6)
			return false
		}
		return t1 >= 1-1e-9 && c6 >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Compute is invariant under cloning, and Validate passes on all
// generated instances.
func TestComputeCloneInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng)
		if err := in.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		a, b := Compute(in), Compute(in.Clone())
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
