package setsystem

import "math"

// Stats aggregates the instance parameters the paper's bounds are expressed
// in. Following the paper's notational convention, for a multiset X of
// numbers the "Mean" fields are averages and "Max" fields maxima; products
// such as mean(σ·σ$) average the per-element product.
type Stats struct {
	N int // number of elements
	M int // number of sets

	KMax  int     // kmax: maximal set size
	KMean float64 // mean set size, Σ|S|/m

	SigmaMax  int     // σmax: maximal element load
	SigmaMean float64 // mean element load, Σσ(u)/n
	Sigma2    float64 // mean of σ(u)² (the paper's "σ² bar")

	SigmaWMax  float64 // max weighted load σ$(u) = w(C(u))
	SigmaWMean float64 // mean weighted load

	SigmaSigmaW float64 // mean of σ(u)·σ$(u) (the paper's "σ·σ$ bar")

	NuMax    float64 // max adjusted load ν(u) = σ(u)/b(u)
	NuMean   float64 // mean adjusted load
	NuSigmaW float64 // mean of ν(u)·σ$(u) (Theorem 4's "ν·σ$ bar")

	BMax        int     // maximal element capacity
	TotalWeight float64 // w(C)
}

// Compute scans the instance once and returns its Stats. An instance with
// no elements or no sets yields zero statistics.
func Compute(in *Instance) Stats {
	var st Stats
	st.N = in.NumElements()
	st.M = in.NumSets()

	for i, sz := range in.Sizes {
		if sz > st.KMax {
			st.KMax = sz
		}
		st.KMean += float64(sz)
		st.TotalWeight += in.Weights[i]
	}
	if st.M > 0 {
		st.KMean /= float64(st.M)
	}

	for _, e := range in.Elements {
		sigma := len(e.Members)
		var sw float64
		for _, s := range e.Members {
			sw += in.Weights[s]
		}
		nu := e.AdjustedLoad()

		if sigma > st.SigmaMax {
			st.SigmaMax = sigma
		}
		if sw > st.SigmaWMax {
			st.SigmaWMax = sw
		}
		if nu > st.NuMax {
			st.NuMax = nu
		}
		if e.Capacity > st.BMax {
			st.BMax = e.Capacity
		}
		fs := float64(sigma)
		st.SigmaMean += fs
		st.Sigma2 += fs * fs
		st.SigmaWMean += sw
		st.SigmaSigmaW += fs * sw
		st.NuMean += nu
		st.NuSigmaW += nu * sw
	}
	if st.N > 0 {
		fn := float64(st.N)
		st.SigmaMean /= fn
		st.Sigma2 /= fn
		st.SigmaWMean /= fn
		st.SigmaSigmaW /= fn
		st.NuMean /= fn
		st.NuSigmaW /= fn
	}
	return st
}

// UniformSize reports whether every set has the same size and returns that
// size when it does.
func UniformSize(in *Instance) (k int, uniform bool) {
	if len(in.Sizes) == 0 {
		return 0, true
	}
	k = in.Sizes[0]
	for _, sz := range in.Sizes[1:] {
		if sz != k {
			return 0, false
		}
	}
	return k, true
}

// UniformLoad reports whether every element has the same load and returns
// that load when it does.
func UniformLoad(in *Instance) (sigma int, uniform bool) {
	if len(in.Elements) == 0 {
		return 0, true
	}
	sigma = in.Elements[0].Load()
	for _, e := range in.Elements[1:] {
		if e.Load() != sigma {
			return 0, false
		}
	}
	return sigma, true
}

// Theorem1Bound returns the paper's Theorem 1 competitive-ratio bound for
// unit-capacity instances:
//
//	kmax · sqrt( mean(σ·σ$) / mean(σ$) ).
//
// It is valid (an upper bound on OPT/E[ALG] for randPr) whenever the
// instance has unit capacities.
func Theorem1Bound(st Stats) float64 {
	if st.SigmaWMean <= 0 {
		return 0
	}
	return float64(st.KMax) * math.Sqrt(st.SigmaSigmaW/st.SigmaWMean)
}

// Corollary6Bound returns kmax·sqrt(σmax), the simplified unit-capacity
// bound of Corollary 6.
func Corollary6Bound(st Stats) float64 {
	return float64(st.KMax) * math.Sqrt(float64(st.SigmaMax))
}

// Theorem4Bound returns the variable-capacity bound of Theorem 4:
//
//	16e · kmax · sqrt( mean(ν·σ$) / mean(σ$) ),
//
// where ν(u)=σ(u)/b(u) is the adjusted load.
func Theorem4Bound(st Stats) float64 {
	if st.SigmaWMean <= 0 {
		return 0
	}
	return 16 * math.E * float64(st.KMax) * math.Sqrt(st.NuSigmaW/st.SigmaWMean)
}

// Theorem5Bound returns the uniform-set-size bound of Theorem 5,
// k·mean(σ²)/mean(σ)², valid for unweighted unit-capacity instances in
// which every set has size exactly k.
func Theorem5Bound(st Stats) float64 {
	if st.SigmaMean <= 0 {
		return 0
	}
	return float64(st.KMax) * st.Sigma2 / (st.SigmaMean * st.SigmaMean)
}

// Corollary7Bound returns k, the bound of Corollary 7 for unweighted
// unit-capacity instances with uniform set size and uniform element load.
func Corollary7Bound(st Stats) float64 {
	return float64(st.KMax)
}

// Theorem6Bound returns mean(k)·sqrt(σ), the bound of Theorem 6 for
// unweighted unit-capacity instances in which every element has the same
// load σ.
func Theorem6Bound(st Stats) float64 {
	return st.KMean * math.Sqrt(st.SigmaMean)
}
