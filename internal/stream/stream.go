// Package stream is the framed long-lived transport for the admission
// service: one connection carrying back-to-back internal/wire batch
// frames, each wrapped in a 9-byte envelope with a sequence number, with
// verdict frames returned in batch order as shards complete. It is the
// amortization move of the paper's lineage applied to the transport —
// the per-request cost the HTTP arm pays per 4096-element batch
// (connection bookkeeping, header parse, scratch checkout) is paid once
// per connection here and amortized over the whole stream.
//
// The package is deliberately tiny and policy-free: framing, the
// handshake payloads, and a buffered connection wrapper that reuses its
// read buffer so a steady-state read loop allocates nothing. The batch
// and verdict payloads themselves are internal/wire frames, unchanged —
// the stream envelope adds exactly (type, seq, length).
//
// Protocol, client side first:
//
//	C→S  Hello  (seq 0, payload "OSPS" + version + instance id)
//	S→C  Ack    (seq 0, payload version + window + policy name)
//	C→S  Batch  (seq k, payload one wire OSPB frame)   — at most
//	            `window` unanswered batches in flight
//	S→C  Verdicts (seq k, payload one wire OSPV frame) — in seq order
//	C→S  Fin    (seq = number of batches sent)
//	S→C  Fin    (after every pending verdict is written)
//
// Either side may end the stream with an Error frame (UTF-8 message);
// the server routes it through the same seq-ordered writer as verdicts,
// so every batch read before the error still gets its verdicts first.
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Version is the stream protocol version this package speaks.
const Version = 1

// HeaderLen is the fixed envelope size: type byte, uint32 sequence
// number, uint32 payload length (both little-endian).
const HeaderLen = 9

// Frame types. Hello/Ack handshake, Batch/Verdicts data plane,
// Error/Fin teardown.
const (
	FrameHello    = 'H' // client → server, first frame on the wire
	FrameAck      = 'A' // server → client, accepts the stream
	FrameBatch    = 'B' // payload: one wire batch frame (OSPB)
	FrameVerdicts = 'V' // payload: one wire verdicts frame (OSPV), seq echoes the batch
	FrameError    = 'E' // terminal; payload: UTF-8 message
	FrameFin      = 'F' // half-close; seq carries the batch count sent
)

// magicHello tags the Hello payload so a stray client speaking another
// protocol fails the handshake instead of being misparsed.
var magicHello = [4]byte{'O', 'S', 'P', 'S'}

// Errors reported by the framing layer; match with errors.Is.
var (
	// ErrFrame is a structurally malformed envelope or handshake payload.
	ErrFrame = errors.New("stream: malformed frame")
	// ErrVersion is a well-formed frame of an unsupported version.
	ErrVersion = errors.New("stream: unsupported version")
	// ErrTooLarge is a frame whose declared payload exceeds the
	// connection's limit — refused before any of it is read.
	ErrTooLarge = errors.New("stream: frame exceeds payload limit")
)

// Conn wraps a network connection with buffered framed I/O. The read
// path reuses one growing payload buffer, so a steady-state frame loop
// allocates nothing; the returned payload is valid only until the next
// ReadFrame. Conn is not safe for concurrent use of the same direction,
// but one reader goroutine and one writer goroutine may share it: the
// read and write halves touch disjoint state.
type Conn struct {
	raw        net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	rhdr, whdr [HeaderLen]byte
	payload    []byte
	max        int
}

// NewConn wraps nc. maxPayload bounds the payload length this side is
// willing to read (writes are unchecked — the peer enforces its own
// bound); 0 means a 256 MiB default matching the HTTP arm's body limit.
func NewConn(nc net.Conn, maxPayload int) *Conn {
	if maxPayload <= 0 {
		maxPayload = 256 << 20
	}
	return &Conn{
		raw: nc,
		br:  bufio.NewReaderSize(nc, 256<<10),
		bw:  bufio.NewWriterSize(nc, 256<<10),
		max: maxPayload,
	}
}

// ReadFrame reads the next envelope and its payload. The payload slice
// aliases the connection's reusable buffer: it is valid until the next
// ReadFrame and must not be retained.
func (c *Conn) ReadFrame() (typ byte, seq uint32, payload []byte, err error) {
	typ, seq, n, err := c.ReadHeader()
	if err != nil {
		return 0, 0, nil, err
	}
	payload, err = c.ReadPayload(n)
	if err != nil {
		return 0, 0, nil, err
	}
	return typ, seq, payload, nil
}

// ReadHeader reads and validates the next envelope header only,
// returning the declared payload length without reading it. The caller
// must consume exactly n payload bytes next — ReadPayload for the
// connection's shared buffer, or ReadPayloadInto to place the bytes
// into caller-owned memory (the zero-copy ingest path, which reads
// batch payloads straight into aligned engine-batch backing buffers).
func (c *Conn) ReadHeader() (typ byte, seq uint32, n int, err error) {
	if _, err := io.ReadFull(c.br, c.rhdr[:]); err != nil {
		return 0, 0, 0, err
	}
	typ = c.rhdr[0]
	switch typ {
	case FrameHello, FrameAck, FrameBatch, FrameVerdicts, FrameError, FrameFin:
	default:
		return 0, 0, 0, fmt.Errorf("%w: unknown frame type 0x%02x", ErrFrame, typ)
	}
	seq = binary.LittleEndian.Uint32(c.rhdr[1:])
	ln := binary.LittleEndian.Uint32(c.rhdr[5:])
	if uint64(ln) > uint64(c.max) {
		return 0, 0, 0, fmt.Errorf("%w: %d bytes declared, limit %d", ErrTooLarge, ln, c.max)
	}
	return typ, seq, int(ln), nil
}

// ReadPayload reads an n-byte payload announced by ReadHeader into the
// connection's reusable buffer. The returned slice is valid until the
// next read and must not be retained.
func (c *Conn) ReadPayload(n int) ([]byte, error) {
	if cap(c.payload) < n {
		c.payload = make([]byte, n)
	}
	payload := c.payload[:n]
	if err := c.ReadPayloadInto(payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadPayloadInto reads len(buf) payload bytes announced by ReadHeader
// directly into buf — the caller owns placement, which is what lets a
// reader land a batch frame at an alignment the zero-copy decoder can
// alias.
func (c *Conn) ReadPayloadInto(buf []byte) error {
	if _, err := io.ReadFull(c.br, buf); err != nil {
		// A truncated payload is a protocol error, not a clean EOF.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// WriteFrame appends one envelope + payload to the write buffer. Call
// Flush to push buffered frames to the wire; a pipelined writer flushes
// once per burst, not per frame.
func (c *Conn) WriteFrame(typ byte, seq uint32, payload []byte) error {
	c.whdr[0] = typ
	binary.LittleEndian.PutUint32(c.whdr[1:], seq)
	binary.LittleEndian.PutUint32(c.whdr[5:], uint32(len(payload)))
	if _, err := c.bw.Write(c.whdr[:]); err != nil {
		return err
	}
	_, err := c.bw.Write(payload)
	return err
}

// Flush pushes buffered frames to the wire.
func (c *Conn) Flush() error { return c.bw.Flush() }

// SetReadDeadline sets the deadline for future and in-progress reads on
// the underlying connection — the drain path uses it to bound how long
// a quiet connection may hold shutdown, and to unblock a reader whose
// writer died.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// Close closes the underlying connection without flushing.
func (c *Conn) Close() error { return c.raw.Close() }

// AppendHello builds the Hello payload: magic, version, instance id.
func AppendHello(dst []byte, instance string) []byte {
	dst = append(dst, magicHello[:]...)
	dst = append(dst, Version)
	return append(dst, instance...)
}

// ParseHello validates a Hello payload and returns the instance id.
func ParseHello(payload []byte) (instance string, err error) {
	if len(payload) < 5 {
		return "", fmt.Errorf("%w: hello payload %d bytes, want at least 5", ErrFrame, len(payload))
	}
	if [4]byte(payload[:4]) != magicHello {
		return "", fmt.Errorf("%w: bad hello magic %q", ErrFrame, payload[:4])
	}
	if payload[4] != Version {
		return "", fmt.Errorf("%w: version %d, this side speaks %d", ErrVersion, payload[4], Version)
	}
	return string(payload[5:]), nil
}

// AppendAck builds the Ack payload: version, pipelining window (the
// maximum number of unanswered batch frames the server accepts on this
// connection), and the instance's policy name — the client surfaces the
// latter so a stream run can report which policy actually decided.
func AppendAck(dst []byte, window uint32, policy string) []byte {
	dst = append(dst, Version)
	dst = binary.LittleEndian.AppendUint32(dst, window)
	return append(dst, policy...)
}

// ParseAck validates an Ack payload and returns the window and policy.
func ParseAck(payload []byte) (window uint32, policy string, err error) {
	if len(payload) < 5 {
		return 0, "", fmt.Errorf("%w: ack payload %d bytes, want at least 5", ErrFrame, len(payload))
	}
	if payload[0] != Version {
		return 0, "", fmt.Errorf("%w: version %d, this side speaks %d", ErrVersion, payload[0], Version)
	}
	window = binary.LittleEndian.Uint32(payload[1:])
	if window == 0 {
		return 0, "", fmt.Errorf("%w: zero pipelining window", ErrFrame)
	}
	return window, string(payload[5:]), nil
}
