package stream

import (
	"errors"
	"io"
	"net"
	"testing"
)

// pipeConns returns two framed ends of an in-memory duplex connection.
func pipeConns(t *testing.T, maxPayload int) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a, maxPayload), NewConn(b, maxPayload)
}

func TestFrameRoundTrip(t *testing.T) {
	c, s := pipeConns(t, 0)
	frames := []struct {
		typ     byte
		seq     uint32
		payload string
	}{
		{FrameHello, 0, "handshake"},
		{FrameBatch, 1, ""},
		{FrameBatch, 2, "some batch bytes"},
		{FrameFin, 3, ""},
	}
	go func() {
		for _, f := range frames {
			if err := c.WriteFrame(f.typ, f.seq, []byte(f.payload)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := c.Flush(); err != nil {
			t.Error(err)
		}
	}()
	for _, want := range frames {
		typ, seq, payload, err := s.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != want.typ || seq != want.seq || string(payload) != want.payload {
			t.Fatalf("got (%c, %d, %q), want (%c, %d, %q)",
				typ, seq, payload, want.typ, want.seq, want.payload)
		}
	}
}

func TestReadFrameReusesPayloadBuffer(t *testing.T) {
	c, s := pipeConns(t, 0)
	go func() {
		c.WriteFrame(FrameBatch, 1, []byte("first, the longer payload"))
		c.WriteFrame(FrameBatch, 2, []byte("second"))
		c.Flush()
	}()
	_, _, p1, err := s.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	first := &p1[0]
	_, _, p2, err := s.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(p2) != "second" {
		t.Fatalf("second payload = %q", p2)
	}
	if &p2[0] != first {
		t.Error("second read did not reuse the payload buffer")
	}
}

func TestReadFrameRejectsUnknownType(t *testing.T) {
	c, s := pipeConns(t, 0)
	go func() {
		c.WriteFrame('Z', 0, nil)
		c.Flush()
	}()
	if _, _, _, err := s.ReadFrame(); !errors.Is(err, ErrFrame) {
		t.Fatalf("err = %v, want ErrFrame", err)
	}
}

func TestReadFrameRejectsOversizedPayload(t *testing.T) {
	c, s := pipeConns(t, 16)
	go func() {
		c.WriteFrame(FrameBatch, 0, make([]byte, 17))
		c.Flush()
	}()
	if _, _, _, err := s.ReadFrame(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	s := NewConn(b, 0)
	c := NewConn(a, 0)
	go func() {
		// Declare 100 payload bytes, deliver 3, close.
		c.WriteFrame(FrameBatch, 0, []byte{1, 2, 3}) // header says 3 — rewrite length by hand
		c.Flush()
		a.Close()
	}()
	// The well-formed 3-byte frame reads fine; the close after it is EOF.
	if _, _, _, err := s.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.ReadFrame(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	p := AppendHello(nil, "i-42")
	id, err := ParseHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != "i-42" {
		t.Fatalf("instance = %q, want i-42", id)
	}
	if _, err := ParseHello([]byte("XXXX\x01i-1")); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad magic: err = %v, want ErrFrame", err)
	}
	bad := AppendHello(nil, "i-1")
	bad[4] = 99
	if _, err := ParseHello(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v, want ErrVersion", err)
	}
	if _, err := ParseHello([]byte("OS")); !errors.Is(err, ErrFrame) {
		t.Fatalf("short: err = %v, want ErrFrame", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	p := AppendAck(nil, 32, "randpr-weighted")
	window, policy, err := ParseAck(p)
	if err != nil {
		t.Fatal(err)
	}
	if window != 32 || policy != "randpr-weighted" {
		t.Fatalf("got (%d, %q), want (32, randpr-weighted)", window, policy)
	}
	if _, _, err := ParseAck(AppendAck(nil, 0, "x")); !errors.Is(err, ErrFrame) {
		t.Fatalf("zero window: err = %v, want ErrFrame", err)
	}
	bad := AppendAck(nil, 8, "x")
	bad[0] = 99
	if _, _, err := ParseAck(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v, want ErrVersion", err)
	}
}
