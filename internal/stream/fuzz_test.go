package stream

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// byteConn adapts a byte slice to net.Conn so the frame reader can be
// driven from fuzz inputs without a live socket. Writes are discarded.
type byteConn struct{ r *bytes.Reader }

func (c *byteConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *byteConn) Close() error                     { return nil }
func (c *byteConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *byteConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *byteConn) SetDeadline(time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(time.Time) error { return nil }

// FuzzReadFrame drives the frame reader — both the one-shot ReadFrame
// and the split ReadHeader/ReadPayloadInto the zero-copy ingest path
// uses — with arbitrary byte streams. Neither may panic, declared
// lengths past the connection limit must be refused before any payload
// is read, and the split path must see exactly the frames the one-shot
// path sees. The seed corpus comes from real encoded frames.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	hdr := func(typ byte, seq uint32, payload []byte) []byte {
		var h [HeaderLen]byte
		h[0] = typ
		binary.LittleEndian.PutUint32(h[1:], seq)
		binary.LittleEndian.PutUint32(h[5:], uint32(len(payload)))
		return append(h[:], payload...)
	}
	seed.Write(hdr(FrameHello, 0, AppendHello(nil, "i-1")))
	seed.Write(hdr(FrameBatch, 1, []byte("batch bytes")))
	seed.Write(hdr(FrameFin, 2, nil))
	f.Add(seed.Bytes())
	f.Add(hdr(FrameAck, 0, AppendAck(nil, 32, "randpr")))
	f.Add(hdr(FrameError, 7, []byte("boom")))
	f.Add(hdr('Z', 0, nil))
	oversized := hdr(FrameBatch, 0, nil)
	binary.LittleEndian.PutUint32(oversized[5:], 1<<30)
	f.Add(oversized)
	f.Add([]byte{})

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		one := NewConn(&byteConn{r: bytes.NewReader(data)}, maxPayload)
		split := NewConn(&byteConn{r: bytes.NewReader(data)}, maxPayload)
		for {
			typ, seq, payload, err := one.ReadFrame()

			styp, sseq, n, serr := split.ReadHeader()
			var spayload []byte
			if serr == nil {
				spayload = make([]byte, n)
				serr = split.ReadPayloadInto(spayload)
			}

			if (err == nil) != (serr == nil) {
				t.Fatalf("one-shot err %v, split err %v", err, serr)
			}
			if err != nil {
				if err == io.EOF && serr != io.EOF && serr != nil && serr.Error() != err.Error() {
					t.Fatalf("divergent errors: %v vs %v", err, serr)
				}
				return
			}
			if typ != styp || seq != sseq || !bytes.Equal(payload, spayload) {
				t.Fatalf("split read (%c,%d,%d bytes) differs from one-shot (%c,%d,%d bytes)",
					styp, sseq, len(spayload), typ, seq, len(payload))
			}
		}
	})
}
