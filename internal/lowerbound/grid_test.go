package lowerbound

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/setsystem"
)

func TestNewGridRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tt := range []int{-1, 0, 1} {
		if _, err := NewGrid(tt, rng); !errors.Is(err, ErrBadParams) {
			t.Errorf("NewGrid(%d) err = %v, want ErrBadParams", tt, err)
		}
	}
	if _, err := NewGrid(3, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("NewGrid(3, nil) err = %v, want ErrBadParams", err)
	}
}

func TestGridShape(t *testing.T) {
	for _, tt := range []int{2, 3, 5, 8} {
		rng := rand.New(rand.NewSource(int64(tt)))
		gi, err := NewGrid(tt, rng)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		inst := gi.Inst
		if err := inst.Validate(); err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if inst.NumSets() != tt*tt {
			t.Errorf("t=%d: m = %d, want t² = %d", tt, inst.NumSets(), tt*tt)
		}
		st := setsystem.Compute(inst)
		if st.SigmaMax != tt {
			t.Errorf("t=%d: σmax = %d, want t", tt, st.SigmaMax)
		}
		// All sets the same size (padding equalizes).
		if _, ok := setsystem.UniformSize(inst); !ok {
			t.Errorf("t=%d: sizes not uniform", tt)
		}
		if err := gi.VerifyColumns(); err != nil {
			t.Errorf("t=%d: %v", tt, err)
		}
	}
}

// A clairvoyant algorithm completes an entire column — certifying OPT ≥ t
// operationally, and exact B&B agrees for small t.
func TestGridColumnCompletable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gi, err := NewGrid(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inCol := make([]bool, gi.Inst.NumSets())
	for _, s := range gi.Column[1] {
		inCol[s] = true
	}
	alg := &clairvoyant{planted: inCol}
	res, err := core.Run(gi.Inst, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Benefit) != 3 {
		t.Errorf("column completion = %v, want 3", res.Benefit)
	}
	sol, err := offline.Exact(gi.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight < 3 {
		t.Errorf("exact OPT %v < t = 3", sol.Weight)
	}
}

// The grid squeezes online algorithms: averaged over draws, randPr and
// the baselines complete far fewer than the certified OPT of t.
func TestGridSqueezesOnlineAlgorithms(t *testing.T) {
	const tt = 8
	const draws = 10
	var randSum, greedySum float64
	for d := 0; d < draws; d++ {
		rng := rand.New(rand.NewSource(int64(d)))
		gi, err := NewGrid(tt, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(gi.Inst, &core.RandPr{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		randSum += res.Benefit
		res, err = core.Run(gi.Inst, &core.GreedyFirstListed{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		greedySum += res.Benefit
	}
	// OPT = t = 8; online algorithms should stay well below half of it.
	if randSum/draws > tt/2 {
		t.Errorf("randPr mean %v on grid t=%d; expected ≪ t", randSum/draws, tt)
	}
	if greedySum/draws > tt/2 {
		t.Errorf("greedyFirstListed mean %v on grid t=%d; expected ≪ t", greedySum/draws, tt)
	}
}
