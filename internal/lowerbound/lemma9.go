package lowerbound

import (
	"fmt"
	"math/rand"

	"repro/internal/gadget"
	"repro/internal/gf"
	"repro/internal/setsystem"
)

// Lemma9Instance is one draw from the Lemma 9 distribution: an unweighted,
// unit-capacity OSP instance with ℓ⁴ sets together with the planted
// subcollection S of ℓ³ pairwise-disjoint sets that an optimal solution
// completes (the certificate OPT(J) ≥ ℓ³).
type Lemma9Instance struct {
	L       int
	Inst    *setsystem.Instance
	Planted []setsystem.SetID
	// StageEnd[s] is the index one past the last element of stage s+1
	// (s ∈ 0..3), so stage s+1 spans elements [StageEnd[s-1], StageEnd[s]).
	// Exposed so tests and examples can check the per-stage load profile
	// Lemma 9's proof relies on.
	StageEnd [4]int
}

// StageOf returns the construction stage (1..4) that element index j
// belongs to.
func (li *Lemma9Instance) StageOf(j int) int {
	for s, end := range li.StageEnd {
		if j < end {
			return s + 1
		}
	}
	return 4
}

// NewLemma9 draws an instance from the Lemma 9 distribution for a prime
// power ℓ ≥ 2, following the four stages of Figure 1:
//
//	Stage I:   ℓ² subcollections of ℓ² sets; a random bijection onto
//	           [ℓ]×[ℓ] each; apply an (ℓ,ℓ)-gadget without the rows.
//	Stage II:  ℓ subcollections of ℓ³ sets, each the concatenation of ℓ
//	           Stage-I blocks with independently permuted rows; apply an
//	           (ℓ,ℓ²)-gadget without the rows.
//	Stage III: plant S by picking one row u_t per Stage-II subcollection;
//	           apply an (ℓ²−ℓ,ℓ²)-gadget (with rows) to C \ S.
//	Stage IV:  pad each planted set with ℓ²+1 load-1 elements, equalizing
//	           every set's size at k = 2ℓ²+ℓ+1.
//
// Two corrections to the extended abstract's text (see DESIGN.md): the
// Stage II column offset (ℓ−1)(z−(t−1)ℓ) is read as ℓ·(z−(t−1)ℓ−1) so the
// blocks tile [ℓ²] exactly, and Stage IV pads with ℓ²+1 (not ℓ²) elements —
// Section 4 requires all sets to have a common size k, and with ℓ²
// padding elements the planted sets would be one element smaller, leaking
// the certificate to any size-aware algorithm.
func NewLemma9(l int, rng *rand.Rand) (*Lemma9Instance, error) {
	if _, _, ok := gf.FactorPrimePower(l); !ok || l < 2 {
		return nil, fmt.Errorf("%w: ℓ=%d must be a prime power >= 2", ErrBadParams, l)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParams)
	}
	l2 := l * l
	l3 := l2 * l
	l4 := l3 * l

	var b setsystem.Builder
	b.AddSets(l4, 1)

	// Stage I bookkeeping: rowI[s], colI[s] give μI_z(s) within block z;
	// block z of set s is s / ℓ².
	rowI := make([]int, l4)
	colI := make([]int, l4)
	gI, err := gadget.New(l, l)
	if err != nil {
		return nil, err
	}
	for z := 0; z < l2; z++ {
		base := z * l2
		perm := rng.Perm(l2) // random bijection μI_z: slot p ↦ set base+perm[p]
		slotToSet := make([]setsystem.SetID, l2)
		for p, q := range perm {
			s := base + q
			rowI[s] = p / l
			colI[s] = p % l
			slotToSet[p] = setsystem.SetID(s)
		}
		gI.VisitLines(false, func(line []gadget.Item) {
			members := make([]setsystem.SetID, 0, len(line))
			for _, it := range line {
				members = append(members, slotToSet[it.Row*l+it.Col])
			}
			b.AddElement(members...)
		})
	}

	// Stage II: subcollection t ∈ [0,ℓ) holds blocks z ∈ [tℓ, (t+1)ℓ).
	// Within subcollection t, block z contributes columns
	// [ℓ·(z−tℓ), ℓ·(z−tℓ)+ℓ) and its rows are permuted by π_z.
	stageEnd1 := b.NumElements()

	rowII := make([]int, l4)
	colII := make([]int, l4)
	gII, err := gadget.New(l, l2)
	if err != nil {
		return nil, err
	}
	for t := 0; t < l; t++ {
		// slotToSet for the ℓ×ℓ² matrix of subcollection t.
		slotToSet := make([]setsystem.SetID, l*l2)
		for zi := 0; zi < l; zi++ {
			z := t*l + zi
			pi := rng.Perm(l) // π_z: Stage-I row ↦ Stage-II row
			base := z * l2
			for q := 0; q < l2; q++ {
				s := base + q
				r := pi[rowI[s]]
				c := colI[s] + l*zi
				rowII[s] = r
				colII[s] = c
				slotToSet[r*l2+c] = setsystem.SetID(s)
			}
		}
		gII.VisitLines(false, func(line []gadget.Item) {
			members := make([]setsystem.SetID, 0, len(line))
			for _, it := range line {
				members = append(members, slotToSet[it.Row*l2+it.Col])
			}
			b.AddElement(members...)
		})
	}

	stageEnd2 := b.NumElements()

	// Stage III: pick u_t per subcollection; S = sets in row u_t.
	inS := make([]bool, l4)
	planted := make([]setsystem.SetID, 0, l3)
	for t := 0; t < l; t++ {
		ut := rng.Intn(l)
		for z := t * l; z < (t+1)*l; z++ {
			base := z * l2
			for q := 0; q < l2; q++ {
				s := base + q
				if rowII[s] == ut {
					inS[s] = true
					planted = append(planted, setsystem.SetID(s))
				}
			}
		}
	}
	// Apply an (ℓ²−ℓ, ℓ²)-gadget with rows to C \ S under an arbitrary
	// bijection.
	rest := make([]setsystem.SetID, 0, l4-l3)
	for s := 0; s < l4; s++ {
		if !inS[s] {
			rest = append(rest, setsystem.SetID(s))
		}
	}
	gIII, err := gadget.New(l2-l, l2)
	if err != nil {
		return nil, err
	}
	gIII.VisitLines(true, func(line []gadget.Item) {
		members := make([]setsystem.SetID, 0, len(line))
		for _, it := range line {
			members = append(members, rest[it.Row*l2+it.Col])
		}
		b.AddElement(members...)
	})

	stageEnd3 := b.NumElements()

	// Stage IV: ℓ²+1 load-1 elements per planted set, so every set ends
	// with exactly k = 2ℓ²+ℓ+1 elements.
	for _, s := range planted {
		for r := 0; r < l2+1; r++ {
			b.AddElement(s)
		}
	}

	stageEnd4 := b.NumElements()

	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lowerbound: lemma9 build: %w", err)
	}
	return &Lemma9Instance{
		L: l, Inst: inst, Planted: planted,
		StageEnd: [4]int{stageEnd1, stageEnd2, stageEnd3, stageEnd4},
	}, nil
}

// VerifyPlanted checks the OPT certificate: the planted sets are pairwise
// disjoint (no element lists two of them), so all ℓ³ of them are
// completable offline.
func (li *Lemma9Instance) VerifyPlanted() error {
	inPlanted := make([]bool, li.Inst.NumSets())
	for _, s := range li.Planted {
		inPlanted[s] = true
	}
	for j, e := range li.Inst.Elements {
		count := 0
		for _, s := range e.Members {
			if inPlanted[s] {
				count++
			}
		}
		if count > 1 {
			return fmt.Errorf("lowerbound: element %d intersects %d planted sets", j, count)
		}
	}
	want := li.L * li.L * li.L
	if len(li.Planted) != want {
		return fmt.Errorf("lowerbound: planted size %d, want ℓ³ = %d", len(li.Planted), want)
	}
	return nil
}
