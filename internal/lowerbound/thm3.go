// Package lowerbound implements the paper's two lower-bound constructions:
// the Theorem 3 adaptive adversary that forces every deterministic online
// algorithm to a competitive ratio of σ^(k−1), and the Lemma 9 randomized
// distribution (Figure 1) built from (M,N)-gadgets, which defeats every
// online algorithm — randomized ones included — up to polylog factors of
// kmax·sqrt(σmax).
package lowerbound

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/setsystem"
)

// ErrBadParams is returned for out-of-range construction parameters.
var ErrBadParams = errors.New("lowerbound: invalid construction parameters")

// DeterministicAdversary is the Theorem 3 construction as an adaptive
// core.Source. It announces σ^k unweighted unit-capacity sets of size k,
// then plays k phases: before each phase the sets still completable under
// the algorithm's own choices are partitioned into groups of σ, and one
// element per group arrives (its parents are the group). At most one set
// per group survives the phase, so at most one set overall survives all k
// phases. Finally every set is padded with load-1 elements to size k.
//
// While streaming it records, per phase-1 element, one parent the
// algorithm did not choose; those sets are pairwise disjoint and complete
// under padding, certifying OPT ≥ σ^(k−1).
type DeterministicAdversary struct {
	sigma, k int
	m        int

	info    core.Info
	phase   int // current phase, 1..k; k+1 means padding
	queue   []setsystem.Element
	qpos    int
	last    setsystem.Element // element most recently emitted
	started bool

	active  []bool
	arrived []int // phase elements emitted containing each set

	certificate []setsystem.SetID
	certMarked  []bool
}

var _ core.Source = (*DeterministicAdversary)(nil)

// NewDeterministicAdversary creates the Theorem 3 adversary with burst
// size sigma ≥ 2 and set size k ≥ 1. The instance has σ^k sets; keep
// σ^k modest (the constructions in the paper use small constants).
func NewDeterministicAdversary(sigma, k int) (*DeterministicAdversary, error) {
	if sigma < 2 || k < 1 {
		return nil, fmt.Errorf("%w: sigma=%d k=%d (need sigma>=2, k>=1)", ErrBadParams, sigma, k)
	}
	m := 1
	for i := 0; i < k; i++ {
		m *= sigma
		if m > 1<<22 {
			return nil, fmt.Errorf("%w: sigma^k = %d too large", ErrBadParams, m)
		}
	}
	a := &DeterministicAdversary{sigma: sigma, k: k, m: m}
	weights := make([]float64, m)
	sizes := make([]int, m)
	for i := range weights {
		weights[i] = 1
		sizes[i] = k
	}
	a.info = core.Info{Weights: weights, Sizes: sizes}
	a.active = make([]bool, m)
	for i := range a.active {
		a.active[i] = true
	}
	a.arrived = make([]int, m)
	a.certMarked = make([]bool, m)
	return a, nil
}

// Info implements core.Source.
func (a *DeterministicAdversary) Info() core.Info { return a.info }

// NumSets returns σ^k.
func (a *DeterministicAdversary) NumSets() int { return a.m }

// Next implements core.Source: it digests the algorithm's previous choice,
// then emits the next element of the construction.
func (a *DeterministicAdversary) Next(prevChoice []setsystem.SetID) (setsystem.Element, bool) {
	if a.started {
		a.digest(prevChoice)
	}
	a.started = true

	for a.qpos >= len(a.queue) {
		if !a.nextPhase() {
			return setsystem.Element{}, false
		}
	}
	e := a.queue[a.qpos]
	a.qpos++
	a.last = e
	return e, true
}

// digest updates the active flags given the algorithm's choice on the last
// emitted element, and records the OPT certificate for phase-1 elements.
func (a *DeterministicAdversary) digest(choice []setsystem.SetID) {
	chosen := setsystem.SetID(-1)
	if len(choice) > 0 {
		chosen = choice[0] // unit capacity: at most one
	}
	if a.phase == 1 && len(a.last.Members) > 1 {
		// Record one unchosen parent: it is eliminated now and meets no
		// further phase elements, so OPT can complete it via padding.
		for _, s := range a.last.Members {
			if s != chosen {
				a.certificate = append(a.certificate, s)
				a.certMarked[s] = true
				break
			}
		}
	}
	for _, s := range a.last.Members {
		if s != chosen {
			a.active[s] = false
		}
	}
}

// nextPhase builds the element queue of the next phase (or the padding
// tail) and reports whether anything remains.
func (a *DeterministicAdversary) nextPhase() bool {
	a.phase++
	a.queue = a.queue[:0]
	a.qpos = 0
	if a.phase <= a.k {
		// Partition the currently active sets into groups of σ.
		group := make([]setsystem.SetID, 0, a.sigma)
		for i := 0; i < a.m; i++ {
			if !a.active[i] {
				continue
			}
			group = append(group, setsystem.SetID(i))
			if len(group) == a.sigma {
				a.pushPhaseElement(group)
				group = group[:0]
			}
		}
		if len(group) > 0 {
			a.pushPhaseElement(group)
		}
		return true // even an empty phase advances to padding eventually
	}
	if a.phase == a.k+1 {
		// Padding: complete every set to size k with load-1 elements.
		for i := 0; i < a.m; i++ {
			for r := a.arrived[i]; r < a.k; r++ {
				a.queue = append(a.queue, setsystem.Element{
					Members:  []setsystem.SetID{setsystem.SetID(i)},
					Capacity: 1,
				})
			}
		}
		return len(a.queue) > 0
	}
	return false
}

func (a *DeterministicAdversary) pushPhaseElement(group []setsystem.SetID) {
	members := append([]setsystem.SetID(nil), group...)
	for _, s := range members {
		a.arrived[s]++
	}
	a.queue = append(a.queue, setsystem.Element{Members: members, Capacity: 1})
}

// Certificate returns the pairwise-disjoint sets recorded during phase 1;
// each is completable by an offline solution, so len(Certificate()) is a
// certified lower bound on OPT. For an algorithm that assigns every
// phase-1 element, the certificate has exactly σ^(k−1) sets.
func (a *DeterministicAdversary) Certificate() []setsystem.SetID {
	return append([]setsystem.SetID(nil), a.certificate...)
}

// RunDuel runs the adversary against a deterministic algorithm and returns
// the algorithm's result, the materialized instance, and the certified OPT
// value. The adversary adapts per Theorem 3, so alg should be
// deterministic for the guarantee ALG ≤ 1 to hold.
func RunDuel(sigma, k int, alg core.Algorithm) (res *core.Result, inst *setsystem.Instance, certOPT int, err error) {
	adv, err := NewDeterministicAdversary(sigma, k)
	if err != nil {
		return nil, nil, 0, err
	}
	res, inst, err = core.RunSource(adv, alg, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, inst, len(adv.Certificate()), nil
}
