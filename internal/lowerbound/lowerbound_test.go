package lowerbound

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/setsystem"
)

func TestNewDeterministicAdversaryRejectsBadParams(t *testing.T) {
	cases := []struct{ sigma, k int }{{1, 3}, {0, 2}, {2, 0}, {2, -1}, {1024, 3}}
	for _, c := range cases {
		if _, err := NewDeterministicAdversary(c.sigma, c.k); !errors.Is(err, ErrBadParams) {
			t.Errorf("NewDeterministicAdversary(%d,%d) err = %v, want ErrBadParams", c.sigma, c.k, err)
		}
	}
}

func TestDuelAgainstDeterministicBaselines(t *testing.T) {
	for _, p := range []struct{ sigma, k int }{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}, {2, 4}} {
		want := pow(p.sigma, p.k-1)
		for _, alg := range core.Baselines() {
			res, inst, certOPT, err := RunDuel(p.sigma, p.k, alg)
			if err != nil {
				t.Fatalf("σ=%d k=%d %s: %v", p.sigma, p.k, alg.Name(), err)
			}
			if res.Benefit > 1 {
				t.Errorf("σ=%d k=%d %s: ALG = %v > 1 — Theorem 3 violated", p.sigma, p.k, alg.Name(), res.Benefit)
			}
			if certOPT != want {
				t.Errorf("σ=%d k=%d %s: certificate %d, want σ^(k−1) = %d", p.sigma, p.k, alg.Name(), certOPT, want)
			}
			if err := inst.Validate(); err != nil {
				t.Errorf("σ=%d k=%d %s: materialized instance invalid: %v", p.sigma, p.k, alg.Name(), err)
			}
			// Every set must have size exactly k and every element load ≤ σ.
			for i, sz := range inst.Sizes {
				if sz != p.k {
					t.Fatalf("set %d has size %d, want %d", i, sz, p.k)
				}
			}
			st := setsystem.Compute(inst)
			if st.SigmaMax > p.sigma {
				t.Errorf("σmax = %d > σ = %d", st.SigmaMax, p.sigma)
			}
		}
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// The adversary's certificate must be a feasible, completable packing of
// the materialized instance: verify with the offline machinery.
func TestCertificateIsFeasible(t *testing.T) {
	adv, err := NewDeterministicAdversary(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	alg := &core.GreedyFirstListed{}
	_, inst, err := core.RunSource(adv, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert := adv.Certificate()
	sol := &offline.Solution{Sets: cert, Weight: float64(len(cert))}
	if err := offline.Verify(inst, sol); err != nil {
		t.Fatalf("certificate not feasible: %v", err)
	}
	// Certificate sets have all their elements, i.e. they are genuinely
	// completable: each appears in exactly k elements of the instance.
	counts := make(map[setsystem.SetID]int)
	for _, e := range inst.Elements {
		for _, s := range e.Members {
			counts[s]++
		}
	}
	for _, s := range cert {
		if counts[s] != 3 {
			t.Errorf("certificate set %d appears in %d elements, want 3", s, counts[s])
		}
	}
}

// Exact OPT on a small duel instance should be at least the certificate
// (and the ratio OPT/ALG at least σ^(k−1)).
func TestDuelExactOPTDominatesCertificate(t *testing.T) {
	res, inst, certOPT, err := RunDuel(2, 3, &core.GreedyMaxWeight{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := offline.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight < float64(certOPT) {
		t.Errorf("exact OPT %v < certificate %d", sol.Weight, certOPT)
	}
	if res.Benefit > 1 {
		t.Errorf("ALG = %v > 1", res.Benefit)
	}
	if ratio := sol.Weight / math.Max(res.Benefit, 1); ratio < float64(certOPT) {
		t.Errorf("ratio %v < σ^(k−1) = %d", ratio, certOPT)
	}
}

// randPr against the Theorem 3 adversary: the adversary is built for
// deterministic algorithms, but the stream it produces is still a valid
// instance; randPr should complete at least one set on average and the run
// must satisfy the engine's invariants.
func TestDuelAgainstRandPrIsValid(t *testing.T) {
	adv, err := NewDeterministicAdversary(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, inst, err := core.RunSource(adv, &core.RandPr{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Benefit < 0 || res.Benefit > float64(inst.NumSets()) {
		t.Errorf("benefit %v out of range", res.Benefit)
	}
}

// An algorithm that never assigns: the adversary must still terminate,
// produce a valid instance of sets of size k and keep the certificate.
func TestDuelAgainstNihilist(t *testing.T) {
	res, inst, certOPT, err := RunDuel(3, 3, nihilist{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 0 {
		t.Errorf("nihilist benefit = %v, want 0", res.Benefit)
	}
	if certOPT != 9 {
		t.Errorf("certificate = %d, want 9", certOPT)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

type nihilist struct{}

func (nihilist) Name() string                              { return "nihilist" }
func (nihilist) Reset(core.Info, *rand.Rand) error         { return nil }
func (nihilist) Choose(core.ElementView) []setsystem.SetID { return nil }

func TestNewLemma9RejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, l := range []int{0, 1, 6, 10} {
		if _, err := NewLemma9(l, rng); !errors.Is(err, ErrBadParams) {
			t.Errorf("NewLemma9(%d) err = %v, want ErrBadParams", l, err)
		}
	}
	if _, err := NewLemma9(2, nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("NewLemma9(2, nil) err = %v, want ErrBadParams", err)
	}
}

func TestLemma9Shape(t *testing.T) {
	for _, l := range []int{2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(l)))
		li, err := NewLemma9(l, rng)
		if err != nil {
			t.Fatalf("ℓ=%d: %v", l, err)
		}
		inst := li.Inst
		if err := inst.Validate(); err != nil {
			t.Fatalf("ℓ=%d: invalid instance: %v", l, err)
		}
		l2, l4, l5 := l*l, l*l*l*l, l*l*l*l*l

		if inst.NumSets() != l4 {
			t.Errorf("ℓ=%d: m = %d, want ℓ⁴ = %d", l, inst.NumSets(), l4)
		}
		// Lemma 8 accounting: n = ℓ⁴ + ℓ⁵ + ℓ⁴ + (ℓ²−ℓ) + ℓ³(ℓ²+1).
		l3 := l2 * l
		wantN := l4 + l5 + l4 + (l2 - l) + l3*(l2+1)
		if inst.NumElements() != wantN {
			t.Errorf("ℓ=%d: n = %d, want %d", l, inst.NumElements(), wantN)
		}
		// All sets share the common size k = 2ℓ²+ℓ+1 (Section 4 requires a
		// common size; see DESIGN.md for the Stage IV correction).
		if k, ok := setsystem.UniformSize(inst); !ok || k != 2*l2+l+1 {
			t.Fatalf("ℓ=%d: sizes not uniform at 2ℓ²+ℓ+1 (got %d, %v)", l, k, ok)
		}
		st := setsystem.Compute(inst)
		// σmax = ℓ²−ℓ for ℓ ≥ 3 (Stage III rows have load ℓ², wait: row
		// lines of the Stage III gadget have load N = ℓ²). Bound: σmax ≤ ℓ².
		if st.SigmaMax > l2 {
			t.Errorf("ℓ=%d: σmax = %d > ℓ² = %d", l, st.SigmaMax, l2)
		}
		if st.SigmaMax < l2-l {
			t.Errorf("ℓ=%d: σmax = %d < ℓ²−ℓ = %d", l, st.SigmaMax, l2-l)
		}
		// mean load Θ(ℓ): between ℓ/4 and 2ℓ is a safe band.
		if st.SigmaMean < float64(l)/4 || st.SigmaMean > 2*float64(l) {
			t.Errorf("ℓ=%d: mean σ = %v, want Θ(ℓ)", l, st.SigmaMean)
		}
		if err := li.VerifyPlanted(); err != nil {
			t.Errorf("ℓ=%d: %v", l, err)
		}
	}
}

// The planted collection really is completable: feed the instance to a
// clairvoyant algorithm that assigns every element to its planted parent
// and check it completes all ℓ³ sets.
func TestLemma9PlantedCompletable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	li, err := NewLemma9(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inPlanted := make([]bool, li.Inst.NumSets())
	for _, s := range li.Planted {
		inPlanted[s] = true
	}
	alg := &clairvoyant{planted: inPlanted}
	res, err := core.Run(li.Inst, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(res.Benefit), 27; got != want {
		t.Errorf("clairvoyant benefit = %d, want ℓ³ = %d", got, want)
	}
}

type clairvoyant struct{ planted []bool }

func (c *clairvoyant) Name() string                      { return "clairvoyant" }
func (c *clairvoyant) Reset(core.Info, *rand.Rand) error { return nil }
func (c *clairvoyant) Choose(ev core.ElementView) []setsystem.SetID {
	for _, s := range ev.Members {
		if c.planted[s] {
			return []setsystem.SetID{s}
		}
	}
	return nil
}

// Online algorithms are crushed by the Lemma 9 distribution: the measured
// benefit of randPr and the deterministic baselines must be far below the
// planted OPT of ℓ³.
func TestLemma9DefeatsOnlineAlgorithms(t *testing.T) {
	const l = 4
	rng := rand.New(rand.NewSource(7))
	li, err := NewLemma9(l, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := float64(l * l * l)
	algs := []core.Algorithm{&core.RandPr{}, &core.GreedyFirstListed{}, &core.GreedyFewestRemaining{}}
	for _, alg := range algs {
		res, err := core.Run(li.Inst, alg, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Benefit > opt/4 {
			t.Errorf("%s achieved %v on the ℓ=%d distribution; expected far below OPT = %v",
				alg.Name(), res.Benefit, l, opt)
		}
	}
}
