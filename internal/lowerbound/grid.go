package lowerbound

import (
	"fmt"
	"math/rand"

	"repro/internal/setsystem"
)

// GridInstance is the "intuitive explanation of a weaker lower bound" that
// opens Section 4.2 of the paper: t² sets S_ij arranged in a t×t grid.
//
// First t row-elements arrive: u_i belongs to the entire row {S_ij : j}
// (load t), so any algorithm keeps at most one alg-active set per row.
// Then t² random permutation-elements arrive: v_ℓ belongs to
// {S_{i,π_ℓ(i)} : i} for a uniformly random permutation π_ℓ, satisfying
// the paper's condition that two sets of v_ℓ never share a row or a
// column. Any two sets in different rows are covered by some v_ℓ with
// constant probability, so of the algorithm's t survivors only O(log t)
// stay active. An optimal solution completes a full column (t sets):
// column sets meet every v_ℓ at most once, so all of its elements are
// assignable. Finally, load-1 padding elements equalize set sizes.
//
// The construction yields σmax = t, k = Θ(t) and a Ω(t/log t) gap — the
// warm-up for the full Lemma 9 machinery.
type GridInstance struct {
	T    int
	Inst *setsystem.Instance
	// Column[j] lists the sets of column j (the candidate OPT packings).
	Column [][]setsystem.SetID
}

// NewGrid draws a grid instance with side t ≥ 2.
func NewGrid(t int, rng *rand.Rand) (*GridInstance, error) {
	if t < 2 {
		return nil, fmt.Errorf("%w: grid side t=%d must be >= 2", ErrBadParams, t)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadParams)
	}
	var b setsystem.Builder
	b.AddSets(t*t, 1)
	// Random bijection of sets onto grid positions: the algorithm must not
	// be able to infer rows/columns from set identifiers (cf. the random
	// bijections μ of Lemma 9) — with the identity labeling, a
	// lowest-ID-first algorithm would align its row survivors into a
	// single column and complete all of OPT.
	place := rng.Perm(t * t)
	id := func(i, j int) setsystem.SetID { return setsystem.SetID(place[i*t+j]) }

	// Row elements u_1..u_t.
	for i := 0; i < t; i++ {
		members := make([]setsystem.SetID, t)
		for j := 0; j < t; j++ {
			members[j] = id(i, j)
		}
		b.AddElement(members...)
	}
	// Permutation elements v_1..v_{t²}.
	memberCount := make([]int, t*t) // elements so far per set (for padding)
	for i := range memberCount {
		memberCount[i] = 1 // the row element
	}
	for l := 0; l < t*t; l++ {
		pi := rng.Perm(t)
		members := make([]setsystem.SetID, t)
		for i := 0; i < t; i++ {
			members[i] = id(i, pi[i])
			memberCount[id(i, pi[i])]++
		}
		b.AddElement(members...)
	}
	// Padding: equalize sizes at the maximum so set size leaks nothing.
	maxSize := 0
	for _, c := range memberCount {
		if c > maxSize {
			maxSize = c
		}
	}
	for s, c := range memberCount {
		for r := c; r < maxSize; r++ {
			b.AddElement(setsystem.SetID(s))
		}
	}

	inst, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lowerbound: grid build: %w", err)
	}
	gi := &GridInstance{T: t, Inst: inst, Column: make([][]setsystem.SetID, t)}
	for j := 0; j < t; j++ {
		col := make([]setsystem.SetID, t)
		for i := 0; i < t; i++ {
			col[i] = id(i, j)
		}
		gi.Column[j] = col
	}
	return gi, nil
}

// VerifyColumns checks the OPT certificate: within any single column, no
// element is demanded by two sets (so the whole column is completable,
// certifying OPT ≥ t).
func (gi *GridInstance) VerifyColumns() error {
	t := gi.T
	for j := 0; j < t; j++ {
		inCol := make(map[setsystem.SetID]bool, t)
		for _, s := range gi.Column[j] {
			inCol[s] = true
		}
		for e, elem := range gi.Inst.Elements {
			count := 0
			for _, s := range elem.Members {
				if inCol[s] {
					count++
				}
			}
			if count > 1 {
				return fmt.Errorf("lowerbound: grid column %d double-hit by element %d", j, e)
			}
		}
	}
	return nil
}
