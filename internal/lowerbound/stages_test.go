package lowerbound

import (
	"math/rand"
	"testing"
)

// Per-stage load profile of the Lemma 9 construction (the accounting in
// the proof of Lemma 9): Stage I has ℓ⁴ elements of load ℓ; Stage II has
// ℓ⁵ elements of load ℓ; Stage III has ℓ⁴ elements of load ℓ²−ℓ plus
// ℓ²−ℓ row elements of load ℓ²; Stage IV has ℓ³(ℓ²+1) elements of load 1.
func TestLemma9StageProfile(t *testing.T) {
	for _, l := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(l)))
		li, err := NewLemma9(l, rng)
		if err != nil {
			t.Fatal(err)
		}
		l2, l3, l4, l5 := l*l, l*l*l, l*l*l*l, l*l*l*l*l

		counts := [5]int{} // per-stage element counts (1-indexed)
		for j, e := range li.Inst.Elements {
			stage := li.StageOf(j)
			counts[stage]++
			load := e.Load()
			switch stage {
			case 1, 2:
				if load != l {
					t.Fatalf("ℓ=%d: stage %d element %d has load %d, want ℓ=%d", l, stage, j, load, l)
				}
			case 3:
				if load != l2-l && load != l2 {
					t.Fatalf("ℓ=%d: stage 3 element %d has load %d, want ℓ²−ℓ or ℓ²", l, j, load)
				}
			case 4:
				if load != 1 {
					t.Fatalf("ℓ=%d: stage 4 element %d has load %d, want 1", l, j, load)
				}
			}
		}
		if counts[1] != l4 {
			t.Errorf("ℓ=%d: stage I count %d, want ℓ⁴=%d", l, counts[1], l4)
		}
		if counts[2] != l5 {
			t.Errorf("ℓ=%d: stage II count %d, want ℓ⁵=%d", l, counts[2], l5)
		}
		if counts[3] != l4+(l2-l) {
			t.Errorf("ℓ=%d: stage III count %d, want ℓ⁴+ℓ²−ℓ=%d", l, counts[3], l4+l2-l)
		}
		if counts[4] != l3*(l2+1) {
			t.Errorf("ℓ=%d: stage IV count %d, want ℓ³(ℓ²+1)=%d", l, counts[4], l3*(l2+1))
		}
		// Exactly ℓ²−ℓ of the stage-3 elements are the row lines of load ℓ².
		rows := 0
		for j := li.StageEnd[1]; j < li.StageEnd[2]; j++ {
			if li.Inst.Elements[j].Load() == l2 {
				rows++
			}
		}
		if l > 2 && rows != l2-l {
			// For ℓ=2, ℓ²−ℓ = ℓ = 2 so affine and row loads coincide; skip.
			t.Errorf("ℓ=%d: %d row elements in stage III, want ℓ²−ℓ=%d", l, rows, l2-l)
		}
	}
}

// Stage boundaries are monotone and end at n.
func TestLemma9StageBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	li, err := NewLemma9(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for s, end := range li.StageEnd {
		if end < prev {
			t.Fatalf("StageEnd[%d] = %d < previous %d", s, end, prev)
		}
		prev = end
	}
	if li.StageEnd[3] != li.Inst.NumElements() {
		t.Errorf("StageEnd[3] = %d, want n = %d", li.StageEnd[3], li.Inst.NumElements())
	}
	if li.StageOf(0) != 1 || li.StageOf(li.Inst.NumElements()-1) != 4 {
		t.Error("StageOf boundary values wrong")
	}
}
