package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/hashpr"
	"repro/internal/setsystem"
)

// The policy layer generalizes the engine's admission rule. The paper's
// randPr is one point in a family of priority-based online set-packing
// strategies; a Policy packages one such strategy so the sharded streaming
// engine, the HTTP service, and the serial runner can all execute it
// interchangeably. The contract (DESIGN.md §11) has two halves:
//
//   - Setup is a pure function of (Info, seed): given the same up-front
//     information and the same 64-bit seed it must build identical state,
//     so every replica — shard workers, verdict handlers, remote mirrors,
//     the serial oracle — agrees on every decision with zero coordination.
//     Deterministic policies simply ignore the seed.
//   - Decide is a pure function of (element, frozen state): it may not
//     consult run history, mutate the state, or retain the member slice.
//     That is exactly what lets shards decide elements concurrently and
//     still reproduce a serial run bit for bit at any shard count.

// PolicyState is the frozen per-instance decision state a Policy builds at
// Setup. Both methods must be safe for concurrent use from any number of
// goroutines: they are called by every engine shard and by HTTP verdict
// handlers at once.
type PolicyState interface {
	// DecideInPlace trims members — the arriving element's parent sets in
	// ascending SetID order — to the at most capacity admitted parents,
	// reordering the slice in place and returning the winning prefix in
	// ascending SetID order. It is the zero-copy hot path for callers that
	// own the members storage (the engine's flat batch buffers).
	DecideInPlace(members []setsystem.SetID, capacity int) []setsystem.SetID
	// Decide is DecideInPlace for callers that must not have members
	// reordered (verdict handlers deciding on request buffers). The result
	// reuses buf's storage when possible.
	Decide(members []setsystem.SetID, capacity int, buf []setsystem.SetID) []setsystem.SetID
}

// Policy is a named admission-policy family. Implementations must be
// stateless values: all per-instance state lives in the PolicyState that
// Setup returns.
type Policy interface {
	// Name is the registry key, echoed in API responses and metrics.
	Name() string
	// Setup builds the frozen decision state for one instance. It must be
	// deterministic in (info, seed) — see the contract above.
	Setup(info Info, seed uint64) (PolicyState, error)
}

// DefaultPolicy is the registry name of the paper's algorithm, used
// whenever a policy name is left empty.
const DefaultPolicy = "randpr"

// VectorState is the PolicyState shared by every priority-vector policy:
// a fixed per-set priority vector decided through the zero-allocation
// top-k kernel, ties broken by lower SetID. randPr, its weighted variant
// and the deterministic greedy-remaining policy are all vector policies —
// they differ only in how Setup fills the vector.
type VectorState struct {
	prio []float64
}

// NewVectorState wraps a priority vector, which must not be mutated
// afterwards.
func NewVectorState(prio []float64) *VectorState { return &VectorState{prio: prio} }

// Priorities exposes the read-only vector (verdict replicas and white-box
// tests).
func (s *VectorState) Priorities() []float64 { return s.prio }

// DecideInPlace implements PolicyState.
func (s *VectorState) DecideInPlace(members []setsystem.SetID, capacity int) []setsystem.SetID {
	return topByPriority(members, capacity, s.prio)
}

// Decide implements PolicyState.
func (s *VectorState) Decide(members []setsystem.SetID, capacity int, buf []setsystem.SetID) []setsystem.SetID {
	return SelectTopPriority(members, capacity, s.prio, buf)
}

// RandPrPolicy is the default policy: the paper's distributed randPr.
// Priorities are derived from a shared hash of each SetID mapped through
// the R_w inverse transform — the exact code path HashRandPr uses, so the
// serial oracle for this policy is Run with HashRandPr under the same
// seed.
type RandPrPolicy struct {
	// Hasher overrides the seed-derived hasher (tests exercising other
	// hash families). Nil means hashpr.Mixer{Seed: seed}, the production
	// configuration.
	Hasher hashpr.UniformHasher
}

// Name implements Policy.
func (RandPrPolicy) Name() string { return DefaultPolicy }

// Description implements PolicyDescriber.
func (RandPrPolicy) Description() string {
	return "the paper's distributed randPr: hash-derived R_w priorities, top-b(u) selection (Theorem 1 guarantees apply)"
}

// Setup implements Policy.
func (p RandPrPolicy) Setup(info Info, seed uint64) (PolicyState, error) {
	h := p.Hasher
	if h == nil {
		h = hashpr.Mixer{Seed: seed}
	}
	return NewVectorState(HashPriorities(info, h, nil)), nil
}

// WeightedRandPrPolicy is randPr with its priority scaled by the set's
// weight: p(S) = w(S)·r(S), r(S) ~ R_{w(S)} hash-derived as in randPr.
// Heavy sets win contested elements even more often than randPr's weighted
// race already favors them — a practical variant for workloads where
// dropping a heavy frame is disproportionately costly. The competitive
// analysis of Theorem 1 does not apply to it; it exists to be compared.
type WeightedRandPrPolicy struct {
	// Hasher mirrors RandPrPolicy.Hasher.
	Hasher hashpr.UniformHasher
}

// Name implements Policy.
func (WeightedRandPrPolicy) Name() string { return "randpr-weighted" }

// Description implements PolicyDescriber.
func (WeightedRandPrPolicy) Description() string {
	return "randPr with priorities scaled by set weight (p = w·r): heavy sets win contested elements more often"
}

// Setup implements Policy. It scales the output of HashPriorities — the
// single shared priority code path — so the two randPr variants can never
// drift apart on how priorities are derived.
func (p WeightedRandPrPolicy) Setup(info Info, seed uint64) (PolicyState, error) {
	h := p.Hasher
	if h == nil {
		h = hashpr.Mixer{Seed: seed}
	}
	prio := HashPriorities(info, h, nil)
	for i, w := range info.Weights {
		prio[i] *= w
	}
	return NewVectorState(prio), nil
}

// GreedyRemainingPolicy is the deterministic "protect the almost-finished"
// strategy: admit the parents closest to completion — fewest declared
// elements — breaking ties by larger weight, then lower SetID. Because the
// decide step may not consult run history (the shard-safety contract),
// proximity to completion is judged from the declared sizes, the only
// per-set information fixed before the stream. Setup rank-encodes the
// (size asc, weight desc, SetID asc) order into a priority vector, so the
// decide step is the same zero-allocation kernel as randPr. Theorem 3's
// adversary defeats it, which is exactly why it ships: it is the
// deterministic baseline the randomized policies are compared against.
type GreedyRemainingPolicy struct{}

// Name implements Policy.
func (GreedyRemainingPolicy) Name() string { return "greedy-remaining" }

// Description implements PolicyDescriber.
func (GreedyRemainingPolicy) Description() string {
	return "deterministic baseline: admit the parents closest to completion by declared size (ties: weight desc, SetID asc)"
}

// Setup implements Policy. The seed is ignored: the policy is
// deterministic.
func (GreedyRemainingPolicy) Setup(info Info, _ uint64) (PolicyState, error) {
	m := info.NumSets()
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if info.Sizes[ia] != info.Sizes[ib] {
			return info.Sizes[ia] < info.Sizes[ib]
		}
		if info.Weights[ia] != info.Weights[ib] {
			return info.Weights[ia] > info.Weights[ib]
		}
		return ia < ib
	})
	// Rank-encode: the best set gets the highest priority. Ranks are
	// distinct, so the kernel's SetID tie-break never fires and the
	// lexicographic order above is reproduced exactly.
	prio := make([]float64, m)
	for rank, id := range order {
		prio[id] = float64(m - rank)
	}
	return NewVectorState(prio), nil
}

// FirstFitPolicy is the admit-all baseline: every element is assigned to
// its first b(u) parents in SetID order, no selection pressure at all. It
// anchors competitive-ratio comparisons — any policy that cannot beat
// first-fit on a workload is not earning its complexity there.
type FirstFitPolicy struct{}

// Name implements Policy.
func (FirstFitPolicy) Name() string { return "first-fit" }

// Description implements PolicyDescriber.
func (FirstFitPolicy) Description() string {
	return "admit-all baseline: the first b(u) parents in SetID order, no selection pressure"
}

// Setup implements Policy. The seed is ignored: the policy is
// deterministic.
func (FirstFitPolicy) Setup(Info, uint64) (PolicyState, error) {
	return firstFitState{}, nil
}

// firstFitState admits the leading capacity members. Members arrive in
// ascending SetID order, so the prefix already satisfies the ordering
// contract.
type firstFitState struct{}

func (firstFitState) DecideInPlace(members []setsystem.SetID, capacity int) []setsystem.SetID {
	if capacity < 0 {
		capacity = 0
	}
	if len(members) > capacity {
		members = members[:capacity]
	}
	return members
}

func (s firstFitState) Decide(members []setsystem.SetID, capacity int, buf []setsystem.SetID) []setsystem.SetID {
	return append(buf[:0], s.DecideInPlace(members, capacity)...)
}

// ErrUnknownPolicy is wrapped by LookupPolicy for unregistered names.
var ErrUnknownPolicy = errors.New("core: unknown policy")

// policyRegistry maps registry names to stateless Policy values. Guarded
// by a mutex because service handlers look names up concurrently.
var (
	policyMu       sync.RWMutex
	policyRegistry = map[string]Policy{
		DefaultPolicy:      RandPrPolicy{},
		"randpr-weighted":  WeightedRandPrPolicy{},
		"greedy-remaining": GreedyRemainingPolicy{},
		"first-fit":        FirstFitPolicy{},
	}
)

// RegisterPolicy adds a policy to the registry under its Name. It errors
// on an empty name or a name already taken — built-ins cannot be
// shadowed.
func RegisterPolicy(p Policy) error {
	if p == nil || p.Name() == "" {
		return errors.New("core: policy must have a name")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyRegistry[p.Name()]; dup {
		return fmt.Errorf("core: policy %q already registered", p.Name())
	}
	policyRegistry[p.Name()] = p
	return nil
}

// LookupPolicy resolves a policy name; the empty string resolves to
// DefaultPolicy. Unknown names error with ErrUnknownPolicy and the list
// of registered names.
func LookupPolicy(name string) (Policy, error) {
	if name == "" {
		name = DefaultPolicy
	}
	policyMu.RLock()
	p, ok := policyRegistry[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %v)", ErrUnknownPolicy, name, PolicyNames())
	}
	return p, nil
}

// PolicyNames returns every registered policy name, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	names := make([]string, 0, len(policyRegistry))
	for n := range policyRegistry {
		names = append(names, n)
	}
	policyMu.RUnlock()
	sort.Strings(names)
	return names
}

// PolicyDescriber is the optional self-description interface a Policy
// may implement. The service's GET /v1/policies discovery endpoint
// surfaces these one-liners so clients can enumerate what a server
// offers instead of hardcoding names.
type PolicyDescriber interface {
	// Description is one line: what the policy optimizes for and any
	// guarantee caveat.
	Description() string
}

// PolicyInfo pairs a registered policy name with its one-line
// description ("" when the policy does not describe itself).
type PolicyInfo struct {
	Name        string
	Description string
}

// PolicyInfos returns every registered policy with its description,
// sorted by name — the registry-driven source of the service's
// GET /v1/policies response.
func PolicyInfos() []PolicyInfo {
	policyMu.RLock()
	infos := make([]PolicyInfo, 0, len(policyRegistry))
	for name, p := range policyRegistry {
		info := PolicyInfo{Name: name}
		if d, ok := p.(PolicyDescriber); ok {
			info.Description = d.Description()
		}
		infos = append(infos, info)
	}
	policyMu.RUnlock()
	sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	return infos
}

// PolicyAlgorithm adapts a Policy to the Algorithm interface, making
// core.Run the serial oracle of any policy: a streaming engine run under
// (policy, seed) must be bit-for-bit identical to Run with the matching
// PolicyAlgorithm at every shard count. The rng parameter of Reset is
// ignored — all randomness flows from the seed, exactly as in the
// distributed setting.
type PolicyAlgorithm struct {
	Policy Policy
	Seed   uint64

	state PolicyState
	buf   []setsystem.SetID
}

var _ Algorithm = (*PolicyAlgorithm)(nil)

// Name implements Algorithm.
func (a *PolicyAlgorithm) Name() string { return a.Policy.Name() }

// Reset implements Algorithm.
func (a *PolicyAlgorithm) Reset(info Info, _ *rand.Rand) error {
	st, err := a.Policy.Setup(info, a.Seed)
	if err != nil {
		return err
	}
	a.state = st
	return nil
}

// Choose implements Algorithm.
func (a *PolicyAlgorithm) Choose(ev ElementView) []setsystem.SetID {
	a.buf = a.state.Decide(ev.Members, ev.Capacity, a.buf)
	return a.buf
}
