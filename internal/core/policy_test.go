package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hashpr"
	"repro/internal/setsystem"
)

// policyInfo is a small fixture with distinct weights and sizes so every
// policy's ordering is exercised.
func policyInfo() Info {
	return Info{
		Weights: []float64{5, 1, 3, 3, 2},
		Sizes:   []int{2, 1, 3, 1, 2},
	}
}

// TestRegistryBuiltins pins the registry surface: the four built-ins are
// present, lookup resolves the empty name to the default, and unknown
// names fail with ErrUnknownPolicy.
func TestRegistryBuiltins(t *testing.T) {
	want := []string{"first-fit", "greedy-remaining", "randpr", "randpr-weighted"}
	if got := PolicyNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("PolicyNames() = %v, want %v", got, want)
	}
	p, err := LookupPolicy("")
	if err != nil || p.Name() != DefaultPolicy {
		t.Errorf(`LookupPolicy("") = %v, %v; want the %s policy`, p, err, DefaultPolicy)
	}
	if _, err := LookupPolicy("nope"); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("LookupPolicy(nope) = %v, want ErrUnknownPolicy", err)
	}
	for _, name := range want {
		p, err := LookupPolicy(name)
		if err != nil {
			t.Fatalf("LookupPolicy(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy registered under %q names itself %q", name, p.Name())
		}
	}
}

// TestRegisterPolicyGuards pins the mutation rules: no nil or unnamed
// policies, no shadowing of an existing name, and a fresh name round-trips.
func TestRegisterPolicyGuards(t *testing.T) {
	if err := RegisterPolicy(nil); err == nil {
		t.Error("RegisterPolicy(nil) accepted")
	}
	if err := RegisterPolicy(RandPrPolicy{}); err == nil {
		t.Error("re-registering randpr accepted")
	}
	custom := testPolicy{name: "test-custom"}
	if err := RegisterPolicy(custom); err != nil {
		t.Fatalf("RegisterPolicy(test-custom): %v", err)
	}
	defer func() {
		policyMu.Lock()
		delete(policyRegistry, "test-custom")
		policyMu.Unlock()
	}()
	if got, err := LookupPolicy("test-custom"); err != nil || got.Name() != "test-custom" {
		t.Errorf("LookupPolicy(test-custom) = %v, %v", got, err)
	}
}

// testPolicy is a registrable stub.
type testPolicy struct{ name string }

func (p testPolicy) Name() string                            { return p.name }
func (p testPolicy) Setup(Info, uint64) (PolicyState, error) { return firstFitState{}, nil }

// TestSetupDeterminism pins the seed contract: two Setups under the same
// (info, seed) produce states that agree on every decision; a different
// seed changes randomized policies but not deterministic ones.
func TestSetupDeterminism(t *testing.T) {
	info := policyInfo()
	members := []setsystem.SetID{0, 1, 2, 3, 4}
	for _, name := range PolicyNames() {
		pol, err := LookupPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pol.Setup(info, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := pol.Setup(info, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for cap := 1; cap <= len(members); cap++ {
			da := a.Decide(members, cap, nil)
			db := b.Decide(members, cap, nil)
			if !reflect.DeepEqual(da, db) {
				t.Errorf("%s cap=%d: same seed decided %v then %v", name, cap, da, db)
			}
			if len(da) != min(cap, len(members)) {
				t.Errorf("%s cap=%d: decided %d parents", name, cap, len(da))
			}
			for i := 1; i < len(da); i++ {
				if da[i-1] >= da[i] {
					t.Errorf("%s cap=%d: decision %v not in ascending SetID order", name, cap, da)
				}
			}
		}
	}
}

// TestDecideInPlaceAgreesWithDecide pins the two decide entry points
// against each other — the engine uses the in-place path, verdict
// handlers the copying one, and they must never disagree.
func TestDecideInPlaceAgreesWithDecide(t *testing.T) {
	info := policyInfo()
	members := []setsystem.SetID{0, 1, 2, 3, 4}
	for _, name := range PolicyNames() {
		pol, _ := LookupPolicy(name)
		st, err := pol.Setup(info, 7)
		if err != nil {
			t.Fatal(err)
		}
		for cap := 1; cap <= len(members); cap++ {
			want := st.Decide(members, cap, nil)
			scratch := append([]setsystem.SetID(nil), members...)
			got := st.DecideInPlace(scratch, cap)
			if !reflect.DeepEqual(append([]setsystem.SetID(nil), got...), want) {
				t.Errorf("%s cap=%d: DecideInPlace %v != Decide %v", name, cap, got, want)
			}
		}
	}
}

// TestRandPrPolicyMatchesHashRandPr pins backward compatibility: the
// default policy's oracle is exactly the pre-policy HashRandPr algorithm,
// so every result produced before the refactor is still reproduced.
func TestRandPrPolicyMatchesHashRandPr(t *testing.T) {
	inst := testInstance(t)
	const seed = 99
	want, err := Run(inst, &HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, _ := LookupPolicy(DefaultPolicy)
	got, err := Run(inst, &PolicyAlgorithm{Policy: pol, Seed: seed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("randpr policy oracle differs from HashRandPr: %v vs %v", got.Benefit, want.Benefit)
	}
}

// testInstance builds a deterministic mid-size instance.
func testInstance(t *testing.T) *setsystem.Instance {
	t.Helper()
	var b setsystem.Builder
	rng := rand.New(rand.NewSource(17))
	ids := make([]setsystem.SetID, 12)
	for i := range ids {
		ids[i] = b.AddSet(1 + float64(i%5))
	}
	for e := 0; e < 400; e++ {
		k := 2 + rng.Intn(3)
		perm := rng.Perm(len(ids))[:k]
		members := make([]setsystem.SetID, 0, k)
		for _, p := range perm {
			members = append(members, ids[p])
		}
		b.AddElementCap(1+rng.Intn(2), members...)
	}
	return b.MustBuild()
}

// TestGreedyRemainingOrder pins the deterministic ordering: smaller
// declared size first, then larger weight, then lower SetID.
func TestGreedyRemainingOrder(t *testing.T) {
	info := Info{
		// id:      0  1  2  3  4
		Weights: []float64{5, 1, 3, 3, 2},
		Sizes:   []int{2, 1, 3, 1, 2},
	}
	st, err := GreedyRemainingPolicy{}.Setup(info, 0)
	if err != nil {
		t.Fatal(err)
	}
	// size-1 sets first (3 beats 1 on weight), then size-2 (0 beats 4),
	// then the size-3 set.
	wantOrder := []setsystem.SetID{3, 1, 0, 4, 2}
	members := []setsystem.SetID{0, 1, 2, 3, 4}
	for cap := 1; cap <= 5; cap++ {
		got := st.Decide(members, cap, nil)
		want := append([]setsystem.SetID(nil), wantOrder[:cap]...)
		setsystemSort(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cap=%d: decided %v, want %v", cap, got, want)
		}
	}
}

// setsystemSort sorts ids ascending (tiny helper for expectations).
func setsystemSort(ids []setsystem.SetID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// TestFirstFitAdmitsPrefix pins the admit-all baseline: the first b(u)
// parents in SetID order, every time.
func TestFirstFitAdmitsPrefix(t *testing.T) {
	st, err := FirstFitPolicy{}.Setup(Info{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	members := []setsystem.SetID{2, 5, 9}
	if got := st.Decide(members, 2, nil); !reflect.DeepEqual(got, []setsystem.SetID{2, 5}) {
		t.Errorf("Decide cap=2 = %v, want [2 5]", got)
	}
	if got := st.Decide(members, 7, nil); !reflect.DeepEqual(got, []setsystem.SetID{2, 5, 9}) {
		t.Errorf("Decide cap=7 = %v, want all members", got)
	}
	if got := st.DecideInPlace(append([]setsystem.SetID(nil), members...), 1); !reflect.DeepEqual(got, []setsystem.SetID{2}) {
		t.Errorf("DecideInPlace cap=1 = %v, want [2]", got)
	}
}

// TestWeightedRandPrFavorsHeavySets is a statistical sanity check: under
// weight scaling, the heavy set should win a contested unit-capacity
// element far more often than under plain randPr.
func TestWeightedRandPrFavorsHeavySets(t *testing.T) {
	info := Info{Weights: []float64{10, 1}, Sizes: []int{1, 1}}
	members := []setsystem.SetID{0, 1}
	wins := func(pol Policy) int {
		heavy := 0
		for seed := uint64(0); seed < 400; seed++ {
			st, err := pol.Setup(info, seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Decide(members, 1, nil); len(got) == 1 && got[0] == 0 {
				heavy++
			}
		}
		return heavy
	}
	plain := wins(RandPrPolicy{})
	weighted := wins(WeightedRandPrPolicy{})
	// randPr gives the heavy set w/(w+w') = 10/11 ≈ 364 of 400; weight
	// scaling pushes it essentially to certainty. Wide margins keep the
	// check robust.
	if plain < 300 || plain > 399 {
		t.Errorf("randpr heavy-set wins = %d/400, outside the Lemma 1 ballpark", plain)
	}
	if weighted < plain {
		t.Errorf("randpr-weighted heavy-set wins %d < randpr's %d", weighted, plain)
	}
}

// TestPolicyAlgorithmName pins the adapter's reported name (experiment
// tables key on it).
func TestPolicyAlgorithmName(t *testing.T) {
	pol, _ := LookupPolicy("greedy-remaining")
	a := &PolicyAlgorithm{Policy: pol}
	if a.Name() != "greedy-remaining" {
		t.Errorf("Name() = %q", a.Name())
	}
	if err := a.Reset(policyInfo(), nil); err != nil {
		t.Fatal(err)
	}
	choice := a.Choose(ElementView{Members: []setsystem.SetID{0, 1}, Capacity: 1})
	if len(choice) != 1 {
		t.Errorf("Choose = %v, want one parent", choice)
	}
}

// TestPolicyInfos pins the registry-driven discovery contract: every
// built-in describes itself in one line, rows come back sorted by name,
// and the list agrees with PolicyNames.
func TestPolicyInfos(t *testing.T) {
	infos := PolicyInfos()
	names := PolicyNames()
	if len(infos) != len(names) {
		t.Fatalf("PolicyInfos has %d rows, PolicyNames %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("row %d: name %q, want %q (sorted)", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("policy %q has no description", info.Name)
		}
		if strings.Contains(info.Description, "\n") {
			t.Errorf("policy %q description is not one line", info.Name)
		}
	}
}
