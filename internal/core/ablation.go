package core

import (
	"errors"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/setsystem"
)

// The ablation variants isolate the two design choices randPr's analysis
// rests on: priorities must be (a) persistent across a set's lifetime and
// (b) randomized with the weight-sensitive law R_w. RedrawRandPr breaks
// (a); DetWeightPriority breaks (b). The ablation experiment shows each
// break costing real benefit, which is the empirical argument for the
// algorithm as published.

// RedrawRandPr is randPr with amnesia: it re-draws every parent's priority
// independently at every element instead of fixing r(S) once. Lemma 1
// fails for it — a set must win |S| independent lotteries, so its survival
// probability decays with its size — and the experiments show it
// collapsing toward UniformRandom.
type RedrawRandPr struct {
	weights []float64
	rng     *rand.Rand
	buf     []setsystem.SetID
	prio    []float64
}

var _ Algorithm = (*RedrawRandPr)(nil)

// Name implements Algorithm.
func (a *RedrawRandPr) Name() string { return "redrawRandPr" }

// Reset implements Algorithm.
func (a *RedrawRandPr) Reset(info Info, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("core: redrawRandPr needs a random source")
	}
	a.weights = info.Weights
	a.rng = rng
	if cap(a.prio) < info.NumSets() {
		a.prio = make([]float64, info.NumSets())
	}
	a.prio = a.prio[:info.NumSets()]
	return nil
}

// Choose implements Algorithm: fresh R_w priorities for this element only.
func (a *RedrawRandPr) Choose(ev ElementView) []setsystem.SetID {
	for _, s := range ev.Members {
		a.prio[s] = dist.Sample(a.rng, a.weights[s])
	}
	return chooseTopPriority(ev, a.prio, false, &a.buf)
}

// DetWeightPriority is randPr derandomized the naive way: the priority of
// a set is its weight (ties to lower SetID). Persistent and
// weight-sensitive, but deterministic — so Theorem 3's adversary defeats
// it, and on unweighted instances it degenerates to first-listed.
type DetWeightPriority struct {
	weights []float64
	buf     []setsystem.SetID
}

var _ Algorithm = (*DetWeightPriority)(nil)

// Name implements Algorithm.
func (a *DetWeightPriority) Name() string { return "detWeightPriority" }

// Reset implements Algorithm.
func (a *DetWeightPriority) Reset(info Info, _ *rand.Rand) error {
	a.weights = info.Weights
	return nil
}

// Choose implements Algorithm.
func (a *DetWeightPriority) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopPriority(ev, a.weights, false, &a.buf)
}
