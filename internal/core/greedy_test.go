package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hashpr"
	"repro/internal/setsystem"
)

func TestGreedyMaxWeightPrefersHeavy(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	res, err := Run(inst, &GreedyMaxWeight{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// u0∈{A,B}→B(2); u1∈{A,C}→C(3); u2∈{B,C}→C. C completes.
	if res.Benefit != 3 || len(res.Completed) != 1 || res.Completed[0] != 2 {
		t.Errorf("Completed=%v Benefit=%v, want [2] 3", res.Completed, res.Benefit)
	}
}

func TestGreedyFirstListedPrefersLowID(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	res, err := Run(inst, &GreedyFirstListed{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// u0→A, u1→A, u2→B(B dead)→ B is inactive, C inactive; picks B? No:
	// after u0→A, B inactive; after u1→A, C inactive; u2 has no active
	// parents → empty. A completes.
	if res.Benefit != 1 || len(res.Completed) != 1 || res.Completed[0] != 0 {
		t.Errorf("Completed=%v Benefit=%v, want [0] 1", res.Completed, res.Benefit)
	}
}

func TestGreedyFewestRemainingProtectsNearComplete(t *testing.T) {
	// Set X has 2 elements, set Y has 3; after X gets one element, the
	// shared element should go to X (1 remaining) over Y (2 remaining,
	// after Y's first arrival).
	var b setsystem.Builder
	x := b.AddSet(1)
	y := b.AddSet(1)
	b.AddElement(x)    // X: 1 remaining after this
	b.AddElement(y)    // Y: 2 remaining after this
	b.AddElement(x, y) // contested
	b.AddElement(y)
	inst := b.MustBuild()

	res, err := Run(inst, &GreedyFewestRemaining{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completes(0) {
		t.Errorf("X should complete, got %v", res.Completed)
	}
	if res.Completes(1) {
		t.Errorf("Y should lose the contested element, got %v", res.Completed)
	}
}

func TestUniformRandomValidChoices(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	for seed := int64(0); seed < 50; seed++ {
		if _, err := Run(inst, &UniformRandom{}, rand.New(rand.NewSource(seed))); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if _, err := Run(inst, &UniformRandom{}, nil); err == nil {
		t.Error("UniformRandom without rng should error")
	}
}

func TestBaselinesAreDeterministic(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	for _, alg := range Baselines() {
		if !Deterministic(alg) {
			t.Errorf("%s should report deterministic", alg.Name())
		}
		r1, err := Run(inst, alg, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		r2, err := Run(inst, alg, nil)
		if err != nil {
			t.Fatalf("%s rerun: %v", alg.Name(), err)
		}
		if r1.Benefit != r2.Benefit {
			t.Errorf("%s: benefit differs across runs: %v vs %v", alg.Name(), r1.Benefit, r2.Benefit)
		}
	}
	if Deterministic(&RandPr{}) || Deterministic(&UniformRandom{}) {
		t.Error("randomized algorithms misreported as deterministic")
	}
}

func TestHashRandPrDeterministicAndDistributed(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	alg1 := &HashRandPr{Hasher: hashpr.Mixer{Seed: 7}}
	alg2 := &HashRandPr{Hasher: hashpr.Mixer{Seed: 7}}
	r1, err := Run(inst, alg1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(inst, alg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Benefit != r2.Benefit || len(r1.Completed) != len(r2.Completed) {
		t.Error("two servers with the same seed disagree — distributed consistency broken")
	}
	if _, err := Run(inst, &HashRandPr{}, nil); err == nil {
		t.Error("HashRandPr without hasher should error")
	}
}

// Distributed hash priorities reproduce the centralized survival law: over
// many seeds, the per-set completion frequency matches Lemma 1.
func TestHashRandPrMatchesLemma1(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	const trials = 60000
	counts := make([]int, 3)
	for seed := uint64(0); seed < trials; seed++ {
		alg := &HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}
		res, err := Run(inst, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Completed {
			counts[s]++
		}
	}
	for i, w := range inst.Weights {
		want := w / 6.0
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.012 {
			t.Errorf("hash Pr[set %d survives] = %v, want %v", i, got, want)
		}
	}
}

// With the d-wise independent family the same law holds.
func TestPolyFamilyPrioritiesMatchLemma1(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	const trials = 30000
	counts := make([]int, 3)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < trials; trial++ {
		pf, err := hashpr.NewPolyFamily(6, rng) // kmax·σmax = 2·2 = 4 < 6
		if err != nil {
			t.Fatal(err)
		}
		alg := &HashRandPr{Hasher: pf}
		res, err := Run(inst, alg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Completed {
			counts[s]++
		}
	}
	for i, w := range inst.Weights {
		want := w / 6.0
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.015 {
			t.Errorf("poly Pr[set %d survives] = %v, want %v", i, got, want)
		}
	}
}

func TestChooseRespectsCapacity(t *testing.T) {
	var b setsystem.Builder
	ids := b.AddSets(5, 1)
	b.AddElementCap(2, ids...)
	for _, id := range ids {
		b.AddElement(id)
	}
	inst := b.MustBuild()

	algs := []Algorithm{
		&RandPr{}, &RandPr{ActiveOnly: true},
		&GreedyMaxWeight{}, &GreedyFewestRemaining{}, &GreedyFirstListed{},
		&UniformRandom{}, &HashRandPr{Hasher: hashpr.Mixer{Seed: 1}},
	}
	for _, alg := range algs {
		res, err := Run(inst, alg, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		// Exactly 2 of the 5 singleton+shared sets can complete... each set
		// has 2 elements (shared + own); capacity 2 on the shared element
		// means at most 2 sets get it.
		if len(res.Completed) > 2 {
			t.Errorf("%s completed %d sets, capacity allows 2", alg.Name(), len(res.Completed))
		}
	}
}
