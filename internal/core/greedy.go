package core

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/setsystem"
)

// The deterministic baselines below represent the single-packet-myopic
// drop policies a router might plausibly implement. Theorem 3 shows every
// deterministic policy suffers a σ^(k−1) competitive ratio; the baselines
// make that lower bound concrete and give the randomized algorithm
// something to beat in the systems experiments.

// GreedyMaxWeight assigns each element to the b(u) still-completable
// parents with the largest weights (ties to the smaller SetID).
type GreedyMaxWeight struct {
	weights []float64
	buf     []setsystem.SetID
}

var _ Algorithm = (*GreedyMaxWeight)(nil)

// Name implements Algorithm.
func (a *GreedyMaxWeight) Name() string { return "greedyMaxWeight" }

// Reset implements Algorithm.
func (a *GreedyMaxWeight) Reset(info Info, _ *rand.Rand) error {
	a.weights = info.Weights
	return nil
}

// Choose implements Algorithm.
func (a *GreedyMaxWeight) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopBy(ev, &a.buf, func(s setsystem.SetID) float64 { return a.weights[s] })
}

// GreedyFewestRemaining assigns each element to the still-completable
// parents closest to completion (fewest elements left to arrive). This is
// the "protect almost-finished frames" router policy.
type GreedyFewestRemaining struct {
	buf []setsystem.SetID
}

var _ Algorithm = (*GreedyFewestRemaining)(nil)

// Name implements Algorithm.
func (a *GreedyFewestRemaining) Name() string { return "greedyFewestRemaining" }

// Reset implements Algorithm.
func (a *GreedyFewestRemaining) Reset(Info, *rand.Rand) error { return nil }

// Choose implements Algorithm.
func (a *GreedyFewestRemaining) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopBy(ev, &a.buf, func(s setsystem.SetID) float64 {
		return -float64(ev.State.Remaining(s))
	})
}

// GreedyFirstListed assigns each element to the lowest-numbered
// still-completable parents — the "first come, first served" policy, and
// the canonical victim of the Theorem 3 adversary.
type GreedyFirstListed struct {
	buf []setsystem.SetID
}

var _ Algorithm = (*GreedyFirstListed)(nil)

// Name implements Algorithm.
func (a *GreedyFirstListed) Name() string { return "greedyFirstListed" }

// Reset implements Algorithm.
func (a *GreedyFirstListed) Reset(Info, *rand.Rand) error { return nil }

// Choose implements Algorithm.
func (a *GreedyFirstListed) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopBy(ev, &a.buf, func(s setsystem.SetID) float64 { return -float64(s) })
}

// UniformRandom assigns each element to b(u) still-completable parents
// chosen uniformly at random, independently per element. Unlike randPr it
// has no persistent priorities, so its per-element choices are
// inconsistent across a set's lifetime — the experiments show how much
// that costs.
type UniformRandom struct {
	rng *rand.Rand
	buf []setsystem.SetID
}

var _ Algorithm = (*UniformRandom)(nil)

// Name implements Algorithm.
func (a *UniformRandom) Name() string { return "uniformRandom" }

// Reset implements Algorithm.
func (a *UniformRandom) Reset(_ Info, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("core: uniformRandom needs a random source")
	}
	a.rng = rng
	return nil
}

// Choose implements Algorithm.
func (a *UniformRandom) Choose(ev ElementView) []setsystem.SetID {
	cands := a.buf[:0]
	for _, s := range ev.Members {
		if ev.State.Active(s) {
			cands = append(cands, s)
		}
	}
	if len(cands) > ev.Capacity {
		a.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		cands = cands[:ev.Capacity]
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	}
	a.buf = cands
	return cands
}

// chooseTopBy selects up to Capacity active members maximizing score
// (ties to the smaller SetID).
func chooseTopBy(ev ElementView, buf *[]setsystem.SetID, score func(setsystem.SetID) float64) []setsystem.SetID {
	cands := (*buf)[:0]
	for _, s := range ev.Members {
		if ev.State.Active(s) {
			cands = append(cands, s)
		}
	}
	if len(cands) > ev.Capacity {
		sort.Slice(cands, func(i, j int) bool {
			si, sj := score(cands[i]), score(cands[j])
			if si != sj {
				return si > sj
			}
			return cands[i] < cands[j]
		})
		cands = cands[:ev.Capacity]
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	}
	*buf = cands
	return cands
}

// Baselines returns fresh instances of every deterministic baseline.
func Baselines() []Algorithm {
	return []Algorithm{
		&GreedyMaxWeight{},
		&GreedyFewestRemaining{},
		&GreedyFirstListed{},
	}
}

// Deterministic reports whether the algorithm ignores its random source —
// used by the Theorem 3 experiment, whose adversary construction is only
// meaningful against deterministic algorithms.
func Deterministic(alg Algorithm) bool {
	switch alg.(type) {
	case *GreedyMaxWeight, *GreedyFewestRemaining, *GreedyFirstListed,
		*HashRandPr, *DetWeightPriority:
		return true
	default:
		return false
	}
}
