package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/setsystem"
)

// randMembers draws a sorted, duplicate-free member list over m sets.
func randMembers(rng *rand.Rand, m, n int) []setsystem.SetID {
	seen := make(map[setsystem.SetID]bool, n)
	out := make([]setsystem.SetID, 0, n)
	for len(out) < n {
		s := setsystem.SetID(rng.Intn(m))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runOracle applies the retained sort-based selection to a fresh copy of
// members.
func runOracle(members []setsystem.SetID, capacity int, prio []float64) []setsystem.SetID {
	cands := append([]setsystem.SetID(nil), members...)
	return sortTopByPriority(cands, capacity, prio)
}

// runKernel applies the new partial-selection kernel to a fresh copy.
func runKernel(members []setsystem.SetID, capacity int, prio []float64) []setsystem.SetID {
	cands := append([]setsystem.SetID(nil), members...)
	return topByPriority(cands, capacity, prio)
}

func checkAgainstOracle(t *testing.T, members []setsystem.SetID, capacity int, prio []float64) {
	t.Helper()
	want := runOracle(members, capacity, prio)
	got := runKernel(members, capacity, prio)
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kernel diverges from oracle\nmembers  %v\ncapacity %d\nprio     %v\ngot      %v\nwant     %v",
			members, capacity, prio, got, want)
	}
}

// TestSelectMatchesOracle is the seeded table run of the kernel-vs-oracle
// property: random members, capacities and priorities — including
// duplicate priorities (forced ties) and capacity >= len(members) — must
// select identically under the insertion kernel, the quickselect kernel
// and the retained sort oracle.
func TestSelectMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 5000; trial++ {
		m := 1 + rng.Intn(60)
		n := 1 + rng.Intn(m)
		members := randMembers(rng, m, n)
		// Capacity sweeps all regimes: 0, tiny (insertion kernel), large
		// (quickselect kernel), and >= len(members) (pass-through).
		capacity := rng.Intn(n + 3)
		if trial%7 == 0 {
			capacity = insertionCap + 1 + rng.Intn(8) // force quickselect
		}
		prio := make([]float64, m)
		// A small value alphabet forces many exact duplicate priorities,
		// exercising the SetID tie-break everywhere.
		levels := 1 + rng.Intn(4)
		for i := range prio {
			prio[i] = float64(rng.Intn(levels))
		}
		checkAgainstOracle(t, members, capacity, prio)
	}
}

// TestSelectEdgeCases pins the boundary behaviors the property test can
// only hit probabilistically.
func TestSelectEdgeCases(t *testing.T) {
	prio := []float64{0.5, 0.5, 0.9, 0.1, 0.5}
	cases := []struct {
		name     string
		members  []setsystem.SetID
		capacity int
		want     []setsystem.SetID
	}{
		{"capacity zero", []setsystem.SetID{0, 1, 2}, 0, []setsystem.SetID{}},
		{"capacity equals len", []setsystem.SetID{0, 1, 2}, 3, []setsystem.SetID{0, 1, 2}},
		{"capacity beyond len", []setsystem.SetID{0, 1}, 10, []setsystem.SetID{0, 1}},
		{"all tied picks low ids", []setsystem.SetID{0, 1, 4}, 2, []setsystem.SetID{0, 1}},
		{"best first", []setsystem.SetID{0, 2, 3}, 1, []setsystem.SetID{2}},
		{"tie among subset", []setsystem.SetID{1, 3, 4}, 2, []setsystem.SetID{1, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runKernel(tc.members, tc.capacity, prio)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
			checkAgainstOracle(t, tc.members, tc.capacity, prio)
		})
	}
}

// TestSelectSmallCapacityMatchesOracle exhausts the capacity-1 and
// capacity-2 fast paths densely: every member count up to 24, tie-heavy
// priority alphabets down to a single level (all tied — pure SetID
// tie-break), compared to the sort oracle on each draw. The property
// test sweeps these capacities too; this pins them with far more trials
// per regime.
func TestSelectSmallCapacityMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, capacity := range []int{1, 2} {
		for n := capacity + 1; n <= 24; n++ {
			for _, levels := range []int{1, 2, 5} {
				for trial := 0; trial < 200; trial++ {
					m := n + rng.Intn(40)
					members := randMembers(rng, m, n)
					prio := make([]float64, m)
					for i := range prio {
						prio[i] = float64(rng.Intn(levels))
					}
					checkAgainstOracle(t, members, capacity, prio)
				}
			}
		}
	}
}

// TestSelectZeroAlloc asserts the kernel allocates nothing when given a
// caller buffer, in both the insertion and quickselect regimes.
func TestSelectZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const m = 256
	prio := make([]float64, m)
	for i := range prio {
		prio[i] = rng.Float64()
	}
	members := randMembers(rng, m, 64)
	buf := make([]setsystem.SetID, 0, len(members))
	for _, capacity := range []int{1, 4, insertionCap, insertionCap + 4, 32} {
		allocs := testing.AllocsPerRun(200, func() {
			buf = SelectTopPriority(members, capacity, prio, buf)
		})
		if allocs != 0 {
			t.Errorf("capacity %d: %v allocs per select, want 0", capacity, allocs)
		}
	}
}

// FuzzSelectMatchesOracle drives the kernel-vs-oracle equivalence from
// fuzzer-chosen bytes: each byte pair contributes a member id and a
// priority level, the first bytes choose capacity and universe size.
// Run with `go test -fuzz FuzzSelectMatchesOracle ./internal/core`.
func FuzzSelectMatchesOracle(f *testing.F) {
	f.Add([]byte{3, 8, 1, 0, 2, 1, 3, 2}, uint8(1))
	f.Add([]byte{10, 16, 5, 0, 6, 0, 7, 0, 8, 0, 9, 0}, uint8(9)) // quickselect + ties
	f.Add([]byte{1, 1, 0, 0}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, capByte uint8) {
		if len(data) < 4 {
			return
		}
		m := 1 + int(data[0])%64
		prio := make([]float64, m)
		for i := range prio {
			// Derived, duplicate-heavy priorities.
			prio[i] = float64((i*7 + int(data[1])) % 5)
		}
		seen := make(map[setsystem.SetID]bool)
		var members []setsystem.SetID
		for i := 2; i+1 < len(data); i += 2 {
			s := setsystem.SetID(int(data[i]) % m)
			if !seen[s] {
				seen[s] = true
				members = append(members, s)
			}
			// Odd bytes perturb priorities so ties appear and disappear.
			prio[int(data[i+1])%m] += 0.5
		}
		if len(members) == 0 {
			return
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		capacity := int(capByte) % (len(members) + 2)
		checkAgainstOracle(t, members, capacity, prio)
	})
}
