// Package core implements the online set packing (OSP) engine: the online
// algorithm contract, the streaming runner that enforces the OSP rules, the
// paper's randomized algorithm randPr (centralized and distributed
// variants) and a family of deterministic baselines.
//
// The OSP protocol (Section 2 of the paper): before the run, an algorithm
// learns each set's weight and size only. Elements then arrive one by one;
// element u carries its capacity b(u) and parent list C(u), and the
// algorithm must immediately choose at most b(u) parents to assign u to.
// A set is completed — and pays its weight — only if it was assigned every
// one of its elements.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/setsystem"
)

// Info is the up-front knowledge an online algorithm receives: per-set
// weights and declared sizes, nothing else.
type Info struct {
	Weights []float64
	Sizes   []int
}

// NumSets returns the number of sets.
func (in Info) NumSets() int { return len(in.Weights) }

// InfoOf extracts the up-front information of an instance.
func InfoOf(inst *setsystem.Instance) Info {
	return Info{Weights: inst.Weights, Sizes: inst.Sizes}
}

// State is the objective bookkeeping the runner maintains about the
// algorithm's own run: how many elements of each set have arrived and how
// many of those the algorithm assigned to the set. It is legitimate online
// information (derivable from the algorithm's own history) and is exposed
// read-only to algorithms through ElementView.
type State struct {
	info     Info
	arrived  []int32
	assigned []int32
}

// NewState creates bookkeeping for a run over sets described by info.
func NewState(info Info) *State {
	return &State{
		info:     info,
		arrived:  make([]int32, info.NumSets()),
		assigned: make([]int32, info.NumSets()),
	}
}

// Weight returns w(S).
func (s *State) Weight(id setsystem.SetID) float64 { return s.info.Weights[id] }

// Size returns |S|.
func (s *State) Size(id setsystem.SetID) int { return s.info.Sizes[id] }

// Arrived returns how many elements of S have arrived so far (excluding
// the element currently being decided).
func (s *State) Arrived(id setsystem.SetID) int { return int(s.arrived[id]) }

// Assigned returns how many of the arrived elements of S were assigned to
// it.
func (s *State) Assigned(id setsystem.SetID) int { return int(s.assigned[id]) }

// Active reports whether S is still completable: every element of S that
// has arrived so far was assigned to S.
func (s *State) Active(id setsystem.SetID) bool { return s.arrived[id] == s.assigned[id] }

// Remaining returns the number of elements of S yet to arrive (counting
// the element currently being decided, if it belongs to S).
func (s *State) Remaining(id setsystem.SetID) int {
	return s.info.Sizes[id] - int(s.arrived[id])
}

// ElementView is what an algorithm sees when an element arrives.
type ElementView struct {
	// Index is the element's position in the arrival order.
	Index int
	// Members is C(u), the parent sets, in increasing SetID order.
	Members []setsystem.SetID
	// Capacity is b(u).
	Capacity int
	// State is the run bookkeeping (read-only).
	State *State
}

// Algorithm is an online OSP algorithm. Reset is called once before each
// run with the up-front information; Choose is called once per element and
// must return a subset of ev.Members of size at most ev.Capacity (the
// returned slice may alias an internal buffer valid until the next call).
type Algorithm interface {
	Name() string
	Reset(info Info, rng *rand.Rand) error
	Choose(ev ElementView) []setsystem.SetID
}

// Errors reported by the runner when an algorithm misbehaves.
var (
	ErrChoseNonParent  = errors.New("core: algorithm chose a set not containing the element")
	ErrOverCapacity    = errors.New("core: algorithm chose more sets than the element's capacity")
	ErrDuplicateChoice = errors.New("core: algorithm chose the same set twice for one element")
)

// Result summarizes one run.
type Result struct {
	// Completed lists the sets assigned all their elements, ascending.
	Completed []setsystem.SetID
	// Benefit is the total weight of Completed.
	Benefit float64
	// Assigned[i] is the number of elements assigned to set i.
	Assigned []int32
}

// Equal reports whether two results are bit-for-bit identical: the same
// completed sets in the same order, the same per-set assignment counts,
// and a benefit equal down to the float64 bit pattern. It is the typed
// comparison used wherever an engine or service run is verified against
// the serial HashRandPr oracle (cmd/ospserve -verify, cmd/osploadgen).
// Nil and empty Completed/Assigned slices compare equal, so a result that
// round-tripped through JSON still matches its in-process original.
func (r *Result) Equal(o *Result) bool {
	if r == nil || o == nil {
		return r == o
	}
	if math.Float64bits(r.Benefit) != math.Float64bits(o.Benefit) {
		return false
	}
	if len(r.Completed) != len(o.Completed) || len(r.Assigned) != len(o.Assigned) {
		return false
	}
	for i, s := range r.Completed {
		if s != o.Completed[i] {
			return false
		}
	}
	for i, c := range r.Assigned {
		if c != o.Assigned[i] {
			return false
		}
	}
	return true
}

// Completes reports whether the given set was completed.
func (r *Result) Completes(id setsystem.SetID) bool {
	for _, s := range r.Completed {
		if s == id {
			return true
		}
		if s > id {
			return false
		}
	}
	return false
}

// Run replays a static instance against an algorithm and returns the
// result. rng seeds the algorithm's randomness (pass a deterministic
// source for reproducible runs; it may be nil for deterministic
// algorithms).
func Run(inst *setsystem.Instance, alg Algorithm, rng *rand.Rand) (*Result, error) {
	src := NewReplaySource(inst)
	res, _, err := RunSource(src, alg, rng)
	return res, err
}

// Source produces the element stream of a (possibly adaptive) instance.
// Next is given the algorithm's choice for the previous element (nil on
// the first call) and returns the next element, or ok = false at the end
// of the stream. Adaptive adversaries implement Source.
type Source interface {
	// Info returns the up-front information (weights and sizes), which
	// must be fixed before the stream starts.
	Info() Info
	// Next returns the next element. prevChoice is the algorithm's
	// validated decision on the previously returned element.
	Next(prevChoice []setsystem.SetID) (setsystem.Element, bool)
}

// RunSource streams elements from src into alg, enforcing the OSP rules.
// It returns the run result and the materialized instance (useful for
// computing OPT offline after an adaptive run).
func RunSource(src Source, alg Algorithm, rng *rand.Rand) (*Result, *setsystem.Instance, error) {
	info := src.Info()
	if err := alg.Reset(info, rng); err != nil {
		return nil, nil, fmt.Errorf("core: reset %s: %w", alg.Name(), err)
	}
	st := NewState(info)
	elements := make([]setsystem.Element, 0, 64)

	var prev []setsystem.SetID
	for idx := 0; ; idx++ {
		elem, ok := src.Next(prev)
		if !ok {
			break
		}
		ev := ElementView{Index: idx, Members: elem.Members, Capacity: elem.Capacity, State: st}
		choice := alg.Choose(ev)
		if err := validateChoice(elem, choice); err != nil {
			return nil, nil, fmt.Errorf("core: element %d, algorithm %s: %w", idx, alg.Name(), err)
		}
		for _, s := range elem.Members {
			st.arrived[s]++
		}
		for _, s := range choice {
			st.assigned[s]++
		}
		elements = append(elements, elem)
		prev = append(prev[:0], choice...)
	}

	inst := &setsystem.Instance{Weights: info.Weights, Sizes: info.Sizes, Elements: elements}
	res := &Result{Assigned: st.assigned}
	for i := range info.Weights {
		if int(st.assigned[i]) == info.Sizes[i] {
			res.Completed = append(res.Completed, setsystem.SetID(i))
			res.Benefit += info.Weights[i]
		}
	}
	return res, inst, nil
}

func validateChoice(elem setsystem.Element, choice []setsystem.SetID) error {
	if len(choice) > elem.Capacity {
		return fmt.Errorf("%w: chose %d, capacity %d", ErrOverCapacity, len(choice), elem.Capacity)
	}
	seen := make(map[setsystem.SetID]bool, len(choice))
	for _, s := range choice {
		if seen[s] {
			return fmt.Errorf("%w: set %d", ErrDuplicateChoice, s)
		}
		seen[s] = true
		if !contains(elem.Members, s) {
			return fmt.Errorf("%w: set %d", ErrChoseNonParent, s)
		}
	}
	return nil
}

// contains does a binary search over the sorted member list.
func contains(members []setsystem.SetID, id setsystem.SetID) bool {
	lo, hi := 0, len(members)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case members[mid] < id:
			lo = mid + 1
		case members[mid] > id:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// ReplaySource adapts a static instance to the Source interface.
type ReplaySource struct {
	inst *setsystem.Instance
	pos  int
}

// NewReplaySource returns a Source that replays the instance's elements in
// order.
func NewReplaySource(inst *setsystem.Instance) *ReplaySource {
	return &ReplaySource{inst: inst}
}

// Info implements Source.
func (r *ReplaySource) Info() Info { return InfoOf(r.inst) }

// Next implements Source.
func (r *ReplaySource) Next(_ []setsystem.SetID) (setsystem.Element, bool) {
	if r.pos >= len(r.inst.Elements) {
		return setsystem.Element{}, false
	}
	e := r.inst.Elements[r.pos]
	r.pos++
	return e, true
}

var _ Source = (*ReplaySource)(nil)

// MeanBenefit runs alg on inst trials times with rng streams derived from
// seed and returns the sample mean and standard error of the benefit.
// Deterministic algorithms still honor trials (all runs identical).
func MeanBenefit(inst *setsystem.Instance, alg Algorithm, trials int, seed int64) (mean, stderr float64, err error) {
	if trials < 1 {
		return 0, 0, errors.New("core: trials must be >= 1")
	}
	var sum, sumsq float64
	for t := 0; t < trials; t++ {
		rng := rand.New(rand.NewSource(seed + int64(t)*0x9e3779b9))
		res, rerr := Run(inst, alg, rng)
		if rerr != nil {
			return 0, 0, rerr
		}
		sum += res.Benefit
		sumsq += res.Benefit * res.Benefit
	}
	n := float64(trials)
	mean = sum / n
	if trials > 1 {
		v := (sumsq - sum*sum/n) / (n - 1)
		if v > 0 {
			stderr = math.Sqrt(v / n)
		}
	}
	return mean, stderr, nil
}
