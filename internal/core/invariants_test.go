package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/setsystem"
)

// chaosAlg makes an arbitrary VALID choice for every element: a random
// subset of the parents of size ≤ capacity. It exists to fuzz the runner's
// accounting: whatever a correct algorithm does, the engine's invariants
// must hold.
type chaosAlg struct {
	rng *rand.Rand
	buf []setsystem.SetID
}

func (c *chaosAlg) Name() string { return "chaos" }
func (c *chaosAlg) Reset(_ Info, rng *rand.Rand) error {
	c.rng = rng
	return nil
}
func (c *chaosAlg) Choose(ev ElementView) []setsystem.SetID {
	c.buf = append(c.buf[:0], ev.Members...)
	c.rng.Shuffle(len(c.buf), func(i, j int) { c.buf[i], c.buf[j] = c.buf[j], c.buf[i] })
	n := c.rng.Intn(minInt(len(c.buf), ev.Capacity) + 1)
	out := c.buf[:n]
	// Runner requires no duplicates (shuffle preserves distinctness) and
	// members only; both hold by construction.
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func randomCapacityInstance(rng *rand.Rand) *setsystem.Instance {
	var b setsystem.Builder
	m := 2 + rng.Intn(12)
	ids := make([]setsystem.SetID, 0, m)
	for i := 0; i < m; i++ {
		ids = append(ids, b.AddSet(0.1+rng.Float64()*5))
	}
	n := 3 + rng.Intn(25)
	touched := make(map[setsystem.SetID]bool)
	for j := 0; j < n; j++ {
		sigma := 1 + rng.Intn(m)
		perm := rng.Perm(m)[:sigma]
		members := make([]setsystem.SetID, 0, sigma)
		for _, p := range perm {
			members = append(members, ids[p])
			touched[ids[p]] = true
		}
		b.AddElementCap(1+rng.Intn(3), members...)
	}
	for _, id := range ids {
		if !touched[id] {
			b.AddElement(id)
		}
	}
	return b.MustBuild()
}

// Runner invariants under arbitrary valid behaviour: benefit equals the
// weight of Completed; Completed are exactly the fully-assigned sets;
// per-set assignments never exceed arrivals.
func TestRunnerInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomCapacityInstance(rng)
		res, err := Run(inst, &chaosAlg{}, rng)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		var wantBenefit float64
		for _, s := range res.Completed {
			wantBenefit += inst.Weights[s]
		}
		if diff := res.Benefit - wantBenefit; diff > 1e-9 || diff < -1e-9 {
			t.Logf("benefit %v != completed weight %v", res.Benefit, wantBenefit)
			return false
		}
		counts := make([]int32, inst.NumSets())
		for _, e := range inst.Elements {
			for _, s := range e.Members {
				counts[s]++
			}
		}
		completed := make(map[setsystem.SetID]bool, len(res.Completed))
		prev := setsystem.SetID(-1)
		for _, s := range res.Completed {
			if s <= prev {
				t.Log("Completed not strictly ascending")
				return false
			}
			prev = s
			completed[s] = true
		}
		for i := range counts {
			if res.Assigned[i] > counts[i] {
				t.Logf("set %d assigned %d > arrived %d", i, res.Assigned[i], counts[i])
				return false
			}
			isDone := int(res.Assigned[i]) == inst.Sizes[i]
			if isDone != completed[setsystem.SetID(i)] {
				t.Logf("set %d completion flag mismatch", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Every built-in algorithm must produce valid runs on random
// variable-capacity instances (the runner would error otherwise).
func TestAllAlgorithmsValidOnRandomInstances(t *testing.T) {
	algs := func() []Algorithm {
		return []Algorithm{
			&RandPr{}, &RandPr{ActiveOnly: true}, &RedrawRandPr{},
			&DetWeightPriority{}, &UniformRandom{},
			&GreedyMaxWeight{}, &GreedyFewestRemaining{}, &GreedyFirstListed{},
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomCapacityInstance(rng)
		for _, alg := range algs() {
			if _, err := Run(inst, alg, rand.New(rand.NewSource(seed+7))); err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Disjoint sets always complete under randPr: with no competition, every
// set wins all its elements regardless of priorities.
func TestRandPrCompletesDisjointSets(t *testing.T) {
	var b setsystem.Builder
	for i := 0; i < 6; i++ {
		s := b.AddSet(float64(i + 1))
		b.AddElement(s)
		b.AddElement(s)
	}
	inst := b.MustBuild()
	res, err := Run(inst, &RandPr{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 6 {
		t.Errorf("completed %d of 6 disjoint sets", len(res.Completed))
	}
	if res.Benefit != 21 {
		t.Errorf("benefit = %v, want 21", res.Benefit)
	}
}

// Capacity ≥ load means no contention at all: everyone completes.
func TestAmpleCapacityCompletesEverything(t *testing.T) {
	var b setsystem.Builder
	ids := b.AddSets(5, 1)
	for j := 0; j < 4; j++ {
		b.AddElementCap(5, ids...)
	}
	inst := b.MustBuild()
	for _, alg := range []Algorithm{&RandPr{}, &GreedyMaxWeight{}, &UniformRandom{}} {
		res, err := Run(inst, alg, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(res.Completed) != 5 {
			t.Errorf("%s completed %d of 5 under ample capacity", alg.Name(), len(res.Completed))
		}
	}
}
