package core

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/dist"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
)

// RandPr is the paper's randomized algorithm (Section 3.1): before the run
// each set S draws a priority r(S) ~ R_{w(S)}, and each arriving element u
// is assigned to the b(u) parents with the highest priorities — regardless
// of whether those parents are still completable. This faithful version is
// the one the competitive analysis (Theorem 1, Theorem 4) applies to.
//
// Set ActiveOnly to restrict choices to still-completable parents; this is
// a practical refinement (never worse pointwise) used for the ablation
// experiment, not the analyzed algorithm.
type RandPr struct {
	// ActiveOnly, when set, skips parents that are already incompletable.
	ActiveOnly bool

	priorities []float64
	buf        []setsystem.SetID
}

var _ Algorithm = (*RandPr)(nil)

// Name implements Algorithm.
func (a *RandPr) Name() string {
	if a.ActiveOnly {
		return "randPr+active"
	}
	return "randPr"
}

// Reset draws fresh priorities r(S) ~ R_{w(S)} for every set.
func (a *RandPr) Reset(info Info, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("core: randPr needs a random source")
	}
	a.priorities = resize(a.priorities, info.NumSets())
	for i, w := range info.Weights {
		a.priorities[i] = dist.Sample(rng, w)
	}
	return nil
}

// Choose implements Algorithm: the b(u) highest-priority parents.
func (a *RandPr) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopPriority(ev, a.priorities, a.ActiveOnly, &a.buf)
}

// Priority returns the priority drawn for set id in the current run,
// exposed for white-box tests.
func (a *RandPr) Priority(id setsystem.SetID) float64 { return a.priorities[id] }

// HashRandPr is the distributed implementation of randPr sketched in
// Section 3.1: instead of storing per-set random priorities, every server
// derives the priority of set S from a shared hash function applied to S's
// identifier, mapped through the R_{w(S)} inverse transform. Servers
// sharing the hasher agree on every priority with zero coordination.
type HashRandPr struct {
	// Hasher maps set identifiers to uniform [0,1) variates. Both
	// hashpr.Mixer and *hashpr.PolyFamily satisfy the interface.
	Hasher hashpr.UniformHasher
	// ActiveOnly mirrors RandPr.ActiveOnly.
	ActiveOnly bool

	priorities []float64
	buf        []setsystem.SetID
}

var _ Algorithm = (*HashRandPr)(nil)

// Name implements Algorithm.
func (a *HashRandPr) Name() string { return "hashRandPr" }

// Reset computes the hash-derived priority of every set. The rng parameter
// is unused: all randomness comes from the hasher, exactly as in the
// distributed setting.
func (a *HashRandPr) Reset(info Info, _ *rand.Rand) error {
	if a.Hasher == nil {
		return errors.New("core: HashRandPr needs a Hasher")
	}
	a.priorities = HashPriorities(info, a.Hasher, a.priorities)
	return nil
}

// HashPriorities returns the hash-derived R_w priority of every set,
// reusing buf's storage when possible. It is the single priority code path
// shared by HashRandPr and the sharded streaming engine: any components
// given the same hasher and info agree on every priority with zero
// coordination (Section 3.1).
func HashPriorities(info Info, h hashpr.UniformHasher, buf []float64) []float64 {
	buf = resize(buf, info.NumSets())
	for i, w := range info.Weights {
		buf[i] = dist.FromUniform(h.Uniform(uint64(i)), w)
	}
	return buf
}

// Choose implements Algorithm.
func (a *HashRandPr) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopPriority(ev, a.priorities, a.ActiveOnly, &a.buf)
}

// chooseTopPriority selects the (up to) Capacity members with the highest
// priorities, breaking the measure-zero ties by lower SetID for replay
// stability.
func chooseTopPriority(ev ElementView, prio []float64, activeOnly bool, buf *[]setsystem.SetID) []setsystem.SetID {
	cands := (*buf)[:0]
	for _, s := range ev.Members {
		if activeOnly && !ev.State.Active(s) {
			continue
		}
		cands = append(cands, s)
	}
	cands = topByPriority(cands, ev.Capacity, prio)
	*buf = cands
	return cands
}

// SelectTopPriority is the faithful randPr admission rule as a pure
// function: the (up to) capacity members with the highest priorities,
// ascending SetID order, ties broken by lower SetID. Because it depends
// only on the element and the fixed priority vector — never on run state —
// shards of the streaming engine can decide elements concurrently and
// still agree element-for-element with a serial HashRandPr run. The result
// reuses buf's storage when possible.
func SelectTopPriority(members []setsystem.SetID, capacity int, prio []float64, buf []setsystem.SetID) []setsystem.SetID {
	cands := append(buf[:0], members...)
	return topByPriority(cands, capacity, prio)
}

// topByPriority trims cands in place to the capacity highest-priority
// entries and restores ascending SetID order.
func topByPriority(cands []setsystem.SetID, capacity int, prio []float64) []setsystem.SetID {
	if len(cands) > capacity {
		sort.Slice(cands, func(i, j int) bool {
			pi, pj := prio[cands[i]], prio[cands[j]]
			if pi != pj {
				return pi > pj
			}
			return cands[i] < cands[j]
		})
		cands = cands[:capacity]
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	}
	return cands
}

// resize returns a slice of length n reusing buf's storage when possible.
func resize(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// RandPrExpectedBenefit returns the exact expected benefit of randPr on a
// unit-capacity instance via Lemma 1:
//
//	E[w(ALG)] = Σ_S w(S)² / w(N[S]),
//
// where N[S] is the closed neighborhood of S in the intersection graph.
// It is the analytical cross-check used by the Lemma 1 experiment and the
// engine's tests. The result is meaningless for variable capacities.
func RandPrExpectedBenefit(inst *setsystem.Instance) float64 {
	nw := NeighborhoodWeights(inst)
	var total float64
	for i, w := range inst.Weights {
		if nw[i] > 0 {
			total += w * w / nw[i]
		}
	}
	return total
}

// NeighborhoodWeights returns w(N[S]) for every set S: the total weight of
// sets intersecting S, including S itself.
func NeighborhoodWeights(inst *setsystem.Instance) []float64 {
	m := inst.NumSets()
	members := inst.MemberMatrix()
	elems := inst.Elements

	out := make([]float64, m)
	stamp := make([]int, m)
	for i := range stamp {
		stamp[i] = -1
	}
	for i := 0; i < m; i++ {
		var sum float64
		for _, ej := range members[i] {
			for _, nb := range elems[ej].Members {
				if stamp[nb] != i {
					stamp[nb] = i
					sum += inst.Weights[nb]
				}
			}
		}
		out[i] = sum
	}
	return out
}
