package core

import (
	"errors"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/dist"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
)

// RandPr is the paper's randomized algorithm (Section 3.1): before the run
// each set S draws a priority r(S) ~ R_{w(S)}, and each arriving element u
// is assigned to the b(u) parents with the highest priorities — regardless
// of whether those parents are still completable. This faithful version is
// the one the competitive analysis (Theorem 1, Theorem 4) applies to.
//
// Set ActiveOnly to restrict choices to still-completable parents; this is
// a practical refinement (never worse pointwise) used for the ablation
// experiment, not the analyzed algorithm.
type RandPr struct {
	// ActiveOnly, when set, skips parents that are already incompletable.
	ActiveOnly bool

	priorities []float64
	buf        []setsystem.SetID
}

var _ Algorithm = (*RandPr)(nil)

// Name implements Algorithm.
func (a *RandPr) Name() string {
	if a.ActiveOnly {
		return "randPr+active"
	}
	return "randPr"
}

// Reset draws fresh priorities r(S) ~ R_{w(S)} for every set.
func (a *RandPr) Reset(info Info, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("core: randPr needs a random source")
	}
	a.priorities = resize(a.priorities, info.NumSets())
	for i, w := range info.Weights {
		a.priorities[i] = dist.Sample(rng, w)
	}
	return nil
}

// Choose implements Algorithm: the b(u) highest-priority parents.
func (a *RandPr) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopPriority(ev, a.priorities, a.ActiveOnly, &a.buf)
}

// Priority returns the priority drawn for set id in the current run,
// exposed for white-box tests.
func (a *RandPr) Priority(id setsystem.SetID) float64 { return a.priorities[id] }

// HashRandPr is the distributed implementation of randPr sketched in
// Section 3.1: instead of storing per-set random priorities, every server
// derives the priority of set S from a shared hash function applied to S's
// identifier, mapped through the R_{w(S)} inverse transform. Servers
// sharing the hasher agree on every priority with zero coordination.
type HashRandPr struct {
	// Hasher maps set identifiers to uniform [0,1) variates. Both
	// hashpr.Mixer and *hashpr.PolyFamily satisfy the interface.
	Hasher hashpr.UniformHasher
	// ActiveOnly mirrors RandPr.ActiveOnly.
	ActiveOnly bool

	priorities []float64
	buf        []setsystem.SetID
}

var _ Algorithm = (*HashRandPr)(nil)

// Name implements Algorithm.
func (a *HashRandPr) Name() string { return "hashRandPr" }

// Reset computes the hash-derived priority of every set. The rng parameter
// is unused: all randomness comes from the hasher, exactly as in the
// distributed setting.
func (a *HashRandPr) Reset(info Info, _ *rand.Rand) error {
	if a.Hasher == nil {
		return errors.New("core: HashRandPr needs a Hasher")
	}
	a.priorities = HashPriorities(info, a.Hasher, a.priorities)
	return nil
}

// HashPriorities returns the hash-derived R_w priority of every set,
// reusing buf's storage when possible. It is the single priority code path
// shared by HashRandPr and the sharded streaming engine: any components
// given the same hasher and info agree on every priority with zero
// coordination (Section 3.1). The fill is bulk: one devirtualized pass
// producing all uniforms (hashpr.FillUniform), then one in-place pass
// through the R_w inverse transform.
func HashPriorities(info Info, h hashpr.UniformHasher, buf []float64) []float64 {
	buf = resize(buf, info.NumSets())
	hashpr.FillUniform(h, buf)
	for i, w := range info.Weights {
		buf[i] = dist.FromUniform(buf[i], w)
	}
	return buf
}

// Choose implements Algorithm.
func (a *HashRandPr) Choose(ev ElementView) []setsystem.SetID {
	return chooseTopPriority(ev, a.priorities, a.ActiveOnly, &a.buf)
}

// chooseTopPriority selects the (up to) Capacity members with the highest
// priorities, breaking the measure-zero ties by lower SetID for replay
// stability.
func chooseTopPriority(ev ElementView, prio []float64, activeOnly bool, buf *[]setsystem.SetID) []setsystem.SetID {
	cands := (*buf)[:0]
	for _, s := range ev.Members {
		if activeOnly && !ev.State.Active(s) {
			continue
		}
		cands = append(cands, s)
	}
	cands = topByPriority(cands, ev.Capacity, prio)
	*buf = cands
	return cands
}

// SelectTopPriority is the faithful randPr admission rule as a pure
// function: the (up to) capacity members with the highest priorities,
// ascending SetID order, ties broken by lower SetID. Because it depends
// only on the element and the fixed priority vector — never on run state —
// shards of the streaming engine can decide elements concurrently and
// still agree element-for-element with a serial HashRandPr run. The result
// reuses buf's storage when possible.
func SelectTopPriority(members []setsystem.SetID, capacity int, prio []float64, buf []setsystem.SetID) []setsystem.SetID {
	cands := append(buf[:0], members...)
	return topByPriority(cands, capacity, prio)
}

// SelectTopPriorityInPlace is SelectTopPriority for callers that own the
// members storage: it reorders members in place and returns its winning
// prefix (ascending SetID), avoiding the defensive copy. The streaming
// engine uses it on its flat batch buffers, which are scratch by the time
// a shard decides them.
func SelectTopPriorityInPlace(members []setsystem.SetID, capacity int, prio []float64) []setsystem.SetID {
	return topByPriority(members, capacity, prio)
}

// insertionCap is the largest capacity handled by the bounded insertion
// kernel. Real workloads almost always have b(u) within this bound (link
// rates of a few packets per slot), so the common case never partitions.
const insertionCap = 8

// topByPriority trims cands in place to the capacity highest-priority
// entries — ties broken by lower SetID — and restores ascending SetID
// order. It allocates nothing: small capacities run a bounded insertion
// top-k over the first capacity slots of cands, large ones an in-place
// quickselect. Both reproduce sortTopByPriority (the retained reference
// oracle) bit for bit.
func topByPriority(cands []setsystem.SetID, capacity int, prio []float64) []setsystem.SetID {
	if len(cands) <= capacity {
		return cands
	}
	if capacity <= 0 {
		return cands[:0]
	}
	// Small-degree fast paths: the overwhelmingly common capacities in
	// link-rate workloads are 1 and 2, where maintaining an insertion
	// window is pure overhead — a single running max (or ordered pair)
	// scan decides with one comparison per candidate and no shifting.
	// Both reproduce the oracle exactly: better is a strict total order,
	// so the max (or top pair) is unique.
	if capacity == 1 {
		best := cands[0]
		for _, c := range cands[1:] {
			if better(c, best, prio) {
				best = c
			}
		}
		cands[0] = best
		return cands[:1]
	}
	if capacity == 2 {
		a, b := cands[0], cands[1] // a better than b, maintained below
		if better(b, a, prio) {
			a, b = b, a
		}
		for _, c := range cands[2:] {
			if better(c, b, prio) {
				if better(c, a, prio) {
					a, b = c, a
				} else {
					b = c
				}
			}
		}
		if b < a { // contract: ascending SetID order
			a, b = b, a
		}
		cands[0], cands[1] = a, b
		return cands[:2]
	}
	if capacity <= insertionCap {
		return insertionTopK(cands, capacity, prio)
	}
	quickselectTopK(cands, capacity, prio)
	slices.Sort(cands[:capacity])
	return cands[:capacity]
}

// better is the kernel's strict total order: higher priority first, ties
// by lower SetID. SetIDs within one element are distinct, so exactly one
// of better(a,b) / better(b,a) holds for a != b.
func better(a, b setsystem.SetID, prio []float64) bool {
	pa, pb := prio[a], prio[b]
	if pa != pb {
		return pa > pb
	}
	return a < b
}

// insertionTopK keeps the k best candidates in cands[:k], maintained in
// better-first order while scanning the rest. Because members arrive in
// ascending SetID order and insertion only displaces strictly worse
// entries, the final winners are exactly the oracle's; a last insertion
// sort restores ascending SetID order. O(n·k) with k ≤ insertionCap.
func insertionTopK(cands []setsystem.SetID, k int, prio []float64) []setsystem.SetID {
	// Seed the window with the first k candidates, better-first.
	for i := 1; i < k; i++ {
		c := cands[i]
		j := i
		for j > 0 && better(c, cands[j-1], prio) {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = c
	}
	// Scan the rest: displace the current worst when beaten.
	for i := k; i < len(cands); i++ {
		c := cands[i]
		if !better(c, cands[k-1], prio) {
			continue
		}
		j := k - 1
		for j > 0 && better(c, cands[j-1], prio) {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = c
	}
	// Winners are priority-ordered; the contract wants ascending SetID.
	slices.Sort(cands[:k])
	return cands[:k]
}

// quickselectTopK partitions cands in place so cands[:k] holds the k best
// under the better order (in arbitrary order). Median-of-three pivots with
// an insertion-select fallback on small ranges keep it O(n) expected and
// allocation-free.
func quickselectTopK(cands []setsystem.SetID, k int, prio []float64) {
	lo, hi := 0, len(cands) // half-open working range containing index k-1
	for hi-lo > 12 {
		// Order three samples so the best of the three sits at lo and
		// the median at hi-1; the median is the pivot. lo strictly
		// beating the pivot bounds the partition point away from lo,
		// guaranteeing progress on every iteration.
		mid := lo + (hi-lo)/2
		if better(cands[mid], cands[lo], prio) {
			cands[mid], cands[lo] = cands[lo], cands[mid]
		}
		if better(cands[hi-1], cands[lo], prio) {
			cands[hi-1], cands[lo] = cands[lo], cands[hi-1]
		}
		if better(cands[mid], cands[hi-1], prio) {
			cands[mid], cands[hi-1] = cands[hi-1], cands[mid]
		}
		pivot := cands[hi-1]
		// Lomuto partition: better-than-pivot entries to the front.
		p := lo
		for i := lo; i < hi-1; i++ {
			if better(cands[i], pivot, prio) {
				cands[i], cands[p] = cands[p], cands[i]
				p++
			}
		}
		cands[hi-1], cands[p] = cands[p], cands[hi-1]
		switch {
		case p == k-1:
			return
		case p > k-1:
			hi = p
		default:
			lo = p + 1
		}
	}
	// Small range: better-first insertion sort settles the boundary.
	for i := lo + 1; i < hi; i++ {
		c := cands[i]
		j := i
		for j > lo && better(c, cands[j-1], prio) {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = c
	}
}

// SelectTopPrioritySort is the sort-based reference selection with the
// SelectTopPriority signature, exposed so benchmarks (bench_test.go,
// cmd/ospperf) can measure the kernel's speedup against the path it
// replaced. Production code must use SelectTopPriority.
func SelectTopPrioritySort(members []setsystem.SetID, capacity int, prio []float64, buf []setsystem.SetID) []setsystem.SetID {
	cands := append(buf[:0], members...)
	return sortTopByPriority(cands, capacity, prio)
}

// sortTopByPriority is the original sort-based selection, retained verbatim
// as the reference oracle for the kernel's property and fuzz tests. It is
// not on any hot path.
func sortTopByPriority(cands []setsystem.SetID, capacity int, prio []float64) []setsystem.SetID {
	if len(cands) > capacity {
		sort.Slice(cands, func(i, j int) bool {
			pi, pj := prio[cands[i]], prio[cands[j]]
			if pi != pj {
				return pi > pj
			}
			return cands[i] < cands[j]
		})
		cands = cands[:capacity]
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	}
	return cands
}

// resize returns a slice of length n reusing buf's storage when possible.
func resize(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// RandPrExpectedBenefit returns the exact expected benefit of randPr on a
// unit-capacity instance via Lemma 1:
//
//	E[w(ALG)] = Σ_S w(S)² / w(N[S]),
//
// where N[S] is the closed neighborhood of S in the intersection graph.
// It is the analytical cross-check used by the Lemma 1 experiment and the
// engine's tests. The result is meaningless for variable capacities.
func RandPrExpectedBenefit(inst *setsystem.Instance) float64 {
	nw := NeighborhoodWeights(inst)
	var total float64
	for i, w := range inst.Weights {
		if nw[i] > 0 {
			total += w * w / nw[i]
		}
	}
	return total
}

// NeighborhoodWeights returns w(N[S]) for every set S: the total weight of
// sets intersecting S, including S itself.
func NeighborhoodWeights(inst *setsystem.Instance) []float64 {
	m := inst.NumSets()
	members := inst.MemberMatrix()
	elems := inst.Elements

	out := make([]float64, m)
	stamp := make([]int, m)
	for i := range stamp {
		stamp[i] = -1
	}
	for i := 0; i < m; i++ {
		var sum float64
		for _, ej := range members[i] {
			for _, nb := range elems[ej].Members {
				if stamp[nb] != i {
					stamp[nb] = i
					sum += inst.Weights[nb]
				}
			}
		}
		out[i] = sum
	}
	return out
}
