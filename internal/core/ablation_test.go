package core

import (
	"math/rand"
	"testing"

	"repro/internal/setsystem"
)

func TestRedrawRandPrValidRuns(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	for seed := int64(0); seed < 50; seed++ {
		res, err := Run(inst, &RedrawRandPr{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Benefit < 0 || res.Benefit > 6 {
			t.Fatalf("benefit %v out of range", res.Benefit)
		}
	}
	if _, err := Run(inst, &RedrawRandPr{}, nil); err == nil {
		t.Error("redrawRandPr without rng should error")
	}
}

func TestDetWeightPriorityDeterministic(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	r1, err := Run(inst, &DetWeightPriority{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(inst, &DetWeightPriority{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Benefit != r2.Benefit {
		t.Error("detWeightPriority not deterministic")
	}
	// Highest weight (set 2, w=3) wins every contested element → only C.
	if r1.Benefit != 3 || len(r1.Completed) != 1 || r1.Completed[0] != 2 {
		t.Errorf("Completed = %v benefit %v, want [2] 3", r1.Completed, r1.Benefit)
	}
	if !Deterministic(&DetWeightPriority{}) {
		t.Error("DetWeightPriority should report deterministic")
	}
	if Deterministic(&RedrawRandPr{}) {
		t.Error("RedrawRandPr should not report deterministic")
	}
}

// The ablation claim behind X14: persistence matters. On a long chain of
// sets with many elements each, the per-element redraw variant must do
// strictly worse on average than the faithful algorithm — a set needs to
// win |S| independent lotteries instead of one.
func TestRedrawLosesToPersistent(t *testing.T) {
	// Two sets sharing k elements: persistent randPr completes one of them
	// always; redraw completes one only if the same set wins all k draws
	// (probability 2·(1/2)^k for equal weights).
	const k = 6
	var b setsystem.Builder
	s0 := b.AddSet(1)
	s1 := b.AddSet(1)
	for i := 0; i < k; i++ {
		b.AddElement(s0, s1)
	}
	inst := b.MustBuild()

	const trials = 4000
	var persistent, redraw float64
	for seed := int64(0); seed < trials; seed++ {
		res, err := Run(inst, &RandPr{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		persistent += res.Benefit
		res, err = Run(inst, &RedrawRandPr{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		redraw += res.Benefit
	}
	persistent /= trials
	redraw /= trials
	if persistent < 0.99 {
		t.Errorf("persistent randPr mean %v, want 1.0 (one of the two sets always wins)", persistent)
	}
	// Theoretical redraw mean = 2·(1/2)^6 = 0.03125.
	if redraw > 0.1 {
		t.Errorf("redraw mean %v, want ≈0.031 — persistence ablation failed", redraw)
	}
}

// DetWeightPriority falls to the Theorem 3 adversary like any
// deterministic algorithm; with distinct weights the priorities are
// consistent so exactly one set completes.
func TestDetWeightPriorityChoosesHighestAmongTies(t *testing.T) {
	var b setsystem.Builder
	s0 := b.AddSet(2)
	s1 := b.AddSet(2)
	s2 := b.AddSet(1)
	b.AddElement(s0, s1, s2)
	b.AddElement(s0)
	b.AddElement(s1)
	b.AddElement(s2)
	inst := b.MustBuild()
	res, err := Run(inst, &DetWeightPriority{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tie between s0 and s1 breaks to the lower id: s0 gets the contested
	// element, s1 misses it, s2 misses it.
	if !res.Completes(0) || res.Completes(1) || res.Completes(2) {
		t.Errorf("Completed = %v, want exactly [0]", res.Completed)
	}
}
