package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/setsystem"
)

// scriptAlg replays a fixed choice per element; the workhorse for runner
// accounting tests.
type scriptAlg struct {
	choices [][]setsystem.SetID
	pos     int
}

func (a *scriptAlg) Name() string                 { return "script" }
func (a *scriptAlg) Reset(Info, *rand.Rand) error { a.pos = 0; return nil }
func (a *scriptAlg) Choose(ElementView) []setsystem.SetID {
	c := a.choices[a.pos]
	a.pos++
	return c
}

// triangle builds the 3-set instance A={u0,u1}, B={u0,u2}, C={u1,u2} with
// weights wa, wb, wc.
func triangle(t *testing.T, wa, wb, wc float64) *setsystem.Instance {
	t.Helper()
	var b setsystem.Builder
	a := b.AddSet(wa)
	bb := b.AddSet(wb)
	c := b.AddSet(wc)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	return b.MustBuild()
}

func TestRunCompletionAccounting(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	// Assign u0→A, u1→A, u2→C: A completed, B and C not.
	alg := &scriptAlg{choices: [][]setsystem.SetID{{0}, {0}, {2}}}
	res, err := Run(inst, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 || res.Completed[0] != 0 {
		t.Fatalf("Completed = %v, want [0]", res.Completed)
	}
	if res.Benefit != 1 {
		t.Errorf("Benefit = %v, want 1", res.Benefit)
	}
	if !res.Completes(0) || res.Completes(1) || res.Completes(2) {
		t.Error("Completes flags wrong")
	}
	if res.Assigned[0] != 2 || res.Assigned[1] != 0 || res.Assigned[2] != 1 {
		t.Errorf("Assigned = %v, want [2 0 1]", res.Assigned)
	}
}

func TestResultEqual(t *testing.T) {
	base := func() *Result {
		return &Result{
			Completed: []setsystem.SetID{0, 2},
			Benefit:   4,
			Assigned:  []int32{2, 0, 1},
		}
	}
	a := base()
	if !a.Equal(base()) {
		t.Error("identical results not Equal")
	}
	if !a.Equal(a) {
		t.Error("result not Equal to itself")
	}
	var nilRes *Result
	if a.Equal(nil) || nilRes.Equal(a) {
		t.Error("nil vs non-nil compared equal")
	}
	if !nilRes.Equal(nil) {
		t.Error("nil results not Equal")
	}
	// Nil and empty slices are the same result (JSON round-trip).
	empty1 := &Result{Assigned: []int32{}}
	empty2 := &Result{}
	if !empty1.Equal(empty2) {
		t.Error("nil/empty slices not Equal")
	}
	for name, mut := range map[string]func(*Result){
		"benefit":         func(r *Result) { r.Benefit = 5 },
		"benefit sign":    func(r *Result) { r.Benefit = math.Copysign(r.Benefit, -1) },
		"completed order": func(r *Result) { r.Completed[0], r.Completed[1] = r.Completed[1], r.Completed[0] },
		"completed len":   func(r *Result) { r.Completed = r.Completed[:1] },
		"assigned count":  func(r *Result) { r.Assigned[1] = 9 },
		"assigned len":    func(r *Result) { r.Assigned = append(r.Assigned, 0) },
	} {
		m := base()
		mut(m)
		if a.Equal(m) {
			t.Errorf("%s: mutated result still Equal", name)
		}
	}
}

func TestRunEmptyChoicesAllowed(t *testing.T) {
	inst := triangle(t, 1, 1, 1)
	alg := &scriptAlg{choices: [][]setsystem.SetID{nil, nil, nil}}
	res, err := Run(inst, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 0 || res.Benefit != 0 {
		t.Errorf("want no completions, got %v", res.Completed)
	}
}

func TestRunRejectsNonParent(t *testing.T) {
	inst := triangle(t, 1, 1, 1)
	alg := &scriptAlg{choices: [][]setsystem.SetID{{2}, {0}, {1}}} // u0 ∉ set 2
	if _, err := Run(inst, alg, nil); !errors.Is(err, ErrChoseNonParent) {
		t.Errorf("err = %v, want ErrChoseNonParent", err)
	}
}

func TestRunRejectsOverCapacity(t *testing.T) {
	inst := triangle(t, 1, 1, 1)
	alg := &scriptAlg{choices: [][]setsystem.SetID{{0, 1}, {0}, {1}}}
	if _, err := Run(inst, alg, nil); !errors.Is(err, ErrOverCapacity) {
		t.Errorf("err = %v, want ErrOverCapacity", err)
	}
}

func TestRunRejectsDuplicateChoice(t *testing.T) {
	var b setsystem.Builder
	s0 := b.AddSet(1)
	s1 := b.AddSet(1)
	b.AddElementCap(2, s0, s1)
	b.AddElement(s0)
	b.AddElement(s1)
	inst := b.MustBuild()
	alg := &scriptAlg{choices: [][]setsystem.SetID{{0, 0}, {0}, {1}}}
	if _, err := Run(inst, alg, nil); !errors.Is(err, ErrDuplicateChoice) {
		t.Errorf("err = %v, want ErrDuplicateChoice", err)
	}
}

func TestCapacityAllowsMultipleAssignments(t *testing.T) {
	// One element with capacity 2 shared by two singleton sets: both can
	// complete.
	var b setsystem.Builder
	s0 := b.AddSet(1)
	s1 := b.AddSet(5)
	b.AddElementCap(2, s0, s1)
	inst := b.MustBuild()
	alg := &scriptAlg{choices: [][]setsystem.SetID{{0, 1}}}
	res, err := Run(inst, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit != 6 {
		t.Errorf("Benefit = %v, want 6", res.Benefit)
	}
}

func TestStateTransitions(t *testing.T) {
	info := Info{Weights: []float64{1, 1}, Sizes: []int{2, 3}}
	st := NewState(info)
	if !st.Active(0) || !st.Active(1) {
		t.Fatal("all sets start active")
	}
	if st.Remaining(1) != 3 {
		t.Errorf("Remaining = %d, want 3", st.Remaining(1))
	}
	st.arrived[0]++
	if st.Active(0) {
		t.Error("set 0 should be inactive after missing an element")
	}
	st.assigned[0]++
	if !st.Active(0) {
		t.Error("set 0 should be active after assignment catch-up")
	}
	if st.Arrived(0) != 1 || st.Assigned(0) != 1 {
		t.Error("Arrived/Assigned accessors wrong")
	}
	if st.Weight(0) != 1 || st.Size(1) != 3 {
		t.Error("Weight/Size accessors wrong")
	}
}

func TestContainsBinarySearch(t *testing.T) {
	members := []setsystem.SetID{2, 5, 9, 11}
	for _, s := range members {
		if !contains(members, s) {
			t.Errorf("contains(%d) = false", s)
		}
	}
	for _, s := range []setsystem.SetID{0, 3, 10, 99} {
		if contains(members, s) {
			t.Errorf("contains(%d) = true", s)
		}
	}
	if contains(nil, 1) {
		t.Error("contains(nil) = true")
	}
}

func TestMeanBenefitDeterministic(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	mean, stderr, err := MeanBenefit(inst, &GreedyMaxWeight{}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stderr != 0 {
		t.Errorf("stderr = %v, want 0 for deterministic algorithm", stderr)
	}
	// greedyMaxWeight: u0→B, u1→C, u2→C; C completes (weight 3).
	if mean != 3 {
		t.Errorf("mean = %v, want 3", mean)
	}
}

func TestMeanBenefitRejectsBadTrials(t *testing.T) {
	inst := triangle(t, 1, 1, 1)
	if _, _, err := MeanBenefit(inst, &GreedyMaxWeight{}, 0, 1); err == nil {
		t.Error("want error for trials=0")
	}
}

func TestRunSourceMaterializesInstance(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	src := NewReplaySource(inst)
	alg := &GreedyFirstListed{}
	_, mat, err := RunSource(src, alg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mat.Validate(); err != nil {
		t.Fatalf("materialized instance invalid: %v", err)
	}
	if mat.NumElements() != 3 || mat.NumSets() != 3 {
		t.Errorf("materialized %d elements, %d sets", mat.NumElements(), mat.NumSets())
	}
}

func TestNeighborhoodWeights(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	nw := NeighborhoodWeights(inst)
	// Every pair of sets intersects, so N[S] = everything, weight 6.
	for i, w := range nw {
		if w != 6 {
			t.Errorf("w(N[%d]) = %v, want 6", i, w)
		}
	}

	// Disjoint sets: N[S] = {S}.
	var b setsystem.Builder
	s0 := b.AddSet(4)
	s1 := b.AddSet(7)
	b.AddElement(s0)
	b.AddElement(s1)
	inst2 := b.MustBuild()
	nw2 := NeighborhoodWeights(inst2)
	if nw2[0] != 4 || nw2[1] != 7 {
		t.Errorf("disjoint neighborhoods = %v, want [4 7]", nw2)
	}
}

func TestRandPrExpectedBenefitClosedForm(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	// Each set survives with probability w/6, so E = (1+4+9)/6.
	want := 14.0 / 6.0
	if got := RandPrExpectedBenefit(inst); math.Abs(got-want) > 1e-12 {
		t.Errorf("RandPrExpectedBenefit = %v, want %v", got, want)
	}
}

// Lemma 1: empirical survival probability equals w(S)/w(N[S]).
func TestLemma1Survival(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	const trials = 100000
	counts := make([]int, 3)
	alg := &RandPr{}
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		res, err := Run(inst, alg, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Completed {
			counts[s]++
		}
	}
	for i, w := range inst.Weights {
		want := w / 6.0
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[set %d survives] = %v, want %v", i, got, want)
		}
	}
}

// Monte-Carlo benefit of RandPr matches the Lemma 1 closed form on a less
// symmetric instance.
func TestRandPrMonteCarloMatchesClosedForm(t *testing.T) {
	var b setsystem.Builder
	var s []setsystem.SetID
	for _, wi := range []float64{1, 1, 2, 3, 5} {
		s = append(s, b.AddSet(wi))
	}
	b.AddElement(s[0], s[1], s[2])
	b.AddElement(s[0], s[3])
	b.AddElement(s[1], s[4])
	b.AddElement(s[2])
	b.AddElement(s[3], s[4])
	inst := b.MustBuild()

	want := RandPrExpectedBenefit(inst)
	mean, stderr, err := MeanBenefit(inst, &RandPr{}, 60000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-want) > 4*stderr+0.02 {
		t.Errorf("MC mean = %v ± %v, closed form %v", mean, stderr, want)
	}
}

func TestRandPrNeedsRNG(t *testing.T) {
	inst := triangle(t, 1, 1, 1)
	if _, err := Run(inst, &RandPr{}, nil); err == nil {
		t.Error("RandPr without rng should error")
	}
}

func TestRandPrActiveOnlyNeverWorse(t *testing.T) {
	// On every seed, the active-only refinement completes a superset-weight
	// of the faithful algorithm? Not pointwise in general, but on this
	// triangle it should never be worse.
	inst := triangle(t, 1, 2, 3)
	for seed := int64(0); seed < 200; seed++ {
		base, err := Run(inst, &RandPr{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		act, err := Run(inst, &RandPr{ActiveOnly: true}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if act.Benefit < base.Benefit {
			t.Fatalf("seed %d: activeOnly %v < faithful %v", seed, act.Benefit, base.Benefit)
		}
	}
}

func TestResetReusesPriorityBuffer(t *testing.T) {
	alg := &RandPr{}
	info := Info{Weights: []float64{1, 2, 3}, Sizes: []int{1, 1, 1}}
	rng := rand.New(rand.NewSource(1))
	if err := alg.Reset(info, rng); err != nil {
		t.Fatal(err)
	}
	p0 := alg.Priority(0)
	if p0 < 0 || p0 > 1 {
		t.Errorf("priority out of range: %v", p0)
	}
	if err := alg.Reset(info, rng); err != nil {
		t.Fatal(err)
	}
	if len(alg.priorities) != 3 {
		t.Errorf("priorities len = %d", len(alg.priorities))
	}
}
