package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// TestSteadyStateZeroAlloc asserts the headline perf property: once the
// flat batch population and member buffers have grown to the workload's
// high-water mark, Submit + shard decide allocate nothing — 0
// allocs/element, measured across full batches including the flush and
// the shard-side selection.
func TestSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst, err := workload.Uniform(workload.UniformConfig{M: 100, N: 4000, Load: 6, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 64
	e, err := New(core.InfoOf(inst), 5, Config{Shards: 2, BatchSize: batchSize, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()

	// Warm up: cycle every pre-filled batch through the shards so member
	// buffers reach their high-water capacity.
	warm := inst.Elements[:2048]
	for _, el := range warm {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}

	rest := inst.Elements[2048:]
	pos := 0
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < batchSize; i++ {
			if err := e.Submit(rest[pos%len(rest)]); err != nil {
				t.Fatal(err)
			}
			pos++
		}
	})
	perElement := allocs / batchSize
	if perElement != 0 {
		t.Errorf("steady-state ingestion: %v allocs/element (%v per batch), want 0", perElement, allocs)
	}
}

// TestSubmitDoesNotRetainMembers proves the flat-copy contract: a caller
// may reuse one scratch member buffer for every Submit — overwriting it
// immediately after each call — and the engine still reproduces the
// serial result exactly. Run under -race this also demonstrates that no
// shard ever reads the caller's buffer.
func TestSubmitDoesNotRetainMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	inst, err := workload.Uniform(workload.UniformConfig{M: 60, N: 3000, Load: 5, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := serial(t, inst, 31)

	e, err := New(core.InfoOf(inst), 31, Config{Shards: 4, BatchSize: 16, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]setsystem.SetID, 0, 64)
	for _, el := range inst.Elements {
		scratch = append(scratch[:0], el.Members...)
		if err := e.Submit(setsystem.Element{Members: scratch, Capacity: el.Capacity}); err != nil {
			t.Fatal(err)
		}
		// Clobber the buffer the engine just saw: if Submit retained it,
		// some shard would decide on garbage (and -race would flag the
		// concurrent write).
		for i := range scratch {
			scratch[i] = -1
		}
	}
	got, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, got, want, "scratch-buffer reuse")
}

// TestReplayJoinsSubmitAndDrainErrors pins the Replay error path: a
// mid-stream validation failure still drains the engine and surfaces the
// submit error.
func TestReplayJoinsSubmitAndDrainErrors(t *testing.T) {
	inst := &setsystem.Instance{
		Weights: []float64{1, 1},
		Sizes:   []int{1, 1},
		Elements: []setsystem.Element{
			{Members: []setsystem.SetID{0}, Capacity: 1},
			{Members: []setsystem.SetID{5}, Capacity: 1}, // out of range
		},
	}
	_, err := Replay(inst, 1, Config{Shards: 1})
	if err == nil {
		t.Fatal("Replay accepted an out-of-range member")
	}
}
