package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestCheckpointRestoreMatchesOracle is the crash-recovery conformance
// suite: for every registered policy, ingest half the stream, checkpoint,
// throw the engine away (the "crash"), restore a fresh engine from the
// checkpoint, ingest the rest, and require the final Result bit-for-bit
// equal to the uninterrupted serial oracle.
func TestCheckpointRestoreMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: 60, N: 3000, Load: 5, Capacity: 2,
		WeightFn: func(i int) float64 { return 1 + float64(i%7) },
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 777
	half := len(inst.Elements) / 2
	for _, name := range core.PolicyNames() {
		pol, err := core.LookupPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: seed}, nil)
		if err != nil {
			t.Fatalf("%s: serial oracle: %v", name, err)
		}

		cfg := Config{Shards: 4, BatchSize: 32, Policy: name}
		e1, err := New(core.InfoOf(inst), seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, el := range inst.Elements[:half] {
			if err := e1.Submit(el); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		cp, err := e1.Checkpoint(ctx)
		cancel()
		if err != nil {
			t.Fatalf("%s: Checkpoint: %v", name, err)
		}
		if cp.Submitted != uint64(half) || cp.Processed != uint64(half) {
			t.Fatalf("%s: checkpoint counters submitted=%d processed=%d, want %d (quiesced, partial batch flushed)",
				name, cp.Submitted, cp.Processed, half)
		}
		if cp.Final {
			t.Fatalf("%s: streaming checkpoint marked Final", name)
		}
		// Crash: stop the old engine's shards without consulting it again.
		if _, err := e1.Drain(); err != nil {
			t.Fatal(err)
		}

		e2, err := NewFromCheckpoint(core.InfoOf(inst), seed, cfg, cp)
		if err != nil {
			t.Fatalf("%s: NewFromCheckpoint: %v", name, err)
		}
		if got := e2.State(); got != StateStreaming {
			t.Fatalf("%s: restored state = %v, want streaming", name, got)
		}
		for _, el := range inst.Elements[half:] {
			if err := e2.Submit(el); err != nil {
				t.Fatal(err)
			}
		}
		got, err := e2.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: restored drain (benefit %v) differs from uninterrupted oracle (benefit %v)",
				name, got.Benefit, want.Benefit)
		}
		if m := e2.Metrics().Snapshot(); m.Submitted != uint64(len(inst.Elements)) {
			t.Errorf("%s: restored counters submitted=%d, want %d (resumed, not reset)",
				name, m.Submitted, len(inst.Elements))
		}
	}
}

// TestCheckpointIsAReadNotADrain pins that an engine keeps accepting
// elements after a checkpoint and that a later checkpoint sees the
// additional counts.
func TestCheckpointIsAReadNotADrain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst, err := workload.Uniform(workload.UniformConfig{M: 20, N: 500, Load: 4, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.InfoOf(inst), 3, Config{Shards: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements[:200] {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	cp1, err := e.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if e.State() != StateStreaming {
		t.Fatalf("state after checkpoint = %v, want streaming", e.State())
	}
	for _, el := range inst.Elements[200:] {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	cp2, err := e.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cp1.Submitted != 200 || cp2.Submitted != uint64(len(inst.Elements)) {
		t.Fatalf("checkpoint counters %d then %d, want 200 then %d", cp1.Submitted, cp2.Submitted, len(inst.Elements))
	}
	pol, err := core.LookupPolicy(core.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("drain after two checkpoints differs from oracle")
	}
}

// TestCheckpointOnDrainedEngine pins the terminal form: checkpointing a
// drained engine yields Final=true and the result's counts, and a
// restore + immediate drain reproduces the exact Result.
func TestCheckpointOnDrainedEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst, err := workload.Uniform(workload.UniformConfig{M: 20, N: 400, Load: 4, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: 2, BatchSize: 16}
	e, err := New(core.InfoOf(inst), 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	want, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := e.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Final {
		t.Fatal("drained checkpoint not marked Final")
	}
	e2, err := NewFromCheckpoint(core.InfoOf(inst), 9, cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("restored terminal drain differs from original Result")
	}
}

// TestNewFromCheckpointRejectsMismatch pins the restore guards.
func TestNewFromCheckpointRejectsMismatch(t *testing.T) {
	info := core.Info{Weights: []float64{1, 2}, Sizes: []int{1, 2}}
	if _, err := NewFromCheckpoint(info, 1, Config{Shards: 1}, &Checkpoint{Assigned: make([]int32, 3)}); err == nil {
		t.Error("NewFromCheckpoint accepted a checkpoint over the wrong set count")
	}
	if _, err := NewFromCheckpoint(info, 1, Config{Shards: 1}, &Checkpoint{
		Assigned: make([]int32, 2), Submitted: 5, Processed: 3,
	}); err == nil {
		t.Error("NewFromCheckpoint accepted a non-quiesced checkpoint")
	}
}
