package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// TestPolicyDeterminismAcrossShards is the policy-conformance suite: every
// registered policy, run through the sharded engine at shards 1, 2, 4 and
// 8, must produce a Result bit-for-bit equal (core.Result.Equal) to the
// serial oracle core.Run with the matching PolicyAlgorithm — the seed
// contract of DESIGN.md §11 made executable. CI runs this under -race.
func TestPolicyDeterminismAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	inst, err := workload.Uniform(workload.UniformConfig{
		M: 80, N: 4000, Load: 6, Capacity: 2,
		WeightFn: func(i int) float64 { return 1 + float64(i%9) },
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 20100727
	for _, name := range core.PolicyNames() {
		pol, err := core.LookupPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: seed}, nil)
		if err != nil {
			t.Fatalf("%s: serial oracle: %v", name, err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			got, err := Replay(inst, seed, Config{Shards: shards, BatchSize: 32, Policy: name})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s shards=%d: engine benefit %v differs from serial oracle %v",
					name, shards, got.Benefit, want.Benefit)
			}
		}
	}
}

// TestPolicyDeterminismOnScenarios repeats the conformance check on the
// structured workloads ospserve serves, at a shard count that forces
// cross-shard merging.
func TestPolicyDeterminismOnScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	video, err := workload.Video(workload.VideoConfig{Streams: 10, FramesPerStream: 8, Jitter: 2, LinkCapacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	multihop, err := workload.Multihop(workload.MultihopConfig{Hops: 5, Packets: 80, Horizon: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := map[string]*setsystem.Instance{
		"video":    video.Inst,
		"multihop": multihop.Inst,
	}
	for scenario, inst := range scenarios {
		for _, name := range core.PolicyNames() {
			pol, err := core.LookupPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: 99}, nil)
			if err != nil {
				t.Fatalf("%s/%s: serial oracle: %v", scenario, name, err)
			}
			got, err := Replay(inst, 99, Config{Shards: 4, BatchSize: 16, Policy: name})
			if err != nil {
				t.Fatalf("%s/%s: %v", scenario, name, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s/%s: engine differs from serial oracle", scenario, name)
			}
		}
	}
}

// TestNewRejectsUnknownPolicy pins the registry error path at engine
// construction — the counterpart of the API-layer 400.
func TestNewRejectsUnknownPolicy(t *testing.T) {
	info := core.Info{Weights: []float64{1}, Sizes: []int{1}}
	if _, err := New(info, 1, Config{Policy: "no-such-policy"}); !errors.Is(err, core.ErrUnknownPolicy) {
		t.Errorf("New(unknown policy) = %v, want core.ErrUnknownPolicy", err)
	}
	inst := &setsystem.Instance{Weights: []float64{1}, Sizes: []int{1}}
	if _, err := Replay(inst, 1, Config{Policy: "no-such-policy"}); !errors.Is(err, core.ErrUnknownPolicy) {
		t.Errorf("Replay(unknown policy) = %v, want core.ErrUnknownPolicy", err)
	}
}

// TestEnginePolicyNameResolved pins the empty-name default and the echo of
// an explicit choice.
func TestEnginePolicyNameResolved(t *testing.T) {
	info := core.Info{Weights: []float64{1}, Sizes: []int{1}}
	e, err := New(info, 1, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()
	if got := e.PolicyName(); got != core.DefaultPolicy {
		t.Errorf("PolicyName() = %q, want %q", got, core.DefaultPolicy)
	}
	ff, err := New(info, 1, Config{Shards: 1, Policy: "first-fit"})
	if err != nil {
		t.Fatal(err)
	}
	defer ff.Drain()
	if got := ff.PolicyName(); got != "first-fit" {
		t.Errorf("PolicyName() = %q, want first-fit", got)
	}
}

// TestSteadyStateZeroAllocAllVectorPolicies extends the zero-allocation
// guarantee beyond the default policy: every built-in rides either the
// shared vector kernel or the trivial first-fit prefix, so none may
// allocate per element once buffers reach their high-water mark.
func TestSteadyStateZeroAllocAllVectorPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	inst, err := workload.Uniform(workload.UniformConfig{M: 100, N: 4000, Load: 6, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 64
	for _, name := range core.PolicyNames() {
		e, err := New(core.InfoOf(inst), 5, Config{Shards: 2, BatchSize: batchSize, QueueDepth: 4, Policy: name})
		if err != nil {
			t.Fatal(err)
		}
		for _, el := range inst.Elements[:2048] {
			if err := e.Submit(el); err != nil {
				t.Fatal(err)
			}
		}
		rest := inst.Elements[2048:]
		pos := 0
		allocs := testing.AllocsPerRun(20, func() {
			for i := 0; i < batchSize; i++ {
				if err := e.Submit(rest[pos%len(rest)]); err != nil {
					t.Fatal(err)
				}
				pos++
			}
		})
		if perElement := allocs / batchSize; perElement != 0 {
			t.Errorf("%s: steady-state ingestion %v allocs/element, want 0", name, perElement)
		}
		e.Drain()
	}
}
