package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// fillBatch bulk-copies a run of elements into a borrowed batch — the
// test stand-in for wire.DecodeBatch filling engine buffers directly.
func fillBatch(b *Batch, els []setsystem.Element) {
	b.Offs = append(b.Offs, 0)
	for _, el := range els {
		b.Members = append(b.Members, el.Members...)
		b.Offs = append(b.Offs, int32(len(b.Members)))
		b.Caps = append(b.Caps, int32(el.Capacity))
	}
}

// TestSubmitBatchMatchesSerial is the correctness anchor of the
// zero-copy wire path: a stream ingested entirely through borrowed
// batches — of sizes unrelated to Config.BatchSize — drains to a result
// bit-for-bit identical to the serial oracle, across shard counts.
func TestSubmitBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inst, err := workload.Uniform(workload.UniformConfig{M: 120, N: 6000, Load: 7, MinLoad: 2, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	want := serial(t, inst, seed)

	for _, shards := range []int{1, 3, 4} {
		e, err := New(core.InfoOf(inst), seed, Config{Shards: shards, BatchSize: 64, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		// Deliberately odd wire-batch sizes, never aligned with BatchSize.
		sizes := []int{1, 37, 300, 5}
		for off, i := 0, 0; off < len(inst.Elements); i++ {
			end := min(off+sizes[i%len(sizes)], len(inst.Elements))
			b := e.BorrowBatch()
			fillBatch(b, inst.Elements[off:end])
			if err := b.Validate(inst.NumSets()); err != nil {
				t.Fatal(err)
			}
			if err := e.SubmitBatch(b); err != nil {
				t.Fatal(err)
			}
			off = end
		}
		got, err := e.Drain()
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalent(t, got, want, "SubmitBatch stream")
		if snap := e.Metrics().Snapshot(); snap.Processed != uint64(len(inst.Elements)) {
			t.Errorf("shards=%d: processed %d of %d submitted elements", shards, snap.Processed, len(inst.Elements))
		}
	}
}

// TestSubmitBatchInterleavesWithSubmit proves the two ingest paths
// compose: per-element Submit and whole-batch SubmitBatch may alternate
// on one stream and the drained result still matches the serial oracle
// (assignment counts are order-independent sums).
func TestSubmitBatchInterleavesWithSubmit(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst, err := workload.Uniform(workload.UniformConfig{M: 80, N: 4000, Load: 6, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7
	want := serial(t, inst, seed)

	e, err := New(core.InfoOf(inst), seed, Config{Shards: 2, BatchSize: 32, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(inst.Elements); {
		if (off/100)%2 == 0 { // alternate runs of 100 between the paths
			end := min(off+100, len(inst.Elements))
			b := e.BorrowBatch()
			fillBatch(b, inst.Elements[off:end])
			if err := e.SubmitBatch(b); err != nil {
				t.Fatal(err)
			}
			off = end
		} else {
			end := min(off+100, len(inst.Elements))
			for ; off < end; off++ {
				if err := e.Submit(inst.Elements[off]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	got, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, got, want, "interleaved Submit/SubmitBatch stream")
}

// TestSubmitBatchSteadyStateZeroAlloc extends the engine's headline
// property to the wire path: borrow → fill → submit allocates nothing
// once the batch population is warm.
func TestSubmitBatchSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst, err := workload.Uniform(workload.UniformConfig{M: 100, N: 12000, Load: 6, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.InfoOf(inst), 5, Config{Shards: 2, BatchSize: 64, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()

	const batchN = 256
	submit := func(els []setsystem.Element) {
		b := e.BorrowBatch()
		fillBatch(b, els)
		if err := e.SubmitBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: cycle at least twice the in-flight batch population
	// (shards×(queue+1)+2 = 12 here) past the workload's high-water
	// member count, so every recycled batch has grown its buffers.
	const warm = 24 * batchN
	for off := 0; off+batchN <= warm; off += batchN {
		submit(inst.Elements[off : off+batchN])
	}
	rest := inst.Elements[warm:]
	pos := 0
	allocs := testing.AllocsPerRun(20, func() {
		off := pos % (len(rest) - batchN)
		submit(rest[off : off+batchN])
		pos += batchN
	})
	if perElement := allocs / batchN; perElement != 0 {
		t.Errorf("steady-state SubmitBatch: %v allocs/element (%v per batch), want 0", perElement, allocs)
	}
}

// TestSubmitBatchAfterDrain pins the lifecycle edge: a borrowed batch
// submitted after Drain is refused with ErrDrained and recycled, not
// leaked or processed.
func TestSubmitBatchAfterDrain(t *testing.T) {
	info := core.Info{Weights: []float64{1, 1}, Sizes: []int{1, 1}}
	e, err := New(info, 1, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	b := e.BorrowBatch()
	fillBatch(b, []setsystem.Element{{Members: []setsystem.SetID{0}, Capacity: 1}})
	if err := e.SubmitBatch(b); !errors.Is(err, ErrDrained) {
		t.Fatalf("SubmitBatch after Drain: err = %v, want ErrDrained", err)
	}
}

// TestBatchValidate exercises the flat-layout validation against every
// element defect class, mirroring setsystem.CheckElement's errors.
func TestBatchValidate(t *testing.T) {
	mk := func(fill func(b *Batch)) *Batch {
		b := new(Batch)
		fill(b)
		return b
	}
	cases := []struct {
		name string
		b    *Batch
		want error
	}{
		{"valid", mk(func(b *Batch) {
			fillBatch(b, []setsystem.Element{
				{Members: []setsystem.SetID{0, 2}, Capacity: 1},
				{Members: []setsystem.SetID{1}, Capacity: 3},
			})
		}), nil},
		{"zero capacity", mk(func(b *Batch) {
			fillBatch(b, []setsystem.Element{{Members: []setsystem.SetID{0}, Capacity: 0}})
		}), setsystem.ErrBadCapacity},
		{"empty element", mk(func(b *Batch) {
			b.Offs = []int32{0, 0}
			b.Caps = []int32{1}
		}), setsystem.ErrEmptyElement},
		{"member out of range", mk(func(b *Batch) {
			fillBatch(b, []setsystem.Element{{Members: []setsystem.SetID{3}, Capacity: 1}})
		}), setsystem.ErrMemberRange},
		{"members out of order", mk(func(b *Batch) {
			b.Members = []setsystem.SetID{2, 1}
			b.Offs = []int32{0, 2}
			b.Caps = []int32{1}
		}), setsystem.ErrBadMemberOrder},
		{"structurally torn", mk(func(b *Batch) {
			b.Members = []setsystem.SetID{0}
			b.Offs = []int32{0, 2}
			b.Caps = []int32{1}
		}), nil /* any non-nil error; checked below */},
	}
	for _, tc := range cases {
		err := tc.b.Validate(3)
		switch {
		case tc.name == "valid":
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		case tc.name == "structurally torn":
			if err == nil {
				t.Errorf("%s: validation passed", tc.name)
			}
		case !errors.Is(err, tc.want):
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// opaquePolicy hides a policy's VectorState behind a wrapper type,
// defeating the engine's devirtualization — the "before" configuration
// of the fast-path comparison.
type opaquePolicy struct{ inner core.Policy }

func (p opaquePolicy) Name() string { return p.inner.Name() + "-opaque" }

func (p opaquePolicy) Setup(info core.Info, seed uint64) (core.PolicyState, error) {
	st, err := p.inner.Setup(info, seed)
	if err != nil {
		return nil, err
	}
	return opaqueState{st}, nil
}

type opaqueState struct{ inner core.PolicyState }

func (s opaqueState) DecideInPlace(members []setsystem.SetID, capacity int) []setsystem.SetID {
	return s.inner.DecideInPlace(members, capacity)
}

func (s opaqueState) Decide(members []setsystem.SetID, capacity int, buf []setsystem.SetID) []setsystem.SetID {
	return s.inner.Decide(members, capacity, buf)
}

// TestVectorFastPathMatchesInterfacePath proves the devirtualized shard
// loop is a pure optimization: the same policy run with its VectorState
// visible (fast path taken) and hidden behind an opaque wrapper
// (interface path forced) drains identical results.
func TestVectorFastPathMatchesInterfacePath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst, err := workload.Uniform(workload.UniformConfig{M: 90, N: 5000, Load: 6, MinLoad: 2, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 12
	cfg := Config{Shards: 3, BatchSize: 32, QueueDepth: 2}

	pol, err := core.LookupPolicy(core.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ReplayWithPolicy(inst, pol, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ReplayWithPolicy(inst, opaquePolicy{pol}, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, fast, slow, "fast path vs interface path")

	// The engine must actually pin the vector for the built-in and not
	// for the opaque wrapper — otherwise this test compares the same path
	// with itself.
	ef, err := NewWithPolicy(core.InfoOf(inst), pol, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Drain()
	if ef.vector == nil {
		t.Error("built-in randpr: vector fast path not pinned")
	}
	eo, err := NewWithPolicy(core.InfoOf(inst), opaquePolicy{pol}, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eo.Drain()
	if eo.vector != nil {
		t.Error("opaque state: vector fast path pinned through the wrapper")
	}
}
