package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// telemetryFor builds a full telemetry bundle — decision logger, queue-
// wait and decide histograms — registered with a fresh decision log.
func telemetryFor(t *testing.T, cfg obs.DecisionLogConfig, instance string, shards int) (*obs.DecisionLog, *obs.EngineTelemetry) {
	t.Helper()
	dlog := obs.NewDecisionLog(cfg)
	tel := &obs.EngineTelemetry{
		Decisions: dlog.Logger(instance, "randpr", shards),
		QueueWait: new(obs.Histogram),
		Decide:    new(obs.Histogram),
	}
	return dlog, tel
}

// TestSteadyStateZeroAllocTelemetry is TestSteadyStateZeroAlloc with the
// full telemetry stack attached — decision-log sampling (every 2nd
// element, so the record path runs constantly), queue-wait and decide
// histograms, and the drainer goroutine flushing concurrently. The
// telemetry layer's contract is that all of it is free: steady-state
// ingestion must still be exactly 0 allocs/element. AllocsPerRun counts
// process-wide mallocs, so this also proves the drainer's flush path
// (tail append, no sink) allocates nothing.
func TestSteadyStateZeroAllocTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst, err := workload.Uniform(workload.UniformConfig{M: 100, N: 4000, Load: 6, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 64
	dlog, tel := telemetryFor(t, obs.DecisionLogConfig{
		SampleEvery: 2,
		RingSize:    256,
		FlushEvery:  time.Millisecond, // keep the drainer hot during the measurement
	}, "alloc-test", 2)
	defer dlog.Close()

	e, err := New(core.InfoOf(inst), 5, Config{Shards: 2, BatchSize: batchSize, QueueDepth: 4, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()

	// Warm up: cycle every pre-filled batch through the shards so member
	// buffers, shard scratch and the decision tail reach their high-water
	// capacity.
	warm := inst.Elements[:2048]
	for _, el := range warm {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	dlog.Flush()

	rest := inst.Elements[2048:]
	pos := 0
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < batchSize; i++ {
			if err := e.Submit(rest[pos%len(rest)]); err != nil {
				t.Fatal(err)
			}
			pos++
		}
	})
	perElement := allocs / batchSize
	if perElement != 0 {
		t.Errorf("telemetry-enabled ingestion: %v allocs/element (%v per batch), want 0", perElement, allocs)
	}
	if c := tel.Decide.Snapshot().Count; c == 0 {
		t.Error("decide histogram observed nothing; telemetry was not attached")
	}
}

// TestDecisionLogMatchesOracle replays an instance with every decision
// sampled and checks each flushed record against the policy oracle: for
// the element at the recorded global index, the verdict bitmask, member
// count and admitted count must match what the frozen policy state
// decides for that element. This pins the whole sampled pipeline —
// global index threading through batches, the pre-decide member copy,
// and the merge-scan mask — to the policy contract.
func TestDecisionLogMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inst, err := workload.Uniform(workload.UniformConfig{M: 80, N: 3000, Load: 5, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sink := new(obs.MemorySink)
	dlog := obs.NewDecisionLog(obs.DecisionLogConfig{
		SampleEvery: 1,
		RingSize:    1 << 15, // larger than the stream: nothing may drop
		Sink:        sink,
	})
	tel := &obs.EngineTelemetry{Decisions: dlog.Logger("oracle", "randpr", 3)}

	e, err := New(core.InfoOf(inst), 42, Config{Shards: 3, BatchSize: 32, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := dlog.Close(); err != nil {
		t.Fatal(err)
	}

	decs := sink.Decisions()
	if len(decs) != len(inst.Elements) {
		flushed, dropped := dlog.Stats()
		t.Fatalf("sampled %d decisions for %d elements (flushed=%d dropped=%d)",
			len(decs), len(inst.Elements), flushed, dropped)
	}
	seen := make(map[uint64]bool, len(decs))
	var buf []setsystem.SetID
	for _, d := range decs {
		if seen[d.Element] {
			t.Fatalf("element %d recorded twice", d.Element)
		}
		seen[d.Element] = true
		if d.Element >= uint64(len(inst.Elements)) {
			t.Fatalf("element index %d out of range", d.Element)
		}
		el := inst.Elements[d.Element]
		buf = e.Policy().Decide(el.Members, el.Capacity, buf)
		if int(d.Members) != len(el.Members) {
			t.Fatalf("element %d: recorded %d members, has %d", d.Element, d.Members, len(el.Members))
		}
		if int(d.Admitted) != len(buf) {
			t.Fatalf("element %d: recorded %d admitted, oracle admits %d", d.Element, d.Admitted, len(buf))
		}
		var want uint64
		j := 0
		for i, m := range el.Members {
			if i >= 64 {
				break
			}
			if j < len(buf) && m == buf[j] {
				want |= 1 << uint(i)
				j++
			}
		}
		if d.Verdict != want {
			t.Fatalf("element %d: verdict mask %#x, oracle %#x", d.Element, d.Verdict, want)
		}
		if d.Instance != "oracle" || d.Policy != "randpr" {
			t.Fatalf("element %d: labeled %s/%s", d.Element, d.Instance, d.Policy)
		}
	}
}

// TestVerdictMask pins the merge-scan mask against hand-built cases,
// including the >64-member truncation.
func TestVerdictMask(t *testing.T) {
	ids := func(v ...int) []setsystem.SetID {
		out := make([]setsystem.SetID, len(v))
		for i, x := range v {
			out[i] = setsystem.SetID(x)
		}
		return out
	}
	if got := verdictMask(ids(2, 5, 9), ids(2, 9)); got != 0b101 {
		t.Errorf("mask(235/29) = %#b, want 101", got)
	}
	if got := verdictMask(ids(2, 5, 9), nil); got != 0 {
		t.Errorf("empty choice: mask = %#b, want 0", got)
	}
	if got := verdictMask(ids(2, 5, 9), ids(2, 5, 9)); got != 0b111 {
		t.Errorf("full choice: mask = %#b, want 111", got)
	}
	// 70 members, the last (index 69) admitted: truncated out of the mask.
	wide := make([]setsystem.SetID, 70)
	for i := range wide {
		wide[i] = setsystem.SetID(i)
	}
	if got := verdictMask(wide, ids(0, 69)); got != 1 {
		t.Errorf("truncated mask = %#x, want 1", got)
	}
}

// TestSnapshotElapsedPinnedAfterDrain pins the satellite fix: once the
// stream is drained, Elapsed and ElementsPerSec are frozen — two
// snapshots taken with wall time passing between them are identical, so
// post-drain metric scrapes are stable.
func TestSnapshotElapsedPinnedAfterDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, err := workload.Uniform(workload.UniformConfig{M: 20, N: 500, Load: 4, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.InfoOf(inst), 1, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	a := e.Metrics().Snapshot()
	time.Sleep(20 * time.Millisecond)
	b := e.Metrics().Snapshot()
	if a.Elapsed != b.Elapsed {
		t.Errorf("post-drain Elapsed drifted: %v then %v", a.Elapsed, b.Elapsed)
	}
	if a.ElementsPerSec != b.ElementsPerSec {
		t.Errorf("post-drain ElementsPerSec drifted: %v then %v", a.ElementsPerSec, b.ElementsPerSec)
	}
	if a.Elapsed <= 0 || a.ElementsPerSec <= 0 {
		t.Errorf("drained snapshot not populated: elapsed=%v rate=%v", a.Elapsed, a.ElementsPerSec)
	}
}

// TestQueueWaitAndDecideHistograms checks the per-batch stage probes:
// after a replay with telemetry, both histograms hold one observation
// per flushed batch.
func TestQueueWaitAndDecideHistograms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := workload.Uniform(workload.UniformConfig{M: 40, N: 1024, Load: 4, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dlog, tel := telemetryFor(t, obs.DecisionLogConfig{SampleEvery: 64}, "hist", 2)
	defer dlog.Close()
	e, err := New(core.InfoOf(inst), 9, Config{Shards: 2, BatchSize: 64, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	batches := e.Metrics().Snapshot().Batches
	if got := tel.QueueWait.Snapshot().Count; got != batches {
		t.Errorf("queue-wait observations = %d, want %d (one per batch)", got, batches)
	}
	if got := tel.Decide.Snapshot().Count; got != batches {
		t.Errorf("decide observations = %d, want %d (one per batch)", got, batches)
	}
}
