// Package engine is the sharded concurrent streaming admission engine: it
// serves a live element stream through a pluggable admission policy —
// the paper's distributed randPr by default — at multi-core throughput.
//
// The design exploits the observation behind Section 3.1, generalized by
// the policy contract (core.Policy, DESIGN.md §11): a policy's decision
// for an element depends only on the element itself and on frozen
// per-instance state built deterministically from (Info, seed) — never on
// the run state. Shards therefore need no locks, no shared mutable state
// and no coordination on the hot path:
//
//   - New resolves the configured policy name (core.LookupPolicy) and runs
//     its Setup once — for the default randPr policy that is
//     core.HashPriorities, the same code path HashRandPr uses — handing
//     every shard a read-only view of the resulting state.
//   - Submit copies arriving elements into a flat structure-of-arrays
//     batch — one shared member buffer plus per-element offset/capacity
//     arrays — and hands full batches to shard workers round-robin over
//     bounded channels; a full queue blocks the submitter, giving natural
//     backpressure. Batches are recycled through a free list, so
//     steady-state ingestion allocates nothing.
//   - Each shard decides its elements with the policy state's
//     DecideInPlace directly on the batch buffer and accumulates per-set
//     assignment counts in shard-local arrays.
//   - Drain flushes, stops the workers and merges the shard counters into
//     a Result that is bit-for-bit identical to a serial core.Run with
//     the policy's oracle (core.PolicyAlgorithm — HashRandPr for the
//     default policy) under the same seed: integer assignment counts
//     commute across shards, and the completion sweep re-walks sets in
//     ascending order exactly as the serial runner does.
//
// Live progress is observable through Metrics while the stream is open.
// All metric publication is amortized to one atomic update per batch:
// the submit side publishes submitted counts at flush, the shard side
// publishes processed/assigned/dropped after deciding the batch.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/setsystem"
	"repro/internal/wire"
)

// State is an engine's lifecycle position. An engine is born StateIdle,
// moves to StateStreaming on its first Submit and reaches StateDrained —
// terminal — when Drain closes the stream. State transitions happen on the
// submitter goroutine; State may be read concurrently from any goroutine
// (the service layer polls it for pool listings and metrics labels).
type State int32

// Engine lifecycle states, in order.
const (
	// StateIdle: created, no element submitted yet.
	StateIdle State = iota
	// StateStreaming: at least one element submitted, not yet drained.
	StateStreaming
	// StateDrained: Drain has run; the Result is final and Submit fails
	// with ErrDrained.
	StateDrained
)

// String returns the lowercase state name used in API responses and
// metrics labels.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateStreaming:
		return "streaming"
	case StateDrained:
		return "drained"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Config sizes the engine and names its admission policy. The zero value
// is usable: one shard per CPU, 64-element batches, 8 queued batches per
// shard, the randpr policy.
type Config struct {
	// Shards is the number of worker goroutines; 0 means GOMAXPROCS.
	Shards int
	// BatchSize is the number of elements per ingestion batch; 0 means 64.
	BatchSize int
	// QueueDepth is the number of batches each shard buffers before
	// Submit blocks (backpressure); 0 means 8.
	QueueDepth int
	// Policy names the admission policy, resolved through
	// core.LookupPolicy; "" means core.DefaultPolicy (randpr). Every
	// registered policy produces results reproducible across shard counts
	// under a fixed seed.
	Policy string
	// Telemetry attaches optional observability to the shard loops:
	// sampled decision logging and queue-wait/decide histograms
	// (internal/obs). Nil disables every probe. With telemetry attached
	// the hot path stays at zero allocations per element — sampling is a
	// shard-local countdown and the ring slots are preallocated (DESIGN.md
	// §13) — so enabling it in production is safe by construction.
	Telemetry *obs.EngineTelemetry
}

// Resolved returns the config with zero fields resolved to the defaults
// New would apply — what admission-control layers need to bound the
// resources a configuration will actually allocate (shard count × set
// count counter cells, shard count × queue depth pre-filled batches)
// before building the engine.
func (c Config) Resolved() Config { return c.withDefaults() }

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	return c
}

// Errors reported by the engine. Invalid elements are rejected with the
// setsystem validation errors (setsystem.ErrBadCapacity,
// setsystem.ErrMemberRange, …); unknown policy names are rejected with
// core.ErrUnknownPolicy wrapped.
var (
	ErrDrained   = errors.New("engine: stream already drained")
	ErrNilPolicy = errors.New("engine: nil policy")
)

// Batch is one ingestion unit in flat structure-of-arrays layout: the
// member lists of all batched elements concatenated into one buffer, plus
// parallel per-element offset and capacity arrays. Element i's parents are
// Members[Offs[i]:Offs[i+1]] and its b(u) is Caps[i]. The layout keeps the
// shard's decide loop walking contiguous memory, and ingestion does one
// bulk copy per element instead of retaining the caller's slice.
//
// The fields are exported for the zero-copy wire path: BorrowBatch hands
// out a recycled Batch, wire decoding appends straight into its buffers
// (internal/wire.DecodeBatch produces exactly this shape), and
// SubmitBatch hands it to a shard whole — no intermediate element
// structs, no second copy.
type Batch struct {
	Members []setsystem.SetID
	Offs    []int32 // len = n+1; Offs[0] == 0
	Caps    []int32 // len = n

	// Seq, Masks and Done form the callback-verdict contract of the
	// streaming wire path. When Done is non-nil, the deciding shard
	// appends one wire verdict bitmask per element onto Masks — computed
	// against the element's pre-decide member order, exactly the bits
	// wire.AppendVerdictMask produces — and, after the batch's counters
	// are published, invokes Done(Seq, Masks) on the shard goroutine.
	// This is what lets a transport answer verdicts from the engine's one
	// decide instead of running a second replica decide per element the
	// way the HTTP handler does. The callback must not block (shards
	// share connections); hand the masks to a buffered channel. Ownership
	// of the Masks buffer passes back to the caller at the callback; the
	// batch itself is recycled before Done runs and must not be touched.
	Seq   uint32
	Masks []byte
	Done  func(seq uint32, masks []byte)

	// Aliased marks a batch whose Members/Caps slices alias transport-
	// owned memory (a stream connection's read buffer) instead of
	// engine-owned storage — the zero-copy wire path. The engine treats
	// such batches as pass-through: Reset detaches the aliased slices
	// entirely rather than truncating them (a truncated alias would leak
	// foreign memory into the free list), and the shard returns the
	// Batch struct to its owner by simply not free-listing it — the
	// transport slot that created it reuses the struct after its verdict
	// frame round-trips. Aliased batches must be submitted through
	// SubmitBatch or a Lane, never built by Submit.
	Aliased bool

	// base is the global arrival index of the batch's first element —
	// the submitted counter before this batch — giving every sampled
	// decision a stable element index without per-element bookkeeping.
	base uint64
	// enq is the flush time, read by the shard to observe queue wait.
	// Only stamped when telemetry is attached.
	enq time.Time
}

// add bulk-copies one element into the batch.
func (b *Batch) add(el setsystem.Element) {
	if len(b.Offs) == 0 {
		b.Offs = append(b.Offs, 0)
	}
	b.Members = append(b.Members, el.Members...)
	b.Offs = append(b.Offs, int32(len(b.Members)))
	b.Caps = append(b.Caps, int32(el.Capacity))
}

// Len returns the number of batched elements.
func (b *Batch) Len() int { return len(b.Caps) }

// Reset empties the batch, keeping its storage. The callback-verdict
// fields are detached, not kept: a recycled batch must never fire a
// stale Done or append onto a previous connection's mask buffer. An
// aliased batch's element slices are dropped outright — truncating
// them would retain views of transport-owned buffers past their
// lifetime.
func (b *Batch) Reset() {
	if b.Aliased {
		b.Members, b.Offs, b.Caps = nil, nil, nil
		b.Aliased = false
	} else {
		b.Members = b.Members[:0]
		b.Offs = b.Offs[:0]
		b.Caps = b.Caps[:0]
	}
	b.Seq, b.Masks, b.Done = 0, nil, nil
}

// Validate checks every batched element against a universe of numSets
// sets — the flat-layout mirror of setsystem.CheckElement, wrapping the
// same error values. Batch-ingestion layers call it once after filling a
// borrowed batch from the wire; SubmitBatch then trusts the contents the
// way SubmitValidated does.
func (b *Batch) Validate(numSets int) error {
	n := b.Len()
	if len(b.Offs) != n+1 || b.Offs[0] != 0 || int(b.Offs[n]) != len(b.Members) {
		return fmt.Errorf("engine: malformed batch: %d caps, %d offs over %d members", n, len(b.Offs), len(b.Members))
	}
	for i := 0; i < n; i++ {
		if b.Caps[i] < 1 {
			return fmt.Errorf("element %d: %w: capacity %d", i, setsystem.ErrBadCapacity, b.Caps[i])
		}
		lo, hi := b.Offs[i], b.Offs[i+1]
		if hi < lo {
			return fmt.Errorf("engine: malformed batch: element %d spans [%d, %d)", i, lo, hi)
		}
		if hi == lo {
			return fmt.Errorf("element %d: %w", i, setsystem.ErrEmptyElement)
		}
		prev := setsystem.SetID(-1)
		for _, s := range b.Members[lo:hi] {
			if s < 0 || s >= setsystem.SetID(numSets) {
				return fmt.Errorf("element %d: %w: set %d (m=%d)", i, setsystem.ErrMemberRange, s, numSets)
			}
			if s <= prev {
				return fmt.Errorf("element %d: %w: set %d after %d", i, setsystem.ErrBadMemberOrder, s, prev)
			}
			prev = s
		}
	}
	return nil
}

// Engine streams elements through sharded policy admission. Submit and
// Drain must be called from a single goroutine (the arrival stream is a
// sequence, as in the OSP protocol); the shard workers run concurrently
// underneath.
type Engine struct {
	cfg     Config
	info    core.Info
	policy  string           // resolved policy name
	decider core.PolicyState // read-only after New; shared by all shards
	vector  *core.VectorState
	tel     *obs.EngineTelemetry // nil: no telemetry probes
	shards  []*shard
	wg      sync.WaitGroup
	batch   *Batch
	next    int         // round-robin shard cursor
	free    chan *Batch // recycled batches; pre-filled so steady state never allocates
	metrics Metrics
	state   atomic.Int32 // State; written by the submitter, read by anyone
	result  *core.Result
	// base is the per-set assigned counts a restored engine starts from
	// (NewFromCheckpoint); nil for fresh engines. Drain merges it exactly
	// like another shard's counters — integer counts commute, which is
	// what makes checkpoint/restore bit-for-bit exact.
	base []int32
}

// shard is one worker: a bounded inbox and shard-local bookkeeping.
type shard struct {
	in       chan *Batch
	assigned []int32
	idx      int // shard index, keys the telemetry ring
	// scratch preserves a sampled element's member order across
	// DecideInPlace (which reorders the batch buffer) so the verdict
	// bitmask can be computed against the wire order. It grows to the
	// largest sampled membership once and is then reused — no
	// steady-state allocation.
	scratch []setsystem.SetID
}

// New builds an engine over the given up-front information (weights and
// sizes), resolving cfg.Policy through the core policy registry and
// setting it up under seed. Every shard — and any serial or remote
// replica running the same (policy, seed) pair — agrees on all decisions
// without coordination.
func New(info core.Info, seed uint64, cfg Config) (*Engine, error) {
	pol, err := core.LookupPolicy(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return NewWithPolicy(info, pol, seed, cfg)
}

// NewWithPolicy is New for callers that inject a Policy value directly
// instead of naming a registered one — custom hash families, experimental
// policies not in the registry. cfg.Policy is ignored; the engine reports
// pol.Name().
func NewWithPolicy(info core.Info, pol core.Policy, seed uint64, cfg Config) (*Engine, error) {
	if pol == nil {
		return nil, ErrNilPolicy
	}
	state, err := pol.Setup(info, seed)
	if err != nil {
		return nil, fmt.Errorf("engine: setup policy %s: %w", pol.Name(), err)
	}
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		info:    info,
		policy:  pol.Name(),
		decider: state,
		tel:     cfg.Telemetry,
		shards:  make([]*shard, cfg.Shards),
		batch:   new(Batch),
	}
	// Hot-path devirtualization: every built-in except first-fit decides
	// through a *core.VectorState. Pinning the concrete type here lets the
	// shard loop call its DecideInPlace directly — a static, inlinable
	// call — instead of going through the PolicyState interface for every
	// element. Custom policies simply keep the interface path.
	e.vector, _ = state.(*core.VectorState)
	// Pre-fill the free list with every batch that can be in flight at
	// once: one per queue slot, one being processed per shard, one in the
	// submitter's hand, plus slack. Ingestion then recycles this fixed
	// population and never allocates a batch again.
	maxInFlight := cfg.Shards*(cfg.QueueDepth+1) + 2
	e.free = make(chan *Batch, maxInFlight)
	for i := 0; i < maxInFlight-1; i++ {
		e.free <- new(Batch)
	}
	e.metrics.start()
	for i := range e.shards {
		s := &shard{
			in:       make(chan *Batch, cfg.QueueDepth),
			assigned: make([]int32, info.NumSets()),
			idx:      i,
		}
		e.shards[i] = s
		e.wg.Add(1)
		go e.run(s)
	}
	return e, nil
}

// run is the shard worker loop: decide every element of every inbound
// batch with the policy's pure decide rule and count assignments locally.
// No locks, no shared writes — only the amortized per-batch metrics
// publication. With telemetry attached the loop additionally observes
// queue wait and decide time once per batch and, for every sampled
// element (a shard-local countdown), records the decision into the
// shard's preallocated ring — all of it allocation-free, which is what
// keeps the telemetry-enabled alloc gate at zero.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	vec := e.vector
	var slog *obs.ShardLog
	var qwait, decide *obs.Histogram
	if e.tel != nil {
		slog = e.tel.Decisions.Shard(s.idx)
		qwait = e.tel.QueueWait
		decide = e.tel.Decide
	}
	for b := range s.in {
		var t0 time.Time
		if qwait != nil || decide != nil {
			t0 = time.Now()
			if qwait != nil && !b.enq.IsZero() {
				qwait.Observe(t0.Sub(b.enq))
			}
		}
		base := b.base
		n := b.Len()
		wantMasks := b.Done != nil
		// Hoist the per-batch invariants out of the element loop: the
		// slice headers never change across the batch (only Masks is
		// reassigned, tracked locally), so the loop reads registers
		// instead of reloading through the batch pointer every element.
		batchMembers, offs, caps, masks := b.Members, b.Offs, b.Caps, b.Masks
		counts, scratch := s.assigned, s.scratch
		var assigned, dropped uint64
		for i := 0; i < n; i++ {
			members := batchMembers[offs[i]:offs[i+1]]
			// A sampled or mask-carrying element's members are copied to
			// shard scratch before the decide reorders them, so the verdict
			// mask can be computed against the canonical wire order.
			sampled := slog != nil && slog.Sample()
			if sampled || wantMasks {
				scratch = append(scratch[:0], members...)
			}
			// The batch buffer is engine-owned scratch, so the policy may
			// reorder it in place — no per-element copy on the hot path.
			// Vector policies take the devirtualized direct call.
			var choice []setsystem.SetID
			if vec != nil {
				choice = vec.DecideInPlace(members, int(caps[i]))
			} else {
				choice = e.decider.DecideInPlace(members, int(caps[i]))
			}
			for _, id := range choice {
				counts[id]++
			}
			assigned += uint64(len(choice))
			dropped += uint64(len(members) - len(choice))
			if wantMasks {
				masks = wire.AppendVerdictMask(masks, scratch, choice)
			}
			if sampled {
				slog.Record(obs.Record{
					Element:      base + uint64(i),
					Verdict:      verdictMask(scratch, choice),
					TimeUnixNano: time.Now().UnixNano(),
					Members:      int32(len(members)),
					Admitted:     int32(len(choice)),
				})
			}
		}
		s.scratch = scratch
		if decide != nil {
			decide.Observe(time.Since(t0))
		}
		e.metrics.observeBatch(uint64(n), assigned, dropped)
		// Detach the callback trio before recycling: Done runs after the
		// batch is back on the free list, so it must not see the batch.
		// Aliased batches are not free-listed — the transport slot that
		// owns the struct (and the buffers it aliases) reuses it after
		// the verdict frame round-trips.
		seq, done := b.Seq, b.Done
		aliased := b.Aliased
		b.Reset()
		if !aliased {
			e.putBatch(b)
		}
		if done != nil {
			done(seq, masks)
		}
	}
}

// verdictMask builds the admit bitmask of a sampled decision: bit i set
// means members[i] — the element's i-th membership in canonical
// ascending SetID order — was admitted. Both slices are ascending
// (members is the pre-decide copy, choice is the winning prefix sorted
// by the policy contract), so one merge scan suffices. Memberships past
// bit 63 are truncated; Decision.Members still reports the true width.
func verdictMask(members, choice []setsystem.SetID) uint64 {
	var mask uint64
	limit := len(members)
	if limit > 64 {
		limit = 64
	}
	j := 0
	for i := 0; i < limit && j < len(choice); i++ {
		if members[i] == choice[j] {
			mask |= 1 << uint(i)
			j++
		}
	}
	return mask
}

// getBatch pulls a recycled batch, falling back to allocation only if the
// pre-filled population is somehow exhausted.
func (e *Engine) getBatch() *Batch {
	select {
	case b := <-e.free:
		return b
	default:
		return new(Batch)
	}
}

// putBatch returns a processed batch to the free list (dropping it if the
// list is full, which only happens for fallback-allocated batches).
func (e *Engine) putBatch(b *Batch) {
	select {
	case e.free <- b:
	default:
	}
}

// BorrowBatch hands out an empty flat batch from the engine's recycled
// population — the entry point of the zero-copy wire path. The caller
// fills Members/Offs/Caps directly (wire.DecodeBatch appends exactly
// this shape), validates with Batch.Validate, and passes the batch to
// SubmitBatch; a batch that will not be submitted after all must go back
// through ReturnBatch. Borrowed batches draw on the same pre-filled
// free-list population as Submit's internal batching, so steady-state
// wire ingestion allocates nothing.
func (e *Engine) BorrowBatch() *Batch {
	b := e.getBatch()
	b.Reset()
	return b
}

// ReturnBatch returns a borrowed batch to the free list unsubmitted —
// the error path of the wire decode (malformed frame, failed
// validation). An aliased batch is only detached from its foreign
// storage, never free-listed: the struct stays with the transport slot
// that owns it.
func (e *Engine) ReturnBatch(b *Batch) {
	aliased := b.Aliased
	b.Reset()
	if !aliased {
		e.putBatch(b)
	}
}

// SubmitBatch hands a borrowed, filled batch to the next shard whole,
// skipping the per-element copy Submit does: the wire bytes were decoded
// straight into this batch's buffers and ownership now passes to the
// engine. The caller must have validated the contents with
// Batch.Validate (SubmitBatch trusts them the way SubmitValidated does)
// and must not touch the batch afterwards, whatever the outcome — on
// error the batch is returned to the free list internally. Like Submit,
// it blocks when the target shard's queue is full (backpressure), and it
// must be called from the same single submitter goroutine.
//
// Batch sizing is the caller's: a wire batch is not re-split to
// Config.BatchSize, it reaches one shard as one unit. Round-robin over
// wire batches keeps shards balanced exactly as flush does.
func (e *Engine) SubmitBatch(b *Batch) error {
	st := State(e.state.Load())
	if st == StateDrained {
		e.ReturnBatch(b)
		return ErrDrained
	}
	n := b.Len()
	if n == 0 {
		e.ReturnBatch(b)
		return nil
	}
	if len(b.Offs) != n+1 || b.Offs[0] != 0 || int(b.Offs[n]) != len(b.Members) {
		e.ReturnBatch(b)
		return fmt.Errorf("engine: malformed batch: %d caps, %d offs over %d members", n, len(b.Offs), len(b.Members))
	}
	if st == StateIdle {
		e.state.Store(int32(StateStreaming))
	}
	b.base = e.metrics.submitted.Add(uint64(n)) - uint64(n)
	if e.tel != nil {
		b.enq = time.Now()
	}
	e.shards[e.next].in <- b
	e.next = (e.next + 1) % len(e.shards)
	return nil
}

// Lane is an independent batch submitter: where SubmitBatch shares the
// engine's single round-robin cursor (and therefore its single-submitter
// contract), each Lane carries a private cursor seeded at a different
// shard, so N concurrent transport connections can submit shard-affine
// in parallel — no shared cursor, no lock, and no two lanes hammering
// the same shard channel in lockstep. Everything else a submission
// touches is already concurrency-safe (channel sends, atomic metrics
// and state).
//
// Lanes may run concurrently with each other and with the mutex-held
// Submit/SubmitBatch paths, but never with Drain: the caller must fence
// lane submissions against drain (internal/serve does it with an
// RWMutex — lanes share the read side, Drain takes the write side),
// because Drain closes the shard channels a lane submits into.
type Lane struct {
	e    *Engine
	next int
}

// Lane returns a submitter whose round-robin starts at shard
// i mod NumShards — give each transport connection its own index so
// concurrent connections fan out across different shards from the
// first batch.
func (e *Engine) Lane(i int) *Lane {
	if i < 0 {
		i = -i
	}
	return &Lane{e: e, next: i % len(e.shards)}
}

// SubmitBatch is Engine.SubmitBatch on this lane's private cursor. The
// batch's shape must already be valid (Batch.Validate); ownership
// passes to the engine whatever the outcome.
func (l *Lane) SubmitBatch(b *Batch) error {
	e := l.e
	st := State(e.state.Load())
	if st == StateDrained {
		e.ReturnBatch(b)
		return ErrDrained
	}
	n := b.Len()
	if n == 0 {
		e.ReturnBatch(b)
		return nil
	}
	if len(b.Offs) != n+1 || b.Offs[0] != 0 || int(b.Offs[n]) != len(b.Members) {
		e.ReturnBatch(b)
		return fmt.Errorf("engine: malformed batch: %d caps, %d offs over %d members", n, len(b.Offs), len(b.Members))
	}
	if st == StateIdle {
		e.state.Store(int32(StateStreaming))
	}
	b.base = e.metrics.submitted.Add(uint64(n)) - uint64(n)
	if e.tel != nil {
		b.enq = time.Now()
	}
	e.shards[l.next].in <- b
	l.next = (l.next + 1) % len(e.shards)
	return nil
}

// Submit offers one arriving element to the stream. It validates the
// element, bulk-copies it into the current flat batch and, when the batch
// is full, hands it to the next shard — blocking if that shard's queue is
// full (backpressure). The element's Members slice is copied immediately
// and never retained, so callers are free to reuse member buffers between
// calls.
func (e *Engine) Submit(el setsystem.Element) error {
	st := State(e.state.Load())
	if st == StateDrained {
		return ErrDrained
	}
	if err := setsystem.CheckElement(el, e.info.NumSets()); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	e.ingest(el, st)
	return nil
}

// SubmitValidated is Submit for callers that have already validated the
// element with setsystem.CheckElement against this engine's universe —
// batch-ingestion layers that validate a whole batch up front for
// atomicity and must not pay the per-member scan twice. Submitting an
// element that would fail CheckElement is undefined behavior (out-of-
// range members corrupt shard counters or panic).
func (e *Engine) SubmitValidated(el setsystem.Element) error {
	st := State(e.state.Load())
	if st == StateDrained {
		return ErrDrained
	}
	e.ingest(el, st)
	return nil
}

// ingest appends one validated element to the current batch, advancing
// the lifecycle out of idle and flushing full batches.
func (e *Engine) ingest(el setsystem.Element, st State) {
	if st == StateIdle {
		e.state.Store(int32(StateStreaming))
	}
	e.batch.add(el)
	if e.batch.Len() >= e.cfg.BatchSize {
		e.flush()
	}
}

// flush hands the current batch to the next shard round-robin, publishing
// the batch's element count to the submitted counter — one atomic update
// per batch, not per element.
func (e *Engine) flush() {
	n := e.batch.Len()
	if n == 0 {
		return
	}
	e.batch.base = e.metrics.submitted.Add(uint64(n)) - uint64(n)
	if e.tel != nil {
		e.batch.enq = time.Now()
	}
	e.shards[e.next].in <- e.batch
	e.next = (e.next + 1) % len(e.shards)
	e.batch = e.getBatch()
}

// Drain closes the stream: it flushes the partial batch, stops all shard
// workers and merges their bookkeeping into the final Result. The result
// is bit-for-bit identical to core.Run with the policy's serial oracle
// (core.PolicyAlgorithm under the engine's policy and seed): assignment
// counts are exact integer sums, and the completion sweep accumulates
// benefit in ascending SetID order exactly like the serial runner. Drain
// is idempotent; subsequent Submits fail with ErrDrained.
func (e *Engine) Drain() (*core.Result, error) {
	if e.result != nil {
		return e.result, nil
	}
	e.flush()
	for _, s := range e.shards {
		close(s.in)
	}
	e.wg.Wait()

	total := make([]int32, e.info.NumSets())
	for i, c := range e.base {
		total[i] = c
	}
	for _, s := range e.shards {
		for i, c := range s.assigned {
			total[i] += c
		}
	}
	res := &core.Result{Assigned: total}
	for i, w := range e.info.Weights {
		if int(total[i]) == e.info.Sizes[i] {
			res.Completed = append(res.Completed, setsystem.SetID(i))
			res.Benefit += w
		}
	}
	e.result = res
	e.metrics.finish(res)
	e.state.Store(int32(StateDrained))
	return res, nil
}

// State returns the engine's lifecycle position. Safe to call from any
// goroutine at any time.
func (e *Engine) State() State { return State(e.state.Load()) }

// Policy returns the engine's frozen policy state. It is read-only after
// New and safe for concurrent use. Replicas (HTTP handlers answering
// immediate admit/drop verdicts, remote mirrors running the same policy
// and seed) can decide any element with its Decide method and agree
// element-for-element with the engine's shards, with zero coordination
// (Section 3.1, generalized by the policy contract).
func (e *Engine) Policy() core.PolicyState { return e.decider }

// PolicyName returns the resolved registry name of the engine's policy
// ("randpr" for the default), echoed in API responses and metrics.
func (e *Engine) PolicyName() string { return e.policy }

// Metrics returns the engine's live counters. Safe to read concurrently
// with the stream.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// NumShards returns the resolved shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Replay streams a whole instance through a fresh engine and returns the
// final result — the concurrent counterpart of core.Run(inst,
// &core.PolicyAlgorithm{Policy: cfg.Policy, Seed: seed}, nil). Elements
// are copied at Submit, so the instance is never aliased by the engine.
// If a Submit fails mid-stream, the engine is still drained to stop the
// shard workers and the submit and drain errors are joined.
func Replay(inst *setsystem.Instance, seed uint64, cfg Config) (*core.Result, error) {
	pol, err := core.LookupPolicy(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return ReplayWithPolicy(inst, pol, seed, cfg)
}

// ReplayWithPolicy is Replay with a directly injected Policy value (see
// NewWithPolicy).
func ReplayWithPolicy(inst *setsystem.Instance, pol core.Policy, seed uint64, cfg Config) (*core.Result, error) {
	e, err := NewWithPolicy(core.InfoOf(inst), pol, seed, cfg)
	if err != nil {
		return nil, err
	}
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			_, derr := e.Drain() // stop the shard workers before bailing out
			return nil, errors.Join(err, derr)
		}
	}
	return e.Drain()
}
