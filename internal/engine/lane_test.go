package engine

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// TestLaneSubmitMatchesSerial is the correctness anchor of striped
// multi-connection ingest: several lanes submitting concurrently — each
// its own stripe of the element stream, in its own goroutine — drain to
// a result bit-for-bit identical to the serial oracle. Decisions depend
// only on the element and the frozen instance state, and assignment
// counts are commutative sums, so any cross-lane interleaving is
// equivalent. Run under -race this also pins the lane concurrency
// contract: no shared submitter state between lanes.
func TestLaneSubmitMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst, err := workload.Uniform(workload.UniformConfig{M: 150, N: 8000, Load: 7, MinLoad: 2, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 17
	want := serial(t, inst, seed)

	for _, lanes := range []int{1, 2, 4} {
		for _, shards := range []int{1, 3} {
			e, err := New(core.InfoOf(inst), seed, Config{Shards: shards, BatchSize: 64, QueueDepth: 2})
			if err != nil {
				t.Fatal(err)
			}
			// Pre-chunk the stream into batches, then stripe batch k to
			// lane k%lanes — the exact shape of a striped stream client.
			const batchN = 97
			var chunks [][]setsystem.Element
			for off := 0; off < len(inst.Elements); off += batchN {
				chunks = append(chunks, inst.Elements[off:min(off+batchN, len(inst.Elements))])
			}
			var wg sync.WaitGroup
			for li := 0; li < lanes; li++ {
				wg.Add(1)
				go func(li int) {
					defer wg.Done()
					lane := e.Lane(li)
					for k := li; k < len(chunks); k += lanes {
						b := e.BorrowBatch()
						fillBatch(b, chunks[k])
						if err := lane.SubmitBatch(b); err != nil {
							t.Error(err)
							return
						}
					}
				}(li)
			}
			wg.Wait()
			got, err := e.Drain()
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, got, want, "lane-striped stream")
			if snap := e.Metrics().Snapshot(); snap.Processed != uint64(len(inst.Elements)) {
				t.Errorf("lanes=%d shards=%d: processed %d of %d elements", lanes, shards, snap.Processed, len(inst.Elements))
			}
		}
	}
}

// TestLaneAfterDrain pins the lifecycle edge for lanes: a submission
// after Drain is refused with ErrDrained and the batch recycled, same
// as SubmitBatch.
func TestLaneAfterDrain(t *testing.T) {
	info := core.Info{Weights: []float64{1, 1}, Sizes: []int{1, 1}}
	e, err := New(info, 1, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	lane := e.Lane(0)
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	b := e.BorrowBatch()
	fillBatch(b, []setsystem.Element{{Members: []setsystem.SetID{0}, Capacity: 1}})
	if err := lane.SubmitBatch(b); err != ErrDrained {
		t.Fatalf("lane submit after Drain: err = %v, want ErrDrained", err)
	}
}

// TestAliasedBatchNotRecycled pins the ownership rule zero-copy ingest
// depends on: a batch marked Aliased passes through the shard, fires its
// Done callback, and is detached — slices nilled, flag cleared — but the
// struct never enters the engine's free list, because its backing memory
// belongs to a transport slot that will overwrite it.
func TestAliasedBatchNotRecycled(t *testing.T) {
	info := core.Info{Weights: []float64{1, 1, 1}, Sizes: []int{2, 2, 2}}
	e, err := New(info, 1, Config{Shards: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()

	done := make(chan []byte, 1)
	b := &Batch{
		Members: []setsystem.SetID{0, 1},
		Offs:    []int32{0, 2},
		Caps:    []int32{1},
		Aliased: true,
		Seq:     5,
		Masks:   make([]byte, 0, 8),
		Done:    func(seq uint32, masks []byte) { done <- masks },
	}
	if err := e.SubmitBatch(b); err != nil {
		t.Fatal(err)
	}
	masks := <-done
	if len(masks) != 1 {
		t.Fatalf("verdict masks: %d bytes for 1 element", len(masks))
	}
	// After Done the transport owns the struct again: fully detached.
	if b.Members != nil || b.Offs != nil || b.Caps != nil {
		t.Errorf("aliased batch still holds storage after processing: %v/%v/%v", b.Members, b.Offs, b.Caps)
	}
	if b.Aliased {
		t.Error("Aliased flag survived Reset")
	}
	// The struct must not have entered the free list: drain the entire
	// recycled population (maxInFlight is bounded by the config) and
	// check for pointer identity.
	for i := 0; i < 16; i++ {
		if e.BorrowBatch() == b {
			t.Fatal("aliased batch was free-listed")
		}
	}
}

// TestAliasedReturnBatchDetaches covers the error path: ReturnBatch on
// an aliased batch detaches without free-listing.
func TestAliasedReturnBatchDetaches(t *testing.T) {
	info := core.Info{Weights: []float64{1}, Sizes: []int{1}}
	e, err := New(info, 1, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()
	b := &Batch{
		Members: []setsystem.SetID{0},
		Offs:    []int32{0, 1},
		Caps:    []int32{1},
		Aliased: true,
	}
	e.ReturnBatch(b)
	if b.Members != nil || b.Offs != nil || b.Caps != nil || b.Aliased {
		t.Errorf("ReturnBatch left aliased batch attached: %+v", b)
	}
	for i := 0; i < 16; i++ {
		if e.BorrowBatch() == b {
			t.Fatal("aliased batch was free-listed by ReturnBatch")
		}
	}
}
