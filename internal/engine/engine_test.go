package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// serial runs the reference algorithm: core.Run with HashRandPr under the
// same seed, the result the engine must reproduce bit for bit.
func serial(t *testing.T, inst *setsystem.Instance, seed uint64) *core.Result {
	t.Helper()
	res, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkEquivalent asserts the engine result matches the serial reference
// exactly: completed sets, float benefit bits and assignment counts.
func checkEquivalent(t *testing.T, got, want *core.Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Completed, want.Completed) {
		t.Errorf("%s: completed sets differ:\nengine %v\nserial %v", label, got.Completed, want.Completed)
	}
	if got.Benefit != want.Benefit {
		t.Errorf("%s: benefit %v != serial %v", label, got.Benefit, want.Benefit)
	}
	if !reflect.DeepEqual(got.Assigned, want.Assigned) {
		t.Errorf("%s: assignment counts differ", label)
	}
}

// The headline property: across random workloads, shard counts, batch
// sizes and seeds, the sharded engine is indistinguishable from a serial
// HashRandPr run.
func TestEngineMatchesSerialProperty(t *testing.T) {
	shardCounts := []int{1, 2, 3, 4, 8}
	batchSizes := []int{1, 3, 64}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		cfg := workload.UniformConfig{
			M:        10 + rng.Intn(90),
			N:        50 + rng.Intn(450),
			Load:     1 + rng.Intn(6),
			Capacity: 1 + rng.Intn(3),
			WeightFn: func(i int) float64 { return 1 + float64(i%7) },
		}
		inst, err := workload.Uniform(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		seed := uint64(trial * 7777)
		want := serial(t, inst, seed)
		shards := shardCounts[trial%len(shardCounts)]
		batch := batchSizes[trial%len(batchSizes)]
		got, err := Replay(inst, seed, Config{Shards: shards, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		checkEquivalent(t, got, want, "uniform trial")
	}
}

// Same equivalence on the structured workloads ospserve serves.
func TestEngineMatchesSerialOnScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	video, err := workload.Video(workload.VideoConfig{Streams: 12, FramesPerStream: 10, Jitter: 3, LinkCapacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	multihop, err := workload.Multihop(workload.MultihopConfig{Hops: 6, Packets: 120, Horizon: 15}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := workload.Bursty(workload.BurstyConfig{Streams: 10, Frames: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		inst *setsystem.Instance
	}{
		{"video", video.Inst},
		{"multihop", multihop.Inst},
		{"bursty", bursty.Inst},
	} {
		for _, shards := range []int{1, 4} {
			want := serial(t, tc.inst, 42)
			got, err := Replay(tc.inst, 42, Config{Shards: shards, BatchSize: 16})
			if err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, got, want, tc.name)
		}
	}
}

// PolyFamily hashers drive the engine just as well as Mixer.
func TestEngineWithPolyFamilyHasher(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst, err := workload.Uniform(workload.UniformConfig{M: 40, N: 200, Load: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := hashpr.NewPolyFamily(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(inst, &core.HashRandPr{Hasher: pf}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReplayWithPolicy(inst, core.RandPrPolicy{Hasher: pf}, 0, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, got, want, "polyfamily")
}

func TestSubmitDrainLifecycle(t *testing.T) {
	info := core.Info{Weights: []float64{2, 3}, Sizes: []int{1, 2}}
	e, err := New(info, 1, Config{Shards: 2, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	elems := []setsystem.Element{
		{Members: []setsystem.SetID{0, 1}, Capacity: 2},
		{Members: []setsystem.SetID{1}, Capacity: 1},
	}
	for _, el := range elems {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 2 admits both parents of the first element; both sets
	// complete.
	if res.Benefit != 5 {
		t.Errorf("benefit = %v, want 5", res.Benefit)
	}
	// Drain is idempotent.
	res2, err := e.Drain()
	if err != nil || res2 != res {
		t.Errorf("second Drain = (%v, %v), want cached result", res2, err)
	}
	// Submit after Drain fails.
	if err := e.Submit(elems[0]); err != ErrDrained {
		t.Errorf("Submit after Drain = %v, want ErrDrained", err)
	}
}

// TestLifecycleStates pins the idle → streaming → drained progression the
// service layer's pool listings and metrics labels rely on: rejected
// submits do not leave idle, the first accepted submit enters streaming,
// and Drain is terminal.
func TestLifecycleStates(t *testing.T) {
	info := core.Info{Weights: []float64{2, 3}, Sizes: []int{1, 2}}
	e, err := New(info, 1, Config{Shards: 2, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.State(); got != StateIdle {
		t.Errorf("fresh engine state = %v, want idle", got)
	}
	if err := e.Submit(setsystem.Element{Members: nil, Capacity: 1}); err == nil {
		t.Fatal("invalid element accepted")
	}
	if got := e.State(); got != StateIdle {
		t.Errorf("state after rejected submit = %v, want idle", got)
	}
	if err := e.Submit(setsystem.Element{Members: []setsystem.SetID{0}, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if got := e.State(); got != StateStreaming {
		t.Errorf("state after submit = %v, want streaming", got)
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := e.State(); got != StateDrained {
		t.Errorf("state after drain = %v, want drained", got)
	}
	for st, want := range map[State]string{StateIdle: "idle", StateStreaming: "streaming", StateDrained: "drained", State(9): "state(9)"} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

// TestPolicyStateSharedWithSerial pins the Policy accessor: deciding an
// element with the engine's frozen policy state reproduces the serial
// replica's decision (core.SelectTopPriority over independently derived
// priorities), which is what the HTTP layer's immediate verdicts depend
// on.
func TestPolicyStateSharedWithSerial(t *testing.T) {
	info := core.Info{Weights: []float64{1, 2, 3}, Sizes: []int{1, 1, 1}}
	e, err := New(info, 7, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()
	if got := e.PolicyName(); got != core.DefaultPolicy {
		t.Errorf("PolicyName() = %q, want %q", got, core.DefaultPolicy)
	}
	prio := core.HashPriorities(info, hashpr.Mixer{Seed: 7}, nil)
	members := []setsystem.SetID{0, 1, 2}
	want := core.SelectTopPriority(members, 2, prio, nil)
	got := e.Policy().Decide(members, 2, nil)
	if len(got) != len(want) {
		t.Fatalf("Decide chose %v, serial replica chose %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Decide chose %v, serial replica chose %v", got, want)
			break
		}
	}
}

// TestSubmitValidatedMatchesSubmit pins the pre-validated fast path: a
// stream fed through SubmitValidated produces the same result as Submit,
// honors the lifecycle, and still refuses a drained stream.
func TestSubmitValidatedMatchesSubmit(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	inst, err := workload.Uniform(workload.UniformConfig{M: 30, N: 1500, Load: 4, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := serial(t, inst, 13)

	e, err := New(core.InfoOf(inst), 13, Config{Shards: 3, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := e.SubmitValidated(el); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.State(); got != StateStreaming {
		t.Errorf("state mid-stream = %v, want streaming", got)
	}
	got, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, got, want, "SubmitValidated")
	if err := e.SubmitValidated(inst.Elements[0]); err != ErrDrained {
		t.Errorf("SubmitValidated after Drain = %v, want ErrDrained", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	info := core.Info{Weights: []float64{1, 1}, Sizes: []int{1, 1}}
	e, err := New(info, 0, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()
	bad := []setsystem.Element{
		{Members: nil, Capacity: 1},                      // no members
		{Members: []setsystem.SetID{0}, Capacity: 0},     // bad capacity
		{Members: []setsystem.SetID{2}, Capacity: 1},     // out of range
		{Members: []setsystem.SetID{1, 0}, Capacity: 1},  // unsorted
		{Members: []setsystem.SetID{0, 0}, Capacity: 1},  // duplicate
		{Members: []setsystem.SetID{-1, 0}, Capacity: 1}, // negative
	}
	for i, el := range bad {
		if err := e.Submit(el); err == nil {
			t.Errorf("bad element %d accepted", i)
		}
	}
}

func TestNewRejectsNilPolicy(t *testing.T) {
	if _, err := NewWithPolicy(core.Info{}, nil, 0, Config{}); err != ErrNilPolicy {
		t.Errorf("NewWithPolicy(nil policy) = %v, want ErrNilPolicy", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	e, err := New(core.Info{Weights: []float64{1}, Sizes: []int{1}}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Drain()
	if e.NumShards() < 1 {
		t.Errorf("default shards = %d", e.NumShards())
	}
	if e.cfg.BatchSize != 64 || e.cfg.QueueDepth != 8 {
		t.Errorf("defaults not applied: %+v", e.cfg)
	}
}

// Backpressure: with tiny queues and a slow drain the submitter must not
// lose elements — every submitted element is processed by Drain time.
func TestBackpressureLosesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst, err := workload.Uniform(workload.UniformConfig{M: 30, N: 5000, Load: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.InfoOf(inst), 3, Config{Shards: 2, BatchSize: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	snap := e.Metrics().Snapshot()
	if snap.Submitted != uint64(len(inst.Elements)) || snap.Processed != snap.Submitted {
		t.Errorf("submitted=%d processed=%d, want both %d", snap.Submitted, snap.Processed, len(inst.Elements))
	}
}

func TestMetricsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst, err := workload.Uniform(workload.UniformConfig{M: 20, N: 400, Load: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.InfoOf(inst), 9, Config{Shards: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var totalMembers uint64
	for _, el := range inst.Elements {
		totalMembers += uint64(len(el.Members))
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Drain()
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Metrics().Snapshot()
	if snap.Assigned+snap.Dropped != totalMembers {
		t.Errorf("assigned %d + dropped %d != offered memberships %d", snap.Assigned, snap.Dropped, totalMembers)
	}
	if snap.CompletedWeight != res.Benefit || snap.CompletedSets != len(res.Completed) {
		t.Errorf("snapshot completion (%d, %v) != result (%d, %v)",
			snap.CompletedSets, snap.CompletedWeight, len(res.Completed), res.Benefit)
	}
	if snap.Elapsed <= 0 || snap.ElementsPerSec <= 0 {
		t.Errorf("rates not populated: %+v", snap)
	}
	if snap.String() == "" {
		t.Error("empty String()")
	}
	// Elapsed freezes after Drain.
	if again := e.Metrics().Snapshot(); again.Elapsed != snap.Elapsed {
		t.Errorf("Elapsed moved after Drain: %v then %v", snap.Elapsed, again.Elapsed)
	}
}

// Concurrent metric reads while the stream is hot — meaningful under
// -race.
func TestConcurrentMetricsReads(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst, err := workload.Uniform(workload.UniformConfig{M: 50, N: 20_000, Load: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(core.InfoOf(inst), 17, Config{Shards: 4, BatchSize: 16, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				e.Metrics().Snapshot()
			}
		}
	}()
	want := serial(t, inst, 17)
	for _, el := range inst.Elements {
		if err := e.Submit(el); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.Drain()
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, got, want, "concurrent reads")
}
