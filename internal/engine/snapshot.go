package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// Checkpoint/restore: because every policy is pure in (Info, seed), the
// only run-state an engine accumulates is integer per-set assigned
// counts plus the stream counters. Checkpoint quiesces in-flight
// batches and reads them; NewFromCheckpoint rebuilds the frozen policy
// state from scratch and resumes counting from that baseline. The
// restored engine's eventual Drain is bit-for-bit identical to the
// uninterrupted engine's — counts are exact integer sums that commute
// across the crash boundary, and the completion sweep is deterministic.

// Checkpoint is an engine's full recoverable run state at a quiesced
// moment, ready to be framed by wire.AppendSnapshot and later handed to
// NewFromCheckpoint.
type Checkpoint struct {
	// Submitted, Processed, Batches, AssignedTotal, Dropped mirror the
	// stream counters. Submitted == Processed always: the checkpoint
	// waits out the in-flight backlog before reading.
	Submitted, Processed, Batches, AssignedTotal, Dropped uint64
	// Assigned is the per-set assigned count, summed across shards (and
	// any prior restore baseline).
	Assigned []int32
	// Final marks a drained engine; restoring one re-derives its
	// terminal Result instead of reopening the stream.
	Final bool
}

// Checkpoint quiesces the engine and captures its recoverable state.
// It flushes the partial ingestion batch, waits (bounded by ctx) until
// the shards have decided every submitted element, then sums the
// shard-local counters. The engine keeps streaming afterwards — a
// checkpoint is a read, not a drain.
//
// Like Submit and Drain, Checkpoint must be called from the (fenced)
// submitter side: no Submit/SubmitBatch/Lane submission may run
// concurrently, or the quiesce point is meaningless. Reading the
// shard-local counts without locks is safe because each shard publishes
// its batch's counts to the processed counter with an atomic add AFTER
// writing them — the processed.Load that observes the final batch
// orders those writes before the reads here.
func (e *Engine) Checkpoint(ctx context.Context) (*Checkpoint, error) {
	if State(e.state.Load()) == StateDrained {
		// A drained engine's state is its final result — already merged,
		// swept and pinned. Report it as a terminal checkpoint.
		m := e.Metrics().Snapshot()
		cp := &Checkpoint{
			Submitted:     m.Submitted,
			Processed:     m.Processed,
			Batches:       m.Batches,
			AssignedTotal: m.Assigned,
			Dropped:       m.Dropped,
			Assigned:      make([]int32, len(e.result.Assigned)),
			Final:         true,
		}
		copy(cp.Assigned, e.result.Assigned)
		return cp, nil
	}
	e.flush()
	target := e.metrics.submitted.Load()
	for e.metrics.processed.Load() != target {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("engine: checkpoint quiesce: %w", ctx.Err())
		case <-time.After(50 * time.Microsecond):
		}
	}
	cp := &Checkpoint{
		Submitted:     target,
		Processed:     target,
		Batches:       e.metrics.batches.Load(),
		AssignedTotal: e.metrics.assigned.Load(),
		Dropped:       e.metrics.dropped.Load(),
		Assigned:      make([]int32, e.info.NumSets()),
	}
	copy(cp.Assigned, e.base)
	for _, s := range e.shards {
		for i, c := range s.assigned {
			cp.Assigned[i] += c
		}
	}
	return cp, nil
}

// NewFromCheckpoint builds an engine that resumes from a checkpoint:
// the policy's frozen decision state is rebuilt from (info, cfg.Policy,
// seed) — pure, so identical to the crashed engine's — and the
// checkpointed per-set counts become the baseline Drain merges under
// the new shards' counts. The stream counters resume from their
// checkpointed values so rates and totals survive the restart.
//
// The restored engine starts in StateStreaming when the checkpoint had
// submitted elements (the stream is mid-flight by definition), StateIdle
// otherwise. Restoring a Final checkpoint yields a streaming engine
// too — callers that want the terminal state back simply Drain it
// immediately; the drain merges the baseline and reproduces the exact
// Result the crashed engine reported.
func NewFromCheckpoint(info core.Info, seed uint64, cfg Config, cp *Checkpoint) (*Engine, error) {
	if len(cp.Assigned) != info.NumSets() {
		return nil, fmt.Errorf("engine: checkpoint covers %d sets, info declares %d", len(cp.Assigned), info.NumSets())
	}
	if cp.Submitted != cp.Processed {
		return nil, fmt.Errorf("engine: checkpoint not quiesced: submitted %d, processed %d", cp.Submitted, cp.Processed)
	}
	e, err := New(info, seed, cfg)
	if err != nil {
		return nil, err
	}
	e.base = make([]int32, len(cp.Assigned))
	copy(e.base, cp.Assigned)
	e.metrics.submitted.Store(cp.Submitted)
	e.metrics.processed.Store(cp.Processed)
	e.metrics.batches.Store(cp.Batches)
	e.metrics.assigned.Store(cp.AssignedTotal)
	e.metrics.dropped.Store(cp.Dropped)
	if cp.Submitted > 0 {
		e.state.Store(int32(StateStreaming))
	}
	return e, nil
}

// Config returns the engine's resolved configuration — what a snapshot
// must record so a restore rebuilds identical sizing.
func (e *Engine) Config() Config { return e.cfg }

// Info returns the engine's up-front information (per-set weights and
// sizes). The slices are read-only after New; do not mutate.
func (e *Engine) Info() core.Info { return e.info }
