package engine

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Metrics is the engine's live instrumentation: lock-free counters updated
// once per batch on both sides of the channel — the submit side publishes
// submitted counts when a batch is flushed to a shard, the shard side
// publishes processed/assigned/dropped after deciding a batch. No counter
// is touched per element. Read a consistent-enough view with Snapshot at
// any time during or after the stream.
type Metrics struct {
	startedAt time.Time

	submitted atomic.Uint64 // elements flushed to shards (published per batch)
	processed atomic.Uint64 // elements decided by shard workers
	batches   atomic.Uint64 // batches handed to shards
	assigned  atomic.Uint64 // element→set assignments made
	dropped   atomic.Uint64 // memberships denied (packets dropped)

	completedSets   atomic.Int64  // set at Drain
	completedWeight atomic.Uint64 // float64 bits, set at Drain
	elapsedNanos    atomic.Int64  // pinned at Drain, 0 while streaming
}

func (m *Metrics) start() { m.startedAt = time.Now() }

// observeBatch publishes one processed batch's counters.
func (m *Metrics) observeBatch(elements, assigned, dropped uint64) {
	m.processed.Add(elements)
	m.batches.Add(1)
	m.assigned.Add(assigned)
	m.dropped.Add(dropped)
}

// finish records the drain-time completion totals and pins the stream's
// elapsed time, so post-drain snapshots (and the metrics series derived
// from them — osp_engine_elapsed_seconds, elements_per_second) are
// stable instead of drifting with the wall clock on every scrape.
func (m *Metrics) finish(res *core.Result) {
	m.completedSets.Store(int64(len(res.Completed)))
	m.completedWeight.Store(math.Float64bits(res.Benefit))
	if d := int64(time.Since(m.startedAt)); d > 0 {
		m.elapsedNanos.Store(d)
	} else {
		m.elapsedNanos.Store(1) // clamp: pinned means nonzero
	}
}

// Snapshot is a point-in-time copy of the counters with derived rates.
type Snapshot struct {
	// Submitted counts elements flushed to shards (published once per
	// batch, so elements still buffering in a partial batch are not yet
	// visible); Processed counts elements already decided by a shard.
	// Submitted−Processed is the queued-batch backlog.
	Submitted, Processed uint64
	// Batches is the number of batches handed to shards.
	Batches uint64
	// Assigned is the total element→set assignments made; Dropped is the
	// memberships denied — in the router reading, packets dropped.
	Assigned, Dropped uint64
	// CompletedSets and CompletedWeight are the drain-time completion
	// totals (zero while the stream is open).
	CompletedSets   int
	CompletedWeight float64
	// Elapsed is time since New, frozen at Drain.
	Elapsed time.Duration
	// ElementsPerSec is Processed/Elapsed.
	ElementsPerSec float64
}

// Snapshot reads the counters. Safe to call concurrently with the stream;
// the counters are individually atomic (a snapshot mid-batch may be
// momentarily out of sync across fields by one batch).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Submitted:       m.submitted.Load(),
		Processed:       m.processed.Load(),
		Batches:         m.batches.Load(),
		Assigned:        m.assigned.Load(),
		Dropped:         m.dropped.Load(),
		CompletedSets:   int(m.completedSets.Load()),
		CompletedWeight: math.Float64frombits(m.completedWeight.Load()),
	}
	if d := m.elapsedNanos.Load(); d != 0 {
		s.Elapsed = time.Duration(d)
	} else {
		s.Elapsed = time.Since(m.startedAt)
	}
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.ElementsPerSec = float64(s.Processed) / secs
	}
	return s
}

// String formats the snapshot as a one-line report.
func (s Snapshot) String() string {
	return fmt.Sprintf("elements=%d rate=%.0f/s assigned=%d dropped=%d completed=%d weight=%.1f",
		s.Processed, s.ElementsPerSec, s.Assigned, s.Dropped, s.CompletedSets, s.CompletedWeight)
}
