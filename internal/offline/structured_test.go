package offline

import (
	"math/rand"
	"testing"

	"repro/internal/lowerbound"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// Exact OPT on the Lemma 9 distribution must be at least the planted ℓ³
// certificate (and equals it for ℓ=2, where every non-planted set
// intersects the planting or another survivor heavily).
func TestExactDominatesLemma9Certificate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	li, err := lowerbound.NewLemma9(2, rng)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Exact(li.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight < 8 {
		t.Errorf("exact OPT %v < planted ℓ³ = 8", sol.Weight)
	}
	if err := Verify(li.Inst, sol); err != nil {
		t.Fatal(err)
	}
}

// Exact OPT on grid instances must be at least t (a full column).
func TestExactDominatesGridCertificate(t *testing.T) {
	for _, tt := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(tt)))
		gi, err := lowerbound.NewGrid(tt, rng)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Exact(gi.Inst)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Weight < float64(tt) {
			t.Errorf("t=%d: exact OPT %v < t", tt, sol.Weight)
		}
	}
}

// On planted instances the exact optimum is at least the planted weight,
// and greedy gets at least planted/k on unweighted instances (the
// folklore k-approximation).
func TestPlantedCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pi, err := workload.Planted(workload.PlantedConfig{Planted: 6, K: 3, Noise: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Exact(pi.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight < pi.PlantedWeight {
		t.Errorf("exact %v < planted %v", sol.Weight, pi.PlantedWeight)
	}
	g := Greedy(pi.Inst)
	if g.Weight*3 < sol.Weight-1e-9 {
		t.Errorf("greedy %v below the k-approximation of OPT %v", g.Weight, sol.Weight)
	}
}

// The LP bound on biregular unweighted instances equals n·(capacity)/k
// when the fractional optimum saturates every element — at minimum it is
// m/σ · something sane; here we just require LP ≥ IP and LP ≤ total weight.
func TestLPBoundSandwichOnRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := workload.Regular(workload.RegularConfig{M: 12, K: 3, Sigma: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := LPBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lp < ip.Weight-1e-6 {
		t.Errorf("LP %v < IP %v", lp, ip.Weight)
	}
	if lp > inst.TotalWeight()+1e-6 {
		t.Errorf("LP %v > total weight %v", lp, inst.TotalWeight())
	}
}

// Greedy ties are broken deterministically: repeated runs identical.
func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := randomInstance(rng, 10, 14)
	a := Greedy(inst)
	b := Greedy(inst)
	if a.Weight != b.Weight || len(a.Sets) != len(b.Sets) {
		t.Error("greedy not deterministic")
	}
	for i := range a.Sets {
		if a.Sets[i] != b.Sets[i] {
			t.Error("greedy set choice not deterministic")
		}
	}
}

// Exact on an instance with a zero-weight set never includes it.
func TestExactIgnoresZeroWeight(t *testing.T) {
	var b setsystem.Builder
	z := b.AddSet(0)
	s := b.AddSet(1)
	b.AddElement(z)
	b.AddElement(s)
	inst := b.MustBuild()
	sol, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range sol.Sets {
		if x == z {
			t.Error("zero-weight set selected")
		}
	}
	if sol.Weight != 1 {
		t.Errorf("weight %v, want 1", sol.Weight)
	}
}
