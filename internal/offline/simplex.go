package offline

import (
	"errors"
	"fmt"
)

// sparseEntry is one nonzero coefficient of a constraint row.
type sparseEntry struct {
	col int
	val float64
}

// Errors reported by the simplex solver.
var (
	ErrUnbounded  = errors.New("offline: LP is unbounded")
	ErrIterations = errors.New("offline: simplex iteration limit exceeded")
)

const simplexEps = 1e-9

// simplexSparse maximizes c·x subject to Ax ≤ rhs, x ≥ 0, where A is given
// as sparse rows and every rhs entry is non-negative (so the slack basis is
// feasible and no phase-1 is needed — exactly the shape of the set-packing
// relaxation). It returns the optimal x and objective value.
//
// The implementation is a dense-tableau primal simplex with Bland's rule,
// which guarantees termination (no cycling) at the cost of speed; instance
// sizes in this repository are small enough that robustness wins.
func simplexSparse(c []float64, rows [][]sparseEntry, rhs []float64) ([]float64, float64, error) {
	nVars := len(c)
	nCons := len(rows)
	for i, b := range rhs {
		if b < 0 {
			return nil, 0, fmt.Errorf("offline: rhs[%d] = %v negative; slack basis infeasible", i, b)
		}
	}

	// Tableau layout: columns 0..nVars-1 original variables, then nCons
	// slack columns, then the RHS column.
	width := nVars + nCons + 1
	tab := make([][]float64, nCons+1)
	for i := range tab {
		tab[i] = make([]float64, width)
	}
	for i, row := range rows {
		for _, e := range row {
			if e.col < 0 || e.col >= nVars {
				return nil, 0, fmt.Errorf("offline: constraint %d references variable %d (nVars=%d)", i, e.col, nVars)
			}
			tab[i][e.col] += e.val
		}
		tab[i][nVars+i] = 1
		tab[i][width-1] = rhs[i]
	}
	obj := tab[nCons]
	for j, cj := range c {
		obj[j] = -cj
	}

	// basis[i] is the variable basic in row i; initially the slacks.
	basis := make([]int, nCons)
	for i := range basis {
		basis[i] = nVars + i
	}

	maxIters := 50 * (nVars + nCons + 10)
	for iter := 0; iter < maxIters; iter++ {
		// Bland's rule: entering variable = smallest index with negative
		// reduced cost.
		enter := -1
		for j := 0; j < nVars+nCons; j++ {
			if obj[j] < -simplexEps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return extract(tab, basis, nVars, nCons), obj[width-1], nil
		}
		// Ratio test; Bland tie-break on smallest basis variable.
		leave := -1
		bestRatio := 0.0
		for i := 0; i < nCons; i++ {
			a := tab[i][enter]
			if a <= simplexEps {
				continue
			}
			ratio := tab[i][width-1] / a
			if leave == -1 || ratio < bestRatio-simplexEps ||
				(ratio < bestRatio+simplexEps && basis[i] < basis[leave]) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave == -1 {
			return nil, 0, ErrUnbounded
		}
		pivot(tab, leave, enter)
		basis[leave] = enter
	}
	return nil, 0, ErrIterations
}

// pivot performs a full Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, row, col int) {
	width := len(tab[row])
	p := tab[row][col]
	for j := 0; j < width; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
}

// extract reads the primal solution out of the final tableau.
func extract(tab [][]float64, basis []int, nVars, nCons int) []float64 {
	x := make([]float64, nVars)
	width := nVars + nCons + 1
	for i, b := range basis {
		if b < nVars {
			x[b] = tab[i][width-1]
		}
	}
	return x
}

// SolveLP maximizes c·x subject to dense constraints Ax ≤ rhs, x ≥ 0 with
// non-negative rhs. It is the exported wrapper used by tests and by any
// caller with a general small LP of this shape.
func SolveLP(c []float64, a [][]float64, rhs []float64) ([]float64, float64, error) {
	rows := make([][]sparseEntry, len(a))
	for i, r := range a {
		if len(r) != len(c) {
			return nil, 0, fmt.Errorf("offline: row %d has %d coefficients, want %d", i, len(r), len(c))
		}
		for j, v := range r {
			if v != 0 {
				rows[i] = append(rows[i], sparseEntry{col: j, val: v})
			}
		}
	}
	if len(rows) != len(rhs) {
		return nil, 0, fmt.Errorf("offline: %d rows, %d rhs entries", len(rows), len(rhs))
	}
	return simplexSparse(c, rows, rhs)
}
