// Package offline computes (or bounds) the offline optimum of set packing
// instances, which the paper's competitive ratios are measured against:
//
//	maximize Σ w_i·x_i  s.t.  Σ_{i: u_j ∈ S_i} x_i ≤ b_j  ∀j,   x ∈ {0,1}^m
//
// (the integer program (1) of Section 2). Three tools are provided:
//
//   - Exact: branch-and-bound integer optimum, for small/medium instances;
//   - Greedy: the classical offline greedy (a k-approximation), used both
//     as a fast OPT lower bound and a B&B warm start;
//   - LPBound: the LP-relaxation optimum via a dense primal simplex, an
//     upper bound on OPT for instances too large to solve exactly.
package offline

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/setsystem"
)

// Solution is a feasible set packing with its total weight.
type Solution struct {
	Sets   []setsystem.SetID
	Weight float64
}

// ErrNodeBudget is returned by Exact when the search exceeds its node
// budget; callers should fall back to LPBound + Greedy.
var ErrNodeBudget = errors.New("offline: branch-and-bound node budget exhausted")

// Options tunes the exact solver.
type Options struct {
	// MaxNodes bounds the number of search nodes; 0 means the default
	// (20 million). Exceeding the budget yields ErrNodeBudget.
	MaxNodes int64
}

const defaultMaxNodes = 20_000_000

// Exact returns an optimal solution using branch-and-bound with default
// options.
func Exact(inst *setsystem.Instance) (*Solution, error) {
	return ExactOpts(inst, Options{})
}

// ExactOpts returns an optimal solution using branch-and-bound.
//
// The search orders sets by weight density (weight per element)
// descending, maintains per-element residual capacities, prunes with
// suffix-weight bounds and warm-starts from the greedy solution.
func ExactOpts(inst *setsystem.Instance, opts Options) (*Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}
	m := inst.NumSets()
	members := inst.MemberMatrix()

	order := densityOrder(inst)

	// suffix[i] = total weight of order[i:], an admissible bound on what
	// the unexplored suffix can still add.
	suffix := make([]float64, m+1)
	for i := m - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + inst.Weights[order[i]]
	}

	residual := make([]int, inst.NumElements())
	for j, e := range inst.Elements {
		residual[j] = e.Capacity
	}

	warm := Greedy(inst)
	best := warm.Weight
	bestSets := append([]setsystem.SetID(nil), warm.Sets...)

	cur := make([]setsystem.SetID, 0, m)
	var nodes int64
	var overBudget bool

	var dfs func(idx int, curWeight float64)
	dfs = func(idx int, curWeight float64) {
		if overBudget {
			return
		}
		nodes++
		if nodes > maxNodes {
			overBudget = true
			return
		}
		if curWeight > best {
			best = curWeight
			bestSets = append(bestSets[:0], cur...)
		}
		if idx == m || curWeight+suffix[idx] <= best {
			return
		}
		s := order[idx]
		// Branch 1: take s if every element has residual capacity.
		feasible := true
		for _, j := range members[s] {
			if residual[j] == 0 {
				feasible = false
				break
			}
		}
		if feasible && inst.Weights[s] > 0 {
			for _, j := range members[s] {
				residual[j]--
			}
			cur = append(cur, s)
			dfs(idx+1, curWeight+inst.Weights[s])
			cur = cur[:len(cur)-1]
			for _, j := range members[s] {
				residual[j]++
			}
		}
		// Branch 2: skip s.
		dfs(idx+1, curWeight)
	}
	dfs(0, 0)

	if overBudget {
		return nil, fmt.Errorf("%w: %d nodes", ErrNodeBudget, nodes)
	}
	sort.Slice(bestSets, func(i, j int) bool { return bestSets[i] < bestSets[j] })
	return &Solution{Sets: bestSets, Weight: best}, nil
}

// Greedy returns the offline greedy packing: consider sets by weight
// density descending and add each set whose elements all still have
// residual capacity. For unit capacities and sets of size at most k this
// is the folklore k-approximation mentioned in the paper's related work.
func Greedy(inst *setsystem.Instance) *Solution {
	members := inst.MemberMatrix()
	order := densityOrder(inst)
	residual := make([]int, inst.NumElements())
	for j, e := range inst.Elements {
		residual[j] = e.Capacity
	}
	sol := &Solution{}
	for _, s := range order {
		if inst.Weights[s] <= 0 {
			continue
		}
		ok := true
		for _, j := range members[s] {
			if residual[j] == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, j := range members[s] {
			residual[j]--
		}
		sol.Sets = append(sol.Sets, s)
		sol.Weight += inst.Weights[s]
	}
	sort.Slice(sol.Sets, func(i, j int) bool { return sol.Sets[i] < sol.Sets[j] })
	return sol
}

// densityOrder returns set indices sorted by weight/size descending, then
// weight descending, then index.
func densityOrder(inst *setsystem.Instance) []setsystem.SetID {
	m := inst.NumSets()
	order := make([]setsystem.SetID, m)
	for i := range order {
		order[i] = setsystem.SetID(i)
	}
	density := func(s setsystem.SetID) float64 {
		if inst.Sizes[s] == 0 {
			return inst.Weights[s]
		}
		return inst.Weights[s] / float64(inst.Sizes[s])
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := density(order[a]), density(order[b])
		if da != db {
			return da > db
		}
		wa, wb := inst.Weights[order[a]], inst.Weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	return order
}

// Verify checks that the solution is a feasible packing of the instance
// and that its recorded weight matches its set list.
func Verify(inst *setsystem.Instance, sol *Solution) error {
	residual := make([]int, inst.NumElements())
	for j, e := range inst.Elements {
		residual[j] = e.Capacity
	}
	members := inst.MemberMatrix()
	var w float64
	seen := make(map[setsystem.SetID]bool, len(sol.Sets))
	for _, s := range sol.Sets {
		if seen[s] {
			return fmt.Errorf("offline: set %d repeated in solution", s)
		}
		seen[s] = true
		if int(s) < 0 || int(s) >= inst.NumSets() {
			return fmt.Errorf("offline: set %d out of range", s)
		}
		for _, j := range members[s] {
			residual[j]--
			if residual[j] < 0 {
				return fmt.Errorf("offline: element %d over capacity", j)
			}
		}
		w += inst.Weights[s]
	}
	if diff := w - sol.Weight; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("offline: recorded weight %v != actual %v", sol.Weight, w)
	}
	return nil
}

// LPBound returns the optimum of the LP relaxation (0 ≤ x ≤ 1), an upper
// bound on the integer optimum.
func LPBound(inst *setsystem.Instance) (float64, error) {
	m := inst.NumSets()
	n := inst.NumElements()
	if m == 0 {
		return 0, nil
	}
	rows := make([][]sparseEntry, 0, n+m)
	rhs := make([]float64, 0, n+m)
	for j, e := range inst.Elements {
		row := make([]sparseEntry, 0, len(e.Members))
		for _, s := range e.Members {
			row = append(row, sparseEntry{col: int(s), val: 1})
		}
		rows = append(rows, row)
		rhs = append(rhs, float64(inst.Elements[j].Capacity))
	}
	for i := 0; i < m; i++ {
		rows = append(rows, []sparseEntry{{col: i, val: 1}})
		rhs = append(rhs, 1)
	}
	_, val, err := simplexSparse(inst.Weights, rows, rhs)
	if err != nil {
		return 0, err
	}
	return val, nil
}

// BestUpperBound returns the tightest cheap upper bound on OPT: the exact
// optimum when the branch-and-bound finishes within the node budget, and
// the LP relaxation value otherwise. The second return reports whether the
// bound is exact.
func BestUpperBound(inst *setsystem.Instance, opts Options) (float64, bool, error) {
	sol, err := ExactOpts(inst, opts)
	if err == nil {
		return sol.Weight, true, nil
	}
	if !errors.Is(err, ErrNodeBudget) {
		return 0, false, err
	}
	lp, lperr := LPBound(inst)
	if lperr != nil {
		return 0, false, lperr
	}
	return lp, false, nil
}
