package offline

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/setsystem"
)

func triangle(t *testing.T, wa, wb, wc float64) *setsystem.Instance {
	t.Helper()
	var b setsystem.Builder
	a := b.AddSet(wa)
	bb := b.AddSet(wb)
	c := b.AddSet(wc)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	return b.MustBuild()
}

func TestExactTriangle(t *testing.T) {
	// Pairwise-intersecting sets: OPT takes exactly the heaviest.
	inst := triangle(t, 1, 2, 3)
	sol, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 3 || len(sol.Sets) != 1 || sol.Sets[0] != 2 {
		t.Errorf("Exact = %+v, want set 2, weight 3", sol)
	}
	if err := Verify(inst, sol); err != nil {
		t.Error(err)
	}
}

func TestExactDisjoint(t *testing.T) {
	var b setsystem.Builder
	for i := 1; i <= 4; i++ {
		s := b.AddSet(float64(i))
		b.AddElement(s)
	}
	inst := b.MustBuild()
	sol, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 10 || len(sol.Sets) != 4 {
		t.Errorf("Exact on disjoint sets = %+v, want all 4", sol)
	}
}

func TestExactCapacityTwo(t *testing.T) {
	// Three singleton sets sharing one element of capacity 2: the two
	// heaviest win.
	var b setsystem.Builder
	s0 := b.AddSet(5)
	s1 := b.AddSet(3)
	s2 := b.AddSet(4)
	b.AddElementCap(2, s0, s1, s2)
	inst := b.MustBuild()
	sol, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 9 {
		t.Errorf("Exact weight = %v, want 9", sol.Weight)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 10, 14)
		sol, err := Exact(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(inst, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(inst)
		if math.Abs(sol.Weight-want) > 1e-9 {
			t.Fatalf("trial %d: Exact = %v, brute force = %v", trial, sol.Weight, want)
		}
	}
}

// bruteForce enumerates all 2^m subsets.
func bruteForce(inst *setsystem.Instance) float64 {
	m := inst.NumSets()
	members := inst.MemberMatrix()
	best := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		residual := make([]int, inst.NumElements())
		for j, e := range inst.Elements {
			residual[j] = e.Capacity
		}
		w := 0.0
		ok := true
	outer:
		for i := 0; i < m; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for _, j := range members[i] {
				residual[j]--
				if residual[j] < 0 {
					ok = false
					break outer
				}
			}
			w += inst.Weights[i]
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func randomInstance(rng *rand.Rand, maxM, maxN int) *setsystem.Instance {
	var b setsystem.Builder
	m := 2 + rng.Intn(maxM-1)
	ids := make([]setsystem.SetID, m)
	for i := range ids {
		ids[i] = b.AddSet(float64(1 + rng.Intn(10)))
	}
	n := 2 + rng.Intn(maxN-1)
	touched := make(map[setsystem.SetID]bool)
	for j := 0; j < n; j++ {
		sigma := 1 + rng.Intn(minInt(m, 4))
		perm := rng.Perm(m)
		mem := make([]setsystem.SetID, 0, sigma)
		for _, p := range perm[:sigma] {
			mem = append(mem, ids[p])
			touched[ids[p]] = true
		}
		b.AddElementCap(1+rng.Intn(2), mem...)
	}
	for _, id := range ids {
		if !touched[id] {
			b.AddElement(id)
		}
	}
	return b.MustBuild()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGreedyFeasibleAndBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(rng, 12, 16)
		g := Greedy(inst)
		if err := Verify(inst, g); err != nil {
			t.Fatalf("trial %d greedy infeasible: %v", trial, err)
		}
		sol, err := Exact(inst)
		if err != nil {
			t.Fatal(err)
		}
		if g.Weight > sol.Weight+1e-9 {
			t.Fatalf("trial %d: greedy %v > exact %v", trial, g.Weight, sol.Weight)
		}
	}
}

func TestNodeBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(rng, 14, 20)
	_, err := ExactOpts(inst, Options{MaxNodes: 3})
	if !errors.Is(err, ErrNodeBudget) {
		t.Errorf("err = %v, want ErrNodeBudget", err)
	}
}

func TestBestUpperBound(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	v, exact, err := BestUpperBound(inst, Options{})
	if err != nil || !exact || v != 3 {
		t.Errorf("BestUpperBound = %v,%v,%v want 3,true,nil", v, exact, err)
	}
	v2, exact2, err := BestUpperBound(inst, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exact2 {
		t.Error("budget 1 should not be exact")
	}
	if v2 < 3-1e-6 {
		t.Errorf("LP fallback %v below integer OPT 3", v2)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	inst := triangle(t, 1, 2, 3)
	if err := Verify(inst, &Solution{Sets: []setsystem.SetID{0, 1}, Weight: 3}); err == nil {
		t.Error("Verify should reject over-capacity packing")
	}
	if err := Verify(inst, &Solution{Sets: []setsystem.SetID{0, 0}, Weight: 2}); err == nil {
		t.Error("Verify should reject repeated set")
	}
	if err := Verify(inst, &Solution{Sets: []setsystem.SetID{0}, Weight: 2}); err == nil {
		t.Error("Verify should reject wrong weight")
	}
	if err := Verify(inst, &Solution{Sets: []setsystem.SetID{9}, Weight: 0}); err == nil {
		t.Error("Verify should reject out-of-range set")
	}
}

func TestLPBoundTriangle(t *testing.T) {
	// LP optimum of the triangle with unit weights is 1.5 (x_i = 1/2).
	inst := triangle(t, 1, 1, 1)
	v, err := LPBound(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.5) > 1e-6 {
		t.Errorf("LPBound = %v, want 1.5", v)
	}
}

func TestLPBoundDominatesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 10, 12)
		sol, err := Exact(inst)
		if err != nil {
			return false
		}
		lp, err := LPBound(inst)
		if err != nil {
			t.Logf("LPBound: %v", err)
			return false
		}
		return lp >= sol.Weight-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLPBoundEmpty(t *testing.T) {
	v, err := LPBound(&setsystem.Instance{})
	if err != nil || v != 0 {
		t.Errorf("LPBound(empty) = %v, %v", v, err)
	}
}

func TestSolveLPKnownOptimum(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt (2,6) value 36.
	x, v, err := SolveLP(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-36) > 1e-6 {
		t.Errorf("value = %v, want 36", v)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-6) > 1e-6 {
		t.Errorf("x = %v, want (2,6)", x)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	_, _, err := SolveLP([]float64{1}, [][]float64{{-1}}, []float64{1})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveLPRejectsNegativeRHS(t *testing.T) {
	_, _, err := SolveLP([]float64{1}, [][]float64{{1}}, []float64{-1})
	if err == nil {
		t.Error("want error for negative rhs")
	}
}

func TestSolveLPShapeErrors(t *testing.T) {
	if _, _, err := SolveLP([]float64{1, 2}, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("want error for row width mismatch")
	}
	if _, _, err := SolveLP([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("want error for rhs length mismatch")
	}
}

func TestSolveLPDegenerate(t *testing.T) {
	// Degenerate LP that cycles under naive pivoting; Bland's rule must
	// terminate. (Classic Beale example, maximization form.)
	c := []float64{0.75, -150, 0.02, -6}
	a := [][]float64{
		{0.25, -60, -1.0 / 25, 9},
		{0.5, -90, -1.0 / 50, 3},
		{0, 0, 1, 0},
	}
	rhs := []float64{0, 0, 1}
	_, v, err := SolveLP(c, a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.05) > 1e-6 {
		t.Errorf("Beale optimum = %v, want 0.05", v)
	}
}
