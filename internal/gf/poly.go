package gf

import "fmt"

// Polynomials over GF(p) are coefficient slices, least significant first.
// These helpers exist to find and apply the irreducible modulus of an
// extension field; they are not a general polynomial library.

// polyDeg returns the degree of the polynomial, or −1 for the zero
// polynomial.
func polyDeg(a []int) int {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != 0 {
			return i
		}
	}
	return -1
}

// polyMod reduces a modulo the monic polynomial mod over GF(p), returning
// a remainder of degree < deg(mod).
func polyMod(a, mod []int, p int) []int {
	r := append([]int(nil), a...)
	dm := polyDeg(mod)
	for {
		dr := polyDeg(r)
		if dr < dm {
			break
		}
		// mod is monic, so subtract r[dr] · x^(dr−dm) · mod.
		c := r[dr]
		shift := dr - dm
		for i := 0; i <= dm; i++ {
			r[i+shift] = ((r[i+shift]-c*mod[i])%p + p*p) % p
		}
	}
	if dr := polyDeg(r); dr < 0 {
		return []int{0}
	}
	return r[:polyDeg(r)+1]
}

// polyIsZero reports whether a is the zero polynomial.
func polyIsZero(a []int) bool { return polyDeg(a) < 0 }

// findIrreducible returns a monic irreducible polynomial of degree m over
// GF(p) by exhaustive search. A monic polynomial of degree m is irreducible
// iff no monic polynomial of degree in [1, m/2] divides it.
func findIrreducible(p, m int) ([]int, error) {
	if m < 2 {
		return nil, fmt.Errorf("gf: findIrreducible needs degree >= 2, got %d", m)
	}
	// Enumerate candidates: coefficients c_0..c_{m-1} ∈ GF(p), leading
	// coefficient fixed to 1.
	total := 1
	for i := 0; i < m; i++ {
		total *= p
	}
	for code := 0; code < total; code++ {
		cand := append(digits(code, p, m), 1) // monic, degree m
		if isIrreducible(cand, p) {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible of degree %d over GF(%d) (internal error)", m, p)
}

// isIrreducible tests divisibility by every monic polynomial of degree
// 1..deg/2.
func isIrreducible(a []int, p int) bool {
	deg := polyDeg(a)
	if deg < 1 {
		return false
	}
	// A polynomial with zero constant term is divisible by x (unless it IS x).
	for d := 1; d <= deg/2; d++ {
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		for code := 0; code < count; code++ {
			div := append(digits(code, p, d), 1) // monic degree d
			if polyIsZero(polyMod(a, div, p)) {
				return false
			}
		}
	}
	return true
}
