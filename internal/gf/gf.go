// Package gf implements arithmetic in finite fields GF(p^m) of small order,
// the algebraic substrate of the paper's (M,N)-gadgets (Section 4.2.1):
// gadget lines are affine functions j = a·i + b over a field of cardinality
// N, and the Lemma 9 construction needs fields of order ℓ and ℓ² for every
// prime power ℓ.
//
// Field elements are represented as integers in [0, p^m), read as base-p
// digit vectors: the integer Σ c_i·p^i stands for the polynomial
// Σ c_i·x^i over GF(p), reduced modulo a monic irreducible polynomial of
// degree m found by exhaustive search. For prime order (m = 1) the
// arithmetic degenerates to ordinary modular arithmetic.
package gf

import (
	"errors"
	"fmt"
)

// ErrNotPrimePower is returned by NewField when the requested order is not
// a prime power (or is < 2).
var ErrNotPrimePower = errors.New("gf: order is not a prime power")

// ErrDivByZero is returned by Inv and Div on a zero divisor.
var ErrDivByZero = errors.New("gf: division by zero")

// maxOrder bounds the supported field size; the gadget constructions use
// tiny fields, and the exhaustive irreducibility search is only sensible
// for small orders.
const maxOrder = 1 << 20

// Field is a finite field GF(p^m). It is immutable and safe for concurrent
// use after construction.
type Field struct {
	p     int   // characteristic
	m     int   // extension degree
	order int   // p^m
	irred []int // monic irreducible of degree m over GF(p); nil when m == 1
	// expTab/logTab are discrete exp/log tables for fast Mul/Inv when the
	// order is small enough; expTab has length 2(order−1) so products of
	// logs index it without a modulo.
	expTab []int
	logTab []int
}

// FactorPrimePower returns (p, m) with q = p^m when q >= 2 is a prime
// power, and ok = false otherwise.
func FactorPrimePower(q int) (p, m int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	p = smallestPrimeFactor(q)
	m = 0
	for q > 1 {
		if q%p != 0 {
			return 0, 0, false
		}
		q /= p
		m++
	}
	return p, m, true
}

func smallestPrimeFactor(q int) int {
	if q%2 == 0 {
		return 2
	}
	for d := 3; d*d <= q; d += 2 {
		if q%d == 0 {
			return d
		}
	}
	return q
}

// NewField constructs GF(order). The order must be a prime power >= 2 (and
// at most 2^20, far beyond what the gadget constructions need).
func NewField(order int) (*Field, error) {
	p, m, ok := FactorPrimePower(order)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotPrimePower, order)
	}
	if order > maxOrder {
		return nil, fmt.Errorf("gf: order %d exceeds supported maximum %d", order, maxOrder)
	}
	f := &Field{p: p, m: m, order: order}
	if m > 1 {
		irr, err := findIrreducible(p, m)
		if err != nil {
			return nil, err
		}
		f.irred = irr
	}
	if err := f.buildTables(); err != nil {
		return nil, err
	}
	return f, nil
}

// Order returns p^m, the number of field elements.
func (f *Field) Order() int { return f.order }

// Char returns the characteristic p.
func (f *Field) Char() int { return f.p }

// Degree returns the extension degree m.
func (f *Field) Degree() int { return f.m }

// valid panics if a is not an element encoding; internal calls guarantee
// range, so this only fires on misuse by callers.
func (f *Field) valid(a int) {
	if a < 0 || a >= f.order {
		panic(fmt.Sprintf("gf: element %d out of range [0,%d)", a, f.order))
	}
}

// Add returns a + b.
func (f *Field) Add(a, b int) int {
	f.valid(a)
	f.valid(b)
	if f.m == 1 {
		s := a + b
		if s >= f.p {
			s -= f.p
		}
		return s
	}
	// Digit-wise addition base p.
	res, mul := 0, 1
	for i := 0; i < f.m; i++ {
		d := a%f.p + b%f.p
		if d >= f.p {
			d -= f.p
		}
		res += d * mul
		mul *= f.p
		a /= f.p
		b /= f.p
	}
	return res
}

// Neg returns −a.
func (f *Field) Neg(a int) int {
	f.valid(a)
	if f.m == 1 {
		if a == 0 {
			return 0
		}
		return f.p - a
	}
	res, mul := 0, 1
	for i := 0; i < f.m; i++ {
		d := a % f.p
		if d != 0 {
			d = f.p - d
		}
		res += d * mul
		mul *= f.p
		a /= f.p
	}
	return res
}

// Sub returns a − b.
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Mul returns a · b.
func (f *Field) Mul(a, b int) int {
	f.valid(a)
	f.valid(b)
	if a == 0 || b == 0 {
		return 0
	}
	return f.expTab[f.logTab[a]+f.logTab[b]]
}

// Inv returns the multiplicative inverse of a, or ErrDivByZero when a = 0.
func (f *Field) Inv(a int) (int, error) {
	f.valid(a)
	if a == 0 {
		return 0, ErrDivByZero
	}
	n := f.order - 1
	return f.expTab[(n-f.logTab[a])%n], nil
}

// Div returns a / b, or ErrDivByZero when b = 0.
func (f *Field) Div(a, b int) (int, error) {
	inv, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, inv), nil
}

// Pow returns a^e for e >= 0 (with a^0 = 1, including 0^0 = 1).
func (f *Field) Pow(a, e int) int {
	f.valid(a)
	if e == 0 {
		return 1 % f.order
	}
	if a == 0 {
		return 0
	}
	n := f.order - 1
	return f.expTab[(f.logTab[a]*(e%n))%n]
}

// mulSlow multiplies via polynomial arithmetic; used to bootstrap the
// exp/log tables.
func (f *Field) mulSlow(a, b int) int {
	if f.m == 1 {
		return a * b % f.p
	}
	da := digits(a, f.p, f.m)
	db := digits(b, f.p, f.m)
	prod := make([]int, 2*f.m-1)
	for i, ca := range da {
		if ca == 0 {
			continue
		}
		for j, cb := range db {
			prod[i+j] = (prod[i+j] + ca*cb) % f.p
		}
	}
	reduced := polyMod(prod, f.irred, f.p)
	return undigits(reduced, f.p)
}

// buildTables finds a generator of the multiplicative group and fills the
// discrete exp/log tables.
func (f *Field) buildTables() error {
	n := f.order - 1
	f.expTab = make([]int, 2*n)
	f.logTab = make([]int, f.order)
	// Try candidate generators until one has full multiplicative order.
	for g := 1; g < f.order; g++ {
		if f.tryGenerator(g) {
			return nil
		}
	}
	return fmt.Errorf("gf: no generator found for order %d (internal error)", f.order)
}

func (f *Field) tryGenerator(g int) bool {
	n := f.order - 1
	seen := make([]bool, f.order)
	x := 1
	for i := 0; i < n; i++ {
		if seen[x] {
			return false // order of g divides i < n
		}
		seen[x] = true
		f.expTab[i] = x
		f.expTab[i+n] = x
		f.logTab[x] = i
		x = f.mulSlow(x, g)
	}
	return x == 1
}

// Elements returns all field elements in encoding order, 0..order−1.
func (f *Field) Elements() []int {
	es := make([]int, f.order)
	for i := range es {
		es[i] = i
	}
	return es
}

// String implements fmt.Stringer.
func (f *Field) String() string {
	if f.m == 1 {
		return fmt.Sprintf("GF(%d)", f.p)
	}
	return fmt.Sprintf("GF(%d^%d)", f.p, f.m)
}

// digits expands a into m base-p digits, least significant first.
func digits(a, p, m int) []int {
	ds := make([]int, m)
	for i := 0; i < m; i++ {
		ds[i] = a % p
		a /= p
	}
	return ds
}

// undigits packs base-p digits back into an integer.
func undigits(ds []int, p int) int {
	res, mul := 0, 1
	for _, d := range ds {
		res += d * mul
		mul *= p
	}
	return res
}
