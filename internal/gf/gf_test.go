package gf

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFactorPrimePower(t *testing.T) {
	cases := []struct {
		q, p, m int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true},
		{8, 2, 3, true}, {9, 3, 2, true}, {25, 5, 2, true},
		{27, 3, 3, true}, {49, 7, 2, true}, {64, 2, 6, true},
		{81, 3, 4, true}, {121, 11, 2, true},
		{1, 0, 0, false}, {0, 0, 0, false}, {6, 0, 0, false},
		{12, 0, 0, false}, {100, 0, 0, false}, {15, 0, 0, false},
	}
	for _, c := range cases {
		p, m, ok := FactorPrimePower(c.q)
		if ok != c.ok || (ok && (p != c.p || m != c.m)) {
			t.Errorf("FactorPrimePower(%d) = (%d,%d,%v), want (%d,%d,%v)",
				c.q, p, m, ok, c.p, c.m, c.ok)
		}
	}
}

func TestNewFieldRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 100} {
		if _, err := NewField(q); !errors.Is(err, ErrNotPrimePower) {
			t.Errorf("NewField(%d) err = %v, want ErrNotPrimePower", q, err)
		}
	}
}

// testOrders are all the field orders the gadget experiments use (ℓ and ℓ²
// for ℓ ∈ {2,3,4,5,7,8,9,11,13,16}) plus a few extras.
var testOrders = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 49, 64, 81, 121, 169, 256}

func fieldAxioms(t *testing.T, f *Field) {
	t.Helper()
	q := f.Order()
	one := 1 % q
	for a := 0; a < q; a++ {
		if got := f.Add(a, 0); got != a {
			t.Fatalf("%v: %d+0 = %d", f, a, got)
		}
		if got := f.Add(a, f.Neg(a)); got != 0 {
			t.Fatalf("%v: %d + (−%d) = %d", f, a, a, got)
		}
		if got := f.Mul(a, one); got != a {
			t.Fatalf("%v: %d·1 = %d", f, a, got)
		}
		if a != 0 {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("%v: Inv(%d): %v", f, a, err)
			}
			if got := f.Mul(a, inv); got != one {
				t.Fatalf("%v: %d·%d = %d, want 1", f, a, inv, got)
			}
		}
	}
	// Commutativity, associativity, distributivity on all triples for small
	// fields, sampled for larger ones.
	step := 1
	if q > 16 {
		step = q / 11
	}
	for a := 0; a < q; a += step {
		for b := 0; b < q; b += step {
			if f.Add(a, b) != f.Add(b, a) {
				t.Fatalf("%v: add not commutative at (%d,%d)", f, a, b)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("%v: mul not commutative at (%d,%d)", f, a, b)
			}
			for c := 0; c < q; c += step {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("%v: add not associative at (%d,%d,%d)", f, a, b, c)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("%v: mul not associative at (%d,%d,%d)", f, a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("%v: not distributive at (%d,%d,%d)", f, a, b, c)
				}
			}
		}
	}
}

func TestFieldAxiomsAllOrders(t *testing.T) {
	for _, q := range testOrders {
		f, err := NewField(q)
		if err != nil {
			t.Fatalf("NewField(%d): %v", q, err)
		}
		if f.Order() != q {
			t.Fatalf("Order = %d, want %d", f.Order(), q)
		}
		fieldAxioms(t, f)
	}
}

func TestInvDivByZero(t *testing.T) {
	f, _ := NewField(9)
	if _, err := f.Inv(0); !errors.Is(err, ErrDivByZero) {
		t.Errorf("Inv(0) err = %v, want ErrDivByZero", err)
	}
	if _, err := f.Div(5, 0); !errors.Is(err, ErrDivByZero) {
		t.Errorf("Div(5,0) err = %v, want ErrDivByZero", err)
	}
}

func TestDiv(t *testing.T) {
	for _, q := range []int{7, 8, 9} {
		f, _ := NewField(q)
		for a := 0; a < q; a++ {
			for b := 1; b < q; b++ {
				d, err := f.Div(a, b)
				if err != nil {
					t.Fatalf("Div(%d,%d): %v", a, b, err)
				}
				if f.Mul(d, b) != a {
					t.Fatalf("GF(%d): (%d/%d)·%d = %d, want %d", q, a, b, b, f.Mul(d, b), a)
				}
			}
		}
	}
}

func TestPow(t *testing.T) {
	f, _ := NewField(5)
	if got := f.Pow(2, 0); got != 1 {
		t.Errorf("2^0 = %d, want 1", got)
	}
	if got := f.Pow(2, 4); got != 1 { // Fermat: a^(q−1)=1
		t.Errorf("2^4 mod 5 = %d, want 1", got)
	}
	if got := f.Pow(0, 3); got != 0 {
		t.Errorf("0^3 = %d, want 0", got)
	}
	if got := f.Pow(3, 2); got != 4 {
		t.Errorf("3^2 mod 5 = %d, want 4", got)
	}
	// Extension field: every nonzero a satisfies a^(q−1) = 1.
	f9, _ := NewField(9)
	for a := 1; a < 9; a++ {
		if got := f9.Pow(a, 8); got != 1 {
			t.Errorf("GF(9): %d^8 = %d, want 1", a, got)
		}
	}
}

// Multiplicative group is cyclic of order q−1: the exp table enumerates
// every nonzero element exactly once.
func TestExpTableBijective(t *testing.T) {
	for _, q := range testOrders {
		f, _ := NewField(q)
		seen := make([]bool, q)
		for i := 0; i < q-1; i++ {
			x := f.expTab[i]
			if x <= 0 || x >= q || seen[x] {
				t.Fatalf("GF(%d): expTab[%d] = %d invalid or repeated", q, i, x)
			}
			seen[x] = true
		}
	}
}

func TestElements(t *testing.T) {
	f, _ := NewField(8)
	es := f.Elements()
	if len(es) != 8 {
		t.Fatalf("Elements len = %d, want 8", len(es))
	}
	for i, e := range es {
		if e != i {
			t.Fatalf("Elements[%d] = %d", i, e)
		}
	}
}

func TestString(t *testing.T) {
	f5, _ := NewField(5)
	if got := f5.String(); got != "GF(5)" {
		t.Errorf("String = %q, want GF(5)", got)
	}
	f9, _ := NewField(9)
	if got := f9.String(); got != "GF(3^2)" {
		t.Errorf("String = %q, want GF(3^2)", got)
	}
}

func TestMulMatchesSlowPath(t *testing.T) {
	for _, q := range []int{9, 16, 27, 64} {
		f, _ := NewField(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if fast, slow := f.Mul(a, b), f.mulSlow(a, b); fast != slow {
					t.Fatalf("GF(%d): Mul(%d,%d) = %d, slow = %d", q, a, b, fast, slow)
				}
			}
		}
	}
}

func TestIrreducibleHasNoRoots(t *testing.T) {
	// Sanity on the modulus: an irreducible of degree ≥ 2 has no roots in
	// the base field.
	for _, q := range []int{4, 8, 9, 25, 27} {
		f, _ := NewField(q)
		p := f.Char()
		for r := 0; r < p; r++ {
			// Evaluate irred at r over GF(p).
			val, pw := 0, 1
			for _, c := range f.irred {
				val = (val + c*pw) % p
				pw = pw * r % p
			}
			if val == 0 {
				t.Errorf("GF(%d): irreducible %v has root %d", q, f.irred, r)
			}
		}
	}
}

func TestPropertyAddSubRoundTrip(t *testing.T) {
	f, _ := NewField(49)
	fn := func(a, b uint16) bool {
		x, y := int(a)%49, int(b)%49
		return f.Sub(f.Add(x, y), y) == x
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMulDivRoundTrip(t *testing.T) {
	f, _ := NewField(81)
	fn := func(a, b uint16) bool {
		x, y := int(a)%81, int(b)%81
		if y == 0 {
			return true
		}
		d, err := f.Div(f.Mul(x, y), y)
		return err == nil && d == x
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestValidPanicsOutOfRange(t *testing.T) {
	f, _ := NewField(5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range element")
		}
	}()
	f.Add(7, 1)
}
