package gf

import "testing"

// GF(4) has a unique structure up to isomorphism. With elements encoded as
// base-2 digit vectors over the irreducible x²+x+1 (the only degree-2
// irreducible over GF(2)), the tables are fully determined:
// 0, 1, α (=2), α+1 (=3) with α² = α+1.
func TestGF4KnownTables(t *testing.T) {
	f, err := NewField(4)
	if err != nil {
		t.Fatal(err)
	}
	addTable := [4][4]int{
		{0, 1, 2, 3},
		{1, 0, 3, 2},
		{2, 3, 0, 1},
		{3, 2, 1, 0},
	}
	mulTable := [4][4]int{
		{0, 0, 0, 0},
		{0, 1, 2, 3},
		{0, 2, 3, 1}, // α·α = α+1, α·(α+1) = α²+α = 1
		{0, 3, 1, 2},
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if got := f.Add(a, b); got != addTable[a][b] {
				t.Errorf("GF(4): %d+%d = %d, want %d", a, b, got, addTable[a][b])
			}
			if got := f.Mul(a, b); got != mulTable[a][b] {
				t.Errorf("GF(4): %d·%d = %d, want %d", a, b, got, mulTable[a][b])
			}
		}
	}
}

// GF(2): the trivial field — addition is XOR, multiplication AND.
func TestGF2(t *testing.T) {
	f, err := NewField(2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if got := f.Add(a, b); got != a^b {
				t.Errorf("GF(2): %d+%d = %d, want %d", a, b, got, a^b)
			}
			if got := f.Mul(a, b); got != a&b {
				t.Errorf("GF(2): %d·%d = %d, want %d", a, b, got, a&b)
			}
		}
	}
}

// Freshman's dream: (a+b)^p = a^p + b^p in characteristic p.
func TestFrobeniusEndomorphism(t *testing.T) {
	for _, q := range []int{9, 25, 27} {
		f, err := NewField(q)
		if err != nil {
			t.Fatal(err)
		}
		p := f.Char()
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				lhs := f.Pow(f.Add(a, b), p)
				rhs := f.Add(f.Pow(a, p), f.Pow(b, p))
				if lhs != rhs {
					t.Fatalf("GF(%d): (%d+%d)^%d = %d, want %d", q, a, b, p, lhs, rhs)
				}
			}
		}
	}
}
