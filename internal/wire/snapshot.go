package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshot frame ("OSPS") — an instance's full recoverable state.
//
// Because every admission policy is pure in (Info, seed), a replica can
// rebuild the policy's frozen decision state from scratch; the only
// run-state an instance accumulates is its per-set assigned counters
// (plain integer sums that commute across shards) and the stream
// counters. A snapshot therefore carries configuration + Info + counts
// — a few dozen bytes plus 16 bytes per set — and restoring it onto a
// fresh engine is bit-for-bit exact: the restored engine's final drain
// equals the uninterrupted serial oracle.
//
// All integers little-endian; strings are uint16-length-prefixed UTF-8:
//
//	offset  size  field
//	0       4     magic "OSPS"
//	4       1     version (1)
//	5       1     flags — bit0: Final (drained; restore as terminal)
//	6       2+len id      — instance identifier
//	...     2+len label   — metrics label ("" allowed)
//	...     2+len policy  — admission policy name ("" = server default)
//	...     8     seed
//	...     4     shards      — resolved engine sizing
//	...     4     batch size
//	...     4     queue depth
//	...     8     submitted   — stream counters at checkpoint; submitted
//	...     8     processed     always equals processed (the checkpoint
//	...     8     batches       quiesces the engine first)
//	...     8     assigned total
//	...     8     dropped
//	...     4     m — number of sets
//	...     8m    weights  — float64 bits
//	...     4m    sizes    — declared set sizes
//	...     4m    assigned — per-set assigned counts (the run state)
//
// A frame's length is fully determined by its header and the three
// length prefixes; any mismatch is rejected before data is touched.

// ContentTypeSnapshot marks an HTTP body as a binary snapshot frame —
// returned by POST /v1/instances/{id}/snapshot and accepted by
// /v1/instances to restore.
const ContentTypeSnapshot = "application/x-osp-snapshot"

// SnapshotVersion is the snapshot frame version this package encodes
// and accepts.
const SnapshotVersion = 1

var magicSnapshot = [4]byte{'O', 'S', 'P', 'S'}

const (
	snapFlagFinal    = 1 << 0
	snapFixedLen     = 4 + 1 + 1 + 8 + 4 + 4 + 4 + 5*8 + 4 // everything but strings and arrays
	snapMaxStringLen = math.MaxUint16
)

// Snapshot is the decoded form of one instance snapshot frame.
type Snapshot struct {
	// ID is the instance identifier the snapshot was taken under; restore
	// reuses it so clients resume against the same URL.
	ID string
	// Label tags the instance's metrics series.
	Label string
	// Policy names the admission policy ("" = server default at restore).
	Policy string
	// Seed is the policy seed — with Info, the whole decision state.
	Seed uint64
	// Shards, BatchSize, QueueDepth are the resolved engine sizing.
	Shards, BatchSize, QueueDepth int
	// Final marks a drained instance: restore re-derives its terminal
	// Result from the counts instead of reopening the stream.
	Final bool
	// Submitted, Processed, Batches, AssignedTotal, Dropped are the
	// stream counters at checkpoint (Submitted == Processed: the
	// checkpoint quiesces in-flight batches first).
	Submitted, Processed, Batches, AssignedTotal, Dropped uint64
	// Weights and Sizes are the instance's up-front information.
	Weights []float64
	Sizes   []int
	// Assigned is the per-set assigned count — the accumulated run state
	// a restored engine resumes from.
	Assigned []int32
}

// SnapshotLen returns the encoded byte length of a snapshot frame.
func SnapshotLen(s *Snapshot) int {
	return snapFixedLen + 2 + len(s.ID) + 2 + len(s.Label) + 2 + len(s.Policy) + 16*len(s.Weights)
}

// AppendSnapshot appends one encoded snapshot frame and returns the
// extended slice. Pre-grow dst with SnapshotLen to avoid growth copies.
// Snapshots with mismatched array lengths or oversized strings are a
// programming error and panic.
func AppendSnapshot(dst []byte, s *Snapshot) []byte {
	m := len(s.Weights)
	if len(s.Sizes) != m || len(s.Assigned) != m {
		panic(fmt.Sprintf("wire: snapshot arrays disagree: %d weights, %d sizes, %d assigned", m, len(s.Sizes), len(s.Assigned)))
	}
	dst = append(dst, magicSnapshot[:]...)
	dst = append(dst, SnapshotVersion)
	var flags byte
	if s.Final {
		flags |= snapFlagFinal
	}
	dst = append(dst, flags)
	dst = appendString(dst, s.ID)
	dst = appendString(dst, s.Label)
	dst = appendString(dst, s.Policy)
	dst = binary.LittleEndian.AppendUint64(dst, s.Seed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Shards))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.BatchSize))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.QueueDepth))
	dst = binary.LittleEndian.AppendUint64(dst, s.Submitted)
	dst = binary.LittleEndian.AppendUint64(dst, s.Processed)
	dst = binary.LittleEndian.AppendUint64(dst, s.Batches)
	dst = binary.LittleEndian.AppendUint64(dst, s.AssignedTotal)
	dst = binary.LittleEndian.AppendUint64(dst, s.Dropped)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m))
	for _, w := range s.Weights {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
	}
	for _, sz := range s.Sizes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(sz))
	}
	for _, a := range s.Assigned {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	if len(s) > snapMaxStringLen {
		panic(fmt.Sprintf("wire: snapshot string %d bytes, max %d", len(s), snapMaxStringLen))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// DecodeSnapshot parses one snapshot frame. The frame is validated
// structurally — magic, version, exact length, counts within range, and
// the restore invariants (Submitted == Processed, per-set assigned
// within [0, size]) — so a decoded snapshot is safe to hand to the
// engine's restore path. Semantic Info validation (positive sizes,
// finite weights) remains with the registration layer, which applies
// the same checks to restores as to fresh registrations.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapFixedLen {
		return nil, fmt.Errorf("%w: %d bytes, snapshot fixed part is %d", ErrFrame, len(data), snapFixedLen)
	}
	if [4]byte(data[:4]) != magicSnapshot {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFrame, data[:4])
	}
	if data[4] != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, this server speaks %d", ErrVersion, data[4], SnapshotVersion)
	}
	s := &Snapshot{Final: data[5]&snapFlagFinal != 0}
	rest := data[6:]
	var err error
	if s.ID, rest, err = takeString(rest, "id"); err != nil {
		return nil, err
	}
	if s.Label, rest, err = takeString(rest, "label"); err != nil {
		return nil, err
	}
	if s.Policy, rest, err = takeString(rest, "policy"); err != nil {
		return nil, err
	}
	if len(rest) < 8+3*4+5*8+4 {
		return nil, fmt.Errorf("%w: snapshot truncated after strings", ErrFrame)
	}
	s.Seed = binary.LittleEndian.Uint64(rest)
	s.Shards = int(int32(binary.LittleEndian.Uint32(rest[8:])))
	s.BatchSize = int(int32(binary.LittleEndian.Uint32(rest[12:])))
	s.QueueDepth = int(int32(binary.LittleEndian.Uint32(rest[16:])))
	s.Submitted = binary.LittleEndian.Uint64(rest[20:])
	s.Processed = binary.LittleEndian.Uint64(rest[28:])
	s.Batches = binary.LittleEndian.Uint64(rest[36:])
	s.AssignedTotal = binary.LittleEndian.Uint64(rest[44:])
	s.Dropped = binary.LittleEndian.Uint64(rest[52:])
	m := binary.LittleEndian.Uint32(rest[60:])
	rest = rest[64:]
	if uint64(m) > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: snapshot set count %d overflows", ErrFrame, m)
	}
	if uint64(len(rest)) != 16*uint64(m) {
		return nil, fmt.Errorf("%w: %d array bytes for %d sets, want %d", ErrFrame, len(rest), m, 16*m)
	}
	if s.Shards < 0 || s.BatchSize < 0 || s.QueueDepth < 0 {
		return nil, fmt.Errorf("%w: negative engine sizing", ErrFrame)
	}
	if s.Submitted != s.Processed {
		return nil, fmt.Errorf("%w: snapshot not quiesced: submitted %d, processed %d", ErrFrame, s.Submitted, s.Processed)
	}
	s.Weights = make([]float64, m)
	s.Sizes = make([]int, m)
	s.Assigned = make([]int32, m)
	for i := uint32(0); i < m; i++ {
		s.Weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	sizesRaw := rest[8*m:]
	assignedRaw := sizesRaw[4*m:]
	for i := uint32(0); i < m; i++ {
		v := binary.LittleEndian.Uint32(sizesRaw[4*i:])
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: set %d size %d overflows int32", ErrFrame, i, v)
		}
		s.Sizes[i] = int(v)
	}
	for i := uint32(0); i < m; i++ {
		v := binary.LittleEndian.Uint32(assignedRaw[4*i:])
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: set %d assigned count %d overflows int32", ErrFrame, i, v)
		}
		if int(v) > s.Sizes[i] {
			return nil, fmt.Errorf("%w: set %d assigned %d of %d elements", ErrFrame, i, v, s.Sizes[i])
		}
		s.Assigned[i] = int32(v)
	}
	return s, nil
}

func takeString(data []byte, field string) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("%w: snapshot truncated in %s length", ErrFrame, field)
	}
	n := int(binary.LittleEndian.Uint16(data))
	if len(data) < 2+n {
		return "", nil, fmt.Errorf("%w: snapshot truncated in %s (%d of %d bytes)", ErrFrame, field, len(data)-2, n)
	}
	return string(data[2 : 2+n]), data[2+n:], nil
}
