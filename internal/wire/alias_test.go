package wire

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/setsystem"
	"repro/internal/workload"
)

// alignedCopy returns a copy of frame positioned so its caps/members
// sections are 4-byte aligned (the reader-side contract BatchAliasShift
// implements), plus a second copy shifted off that alignment.
func alignedCopy(frame []byte) (aligned, misaligned []byte) {
	buf := make([]byte, len(frame)+4)
	shift := BatchAliasShift(buf)
	aligned = buf[shift : shift+len(frame)]
	copy(aligned, frame)
	buf2 := make([]byte, len(frame)+4)
	bad := (BatchAliasShift(buf2) + 1) % 4
	misaligned = buf2[bad : bad+len(frame)]
	copy(misaligned, frame)
	return aligned, misaligned
}

// TestAliasBatchEquivalence pins the zero-copy contract: for any frame
// the copying decoder accepts, AliasBatch over an aligned view of the
// same bytes produces the identical members/offs/caps triple.
func TestAliasBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, err := workload.Uniform(workload.UniformConfig{M: 300, N: 400, Load: 9, MinLoad: 1, Capacity: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, els := range [][]setsystem.Element{
		inst.Elements,
		inst.Elements[:1],
		{{Members: []setsystem.SetID{0}, Capacity: 1}},
	} {
		frame := AppendElements(nil, els)
		wantMembers, wantOffs, wantCaps, derr := DecodeBatch(frame, nil, nil, nil)
		if derr != nil {
			t.Fatal(derr)
		}
		aligned, misaligned := alignedCopy(frame)

		members, offs, caps, ok, err := AliasBatch(aligned, nil)
		if err != nil {
			t.Fatalf("AliasBatch(aligned): %v", err)
		}
		if !ok {
			t.Fatal("AliasBatch refused an aligned little-endian frame")
		}
		if len(members) != len(wantMembers) || len(offs) != len(wantOffs) || len(caps) != len(wantCaps) {
			t.Fatalf("aliased shape %d/%d/%d, want %d/%d/%d",
				len(members), len(offs), len(caps), len(wantMembers), len(wantOffs), len(wantCaps))
		}
		for i := range wantMembers {
			if members[i] != wantMembers[i] {
				t.Fatalf("member %d = %d, want %d", i, members[i], wantMembers[i])
			}
		}
		for i := range wantOffs {
			if offs[i] != wantOffs[i] {
				t.Fatalf("off %d = %d, want %d", i, offs[i], wantOffs[i])
			}
		}
		for i := range wantCaps {
			if caps[i] != wantCaps[i] {
				t.Fatalf("cap %d = %d, want %d", i, caps[i], wantCaps[i])
			}
		}

		// The misaligned view must fall back cleanly, never misdecode.
		if _, _, _, ok, err := AliasBatch(misaligned, nil); err != nil {
			t.Fatalf("AliasBatch(misaligned): %v", err)
		} else if ok {
			t.Fatal("AliasBatch aliased a misaligned frame")
		}
	}
}

// TestAliasBatchAliases proves the decode really is zero-copy: mutating
// the frame bytes after AliasBatch must show through the returned
// slices.
func TestAliasBatchAliases(t *testing.T) {
	els := []setsystem.Element{{Members: []setsystem.SetID{2, 5}, Capacity: 1}}
	frame := AppendElements(nil, els)
	aligned, _ := alignedCopy(frame)
	members, _, caps, ok, err := AliasBatch(aligned, nil)
	if err != nil || !ok {
		t.Fatalf("AliasBatch: ok=%v err=%v", ok, err)
	}
	aligned[batchHeaderLen] = 9 // caps[0] low byte
	if caps[0] != 9 {
		t.Fatalf("caps[0] = %d after mutating the frame, want 9 (not aliased?)", caps[0])
	}
	aligned[len(aligned)-4] = 7 // members[1] low byte
	if members[1] != 7 {
		t.Fatalf("members[1] = %d after mutating the frame, want 7 (not aliased?)", members[1])
	}
}

// TestAliasBatchRejects mirrors DecodeBatch's structural rejection
// matrix on the aliasing path.
func TestAliasBatchRejects(t *testing.T) {
	els := []setsystem.Element{
		{Members: []setsystem.SetID{1, 3}, Capacity: 2},
		{Members: []setsystem.SetID{0}, Capacity: 1},
	}
	frame := AppendElements(nil, els)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated header", func(f []byte) []byte { return f[:8] }, ErrFrame},
		{"bad magic", func(f []byte) []byte { f[0] = 'X'; return f }, ErrFrame},
		{"bad version", func(f []byte) []byte { f[4] = 99; return f }, ErrVersion},
		{"empty batch", func(f []byte) []byte { f[5], f[6], f[7], f[8] = 0, 0, 0, 0; return f }, ErrFrame},
		{"short payload", func(f []byte) []byte { return f[:len(f)-1] }, ErrFrame},
		{"long payload", func(f []byte) []byte { return append(f, 0) }, ErrFrame},
		{"lens overflow declared", func(f []byte) []byte { f[batchHeaderLen+8] = 200; return f }, ErrFrame},
		{"lens under declared", func(f []byte) []byte { f[batchHeaderLen+8] = 0; return f }, ErrFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.mutate(append([]byte(nil), frame...))
			aligned, _ := alignedCopy(f)
			_, _, _, ok, err := AliasBatch(aligned, nil)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if ok {
				t.Fatal("ok = true for a malformed frame")
			}
		})
	}
}

// TestAliasBatchOffsReuse pins storage reuse: a second decode into the
// same offs slice must not grow it.
func TestAliasBatchOffsReuse(t *testing.T) {
	els := []setsystem.Element{
		{Members: []setsystem.SetID{1, 3}, Capacity: 2},
		{Members: []setsystem.SetID{0, 2, 4}, Capacity: 1},
	}
	frame := AppendElements(nil, els)
	aligned, _ := alignedCopy(frame)
	_, offs, _, ok, err := AliasBatch(aligned, nil)
	if err != nil || !ok {
		t.Fatalf("AliasBatch: ok=%v err=%v", ok, err)
	}
	before := cap(offs)
	_, offs2, _, ok, err := AliasBatch(aligned, offs[:0])
	if err != nil || !ok {
		t.Fatalf("AliasBatch (reuse): ok=%v err=%v", ok, err)
	}
	if cap(offs2) != before {
		t.Fatalf("offs grew from %d to %d across reuse", before, cap(offs2))
	}
}
