package wire

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"repro/internal/setsystem"
)

// The zero-copy decode path. A batch frame's caps and members sections
// are arrays of little-endian uint32 values, and setsystem.SetID is an
// int32 — so on a little-endian platform, when the payload sits in
// memory such that those sections start on 4-byte boundaries, "decoding"
// them is a reinterpreting cast, not a copy. Only the offs array (prefix
// sums of the lens section) must actually be computed, and that single
// O(n) pass doubles as the lens validation every decode needs anyway.
//
// The alignment precondition is under the reader's control: the caps
// section starts batchHeaderLen (13) bytes into the payload, so a reader
// that positions the payload start at address ≡ 3 (mod 4) — see
// BatchAliasShift — gets caps at a 4-byte boundary, and members
// (batchHeaderLen+8n, a multiple of 4 further) with it. When the
// precondition does not hold, or the platform is big-endian, AliasBatch
// reports ok=false and the caller falls back to the copying DecodeBatch;
// both paths accept exactly the same frames (see alias_test.go).

// aliasable is true when the platform's native integer byte order
// matches the wire's little-endian layout, making the reinterpreting
// cast an identity. Resolved once at startup.
var aliasable = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// BatchAliasShift returns how many bytes (0–3) of buf to skip so a
// batch frame payload starting there has 4-byte-aligned caps and
// members sections — the precondition AliasBatch needs. Readers size
// their buffers with 3 bytes of slack and read the payload into
// buf[shift:shift+n]. The result is specific to buf's current backing
// array: recompute after any reallocation.
func BatchAliasShift(buf []byte) int {
	if cap(buf) == 0 {
		return 0
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(buf[:cap(buf)])))
	return int((-(base + batchHeaderLen)) & 3)
}

// AliasBatch parses one batch frame without copying element data: on
// success the returned members and caps slices alias data's backing
// memory directly, and only offs — the prefix sums of the lens section —
// is computed, appended onto the provided slice (pass it length-zero to
// reuse its storage). The frame's structural validation is the same as
// DecodeBatch's: magic, version, exact length, lens summing to the
// declared member count.
//
// ok=false (with err=nil) means the frame cannot be aliased here — the
// platform is big-endian or data's sections are not 4-byte aligned (see
// BatchAliasShift) — and the caller must fall back to DecodeBatch.
// err != nil means the frame is malformed and no decode path accepts
// it.
//
// Unlike DecodeBatch, values with the high bit set (capacity or SetID
// past MaxInt32) are not rejected here: they alias to negative int32s,
// which the engine's Batch.Validate rejects — the layer every wire
// ingest path runs before submitting. Callers must run that validation;
// the aliased slices are live views of data and must not outlive it.
func AliasBatch(data []byte, offs []int32) (members []setsystem.SetID, offsOut, caps []int32, ok bool, err error) {
	if len(data) < batchHeaderLen {
		return nil, offs, nil, false, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrFrame, len(data), batchHeaderLen)
	}
	if [4]byte(data[:4]) != magicBatch {
		return nil, offs, nil, false, fmt.Errorf("%w: bad magic %q", ErrFrame, data[:4])
	}
	if data[4] != Version {
		return nil, offs, nil, false, fmt.Errorf("%w: version %d, this server speaks %d", ErrVersion, data[4], Version)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	nmem := binary.LittleEndian.Uint32(data[9:])
	if n == 0 {
		return nil, offs, nil, false, fmt.Errorf("%w: empty batch", ErrFrame)
	}
	want := uint64(batchHeaderLen) + 8*uint64(n) + 4*uint64(nmem)
	if uint64(len(data)) != want {
		return nil, offs, nil, false, fmt.Errorf("%w: %d bytes for %d elements with %d members, want %d", ErrFrame, len(data), n, nmem, want)
	}

	capsRaw := data[batchHeaderLen:]
	lensRaw := capsRaw[4*n:]
	memsRaw := lensRaw[4*n:]
	if !aliasable || uintptr(unsafe.Pointer(unsafe.SliceData(capsRaw)))&3 != 0 {
		return nil, offs, nil, false, nil
	}

	// The lens pass is the one real decode: prefix sums become offs, and
	// the running total validates the section against the header's nmem.
	offs = append(offs, 0)
	var total uint64
	for i := uint32(0); i < n; i++ {
		total += uint64(binary.LittleEndian.Uint32(lensRaw[4*i:]))
		if total > uint64(nmem) {
			return nil, offs, nil, false, fmt.Errorf("%w: member lengths sum past the declared %d", ErrFrame, nmem)
		}
		offs = append(offs, int32(total))
	}
	if total != uint64(nmem) {
		return nil, offs, nil, false, fmt.Errorf("%w: member lengths sum to %d, header declares %d", ErrFrame, total, nmem)
	}

	caps = unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(capsRaw))), n)
	if nmem > 0 {
		members = unsafe.Slice((*setsystem.SetID)(unsafe.Pointer(unsafe.SliceData(memsRaw))), nmem)
	} else {
		members = []setsystem.SetID{}
	}
	return members, offs, caps, true, nil
}

// appendSetIDsLE appends ids onto dst in the wire's little-endian
// uint32 layout. On a little-endian platform the int32 backing memory
// IS that layout, so the whole slice goes over as one bulk copy — the
// encode-side mirror of AliasBatch — with the per-value loop kept as
// the big-endian fallback. Both produce identical bytes for the values
// both accept; negative IDs never reach encoders (Batch.Validate and
// the client reject them first), so the uint32 reinterpretation is
// lossless.
func appendSetIDsLE(dst []byte, ids []setsystem.SetID) []byte {
	if len(ids) == 0 {
		return dst
	}
	if aliasable {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(ids))), 4*len(ids))
		return append(dst, raw...)
	}
	for _, s := range ids {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s))
	}
	return dst
}
