package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/setsystem"
	"repro/internal/workload"
)

// FuzzDecodeBatch drives both batch decoders with arbitrary bytes and
// cross-checks them: neither may panic, and whenever the copying decoder
// accepts a frame the aliasing decoder must reproduce its output bit for
// bit. The seed corpus is the round-trip frames the codec tests use plus
// each structural corruption the rejection matrix covers.
func FuzzDecodeBatch(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	inst, err := workload.Uniform(workload.UniformConfig{M: 64, N: 40, Load: 5, MinLoad: 1, Capacity: 2}, rng)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(AppendElements(nil, inst.Elements))
	f.Add(AppendElements(nil, inst.Elements[:1]))
	f.Add(AppendElements(nil, []setsystem.Element{{Members: []setsystem.SetID{0}, Capacity: 1}}))
	short := AppendElements(nil, inst.Elements[:4])
	f.Add(short[:len(short)-2])
	bad := append([]byte(nil), short...)
	bad[4] = 9
	f.Add(bad)
	f.Add([]byte("OSPB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		members, offs, caps, derr := DecodeBatch(data, nil, nil, nil)

		// Alias the same bytes from an aligned position.
		buf := make([]byte, len(data)+4)
		shift := BatchAliasShift(buf)
		aligned := buf[shift : shift+len(data)]
		copy(aligned, data)
		aMembers, aOffs, aCaps, ok, aerr := AliasBatch(aligned, nil)

		if derr == nil {
			if aerr != nil {
				t.Fatalf("DecodeBatch accepted, AliasBatch errored: %v", aerr)
			}
			if !ok {
				t.Fatal("AliasBatch refused an aligned frame DecodeBatch accepted")
			}
			if len(aMembers) != len(members) || len(aOffs) != len(offs) || len(aCaps) != len(caps) {
				t.Fatalf("shapes differ: alias %d/%d/%d, copy %d/%d/%d",
					len(aMembers), len(aOffs), len(aCaps), len(members), len(offs), len(caps))
			}
			for i := range members {
				if aMembers[i] != members[i] {
					t.Fatalf("member %d: alias %d, copy %d", i, aMembers[i], members[i])
				}
			}
			for i := range offs {
				if aOffs[i] != offs[i] {
					t.Fatalf("off %d: alias %d, copy %d", i, aOffs[i], offs[i])
				}
			}
			for i := range caps {
				if aCaps[i] != caps[i] {
					t.Fatalf("cap %d: alias %d, copy %d", i, aCaps[i], caps[i])
				}
			}
			// Round-trip: re-encoding the decoded layout reproduces the frame.
			if re := AppendBatch(nil, members, offs, caps); !bytes.Equal(re, data) {
				t.Fatalf("re-encoded frame differs: %d vs %d bytes", len(re), len(data))
			}
			return
		}

		// DecodeBatch rejected. AliasBatch may still accept one class of
		// frame the copying decoder refuses up front: values past MaxInt32,
		// which alias to negative int32s and are left for Batch.Validate.
		// Any such acceptance must carry a visibly negative value.
		if ok {
			negative := false
			for _, c := range aCaps {
				if c < 0 {
					negative = true
				}
			}
			for _, m := range aMembers {
				if m < 0 {
					negative = true
				}
			}
			if !negative {
				t.Fatalf("AliasBatch accepted a frame DecodeBatch rejected (%v) with no out-of-range value", derr)
			}
		}
	})
}
