// Package wire is the compact binary codec of the admission service's
// ingest hot path: length-prefixed element batches on the way in, packed
// per-element verdict bitmasks on the way out. It exists to carry the
// engine's zero-allocation discipline all the way to the socket — the
// JSON wire shapes (internal/serve.IngestRequest/IngestResponse) spend
// ~96% of the service's throughput budget on decode/marshal, while this
// codec decodes straight into the engine's flat structure-of-arrays
// batch buffers and answers with one bit per membership.
//
// Codec selection is negotiated per request via Content-Type
// (ContentTypeBatch on ingest requests; the server answers with
// ContentTypeVerdicts). Requests with any other content type take the
// JSON path unchanged, so the binary codec is purely additive: old
// clients and curl keep working bit-for-bit.
//
// # Batch frame (requests)
//
// All integers are little-endian. The layout mirrors the engine's flat
// batch (one shared member buffer plus per-element arrays), so decoding
// is three bulk array fills with no per-element framing to parse:
//
//	offset  size  field
//	0       4     magic "OSPB"
//	4       1     version (1)
//	5       4     count   n — number of elements, >= 1
//	9       4     nmem    — total member count across all elements
//	13      4n    caps    — capacity b(u) per element
//	13+4n   4n    lens    — member count σ(u) per element (sum = nmem)
//	13+8n   4nmem members — parent SetIDs, concatenated in batch order,
//	                        each element's members in ascending order
//
// A frame's length is fully determined by its header; any mismatch is
// rejected before element data is touched.
//
// # Verdicts frame (responses)
//
// The reply encodes each element's admit/drop verdict as a bitmask over
// the members the client itself sent — the admitted sets are always a
// subset of the element's parents, so one bit per membership is the
// information-theoretic floor. Masks are byte-aligned per element
// (ceil(σ(u)/8) bytes, LSB first): bit j set means members[j] was
// admitted, clear means it was dropped.
//
//	offset  size  field
//	0       4     magic "OSPV"
//	4       1     version (1)
//	5       4     count n — number of verdicts, one per batched element
//	9       ...   masks — ceil(σ_0/8) bytes, then ceil(σ_1/8), ...
//
// The client knows every σ(u) (it sent the batch), so the stream needs
// no per-element length prefix.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/setsystem"
)

// Content types negotiating the binary codec on the ingest endpoint.
const (
	// ContentTypeBatch marks a request body as a binary batch frame.
	ContentTypeBatch = "application/x-osp-batch"
	// ContentTypeVerdicts marks a response body as a binary verdicts
	// frame.
	ContentTypeVerdicts = "application/x-osp-verdicts"
)

// Version is the frame version this package encodes and accepts.
const Version = 1

const (
	batchHeaderLen   = 13 // magic + version + count + nmem
	verdictHeaderLen = 9  // magic + version + count
)

var (
	magicBatch    = [4]byte{'O', 'S', 'P', 'B'}
	magicVerdicts = [4]byte{'O', 'S', 'P', 'V'}
)

// Errors reported by the decoders. Both are wrapped with detail; match
// with errors.Is.
var (
	// ErrFrame is a structurally malformed frame: bad magic, truncated or
	// oversized payload, inconsistent counts, out-of-range values.
	ErrFrame = errors.New("wire: malformed frame")
	// ErrVersion is a well-formed frame of an unsupported version.
	ErrVersion = errors.New("wire: unsupported frame version")
)

// BatchLen returns the encoded byte length of a batch frame with n
// elements and nmem total members — what a client should pre-size its
// request buffer to.
func BatchLen(n, nmem int) int { return batchHeaderLen + 8*n + 4*nmem }

// MaskLen returns the byte length of one element's verdict mask.
func MaskLen(load int) int { return (load + 7) / 8 }

// AppendBatch appends one encoded batch frame built from flat
// structure-of-arrays buffers — element i's members are
// members[offs[i]:offs[i+1]], its capacity caps[i] — and returns the
// extended slice. It is the encoding mirror of DecodeBatch and the
// engine's batch layout, used by tests and by servers relaying batches.
func AppendBatch(dst []byte, members []setsystem.SetID, offs, caps []int32) []byte {
	n := len(caps)
	dst = appendBatchHeader(dst, n, len(members))
	for _, c := range caps {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c))
	}
	for i := 0; i < n; i++ {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(offs[i+1]-offs[i]))
	}
	for _, s := range members {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s))
	}
	return dst
}

// AppendElements appends one encoded batch frame built from elements —
// the client-side form — and returns the extended slice. Pre-grow dst
// with BatchLen to avoid growth copies.
func AppendElements(dst []byte, els []setsystem.Element) []byte {
	nmem := 0
	for _, el := range els {
		nmem += len(el.Members)
	}
	dst = appendBatchHeader(dst, len(els), nmem)
	for _, el := range els {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(el.Capacity))
	}
	for _, el := range els {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(el.Members)))
	}
	for _, el := range els {
		dst = appendSetIDsLE(dst, el.Members)
	}
	return dst
}

// appendBatchHeader appends the magic/version/count/nmem header.
func appendBatchHeader(dst []byte, n, nmem int) []byte {
	dst = append(dst, magicBatch[:]...)
	dst = append(dst, Version)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	return binary.LittleEndian.AppendUint32(dst, uint32(nmem))
}

// PeekBatchCount reads the element count from a batch frame's header
// without decoding anything else — servers bound their batch limit
// against it BEFORE filling long-lived buffers. ok is false when data
// is not a plausible batch frame (too short, wrong magic or version);
// such frames fall through to DecodeBatch's full rejection.
func PeekBatchCount(data []byte) (count int, ok bool) {
	if len(data) < batchHeaderLen || [4]byte(data[:4]) != magicBatch || data[4] != Version {
		return 0, false
	}
	n := binary.LittleEndian.Uint32(data[5:])
	if uint64(n) > uint64(math.MaxInt32) {
		return math.MaxInt32, true
	}
	return int(n), true
}

// DecodeBatch parses one batch frame, appending the decoded flat layout
// onto the three provided slices (pass them length-zero to reuse their
// storage across requests; steady state then allocates nothing). On
// success it returns members grown by nmem entries, offs by n+1 (offs[0]
// = 0) and caps by n — exactly the engine's flat batch shape, so a
// server can decode directly into a borrowed engine batch. Element
// semantics (capacity >= 1, members ascending and in range) are NOT
// checked here: the frame is validated structurally, the elements by the
// engine's batch validation against the instance's universe.
func DecodeBatch(data []byte, members []setsystem.SetID, offs, caps []int32) ([]setsystem.SetID, []int32, []int32, error) {
	if len(data) < batchHeaderLen {
		return members, offs, caps, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrFrame, len(data), batchHeaderLen)
	}
	if [4]byte(data[:4]) != magicBatch {
		return members, offs, caps, fmt.Errorf("%w: bad magic %q", ErrFrame, data[:4])
	}
	if data[4] != Version {
		return members, offs, caps, fmt.Errorf("%w: version %d, this server speaks %d", ErrVersion, data[4], Version)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	nmem := binary.LittleEndian.Uint32(data[9:])
	if n == 0 {
		return members, offs, caps, fmt.Errorf("%w: empty batch", ErrFrame)
	}
	want := uint64(batchHeaderLen) + 8*uint64(n) + 4*uint64(nmem)
	if uint64(len(data)) != want {
		return members, offs, caps, fmt.Errorf("%w: %d bytes for %d elements with %d members, want %d", ErrFrame, len(data), n, nmem, want)
	}

	capsRaw := data[batchHeaderLen:]
	lensRaw := capsRaw[4*n:]
	memsRaw := lensRaw[4*n:]
	for i := uint32(0); i < n; i++ {
		v := binary.LittleEndian.Uint32(capsRaw[4*i:])
		if v > math.MaxInt32 {
			return members, offs, caps, fmt.Errorf("%w: element %d capacity %d overflows int32", ErrFrame, i, v)
		}
		caps = append(caps, int32(v))
	}
	offs = append(offs, 0)
	var total uint64
	for i := uint32(0); i < n; i++ {
		total += uint64(binary.LittleEndian.Uint32(lensRaw[4*i:]))
		if total > uint64(nmem) {
			return members, offs, caps, fmt.Errorf("%w: member lengths sum past the declared %d", ErrFrame, nmem)
		}
		offs = append(offs, int32(total))
	}
	if total != uint64(nmem) {
		return members, offs, caps, fmt.Errorf("%w: member lengths sum to %d, header declares %d", ErrFrame, total, nmem)
	}
	for i := uint32(0); i < nmem; i++ {
		v := binary.LittleEndian.Uint32(memsRaw[4*i:])
		if v > math.MaxInt32 {
			return members, offs, caps, fmt.Errorf("%w: member %d set id %d overflows int32", ErrFrame, i, v)
		}
		members = append(members, setsystem.SetID(v))
	}
	return members, offs, caps, nil
}

// AppendVerdictsHeader appends the verdicts frame header for count
// elements and returns the extended slice; follow with one
// AppendVerdictMask per element in batch order.
func AppendVerdictsHeader(dst []byte, count int) []byte {
	dst = append(dst, magicVerdicts[:]...)
	dst = append(dst, Version)
	return binary.LittleEndian.AppendUint32(dst, uint32(count))
}

// AppendVerdictMask appends one element's byte-aligned admitted bitmask:
// bit j (LSB first) is set iff members[j] is in admitted. Both slices
// must be in ascending SetID order — members as the element arrived,
// admitted as every PolicyState returns it. The mask bytes are
// zero-extended in one step and only the admitted bits are set, so the
// cost scales with admissions (bounded by capacity b(u)) plus the
// cursor's advance through members — not with a per-member
// accumulator loop. An admitted ID absent from members sets no bit and
// stops the walk; the round trip through AppendAdmitted surfaces the
// mismatch.
func AppendVerdictMask(dst []byte, members, admitted []setsystem.SetID) []byte {
	base, ml := len(dst), (len(members)+7)>>3
	if ml <= 4 {
		// The common small-degree case: a few byte appends beat the
		// runtime memclr call append(dst, make(...)...) compiles to.
		for k := 0; k < ml; k++ {
			dst = append(dst, 0)
		}
	} else {
		dst = append(dst, make([]byte, ml)...)
	}
	j := 0
	for _, a := range admitted {
		for j < len(members) && members[j] != a {
			j++
		}
		if j == len(members) {
			break
		}
		dst[base+(j>>3)] |= 1 << (j & 7)
		j++
	}
	return dst
}

// DecodeVerdicts parses a verdicts frame header and returns the mask
// payload and element count. The caller walks the payload with MaskAt,
// carving one mask per element of the batch it sent.
func DecodeVerdicts(data []byte) (payload []byte, count int, err error) {
	if len(data) < verdictHeaderLen {
		return nil, 0, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrFrame, len(data), verdictHeaderLen)
	}
	if [4]byte(data[:4]) != magicVerdicts {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrFrame, data[:4])
	}
	if data[4] != Version {
		return nil, 0, fmt.Errorf("%w: version %d, this client speaks %d", ErrVersion, data[4], Version)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	if uint64(n) > uint64(math.MaxInt32) {
		return nil, 0, fmt.Errorf("%w: count %d overflows", ErrFrame, n)
	}
	return data[verdictHeaderLen:], int(n), nil
}

// MaskAt carves the next element's mask — the element has the given
// load σ(u) — off the front of the payload, returning the mask and the
// remaining payload.
func MaskAt(payload []byte, load int) (mask, rest []byte, err error) {
	ml := MaskLen(load)
	if len(payload) < ml {
		return nil, nil, fmt.Errorf("%w: %d mask bytes left, element needs %d", ErrFrame, len(payload), ml)
	}
	return payload[:ml], payload[ml:], nil
}

// MaskBit reports whether membership j was admitted in a mask carved by
// MaskAt.
func MaskBit(mask []byte, j int) bool { return mask[j/8]&(1<<(j%8)) != 0 }

// AppendAdmitted appends the members whose mask bit is set onto dst —
// the inverse of AppendVerdictMask. It walks set bits only, so the cost
// scales with admissions (bounded by the element's capacity b(u))
// rather than its load σ(u); callers that also need the dropped
// complement should iterate MaskBit instead. A set bit past the member
// count means the mask's padding was corrupted and is a frame error.
func AppendAdmitted(dst []setsystem.SetID, mask []byte, members []setsystem.SetID) ([]setsystem.SetID, error) {
	for base := 0; base < len(members); base += 8 {
		b := mask[base>>3]
		for b != 0 {
			k := base + bits.TrailingZeros8(b)
			b &= b - 1
			if k >= len(members) {
				return dst, fmt.Errorf("%w: verdict mask admits member %d of an element with %d", ErrFrame, k, len(members))
			}
			dst = append(dst, members[k])
		}
	}
	return dst, nil
}
