package wire

import (
	"errors"
	"strings"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		ID:        "i-7",
		Label:     "video",
		Policy:    "randpr",
		Seed:      0xDEADBEEFCAFE,
		Shards:    4,
		BatchSize: 64, QueueDepth: 8,
		Submitted: 1500, Processed: 1500, Batches: 24,
		AssignedTotal: 2900, Dropped: 4100,
		Weights:  []float64{1.5, 2, 0.25},
		Sizes:    []int{10, 3, 7},
		Assigned: []int32{4, 3, 0},
	}
}

// TestSnapshotRoundTrip pins encode→decode identity for every field.
func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	raw := AppendSnapshot(nil, want)
	if len(raw) != SnapshotLen(want) {
		t.Fatalf("encoded %d bytes, SnapshotLen says %d", len(raw), SnapshotLen(want))
	}
	got, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.ID != want.ID || got.Label != want.Label || got.Policy != want.Policy ||
		got.Seed != want.Seed || got.Shards != want.Shards ||
		got.BatchSize != want.BatchSize || got.QueueDepth != want.QueueDepth ||
		got.Final != want.Final ||
		got.Submitted != want.Submitted || got.Processed != want.Processed ||
		got.Batches != want.Batches || got.AssignedTotal != want.AssignedTotal ||
		got.Dropped != want.Dropped {
		t.Fatalf("scalar mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Weights {
		if got.Weights[i] != want.Weights[i] || got.Sizes[i] != want.Sizes[i] || got.Assigned[i] != want.Assigned[i] {
			t.Fatalf("array mismatch at %d: got (%v,%d,%d) want (%v,%d,%d)", i,
				got.Weights[i], got.Sizes[i], got.Assigned[i],
				want.Weights[i], want.Sizes[i], want.Assigned[i])
		}
	}

	want.Final = true
	want.Label = ""
	got, err = DecodeSnapshot(AppendSnapshot(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Final || got.Label != "" {
		t.Fatalf("Final/empty-label round trip: %+v", got)
	}
}

// TestSnapshotRejects sweeps the structural rejections.
func TestSnapshotRejects(t *testing.T) {
	good := AppendSnapshot(nil, sampleSnapshot())

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"short", func(b []byte) []byte { return b[:10] }, ErrFrame},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrFrame},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-3] }, ErrFrame},
		{"trailing junk", func(b []byte) []byte { return append(b, 0) }, ErrFrame},
		{"string past end", func(b []byte) []byte { b[6] = 0xFF; b[7] = 0xFF; return b }, ErrFrame},
	}
	for _, tc := range cases {
		raw := tc.mutate(append([]byte(nil), good...))
		if _, err := DecodeSnapshot(raw); !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}

	// Semantic restore guards: quiesce and count-range violations.
	s := sampleSnapshot()
	s.Processed = s.Submitted - 1
	if _, err := DecodeSnapshot(AppendSnapshot(nil, s)); !errors.Is(err, ErrFrame) {
		t.Errorf("non-quiesced snapshot accepted: %v", err)
	}
	s = sampleSnapshot()
	s.Assigned[1] = int32(s.Sizes[1]) + 1
	if _, err := DecodeSnapshot(AppendSnapshot(nil, s)); !errors.Is(err, ErrFrame) {
		t.Errorf("assigned > size accepted: %v", err)
	}
}

// TestSnapshotStringBound pins the panic on oversized strings — a
// programming error, not a wire condition.
func TestSnapshotStringBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized label did not panic")
		}
	}()
	s := sampleSnapshot()
	s.Label = strings.Repeat("x", snapMaxStringLen+1)
	AppendSnapshot(nil, s)
}
