package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/setsystem"
	"repro/internal/workload"
)

// flatten converts elements to the engine's flat SoA layout — the shape
// DecodeBatch must reproduce exactly.
func flatten(els []setsystem.Element) (members []setsystem.SetID, offs, caps []int32) {
	offs = append(offs, 0)
	for _, el := range els {
		members = append(members, el.Members...)
		offs = append(offs, int32(len(members)))
		caps = append(caps, int32(el.Capacity))
	}
	return members, offs, caps
}

// TestBatchRoundTrip pins the frame contract: AppendElements and
// AppendBatch produce the identical frame, and DecodeBatch reproduces
// the flat layout bit for bit, reusing caller storage.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := workload.Uniform(workload.UniformConfig{M: 300, N: 500, Load: 9, MinLoad: 1, Capacity: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	els := inst.Elements
	wantMembers, wantOffs, wantCaps := flatten(els)

	frame := AppendElements(nil, els)
	if got := AppendBatch(nil, wantMembers, wantOffs, wantCaps); string(got) != string(frame) {
		t.Fatalf("AppendBatch and AppendElements frames differ: %d vs %d bytes", len(got), len(frame))
	}
	if len(frame) != BatchLen(len(els), len(wantMembers)) {
		t.Fatalf("frame is %d bytes, BatchLen says %d", len(frame), BatchLen(len(els), len(wantMembers)))
	}

	// Decode twice into the same storage: the second pass must not grow.
	var members []setsystem.SetID
	var offs, caps []int32
	for pass := 0; pass < 2; pass++ {
		members, offs, caps, err = DecodeBatch(frame, members[:0], offs[:0], caps[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(members) != len(wantMembers) || len(offs) != len(wantOffs) || len(caps) != len(wantCaps) {
		t.Fatalf("decoded shape %d/%d/%d, want %d/%d/%d",
			len(members), len(offs), len(caps), len(wantMembers), len(wantOffs), len(wantCaps))
	}
	for i := range wantMembers {
		if members[i] != wantMembers[i] {
			t.Fatalf("member %d = %d, want %d", i, members[i], wantMembers[i])
		}
	}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] {
			t.Fatalf("off %d = %d, want %d", i, offs[i], wantOffs[i])
		}
	}
	for i := range wantCaps {
		if caps[i] != wantCaps[i] {
			t.Fatalf("cap %d = %d, want %d", i, caps[i], wantCaps[i])
		}
	}
}

// TestDecodeBatchRejects walks the rejection matrix: every structural
// corruption of a valid frame must fail with ErrFrame (or ErrVersion),
// never panic or decode garbage.
func TestDecodeBatchRejects(t *testing.T) {
	els := []setsystem.Element{
		{Members: []setsystem.SetID{0, 2, 5}, Capacity: 2},
		{Members: []setsystem.SetID{1}, Capacity: 1},
	}
	good := AppendElements(nil, els)

	corrupt := func(mut func(b []byte) []byte) []byte {
		return mut(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFrame},
		{"short header", good[:8], ErrFrame},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrFrame},
		{"future version", corrupt(func(b []byte) []byte { b[4] = 9; return b }), ErrVersion},
		{"zero count", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[5:], 0)
			return b
		}), ErrFrame},
		{"truncated payload", good[:len(good)-1], ErrFrame},
		{"trailing byte", append(append([]byte(nil), good...), 0), ErrFrame},
		{"count overdeclared", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[5:], 1<<30)
			return b
		}), ErrFrame},
		{"lens undershoot nmem", corrupt(func(b []byte) []byte {
			// Element 0's length 3 -> 2: the lens no longer sum to nmem.
			binary.LittleEndian.PutUint32(b[13+8:], 2)
			return b
		}), ErrFrame},
		{"lens overshoot nmem", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[13+8:], 4)
			return b
		}), ErrFrame},
		{"capacity overflows int32", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[13:], 1<<31)
			return b
		}), ErrFrame},
		{"member overflows int32", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(b)-4:], 1<<31)
			return b
		}), ErrFrame},
	}
	for _, tc := range cases {
		if _, _, _, err := DecodeBatch(tc.data, nil, nil, nil); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestVerdictMaskRoundTrip checks the bitmask against a brute-force
// membership test over random subsets, across loads spanning byte
// boundaries.
func TestVerdictMaskRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, load := range []int{1, 2, 7, 8, 9, 16, 17, 40} {
		members := make([]setsystem.SetID, load)
		for i := range members {
			members[i] = setsystem.SetID(3 * i) // ascending
		}
		for trial := 0; trial < 20; trial++ {
			var admitted []setsystem.SetID
			want := make(map[setsystem.SetID]bool)
			for _, s := range members {
				if rng.Intn(2) == 0 {
					admitted = append(admitted, s)
					want[s] = true
				}
			}
			mask := AppendVerdictMask(nil, members, admitted)
			if len(mask) != MaskLen(load) {
				t.Fatalf("load %d: mask is %d bytes, want %d", load, len(mask), MaskLen(load))
			}
			for j, s := range members {
				if MaskBit(mask, j) != want[s] {
					t.Fatalf("load %d trial %d: bit %d = %v, want %v", load, trial, j, MaskBit(mask, j), want[s])
				}
			}
			// The sparse walk must recover exactly the admitted list.
			back, err := AppendAdmitted(nil, mask, members)
			if err != nil {
				t.Fatalf("load %d trial %d: AppendAdmitted: %v", load, trial, err)
			}
			if fmt.Sprint(back) != fmt.Sprint(admitted) {
				t.Fatalf("load %d trial %d: AppendAdmitted = %v, want %v", load, trial, back, admitted)
			}
		}
	}
}

// TestAppendAdmittedPaddingBit pins the corruption check: a set bit in
// the mask's padding region (past the member count) is a frame error,
// not a silent skip or a panic.
func TestAppendAdmittedPaddingBit(t *testing.T) {
	members := []setsystem.SetID{2, 4, 6} // 3 members, 5 padding bits
	mask := AppendVerdictMask(nil, members, members[1:2])
	mask[0] |= 1 << 6 // corrupt a padding bit
	if _, err := AppendAdmitted(nil, mask, members); !errors.Is(err, ErrFrame) {
		t.Fatalf("padding bit set: err = %v, want ErrFrame", err)
	}
}

// TestVerdictsFrame pins the header round trip and MaskAt's walk,
// including the rejection of truncated payloads.
func TestVerdictsFrame(t *testing.T) {
	loads := []int{3, 9, 1}
	frame := AppendVerdictsHeader(nil, len(loads))
	for i, load := range loads {
		members := make([]setsystem.SetID, load)
		for j := range members {
			members[j] = setsystem.SetID(j)
		}
		// Admit member i%load only.
		frame = AppendVerdictMask(frame, members, members[i%load:i%load+1])
	}

	payload, count, err := DecodeVerdicts(frame)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(loads) {
		t.Fatalf("count = %d, want %d", count, len(loads))
	}
	for i, load := range loads {
		var mask []byte
		mask, payload, err = MaskAt(payload, load)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < load; j++ {
			if got, want := MaskBit(mask, j), j == i%load; got != want {
				t.Fatalf("element %d bit %d = %v, want %v", i, j, got, want)
			}
		}
	}
	if len(payload) != 0 {
		t.Fatalf("%d payload bytes left after the last element", len(payload))
	}

	if _, _, err := DecodeVerdicts(frame[:4]); !errors.Is(err, ErrFrame) {
		t.Errorf("short frame: err = %v, want ErrFrame", err)
	}
	bad := append([]byte(nil), frame...)
	bad[4] = 2
	if _, _, err := DecodeVerdicts(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: err = %v, want ErrVersion", err)
	}
	if _, _, err := MaskAt(nil, 9); !errors.Is(err, ErrFrame) {
		t.Errorf("truncated masks: err = %v, want ErrFrame", err)
	}
}

// TestAppendDecodeSteadyStateAllocs asserts the codec itself is
// allocation-free once buffers are warm — the property the serve ingest
// path builds on.
func TestAppendDecodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := workload.Uniform(workload.UniformConfig{M: 200, N: 256, Load: 8, Capacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	els := inst.Elements
	frame := AppendElements(nil, els)

	var members []setsystem.SetID
	var offs, caps []int32
	members, offs, caps, err = DecodeBatch(frame, members, offs, caps) // warm
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), frame...)
	allocs := testing.AllocsPerRun(20, func() {
		buf = AppendElements(buf[:0], els)
		var derr error
		members, offs, caps, derr = DecodeBatch(buf, members[:0], offs[:0], caps[:0])
		if derr != nil {
			t.Fatal(derr)
		}
	})
	if allocs != 0 {
		t.Errorf("warm encode+decode of a %d-element batch allocates %v times, want 0", len(els), allocs)
	}
}

// TestPeekBatchCount pins the pre-decode count peek servers use to
// enforce batch limits before filling long-lived buffers.
func TestPeekBatchCount(t *testing.T) {
	els := []setsystem.Element{
		{Members: []setsystem.SetID{0, 2}, Capacity: 1},
		{Members: []setsystem.SetID{1}, Capacity: 1},
	}
	frame := AppendElements(nil, els)
	if n, ok := PeekBatchCount(frame); !ok || n != 2 {
		t.Errorf("PeekBatchCount = %d, %v, want 2, true", n, ok)
	}
	if _, ok := PeekBatchCount(frame[:8]); ok {
		t.Error("short header peeked")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, ok := PeekBatchCount(bad); ok {
		t.Error("bad magic peeked")
	}
	huge := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(huge[5:], 1<<31+5)
	if n, ok := PeekBatchCount(huge); !ok || n <= 0 {
		t.Errorf("overflowing count peeked as %d, %v — want a positive clamp", n, ok)
	}
}
