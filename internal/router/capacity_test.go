package router

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/workload"
)

// A fatter link (capacity 2) must deliver at least as much as capacity 1
// on the same trace shape, for the randomized policy, on average.
func TestLinkCapacityMonotone(t *testing.T) {
	var cap1, cap2 float64
	for seed := int64(0); seed < 20; seed++ {
		rng1 := rand.New(rand.NewSource(seed))
		v1, err := workload.Video(workload.VideoConfig{
			Streams: 6, FramesPerStream: 10, Jitter: 2, LinkCapacity: 1,
		}, rng1)
		if err != nil {
			t.Fatal(err)
		}
		rng2 := rand.New(rand.NewSource(seed))
		v2, err := workload.Video(workload.VideoConfig{
			Streams: 6, FramesPerStream: 10, Jitter: 2, LinkCapacity: 2,
		}, rng2)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Simulate(v1, &core.RandPr{}, rand.New(rand.NewSource(seed+100)))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Simulate(v2, &core.RandPr{}, rand.New(rand.NewSource(seed+100)))
		if err != nil {
			t.Fatal(err)
		}
		cap1 += r1.WeightDelivered
		cap2 += r2.WeightDelivered
	}
	if cap2 < cap1 {
		t.Errorf("capacity-2 goodput %v < capacity-1 %v", cap2, cap1)
	}
}

// Multihop with per-cell capacity 2 delivers at least as much as capacity
// 1 on identical routes.
func TestMultihopCapacityMonotone(t *testing.T) {
	var c1, c2 float64
	for seed := int64(0); seed < 15; seed++ {
		rngA := rand.New(rand.NewSource(seed))
		m1, err := workload.Multihop(workload.MultihopConfig{
			Hops: 6, Packets: 80, Horizon: 12, Capacity: 1,
		}, rngA)
		if err != nil {
			t.Fatal(err)
		}
		rngB := rand.New(rand.NewSource(seed))
		m2, err := workload.Multihop(workload.MultihopConfig{
			Hops: 6, Packets: 80, Horizon: 12, Capacity: 2,
		}, rngB)
		if err != nil {
			t.Fatal(err)
		}
		n1, _, err := SimulateMultihop(m1, hashpr.Mixer{Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		n2, _, err := SimulateMultihop(m2, hashpr.Mixer{Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		c1 += n1.WeightDelivered
		c2 += n2.WeightDelivered
	}
	if c2 < c1 {
		t.Errorf("capacity-2 deliveries %v < capacity-1 %v", c2, c1)
	}
}

// Bursty traces run cleanly through both simulators.
func TestBurstyThroughSimulators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vi, err := workload.Bursty(workload.BurstyConfig{Streams: 6, Frames: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(vi, &core.RandPr{}, rand.New(rand.NewSource(6))); err != nil {
		t.Fatal(err)
	}
	for _, policy := range BufferPolicies() {
		if _, err := SimulateBuffered(vi, policy, 4, rand.New(rand.NewSource(7))); err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
	}
}
