// Package router provides the systems-level simulators of the paper's
// motivating scenarios: a bottleneck router dropping packets of
// multi-packet video frames (Section 1, paragraph 1) and a line network of
// switches serving multi-hop packets (Section 1, paragraph 2). Both reduce
// to OSP; the simulators add the domain bookkeeping (goodput, per-class
// delivery, drop propagation) that the abstract engine does not track.
package router

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// ClassReport aggregates delivery per frame class ("I", "P", "B", …).
type ClassReport struct {
	Offered   int
	Delivered int
}

// Report summarizes a simulation run.
type Report struct {
	// FramesOffered and FramesDelivered count sets (frames/packets).
	FramesOffered   int
	FramesDelivered int
	// WeightOffered and WeightDelivered are the corresponding weights;
	// WeightDelivered is the OSP benefit (goodput in frame value).
	WeightOffered   float64
	WeightDelivered float64
	// PacketsOffered counts (set, element) memberships; PacketsServed
	// counts assignments made by the policy.
	PacketsOffered int
	PacketsServed  int
	// ByClass breaks frames down per class when class metadata exists.
	ByClass map[string]ClassReport
}

// GoodputFraction returns delivered weight over offered weight.
func (r *Report) GoodputFraction() float64 {
	if r.WeightOffered == 0 {
		return 0
	}
	return r.WeightDelivered / r.WeightOffered
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("frames %d/%d, weight %.1f/%.1f (%.1f%%), packets served %d/%d",
		r.FramesDelivered, r.FramesOffered, r.WeightDelivered, r.WeightOffered,
		100*r.GoodputFraction(), r.PacketsServed, r.PacketsOffered)
}

// Simulate runs a drop policy over the video workload, slot by slot: each
// slot's burst is an OSP element, and the policy picks which packets the
// link serves. It returns the goodput report.
func Simulate(vi *workload.VideoInstance, alg core.Algorithm, rng *rand.Rand) (*Report, error) {
	res, err := core.Run(vi.Inst, alg, rng)
	if err != nil {
		return nil, err
	}
	rep := buildReport(vi.Inst, res)
	rep.ByClass = make(map[string]ClassReport, 4)
	for i, class := range vi.Class {
		cr := rep.ByClass[class]
		cr.Offered++
		if res.Completes(setsystem.SetID(i)) {
			cr.Delivered++
		}
		rep.ByClass[class] = cr
	}
	return rep, nil
}

func buildReport(inst *setsystem.Instance, res *core.Result) *Report {
	rep := &Report{
		FramesOffered:   inst.NumSets(),
		FramesDelivered: len(res.Completed),
		WeightOffered:   inst.TotalWeight(),
		WeightDelivered: res.Benefit,
	}
	for _, sz := range inst.Sizes {
		rep.PacketsOffered += sz
	}
	for _, a := range res.Assigned {
		rep.PacketsServed += int(a)
	}
	return rep
}

// CompareTaildrop runs the classic size-oblivious baseline: serve the
// burst's packets in arrival order (lowest frame ID first) up to link
// capacity — i.e. greedyFirstListed without the active filter. It is the
// policy a FIFO queue with tail drop implements.
type Taildrop struct {
	buf []setsystem.SetID
}

var _ core.Algorithm = (*Taildrop)(nil)

// Name implements core.Algorithm.
func (a *Taildrop) Name() string { return "taildrop" }

// Reset implements core.Algorithm.
func (a *Taildrop) Reset(core.Info, *rand.Rand) error { return nil }

// Choose implements core.Algorithm: first Capacity members, active or not.
func (a *Taildrop) Choose(ev core.ElementView) []setsystem.SetID {
	k := ev.Capacity
	if k > len(ev.Members) {
		k = len(ev.Members)
	}
	a.buf = append(a.buf[:0], ev.Members[:k]...)
	return a.buf
}

// Policies returns the router drop policies compared in the video
// experiment, keyed by display order.
func Policies() []core.Algorithm {
	return []core.Algorithm{
		&core.RandPr{},
		&core.RandPr{ActiveOnly: true},
		&core.GreedyMaxWeight{},
		&core.GreedyFewestRemaining{},
		&Taildrop{},
		&core.UniformRandom{},
	}
}

// sortIDs sorts a SetID slice ascending (shared helper).
func sortIDs(ids []setsystem.SetID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
