package router

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// This file implements the second open problem of the paper's Section 5
// ("it is interesting to understand the effect of buffers on the
// problem"): a bottleneck link preceded by a finite buffer of B packets.
// Per slot, the burst joins the buffer, the link serves up to `capacity`
// packets chosen by the policy, and the buffer then evicts down to B —
// also by policy. B = 0 recovers bufferless OSP exactly (X13's
// consistency check), connecting this model to the bounded-buffer setting
// of Kesselman, Patt-Shamir and Scalosub (IPDPS 2009) cited in the
// paper's related work.

// BufferPolicy ranks packets: the simulator serves the highest-priority
// buffered packets and evicts the lowest-priority ones on overflow.
type BufferPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset is called once per simulation with the frame weights/sizes.
	Reset(weights []float64, sizes []int, rng *rand.Rand) error
	// Priority scores a packet at admission time; higher survives longer.
	// seq is the packet's global arrival index (FIFO policies use it).
	Priority(frame setsystem.SetID, seq int) float64
}

// RandPrBuffer ranks packets by their frame's R_w priority — the paper's
// algorithm lifted to the buffered setting: eviction and service both
// respect one persistent random priority per frame.
type RandPrBuffer struct {
	prio []float64
}

var _ BufferPolicy = (*RandPrBuffer)(nil)

// Name implements BufferPolicy.
func (p *RandPrBuffer) Name() string { return "randPrBuffer" }

// Reset implements BufferPolicy.
func (p *RandPrBuffer) Reset(weights []float64, _ []int, rng *rand.Rand) error {
	if rng == nil {
		return errors.New("router: randPrBuffer needs a random source")
	}
	p.prio = make([]float64, len(weights))
	for i, w := range weights {
		p.prio[i] = dist.Sample(rng, w)
	}
	return nil
}

// Priority implements BufferPolicy.
func (p *RandPrBuffer) Priority(frame setsystem.SetID, _ int) float64 { return p.prio[frame] }

// WeightBuffer ranks packets by frame weight (deterministic).
type WeightBuffer struct {
	weights []float64
}

var _ BufferPolicy = (*WeightBuffer)(nil)

// Name implements BufferPolicy.
func (p *WeightBuffer) Name() string { return "weightBuffer" }

// Reset implements BufferPolicy.
func (p *WeightBuffer) Reset(weights []float64, _ []int, _ *rand.Rand) error {
	p.weights = weights
	return nil
}

// Priority implements BufferPolicy.
func (p *WeightBuffer) Priority(frame setsystem.SetID, _ int) float64 {
	return p.weights[frame]
}

// FIFOBuffer is classic tail drop: earliest arrivals have the highest
// priority, so service is FIFO and overflow drops the newest packets.
type FIFOBuffer struct{}

var _ BufferPolicy = FIFOBuffer{}

// Name implements BufferPolicy.
func (FIFOBuffer) Name() string { return "fifoTaildrop" }

// Reset implements BufferPolicy.
func (FIFOBuffer) Reset([]float64, []int, *rand.Rand) error { return nil }

// Priority implements BufferPolicy.
func (FIFOBuffer) Priority(_ setsystem.SetID, seq int) float64 { return -float64(seq) }

// bufPacket is one packet in flight.
type bufPacket struct {
	frame setsystem.SetID
	prio  float64
	seq   int
}

// packetHeap is a max-heap on (prio, -seq).
type packetHeap []bufPacket

func (h packetHeap) Len() int { return len(h) }
func (h packetHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h packetHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *packetHeap) Push(x interface{}) { *h = append(*h, x.(bufPacket)) }
func (h *packetHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimulateBuffered runs the video trace through a link with a B-packet
// buffer under the given policy. Each slot: the burst is admitted, the
// link serves up to the slot's capacity (highest priority first), and the
// buffer evicts down to B (lowest priority first). After the last burst
// the buffer drains at the trace's final capacity. With B = 0 the
// simulation is exactly bufferless OSP under the same priorities.
func SimulateBuffered(vi *workload.VideoInstance, policy BufferPolicy, bufferSize int, rng *rand.Rand) (*Report, error) {
	if bufferSize < 0 {
		return nil, fmt.Errorf("router: negative buffer size %d", bufferSize)
	}
	if policy == nil {
		return nil, errors.New("router: nil buffer policy")
	}
	inst := vi.Inst
	if err := policy.Reset(inst.Weights, inst.Sizes, rng); err != nil {
		return nil, err
	}

	served := make([]int, inst.NumSets())
	dead := make([]bool, inst.NumSets())
	var buf packetHeap
	seq := 0
	servedTotal := 0
	lastCap := 1

	serveAndEvict := func(capacity int) {
		// Serve up to capacity highest-priority packets of live frames.
		for c := 0; c < capacity && buf.Len() > 0; {
			p := heap.Pop(&buf).(bufPacket)
			if dead[p.frame] {
				continue // free disposal of packets of doomed frames
			}
			served[p.frame]++
			servedTotal++
			c++
		}
		// Evict down to the buffer size, lowest priority first. Popping
		// from a max-heap yields the highest, so rebuild: collect all,
		// keep the top bufferSize.
		if buf.Len() > bufferSize {
			all := make([]bufPacket, 0, buf.Len())
			for buf.Len() > 0 {
				all = append(all, heap.Pop(&buf).(bufPacket))
			}
			for _, p := range all[:bufferSize] {
				heap.Push(&buf, p)
			}
			for _, p := range all[bufferSize:] {
				dead[p.frame] = true
			}
		}
	}

	for _, e := range inst.Elements {
		for _, f := range e.Members {
			heap.Push(&buf, bufPacket{frame: f, prio: policy.Priority(f, seq), seq: seq})
			seq++
		}
		lastCap = e.Capacity
		serveAndEvict(e.Capacity)
	}
	// Drain phase: the link keeps serving after arrivals stop.
	for buf.Len() > 0 {
		serveAndEvict(lastCap)
	}

	rep := &Report{
		FramesOffered: inst.NumSets(),
		WeightOffered: inst.TotalWeight(),
		PacketsServed: servedTotal,
	}
	for _, sz := range inst.Sizes {
		rep.PacketsOffered += sz
	}
	rep.ByClass = make(map[string]ClassReport, 4)
	for i, sz := range inst.Sizes {
		class := ""
		if i < len(vi.Class) {
			class = vi.Class[i]
		}
		cr := rep.ByClass[class]
		cr.Offered++
		if !dead[i] && served[i] == sz {
			rep.FramesDelivered++
			rep.WeightDelivered += inst.Weights[i]
			cr.Delivered++
		}
		rep.ByClass[class] = cr
	}
	return rep, nil
}

// BufferPolicies returns the policies compared by the buffered-router
// experiment.
func BufferPolicies() []BufferPolicy {
	return []BufferPolicy{&RandPrBuffer{}, &WeightBuffer{}, FIFOBuffer{}}
}
