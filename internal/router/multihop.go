package router

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

// SimulateMultihop runs the distributed multi-hop network: every switch
// holds only the shared hash seed (no coordination, exactly the
// distributed randPr of Section 3.1). At each cell (t,h), the packets
// present — scheduled there and not dropped upstream — compete; the switch
// serves the b highest hash-priorities and drops the rest. A packet is
// delivered when it completes its route.
//
// Because a drop upstream removes a competitor downstream, the network can
// only deliver MORE than the abstract OSP run in which every scheduled
// packet competes everywhere; SimulateMultihop reports both numbers so the
// experiments can show the OSP analysis is a conservative bound for the
// real system.
func SimulateMultihop(mi *workload.MultihopInstance, hasher hashpr.UniformHasher) (network, abstract *Report, err error) {
	if hasher == nil {
		return nil, nil, errors.New("router: nil hasher")
	}
	inst := mi.Inst
	m := inst.NumSets()

	// Shared priorities, derivable independently by every switch.
	prio := make([]float64, m)
	for i := 0; i < m; i++ {
		prio[i] = dist.FromUniform(hasher.Uniform(uint64(i)), inst.Weights[i])
	}

	dropped := make([]bool, m)
	served := make([]int, m)
	// Elements arrive in (time, hop) order; process each cell locally.
	for j, e := range inst.Elements {
		present := make([]setsystem.SetID, 0, len(e.Members))
		for _, s := range e.Members {
			if !dropped[s] {
				present = append(present, s)
			}
		}
		if len(present) > e.Capacity {
			// Serve the top-Capacity priorities; drop the rest.
			sortByPriority(present, prio)
			for _, s := range present[e.Capacity:] {
				dropped[s] = true
			}
			present = present[:e.Capacity]
		}
		for _, s := range present {
			served[s]++
		}
		_ = j
	}

	network = &Report{
		FramesOffered: m,
		WeightOffered: inst.TotalWeight(),
	}
	for _, sz := range inst.Sizes {
		network.PacketsOffered += sz
	}
	for i := 0; i < m; i++ {
		network.PacketsServed += served[i]
		if !dropped[i] && served[i] == inst.Sizes[i] {
			network.FramesDelivered++
			network.WeightDelivered += inst.Weights[i]
		}
	}

	// Abstract OSP run with the same hasher for comparison.
	res, err := core.Run(inst, &core.HashRandPr{Hasher: hasher}, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("router: abstract run: %w", err)
	}
	abstract = buildReport(inst, res)
	return network, abstract, nil
}

// sortByPriority sorts ids by descending priority (ties: lower id), in
// place.
func sortByPriority(ids []setsystem.SetID, prio []float64) {
	// insertion sort: bursts are small.
	for i := 1; i < len(ids); i++ {
		x := ids[i]
		j := i - 1
		for j >= 0 && less(prio, ids[j], x) {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = x
	}
}

// less reports whether a ranks strictly below b.
func less(prio []float64, a, b setsystem.SetID) bool {
	if prio[a] != prio[b] {
		return prio[a] < prio[b]
	}
	return a > b
}
