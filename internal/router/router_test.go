package router

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

func videoInstance(t *testing.T, seed int64) *workload.VideoInstance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vi, err := workload.Video(workload.VideoConfig{
		Streams: 6, FramesPerStream: 16, Jitter: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return vi
}

func TestSimulateReportAccounting(t *testing.T) {
	vi := videoInstance(t, 1)
	rep, err := Simulate(vi, &core.RandPr{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesOffered != vi.Inst.NumSets() {
		t.Errorf("FramesOffered = %d, want %d", rep.FramesOffered, vi.Inst.NumSets())
	}
	if rep.PacketsOffered != vi.TotalPackets {
		t.Errorf("PacketsOffered = %d, want %d", rep.PacketsOffered, vi.TotalPackets)
	}
	if rep.FramesDelivered < 0 || rep.FramesDelivered > rep.FramesOffered {
		t.Errorf("FramesDelivered = %d out of range", rep.FramesDelivered)
	}
	if rep.WeightDelivered > rep.WeightOffered {
		t.Errorf("delivered weight %v > offered %v", rep.WeightDelivered, rep.WeightOffered)
	}
	if g := rep.GoodputFraction(); g < 0 || g > 1 {
		t.Errorf("GoodputFraction = %v", g)
	}
	// Class breakdown sums to totals.
	var offered, delivered int
	for _, cr := range rep.ByClass {
		offered += cr.Offered
		delivered += cr.Delivered
	}
	if offered != rep.FramesOffered || delivered != rep.FramesDelivered {
		t.Errorf("class sums %d/%d != totals %d/%d", delivered, offered, rep.FramesDelivered, rep.FramesOffered)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestGoodputFractionEmpty(t *testing.T) {
	var r Report
	if r.GoodputFraction() != 0 {
		t.Error("empty report goodput should be 0")
	}
}

func TestTaildropValid(t *testing.T) {
	vi := videoInstance(t, 3)
	rep, err := Simulate(vi, &Taildrop{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesDelivered < 0 {
		t.Error("negative deliveries")
	}
}

// randPr should beat taildrop on bursty multi-stream video (the paper's
// central systems claim). Averaged over seeds to avoid flakes.
func TestRandPrBeatsTaildropOnVideo(t *testing.T) {
	var randTotal, tailTotal float64
	for seed := int64(0); seed < 30; seed++ {
		vi := videoInstance(t, seed)
		rrep, err := Simulate(vi, &core.RandPr{}, rand.New(rand.NewSource(seed+1000)))
		if err != nil {
			t.Fatal(err)
		}
		trep, err := Simulate(vi, &Taildrop{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		randTotal += rrep.WeightDelivered
		tailTotal += trep.WeightDelivered
	}
	if randTotal <= tailTotal {
		t.Errorf("randPr total goodput %v <= taildrop %v", randTotal, tailTotal)
	}
}

func TestPoliciesRunClean(t *testing.T) {
	vi := videoInstance(t, 5)
	for _, alg := range Policies() {
		if _, err := Simulate(vi, alg, rand.New(rand.NewSource(9))); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

func TestSimulateMultihop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mi, err := workload.Multihop(workload.MultihopConfig{
		Hops: 8, Packets: 120, Horizon: 20,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	network, abstract, err := SimulateMultihop(mi, hashpr.Mixer{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Drop propagation can only help: the real network delivers at least
	// as much as the abstract OSP run the analysis bounds.
	if network.WeightDelivered < abstract.WeightDelivered {
		t.Errorf("network %v < abstract %v — drop propagation should only help",
			network.WeightDelivered, abstract.WeightDelivered)
	}
	if network.FramesOffered != 120 || abstract.FramesOffered != 120 {
		t.Error("frame counts wrong")
	}
	if network.PacketsServed < abstract.PacketsServed {
		// Not necessarily true packet-wise... but served counts only track
		// service events; skip strictness, just sanity.
		t.Logf("note: network served %d, abstract %d", network.PacketsServed, abstract.PacketsServed)
	}
}

func TestSimulateMultihopNilHasher(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mi, err := workload.Multihop(workload.MultihopConfig{Hops: 3, Packets: 5, Horizon: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SimulateMultihop(mi, nil); err == nil {
		t.Error("want error for nil hasher")
	}
}

// Two switches with the same seed decide consistently: simulate twice and
// compare.
func TestMultihopDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mi, err := workload.Multihop(workload.MultihopConfig{Hops: 5, Packets: 60, Horizon: 12}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n1, a1, err := SimulateMultihop(mi, hashpr.Mixer{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	n2, a2, err := SimulateMultihop(mi, hashpr.Mixer{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n1.WeightDelivered != n2.WeightDelivered || a1.WeightDelivered != a2.WeightDelivered {
		t.Error("multihop simulation not deterministic under a fixed seed")
	}
}

func TestSortByPriority(t *testing.T) {
	prio := []float64{0.1, 0.9, 0.5, 0.9}
	ids := []setsystem.SetID{0, 1, 2, 3}
	sortByPriority(ids, prio)
	want := []setsystem.SetID{1, 3, 2, 0} // ties (1,3) break to lower id
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ids, want)
		}
	}
}

func TestSortIDs(t *testing.T) {
	ids := []setsystem.SetID{3, 1, 2}
	sortIDs(ids)
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("sortIDs = %v", ids)
	}
}
