package router

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestSimulateBufferedValidation(t *testing.T) {
	vi := videoInstance(t, 1)
	if _, err := SimulateBuffered(vi, nil, 4, nil); err == nil {
		t.Error("nil policy should error")
	}
	if _, err := SimulateBuffered(vi, &RandPrBuffer{}, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative buffer should error")
	}
	if _, err := SimulateBuffered(vi, &RandPrBuffer{}, 4, nil); err == nil {
		t.Error("randPrBuffer without rng should error")
	}
}

func TestSimulateBufferedAccounting(t *testing.T) {
	vi := videoInstance(t, 2)
	for _, policy := range BufferPolicies() {
		for _, bufSize := range []int{0, 2, 8} {
			rep, err := SimulateBuffered(vi, policy, bufSize, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatalf("%s B=%d: %v", policy.Name(), bufSize, err)
			}
			if rep.FramesDelivered < 0 || rep.FramesDelivered > rep.FramesOffered {
				t.Errorf("%s B=%d: delivered %d of %d", policy.Name(), bufSize, rep.FramesDelivered, rep.FramesOffered)
			}
			if rep.WeightDelivered > rep.WeightOffered+1e-9 {
				t.Errorf("%s B=%d: weight %v > offered %v", policy.Name(), bufSize, rep.WeightDelivered, rep.WeightOffered)
			}
			if rep.PacketsServed > rep.PacketsOffered {
				t.Errorf("%s B=%d: served %d > offered %d", policy.Name(), bufSize, rep.PacketsServed, rep.PacketsOffered)
			}
		}
	}
}

// With B=0 the buffered simulator degenerates to bufferless OSP under the
// same priorities: randPrBuffer(B=0) must match core.RandPr{ActiveOnly}
// run with the same seed (identical priority draws).
func TestBufferZeroMatchesOSP(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		vi := videoInstance(t, seed)
		bufRep, err := SimulateBuffered(vi, &RandPrBuffer{}, 0, rand.New(rand.NewSource(seed+50)))
		if err != nil {
			t.Fatal(err)
		}
		ospRep, err := Simulate(vi, &core.RandPr{ActiveOnly: true}, rand.New(rand.NewSource(seed+50)))
		if err != nil {
			t.Fatal(err)
		}
		if bufRep.WeightDelivered != ospRep.WeightDelivered {
			t.Errorf("seed %d: buffered B=0 %v != OSP %v", seed, bufRep.WeightDelivered, ospRep.WeightDelivered)
		}
	}
}

// Buffers should help on average: goodput with B=8 must be at least the
// B=0 goodput summed over seeds, for every policy.
func TestBuffersHelpOnAverage(t *testing.T) {
	for _, policy := range BufferPolicies() {
		var b0, b8 float64
		for seed := int64(0); seed < 25; seed++ {
			vi := videoInstance(t, seed)
			rep0, err := SimulateBuffered(vi, policy, 0, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			rep8, err := SimulateBuffered(vi, policy, 8, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			b0 += rep0.WeightDelivered
			b8 += rep8.WeightDelivered
		}
		if b8 < b0 {
			t.Errorf("%s: B=8 total %v < B=0 total %v — buffers should help", policy.Name(), b8, b0)
		}
	}
}

// A large enough buffer delivers everything: with B ≥ total packets and
// drain, no packet is ever evicted.
func TestHugeBufferDeliversAll(t *testing.T) {
	vi := videoInstance(t, 9)
	rep, err := SimulateBuffered(vi, FIFOBuffer{}, vi.TotalPackets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesDelivered != rep.FramesOffered {
		t.Errorf("huge buffer delivered %d of %d", rep.FramesDelivered, rep.FramesOffered)
	}
	if rep.PacketsServed != rep.PacketsOffered {
		t.Errorf("huge buffer served %d of %d packets", rep.PacketsServed, rep.PacketsOffered)
	}
}

func TestPacketHeapOrdering(t *testing.T) {
	h := packetHeap{
		{frame: 0, prio: 0.5, seq: 2},
		{frame: 1, prio: 0.9, seq: 1},
		{frame: 2, prio: 0.9, seq: 0},
	}
	// Less: higher prio first; ties by lower seq.
	if !h.Less(2, 0) {
		t.Error("higher priority should rank first")
	}
	if !h.Less(2, 1) {
		t.Error("equal priority should tie-break by seq")
	}
}

func TestFIFOBufferPriority(t *testing.T) {
	var p FIFOBuffer
	if p.Priority(0, 1) <= p.Priority(0, 2) {
		t.Error("earlier packets must outrank later ones")
	}
}
