// Package analysis verifies the paper's Theorem 1 proof chain numerically
// on concrete instances. Every inequality the proof composes —
//
//	Lemma 1   Pr[S ∈ ALG] = w(S)/w(N[S])                 (exact survival law)
//	Lemma 2   Σ aᵢ²/bᵢ ≥ (Σ aᵢ)²/Σ bᵢ                    (Cauchy–Schwarz form)
//	Lemma 3   E[w(ALG)] ≥ w(C′)²/Σ_{S∈C′} w(N[S])        (any collection C′)
//	Lemma 4   E[w(ALG)] ≥ w(OPT)²/(kmax·w(C))            (C′ = OPT, disjointness)
//	Lemma 5   E[w(ALG)] ≥ w(C)²/(n·mean(σ·σ$))           (C′ = C, element sum)
//	Eq. (4)   n·mean(σ$) ≤ kmax·w(C)                      (handshake bound)
//	Theorem 1 E[w(ALG)] ≥ w(OPT)/(kmax·sqrt(mean(σσ$)/mean(σ$)))
//
// — is evaluated and checked on the given instance, so a reader can watch
// the proof "execute" on real data (examples/proofchain) and the test
// suite can assert the chain holds on thousands of random instances.
package analysis

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/setsystem"
)

// Chain holds every intermediate quantity of the Theorem 1 proof for one
// instance, plus the verdicts.
type Chain struct {
	// EAlg is the exact expected benefit Σ w(S)²/w(N[S]) (Lemma 1).
	EAlg float64
	// OPTWeight is the weight of the optimal packing handed to Verify.
	OPTWeight float64

	// Lemma3OPT is the Lemma 3 lower bound with C′ = OPT:
	// w(OPT)²/Σ_{S∈OPT} w(N[S]).
	Lemma3OPT float64
	// Lemma4 is w(OPT)²/(kmax·w(C)), obtained from Lemma3OPT by the
	// disjointness argument Σ_{S∈OPT} w(N[S]) ≤ kmax·w(C).
	Lemma4 float64
	// Lemma3All is the Lemma 3 bound with C′ = C.
	Lemma3All float64
	// Lemma5 is w(C)²/(n·mean(σσ$)), obtained from Lemma3All by summing
	// neighborhoods element-wise.
	Lemma5 float64
	// Eq4LHS and Eq4RHS are the two sides of Eq. (4): n·mean(σ$) and
	// kmax·w(C).
	Eq4LHS, Eq4RHS float64
	// Theorem1 is w(OPT)/Theorem1Bound, the final guarantee.
	Theorem1 float64

	// Stats are the instance statistics backing the bounds.
	Stats setsystem.Stats
}

// ErrChainBroken is returned when any inequality of the proof chain fails
// (which would indicate a bug in the engine or the formulas, not in the
// paper).
var ErrChainBroken = errors.New("analysis: proof chain inequality violated")

const tol = 1e-9

// Verify computes the full chain for a unit-capacity instance and its
// optimal packing, returning an error naming the first broken inequality.
func Verify(inst *setsystem.Instance, opt []setsystem.SetID) (*Chain, error) {
	if !inst.IsUnitCapacity() {
		return nil, errors.New("analysis: Theorem 1 chain requires unit capacities")
	}
	st := setsystem.Compute(inst)
	nw := core.NeighborhoodWeights(inst)

	c := &Chain{Stats: st}
	c.EAlg = core.RandPrExpectedBenefit(inst)
	c.OPTWeight = inst.Weight(opt)

	// Lemma 3 with C′ = OPT.
	var optNbr float64
	for _, s := range opt {
		optNbr += nw[s]
	}
	if optNbr > 0 {
		c.Lemma3OPT = c.OPTWeight * c.OPTWeight / optNbr
	}
	totalW := st.TotalWeight
	if totalW > 0 {
		c.Lemma4 = c.OPTWeight * c.OPTWeight / (float64(st.KMax) * totalW)
	}

	// Lemma 3 with C′ = C.
	var allNbr float64
	for _, x := range nw {
		allNbr += x
	}
	if allNbr > 0 {
		c.Lemma3All = totalW * totalW / allNbr
	}
	if st.N > 0 && st.SigmaSigmaW > 0 {
		c.Lemma5 = totalW * totalW / (float64(st.N) * st.SigmaSigmaW)
	}

	c.Eq4LHS = float64(st.N) * st.SigmaWMean
	c.Eq4RHS = float64(st.KMax) * totalW

	if b := setsystem.Theorem1Bound(st); b > 0 {
		c.Theorem1 = c.OPTWeight / b
	}

	return c, c.check()
}

// check asserts every inequality of the chain.
func (c *Chain) check() error {
	steps := []struct {
		name     string
		lhs, rhs float64 // require lhs ≥ rhs − tol
	}{
		{"Lemma 3 (C'=OPT): E[ALG] ≥ w(OPT)²/Σ w(N[S])", c.EAlg, c.Lemma3OPT},
		{"Lemma 4: Lemma3(OPT) ≥ w(OPT)²/(kmax·w(C))", c.Lemma3OPT, c.Lemma4},
		{"Lemma 3 (C'=C): E[ALG] ≥ w(C)²/Σ w(N[S])", c.EAlg, c.Lemma3All},
		{"Lemma 5: Lemma3(C) ≥ w(C)²/(n·mean σσ$)", c.Lemma3All, c.Lemma5},
		{"Eq.(4): kmax·w(C) ≥ n·mean σ$", c.Eq4RHS, c.Eq4LHS},
		{"Theorem 1: E[ALG] ≥ w(OPT)/bound", c.EAlg, c.Theorem1},
	}
	for _, s := range steps {
		if s.lhs < s.rhs-tol {
			return fmt.Errorf("%w: %s (%v < %v)", ErrChainBroken, s.name, s.lhs, s.rhs)
		}
	}
	return nil
}

// Describe renders the chain as human-readable proof steps.
func (c *Chain) Describe() string {
	return fmt.Sprintf(
		`Theorem 1 proof chain on this instance (m=%d, n=%d, kmax=%d):
  E[w(ALG)]  = Σ w(S)²/w(N[S])              = %8.4f   (Lemma 1)
  ≥ w(OPT)²/Σ_{S∈OPT} w(N[S])               = %8.4f   (Lemma 3, C'=OPT)
  ≥ w(OPT)²/(kmax·w(C))                     = %8.4f   (Lemma 4)
  E[w(ALG)] ≥ w(C)²/Σ_S w(N[S])             = %8.4f   (Lemma 3, C'=C)
  ≥ w(C)²/(n·mean(σ·σ$))                    = %8.4f   (Lemma 5)
  Eq.(4): n·mean(σ$) = %.4f ≤ kmax·w(C) = %.4f
  Theorem 1 floor: w(OPT)/bound             = %8.4f
  w(OPT) = %.4f; every inequality verified.`,
		c.Stats.M, c.Stats.N, c.Stats.KMax,
		c.EAlg, c.Lemma3OPT, c.Lemma4, c.Lemma3All, c.Lemma5,
		c.Eq4LHS, c.Eq4RHS, c.Theorem1, c.OPTWeight)
}

// Lemma2 checks the Cauchy–Schwarz inequality of Lemma 2 on arbitrary
// positive vectors and returns both sides: Σ aᵢ²/bᵢ and (Σ aᵢ)²/Σ bᵢ.
func Lemma2(a, b []float64) (lhs, rhs float64, err error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, 0, fmt.Errorf("analysis: Lemma 2 needs equal-length nonempty vectors")
	}
	var sumA, sumB float64
	for i := range a {
		if a[i] <= 0 || b[i] <= 0 {
			return 0, 0, fmt.Errorf("analysis: Lemma 2 needs positive entries")
		}
		lhs += a[i] * a[i] / b[i]
		sumA += a[i]
		sumB += b[i]
	}
	rhs = sumA * sumA / sumB
	return lhs, rhs, nil
}

// SurvivalProbabilities returns the exact per-set survival probabilities
// w(S)/w(N[S]) of randPr on a unit-capacity instance.
func SurvivalProbabilities(inst *setsystem.Instance) []float64 {
	nw := core.NeighborhoodWeights(inst)
	out := make([]float64, inst.NumSets())
	for i, w := range inst.Weights {
		if nw[i] > 0 {
			out[i] = w / nw[i]
		}
	}
	return out
}
