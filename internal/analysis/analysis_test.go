package analysis

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/offline"
	"repro/internal/setsystem"
	"repro/internal/workload"
)

func triangle(t *testing.T) *setsystem.Instance {
	t.Helper()
	var b setsystem.Builder
	a := b.AddSet(1)
	bb := b.AddSet(2)
	c := b.AddSet(3)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	return b.MustBuild()
}

func TestVerifyTriangle(t *testing.T) {
	inst := triangle(t)
	sol, err := offline.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := Verify(inst, sol.Sets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chain.EAlg-14.0/6.0) > 1e-12 {
		t.Errorf("EAlg = %v, want 14/6", chain.EAlg)
	}
	if chain.OPTWeight != 3 {
		t.Errorf("OPTWeight = %v, want 3", chain.OPTWeight)
	}
	// Lemma 3 with OPT={C}: 9/6 = 1.5; Lemma 4: 9/(2·6) = 0.75.
	if math.Abs(chain.Lemma3OPT-1.5) > 1e-12 {
		t.Errorf("Lemma3OPT = %v, want 1.5", chain.Lemma3OPT)
	}
	if math.Abs(chain.Lemma4-0.75) > 1e-12 {
		t.Errorf("Lemma4 = %v, want 0.75", chain.Lemma4)
	}
	// Eq.(4): n·meanσ$ = 12 ≤ kmax·w(C) = 12 (equality: all sets size kmax).
	if math.Abs(chain.Eq4LHS-12) > 1e-9 || math.Abs(chain.Eq4RHS-12) > 1e-9 {
		t.Errorf("Eq4 = %v vs %v, want 12 = 12", chain.Eq4LHS, chain.Eq4RHS)
	}
	if !strings.Contains(chain.Describe(), "Lemma 4") {
		t.Error("Describe missing proof steps")
	}
}

// The full chain must hold on random weighted instances — this is the
// numerical execution of the Theorem 1 proof.
func TestChainHoldsOnRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst, err := workload.Uniform(workload.UniformConfig{
			M: 4 + int(seed%7+7)%7, N: 10 + int(seed%13+13)%13, Load: 3, MinLoad: 1,
			WeightFn: workload.ZipfWeights(1, 5),
		}, rng)
		if err != nil {
			t.Logf("gen: %v", err)
			return false
		}
		sol, err := offline.Exact(inst)
		if err != nil {
			t.Logf("opt: %v", err)
			return false
		}
		if _, err := Verify(inst, sol.Sets); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestVerifyRejectsVariableCapacity(t *testing.T) {
	var b setsystem.Builder
	s := b.AddSet(1)
	b.AddElementCap(2, s)
	inst := b.MustBuild()
	if _, err := Verify(inst, nil); err == nil {
		t.Error("variable capacity should be rejected")
	}
}

func TestChainBrokenDetection(t *testing.T) {
	// Hand a deliberately wrong "optimal" collection whose weight exceeds
	// anything achievable: the chain must fail the Theorem 1 step.
	inst := triangle(t)
	// All three sets as "OPT" is infeasible (w=6): Theorem 1 floor becomes
	// 6/2.83 = 2.12 < E[ALG] = 2.33 — actually still passes. Force failure
	// by scaling: use duplicate heavy sets. Simpler: check Lemma 3 with an
	// inflated OPT weight fails.
	chain, err := Verify(inst, []setsystem.SetID{0, 1, 2})
	// w(OPT)=6: Lemma3OPT = 36/18 = 2 ≤ EAlg 2.33 → passes;
	// Lemma4 = 36/12 = 3 > Lemma3OPT = 2 → Lemma 4 step breaks, as it
	// must: the disjointness assumption is violated.
	if err == nil {
		t.Fatalf("expected chain break for non-disjoint OPT, got chain %+v", chain)
	}
	if !errors.Is(err, ErrChainBroken) {
		t.Errorf("err = %v, want ErrChainBroken", err)
	}
}

func TestLemma2(t *testing.T) {
	lhs, rhs, err := Lemma2([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if lhs < rhs {
		t.Errorf("Lemma 2 violated: %v < %v", lhs, rhs)
	}
	// Equality when a and b are proportional.
	lhs, rhs, err = Lemma2([]float64{2, 4}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lhs-rhs) > 1e-12 {
		t.Errorf("Lemma 2 equality case: %v != %v", lhs, rhs)
	}
}

func TestLemma2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = 0.1 + rng.Float64()*10
			b[i] = 0.1 + rng.Float64()*10
		}
		lhs, rhs, err := Lemma2(a, b)
		return err == nil && lhs >= rhs-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLemma2Errors(t *testing.T) {
	if _, _, err := Lemma2(nil, nil); err == nil {
		t.Error("empty vectors should error")
	}
	if _, _, err := Lemma2([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := Lemma2([]float64{0}, []float64{1}); err == nil {
		t.Error("non-positive entries should error")
	}
}

func TestSurvivalProbabilities(t *testing.T) {
	inst := triangle(t)
	ps := SurvivalProbabilities(inst)
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i := range want {
		if math.Abs(ps[i]-want[i]) > 1e-12 {
			t.Errorf("ps[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
	// Sum of survival probabilities equals E[|ALG|] for unweighted... here
	// weighted: Σ w·p = EAlg.
	var e float64
	for i, p := range ps {
		e += inst.Weights[i] * p
	}
	if math.Abs(e-14.0/6.0) > 1e-12 {
		t.Errorf("Σ w·p = %v, want 14/6", e)
	}
}
