package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromUniformRange(t *testing.T) {
	for _, w := range []float64{0.5, 1, 2, 8, 100} {
		for _, u := range []float64{0, 0.25, 0.5, 0.999999} {
			p := FromUniform(u, w)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Errorf("FromUniform(%v, %v) = %v out of [0,1]", u, w, p)
			}
		}
	}
}

func TestFromUniformMonotoneInU(t *testing.T) {
	for _, w := range []float64{0.5, 1, 3, 10} {
		prev := -1.0
		for u := 0.0; u < 1; u += 0.01 {
			p := FromUniform(u, w)
			if p < prev {
				t.Fatalf("FromUniform not monotone at u=%v, w=%v", u, w)
			}
			prev = p
		}
	}
}

func TestNonPositiveWeightLoses(t *testing.T) {
	if got := FromUniform(0.9, 0); got != 0 {
		t.Errorf("weight 0 priority = %v, want 0", got)
	}
	if got := FromUniform(0.9, -1); got != 0 {
		t.Errorf("negative weight priority = %v, want 0", got)
	}
}

// The weighted race behind Lemma 1: among priorities r_i ~ R_{w_i}, set i
// wins with probability w_i / Σ_j w_j.
func TestRaceProbability(t *testing.T) {
	weights := []float64{1, 2, 5}
	total := 8.0
	const trials = 200_000
	rng := rand.New(rand.NewSource(7))
	wins := make([]int, len(weights))
	for t := 0; t < trials; t++ {
		best, bestP := -1, -1.0
		for i, w := range weights {
			if p := Sample(rng, w); p > bestP {
				best, bestP = i, p
			}
		}
		wins[best]++
	}
	for i, w := range weights {
		got := float64(wins[i]) / trials
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("set %d won %.4f of races, want %.4f", i, got, want)
		}
	}
}

// CDF check: Pr[R_w <= x] = x^w.
func TestCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const trials = 100_000
	for _, w := range []float64{0.5, 2, 4} {
		for _, x := range []float64{0.3, 0.7} {
			count := 0
			for i := 0; i < trials; i++ {
				if Sample(rng, w) <= x {
					count++
				}
			}
			got := float64(count) / trials
			want := math.Pow(x, w)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("Pr[R_%v <= %v] = %.4f, want %.4f", w, x, got, want)
			}
		}
	}
}
