// Package dist implements the paper's priority law R_w (Section 3): the
// distribution on [0,1] with CDF F(x) = x^w. randPr draws each set's
// priority r(S) ~ R_{w(S)}; when an element picks its highest-priority
// parent, set S beats its competitors T with probability
//
//	Pr[r(S) = max] = w(S) / w({S} ∪ T),
//
// the weighted race that Lemma 1 turns into the exact survival law
// Pr[S ∈ ALG] = w(S)/w(N[S]). The inverse-transform form u^(1/w) also
// powers the distributed variant: a hash-derived uniform variate maps to
// an R_w priority with zero coordination (Section 3.1).
package dist

import (
	"math"
	"math/rand"
)

// FromUniform maps a uniform [0,1) variate to an R_w priority by inverse
// transform: F(x) = x^w gives F⁻¹(u) = u^(1/w). Non-positive weights get
// priority 0, so they lose every contested element (a weight-0 set pays
// nothing either way).
func FromUniform(u, w float64) float64 {
	if w <= 0 {
		return 0
	}
	return math.Pow(u, 1/w)
}

// Sample draws one priority r ~ R_w using rng.
func Sample(rng *rand.Rand, w float64) float64 {
	return FromUniform(rng.Float64(), w)
}
