package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/setsystem"
	"repro/internal/stats"
	"repro/internal/workload"
)

// expX6 reproduces Theorem 4, the variable-capacity generalization: with
// per-element capacities b(u) and adjusted load ν(u) = σ(u)/b(u), randPr is
// 16e·kmax·sqrt(mean(ν·σ$)/mean(σ$))-competitive. Unlike X2–X5 there is no
// closed-form E[ALG] (Lemma 1 is unit-capacity), so the expectation is
// estimated by Monte Carlo.
func expX6() Experiment {
	return Experiment{
		ID:    "X6",
		Title: "Theorem 4 — variable capacities and adjusted load",
		Claim: "OPT/E[ALG] ≤ 16e·kmax·sqrt(mean(ν·σ$)/mean(σ$))",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(20)
			const mcTrials = 400
			type cell struct{ load, capacity int }
			cells := []cell{{4, 1}, {4, 2}, {8, 2}, {8, 4}, {12, 3}, {16, 4}}
			if cfg.Quick {
				cells = []cell{{4, 2}, {8, 4}}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Theorem 4 sweep (m=16, n=32, Zipf weights, %d draws/row, %d MC runs/draw)", draws, mcTrials),
				"σ", "b", "mean ν", "measured OPT/E[ALG]", "Thm4 bound", "ratio ≤ bound?")
			for _, c := range cells {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(c.load*100+c.capacity)))
				var ratioAcc, boundAcc stats.Accumulator
				var lastStats setsystem.Stats
				for d := 0; d < draws; d++ {
					inst, err := workload.Uniform(workload.UniformConfig{
						M: 16, N: 32, Load: c.load, Capacity: c.capacity,
						WeightFn: workload.ZipfWeights(1, 4),
					}, rng)
					if err != nil {
						return err
					}
					mean, _, err := core.MeanBenefit(inst, &core.RandPr{}, mcTrials, cfg.Seed+int64(d))
					if err != nil {
						return err
					}
					sol, err := offline.Exact(inst)
					if err != nil {
						return err
					}
					if mean <= 0 {
						continue
					}
					st := setsystem.Compute(inst)
					ratioAcc.Add(sol.Weight / mean)
					boundAcc.Add(setsystem.Theorem4Bound(st))
					lastStats = st
				}
				tbl.AddRow(c.load, c.capacity, f2(lastStats.NuMean),
					f2(ratioAcc.Mean()), f2(boundAcc.Mean()),
					check(ratioAcc.Mean() <= boundAcc.Mean()+1e-9))
			}
			return tbl.Render(w)
		},
	}
}
