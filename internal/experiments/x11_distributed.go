package experiments

import (
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/stats"
	"repro/internal/workload"
)

// expX11 reproduces the distributed-implementation claim of Section 3.1:
// deriving priorities from a shared hash function ("any off-the-shelf hash
// function would do"; kmax·σmax-wise independence suffices in theory)
// reproduces the centralized randPr statistics. Three implementations are
// compared on one instance against the Lemma 1 closed form: true random
// priorities, SplitMix64 hash priorities, and a d-wise independent
// polynomial family.
func expX11() Experiment {
	return Experiment{
		ID:    "X11",
		Title: "Distributed randPr — hash priorities match centralized behaviour",
		Claim: "hash-derived R_w priorities reproduce E[w(ALG)] = Σ w(S)²/w(N[S])",
		Run: func(cfg Config, w io.Writer) error {
			trials := cfg.trials(20000)
			rng := rand.New(rand.NewSource(cfg.Seed))
			inst, err := workload.Uniform(workload.UniformConfig{
				M: 24, N: 48, Load: 4,
				WeightFn: workload.ZipfWeights(1, 6),
			}, rng)
			if err != nil {
				return err
			}
			want := core.RandPrExpectedBenefit(inst)

			var central, mixed, poly stats.Accumulator
			for t := 0; t < trials; t++ {
				res, err := core.Run(inst, &core.RandPr{}, rand.New(rand.NewSource(cfg.Seed+int64(t))))
				if err != nil {
					return err
				}
				central.Add(res.Benefit)

				res, err = core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(cfg.Seed) + uint64(t)}}, nil)
				if err != nil {
					return err
				}
				mixed.Add(res.Benefit)

				pf, err := hashpr.NewPolyFamily(8, rng)
				if err != nil {
					return err
				}
				res, err = core.Run(inst, &core.HashRandPr{Hasher: pf}, nil)
				if err != nil {
					return err
				}
				poly.Add(res.Benefit)
			}

			tbl := stats.NewTable(
				"Distributed priority implementations vs Lemma 1 closed form "+
					"(m=24, n=48, Zipf weights)",
				"implementation", "E[w(ALG)] measured", "closed form", "z-score", "match (|z|<4)?")
			for _, row := range []struct {
				name string
				acc  *stats.Accumulator
			}{
				{"centralized RandPr", &central},
				{"SplitMix64 hash", &mixed},
				{"8-wise independent poly", &poly},
			} {
				z := 0.0
				if se := row.acc.StdErr(); se > 0 {
					z = math.Abs(row.acc.Mean()-want) / se
				}
				tbl.AddRow(row.name, row.acc.Summarize().String(), f2(want), f2(z), check(z < 4))
			}
			return tbl.Render(w)
		},
	}
}
