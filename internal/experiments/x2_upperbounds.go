package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/offline"
	"repro/internal/setsystem"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The unit-capacity upper-bound experiments (X2–X5) share one skeleton:
// generate instances from a parameterized family, compute the exact
// expected benefit of randPr from the Lemma 1 closed form, compute exact
// OPT by branch-and-bound, and compare the measured competitive ratio
// OPT/E[ALG] to the theorem's closed-form bound.

// ratioRow is one table row of a bound experiment.
type ratioRow struct {
	label    string
	st       setsystem.Stats
	ratio    float64 // measured OPT / E[ALG], averaged over instances
	bound    float64 // theorem bound, averaged over instances
	altBound float64 // secondary bound (e.g. Corollary 6), 0 if unused
}

// measureRatio draws `draws` instances via gen and returns the averaged
// measured ratio and bound values.
func measureRatio(draws int, gen func(i int) (*setsystem.Instance, error),
	bound func(setsystem.Stats) float64, altBound func(setsystem.Stats) float64) (ratioRow, error) {

	var row ratioRow
	var ratioAcc, boundAcc, altAcc stats.Accumulator
	for i := 0; i < draws; i++ {
		inst, err := gen(i)
		if err != nil {
			return row, err
		}
		ealg := core.RandPrExpectedBenefit(inst)
		sol, err := offline.Exact(inst)
		if err != nil {
			return row, err
		}
		if ealg <= 0 {
			continue
		}
		st := setsystem.Compute(inst)
		ratioAcc.Add(sol.Weight / ealg)
		boundAcc.Add(bound(st))
		if altBound != nil {
			altAcc.Add(altBound(st))
		}
		row.st = st // keep the last draw's stats for display
	}
	row.ratio = ratioAcc.Mean()
	row.bound = boundAcc.Mean()
	row.altBound = altAcc.Mean()
	return row, nil
}

// expX2 reproduces Theorem 1 and Corollary 6 on weighted random instances:
// the measured ratio OPT/E[randPr] never exceeds
// kmax·sqrt(mean(σσ$)/mean(σ$)) ≤ kmax·sqrt(σmax), and the refined bound
// tracks the load sweep.
func expX2() Experiment {
	return Experiment{
		ID:    "X2",
		Title: "Theorem 1 + Corollary 6 — randPr upper bound, weighted unit capacity",
		Claim: "OPT/E[ALG] ≤ kmax·sqrt(mean(σ·σ$)/mean(σ$)) ≤ kmax·sqrt(σmax)",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(30)
			loads := []int{2, 3, 4, 6, 8, 12, 16}
			if cfg.Quick {
				loads = []int{2, 4, 8}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Theorem 1 sweep (m=18, n=36, heterogeneous loads 1..σ, Zipf weights, %d draws/row)", draws),
				"σ target", "kmax", "σmax", "measured OPT/E[ALG]", "Thm1 bound", "Cor6 bound", "ratio ≤ Thm1?", "Thm1 ≤ Cor6?")
			for _, load := range loads {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(load)))
				row, err := measureRatio(draws, func(int) (*setsystem.Instance, error) {
					return workload.Uniform(workload.UniformConfig{
						M: 18, N: 36, Load: load, MinLoad: 1,
						WeightFn: workload.ZipfWeights(1, 4),
					}, rng)
				}, setsystem.Theorem1Bound, setsystem.Corollary6Bound)
				if err != nil {
					return err
				}
				tbl.AddRow(load, row.st.KMax, row.st.SigmaMax,
					f2(row.ratio), f2(row.bound), f2(row.altBound),
					check(row.ratio <= row.bound+1e-9),
					check(row.bound <= row.altBound+1e-9))
			}
			return tbl.Render(w)
		},
	}
}

// expX3 reproduces Theorem 5: with uniform set size k the ratio is bounded
// by k·mean(σ²)/mean(σ)².
func expX3() Experiment {
	return Experiment{
		ID:    "X3",
		Title: "Theorem 5 — uniform set size, heterogeneous loads",
		Claim: "E[|ALG|] ≥ |OPT|·mean(σ)²/(k·mean(σ²)), i.e. ratio ≤ k·mean(σ²)/mean(σ)²",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(30)
			ks := []int{2, 3, 4, 5, 6}
			if cfg.Quick {
				ks = []int{2, 4}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Theorem 5 sweep (m=18, n=40, unweighted, %d draws/row)", draws),
				"k", "mean σ", "mean σ²", "measured OPT/E[ALG]", "Thm5 bound", "ratio ≤ bound?")
			for _, k := range ks {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(100*k)))
				row, err := measureRatio(draws, func(int) (*setsystem.Instance, error) {
					return workload.FixedSize(workload.FixedSizeConfig{M: 18, N: 40, K: k}, rng)
				}, setsystem.Theorem5Bound, nil)
				if err != nil {
					return err
				}
				tbl.AddRow(k, f2(row.st.SigmaMean), f2(row.st.Sigma2),
					f2(row.ratio), f2(row.bound), check(row.ratio <= row.bound+1e-9))
			}
			return tbl.Render(w)
		},
	}
}

// expX4 reproduces Corollary 7: on biregular instances (uniform size and
// load) the ratio is at most k, independent of σ — the only bound in the
// paper with no load dependence. The sweep shows the measured ratio
// staying below k while σ quadruples.
func expX4() Experiment {
	return Experiment{
		ID:    "X4",
		Title: "Corollary 7 — biregular instances: ratio ≤ k independent of σ",
		Claim: "uniform size k and uniform load σ ⇒ E[|ALG|] ≥ |OPT|/k for every σ",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(30)
			const m, k = 24, 4
			sigmas := []int{2, 3, 4, 6, 8, 12}
			if cfg.Quick {
				sigmas = []int{2, 4, 8}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Corollary 7 sweep (m=%d, k=%d biregular, %d draws/row)", m, k, draws),
				"σ", "n", "measured OPT/E[ALG]", "bound k", "ratio ≤ k?")
			for _, sigma := range sigmas {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*sigma)))
				row, err := measureRatio(draws, func(int) (*setsystem.Instance, error) {
					return workload.Regular(workload.RegularConfig{M: m, K: k, Sigma: sigma}, rng)
				}, setsystem.Corollary7Bound, nil)
				if err != nil {
					return err
				}
				tbl.AddRow(sigma, row.st.N, f2(row.ratio), k, check(row.ratio <= float64(k)+1e-9))
			}
			return tbl.Render(w)
		},
	}
}

// expX5 reproduces Theorem 6: with uniform element load σ (set sizes
// mixed), the ratio is bounded by mean(k)·sqrt(σ).
func expX5() Experiment {
	return Experiment{
		ID:    "X5",
		Title: "Theorem 6 — uniform load, mixed set sizes",
		Claim: "E[|ALG|] ≥ |OPT|/(mean(k)·sqrt(σ))",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(30)
			loads := []int{2, 3, 4, 6, 8}
			if cfg.Quick {
				loads = []int{2, 4}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Theorem 6 sweep (m=15, n=40, unweighted, %d draws/row)", draws),
				"σ", "mean k", "measured OPT/E[ALG]", "Thm6 bound", "ratio ≤ bound?")
			for _, load := range loads {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(10000*load)))
				row, err := measureRatio(draws, func(int) (*setsystem.Instance, error) {
					return uniformLoadStrict(rng, load)
				}, setsystem.Theorem6Bound, nil)
				if err != nil {
					return err
				}
				tbl.AddRow(load, f2(row.st.KMean), f2(row.ratio), f2(row.bound),
					check(row.ratio <= row.bound+1e-9))
			}
			return tbl.Render(w)
		},
	}
}

// uniformLoadStrict draws Uniform instances until one has strictly uniform
// element load (the generator pads untouched sets with load-1 elements,
// which would break Theorem 6's hypothesis).
func uniformLoadStrict(rng *rand.Rand, load int) (*setsystem.Instance, error) {
	for attempt := 0; attempt < 200; attempt++ {
		inst, err := workload.Uniform(workload.UniformConfig{M: 15, N: 40, Load: load}, rng)
		if err != nil {
			return nil, err
		}
		if _, ok := setsystem.UniformLoad(inst); ok {
			return inst, nil
		}
	}
	return nil, fmt.Errorf("experiments: could not draw a uniform-load instance with σ=%d", load)
}
