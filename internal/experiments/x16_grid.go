package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/setsystem"
	"repro/internal/stats"
)

// expX16 reproduces the warm-up lower bound that opens Section 4.2: the
// t×t grid whose row elements force one survivor per row and whose random
// permutation elements collide any two survivors in different rows with
// constant probability, leaving O(log t) completions against an OPT of t
// (a full column) — the Ω(t/log t) intuition behind Theorem 2.
func expX16() Experiment {
	return Experiment{
		ID:    "X16",
		Title: "Section 4.2 warm-up — the t×t grid lower bound (Ω(t/log t))",
		Claim: "OPT ≥ t (a column) while every online algorithm completes O(log t) sets",
		Run: func(cfg Config, w io.Writer) error {
			ts := []int{3, 4, 6, 8, 12, 16}
			draws := cfg.trials(10)
			if cfg.Quick {
				ts = []int{3, 4}
				draws = 3
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Grid construction sweep (%d draws/row)", draws),
				"t", "m=t²", "σmax", "OPT (column)", "E[randPr]", "E[greedyFirst]", "ratio", "t/ln t")
			for _, t := range ts {
				var randAcc, greedyAcc stats.Accumulator
				var sigmaMax int
				for d := 0; d < draws; d++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(t*100+d)))
					gi, err := lowerbound.NewGrid(t, rng)
					if err != nil {
						return err
					}
					if err := gi.VerifyColumns(); err != nil {
						return err
					}
					st := setsystem.Compute(gi.Inst)
					sigmaMax = st.SigmaMax
					res, err := core.Run(gi.Inst, &core.RandPr{}, rng)
					if err != nil {
						return err
					}
					randAcc.Add(res.Benefit)
					res, err = core.Run(gi.Inst, &core.GreedyFirstListed{}, nil)
					if err != nil {
						return err
					}
					greedyAcc.Add(res.Benefit)
				}
				ratio := math.Inf(1)
				if randAcc.Mean() > 0 {
					ratio = float64(t) / randAcc.Mean()
				}
				tbl.AddRow(t, t*t, sigmaMax, t, f2(randAcc.Mean()), f2(greedyAcc.Mean()),
					f1(ratio), f1(float64(t)/math.Log(float64(t))))
			}
			if err := tbl.Render(w); err != nil {
				return err
			}
			_, err := fmt.Fprintln(w, "\n(E[ALG] grows only logarithmically while OPT = t: the measured"+
				" ratio tracks t/ln t, the Section 4.2 warm-up for Theorem 2.)")
			return err
		},
	}
}
