package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The cheap experiments also run at FULL parameter sweeps in CI (skipped
// under -short): this guards the exact configurations EXPERIMENTS.md
// records, not just the shrunken quick variants.
func TestFullModeCheapExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps skipped in -short mode")
	}
	// X7 and X16 are fast even at full scale; X2/X3/X4/X5 with a reduced
	// draw count keep their full sweeps but cut Monte-Carlo repetition.
	cases := []struct {
		id     string
		trials int
	}{
		{"X7", 0},
		{"X16", 3},
		{"X2", 5},
		{"X3", 5},
		{"X4", 5},
		{"X5", 5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			e, err := ByID(c.id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(Config{Seed: 1, Trials: c.trials}, &buf); err != nil {
				t.Fatal(err)
			}
			if strings.Contains(buf.String(), "NO") {
				t.Errorf("%s full-mode failed verdicts:\n%s", c.id, buf.String())
			}
		})
	}
}

// Reproducibility: the same seed must give byte-identical experiment
// output (the whole pipeline is deterministic given the seed).
func TestExperimentsDeterministicPerSeed(t *testing.T) {
	e, err := ByID("X7")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := e.Run(Config{Seed: 42, Quick: true}, &a); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(Config{Seed: 42, Quick: true}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("X7 output differs across identical-seed runs")
	}

	e16, err := ByID("X16")
	if err != nil {
		t.Fatal(err)
	}
	a.Reset()
	b.Reset()
	if err := e16.Run(Config{Seed: 42, Quick: true}, &a); err != nil {
		t.Fatal(err)
	}
	if err := e16.Run(Config{Seed: 42, Quick: true}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("X16 output differs across identical-seed runs")
	}
}
