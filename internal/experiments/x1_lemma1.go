package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/setsystem"
	"repro/internal/stats"
	"repro/internal/workload"
)

// expX1 reproduces Lemma 1: under randPr, every set S survives with
// probability exactly w(S)/w(N[S]). The experiment runs randPr many times
// on fixed weighted instances and compares the empirical completion
// frequency of every set to the closed form, reporting the worst
// discrepancy in units of the binomial standard error.
func expX1() Experiment {
	return Experiment{
		ID:    "X1",
		Title: "Lemma 1 — exact survival probability of randPr",
		Claim: "Pr[S ∈ ALG] = w(S)/w(N[S]) for every set S (unit capacity)",
		Run: func(cfg Config, w io.Writer) error {
			trials := cfg.trials(200000)
			rng := rand.New(rand.NewSource(cfg.Seed))

			tbl := stats.NewTable(
				fmt.Sprintf("Lemma 1 survival law (%d trials per instance)", trials),
				"instance", "m", "n", "worst |emp − w/w(N[S])|", "worst z-score", "within 4σ?")

			for _, tc := range lemma1Instances(rng) {
				worstAbs, worstZ, err := lemma1Discrepancy(tc.inst, trials, cfg.Seed)
				if err != nil {
					return err
				}
				tbl.AddRow(tc.name, tc.inst.NumSets(), tc.inst.NumElements(),
					fmt.Sprintf("%.4f", worstAbs), f2(worstZ), check(worstZ < 4))
			}
			return tbl.Render(w)
		},
	}
}

type namedInstance struct {
	name string
	inst *setsystem.Instance
}

func lemma1Instances(rng *rand.Rand) []namedInstance {
	var out []namedInstance

	var b setsystem.Builder
	a := b.AddSet(1)
	bb := b.AddSet(2)
	c := b.AddSet(3)
	b.AddElement(a, bb)
	b.AddElement(a, c)
	b.AddElement(bb, c)
	out = append(out, namedInstance{"triangle w=1,2,3", b.MustBuild()})

	inst, err := workload.Uniform(workload.UniformConfig{
		M: 12, N: 24, Load: 3,
		WeightFn: workload.ZipfWeights(1, 8),
	}, rng)
	if err == nil {
		out = append(out, namedInstance{"random zipf m=12", inst})
	}
	inst2, err := workload.Uniform(workload.UniformConfig{M: 8, N: 20, Load: 4}, rng)
	if err == nil {
		out = append(out, namedInstance{"random unweighted m=8", inst2})
	}
	return out
}

// lemma1Discrepancy measures the empirical survival frequency of every set
// against the Lemma 1 closed form and returns the worst absolute gap and
// the worst gap in standard-error units.
func lemma1Discrepancy(inst *setsystem.Instance, trials int, seed int64) (worstAbs, worstZ float64, err error) {
	nw := core.NeighborhoodWeights(inst)
	counts := make([]int, inst.NumSets())
	alg := &core.RandPr{}
	for t := 0; t < trials; t++ {
		rng := rand.New(rand.NewSource(seed + int64(t)*2654435761))
		res, rerr := core.Run(inst, alg, rng)
		if rerr != nil {
			return 0, 0, rerr
		}
		for _, s := range res.Completed {
			counts[s]++
		}
	}
	for i, wgt := range inst.Weights {
		want := 0.0
		if nw[i] > 0 {
			want = wgt / nw[i]
		}
		got := float64(counts[i]) / float64(trials)
		se := math.Sqrt(want*(1-want)/float64(trials)) + 1e-12
		abs := math.Abs(got - want)
		if abs > worstAbs {
			worstAbs = abs
		}
		if z := abs / se; z > worstZ {
			worstZ = z
		}
	}
	return worstAbs, worstZ, nil
}
