package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/offline"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/workload"
)

// expX9 reproduces the paper's motivating scenario (Section 1): video
// frames fragmented into packets squeezed through a bottleneck link.
// It compares the goodput (completed frame weight) of randPr against the
// deterministic router policies and an offline OPT reference.
func expX9() Experiment {
	return Experiment{
		ID:    "X9",
		Title: "Video over a bottleneck router (Section 1 motivation)",
		Claim: "randPr beats size-oblivious policies (taildrop, uniform random) on bursty traffic; weight-greedy heuristics can win on benign traces but have no worst-case guarantee (see X7)",
		Run: func(cfg Config, w io.Writer) error {
			seeds := cfg.trials(20)
			sweeps := []struct {
				streams, frames int
			}{{4, 12}, {8, 12}, {12, 12}}
			if cfg.Quick {
				sweeps = sweeps[:1]
				seeds = 5
			}

			gen := func(sw struct{ streams, frames int }, rng *rand.Rand) (*workload.VideoInstance, error) {
				return workload.Video(workload.VideoConfig{
					Streams: sw.streams, FramesPerStream: sw.frames, Jitter: 3,
				}, rng)
			}
			genBursty := func(sw struct{ streams, frames int }, rng *rand.Rand) (*workload.VideoInstance, error) {
				return workload.Bursty(workload.BurstyConfig{
					Streams: sw.streams, Frames: sw.frames, OnProb: 0.15, OffProb: 0.4,
				}, rng)
			}
			type sweepRow struct {
				label string
				sw    struct{ streams, frames int }
				gen   func(struct{ streams, frames int }, *rand.Rand) (*workload.VideoInstance, error)
			}
			var rows []sweepRow
			for _, sw := range sweeps {
				rows = append(rows, sweepRow{
					label: fmt.Sprintf("Video goodput: %d streams × %d frames, jittered, link capacity 1 (%d seeds)",
						sw.streams, sw.frames, seeds),
					sw: sw, gen: gen,
				})
			}
			// Markov-modulated on/off sources: deeper bursts, the regime
			// the paper's introduction worries about.
			rows = append(rows, sweepRow{
				label: fmt.Sprintf("Video goodput: 8 on/off bursty streams × 12 frames (%d seeds)", seeds),
				sw:    struct{ streams, frames int }{8, 12},
				gen:   genBursty,
			})

			for _, row := range rows {
				sw := row.sw
				tbl := stats.NewTable(row.label,
					"policy", "mean weight delivered", "mean frames", "% of OPT bound")

				accW := make(map[string]*stats.Accumulator)
				accF := make(map[string]*stats.Accumulator)
				var optAcc stats.Accumulator
				var policyNames []string
				for _, p := range router.Policies() {
					accW[p.Name()] = &stats.Accumulator{}
					accF[p.Name()] = &stats.Accumulator{}
					policyNames = append(policyNames, p.Name())
				}

				for s := 0; s < seeds; s++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
					vi, err := row.gen(sw, rng)
					if err != nil {
						return err
					}
					bound, _, err := offline.BestUpperBound(vi.Inst, offline.Options{MaxNodes: 2_000_000})
					if err != nil {
						return err
					}
					optAcc.Add(bound)
					for _, p := range router.Policies() {
						rep, err := router.Simulate(vi, p, rand.New(rand.NewSource(cfg.Seed+int64(1000+s))))
						if err != nil {
							return err
						}
						accW[p.Name()].Add(rep.WeightDelivered)
						accF[p.Name()].Add(float64(rep.FramesDelivered))
					}
				}
				for _, name := range policyNames {
					pct := 0.0
					if optAcc.Mean() > 0 {
						pct = 100 * accW[name].Mean() / optAcc.Mean()
					}
					tbl.AddRow(name, f2(accW[name].Mean()), f2(accF[name].Mean()), f1(pct))
				}
				if err := tbl.Render(w); err != nil {
					return err
				}
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// expX10 reproduces the multi-hop scenario (Section 1): packets crossing a
// line of bounded-capacity switches, each independently running the
// hash-priority rule. The real network (drops propagate) is compared to
// the abstract OSP run the analysis bounds, plus a FIFO baseline.
func expX10() Experiment {
	return Experiment{
		ID:    "X10",
		Title: "Multi-hop scheduling on a switch line (distributed randPr)",
		Claim: "coordination-free hash priorities complete multi-hop tasks; OSP analysis is a conservative bound for the real network",
		Run: func(cfg Config, w io.Writer) error {
			seeds := cfg.trials(20)
			loads := []int{60, 120, 240}
			if cfg.Quick {
				loads = loads[:1]
				seeds = 5
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Multi-hop line, 8 switches, horizon 20 (%d seeds/row)", seeds),
				"packets", "network randPr", "abstract OSP randPr", "greedyFirstListed", "network ≥ abstract?")
			for _, packets := range loads {
				var netAcc, absAcc, fifoAcc stats.Accumulator
				okAll := true
				for s := 0; s < seeds; s++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(packets*100+s)))
					mi, err := workload.Multihop(workload.MultihopConfig{
						Hops: 8, Packets: packets, Horizon: 20,
					}, rng)
					if err != nil {
						return err
					}
					network, abstract, err := router.SimulateMultihop(mi, hashpr.Mixer{Seed: uint64(cfg.Seed) + uint64(s)})
					if err != nil {
						return err
					}
					res, err := core.Run(mi.Inst, &core.GreedyFirstListed{}, nil)
					if err != nil {
						return err
					}
					netAcc.Add(network.WeightDelivered)
					absAcc.Add(abstract.WeightDelivered)
					fifoAcc.Add(res.Benefit)
					if network.WeightDelivered < abstract.WeightDelivered {
						okAll = false
					}
				}
				tbl.AddRow(packets, f2(netAcc.Mean()), f2(absAcc.Mean()), f2(fifoAcc.Mean()), check(okAll))
			}
			return tbl.Render(w)
		},
	}
}
