package experiments

// The X12–X15 experiments cover the three open problems of the paper's
// Section 5 — partial credit (X12), buffers (X13), general packing
// matrices (X15) — plus the ablation study (X14) isolating the design
// choices randPr's analysis rests on. These go beyond the published
// results; they are labelled extensions in DESIGN.md and EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/genpack"
	"repro/internal/hashpr"
	"repro/internal/lowerbound"
	"repro/internal/partial"
	"repro/internal/router"
	"repro/internal/setsystem"
	"repro/internal/stats"
	"repro/internal/workload"
)

// lowerboundDuel adapts lowerbound.RunDuel's signature for the ablation.
func lowerboundDuel(sigma, k int, alg core.Algorithm) (*core.Result, *setsystem.Instance, int, error) {
	return lowerbound.RunDuel(sigma, k, alg)
}

// expX12 measures partial-credit OSP (Section 5, open problem 3): how the
// achievable benefit and the ratio to the (relaxed) optimum change when a
// set may lose up to D elements — the FEC story for video.
func expX12() Experiment {
	return Experiment{
		ID:    "X12",
		Title: "Extension: partial credit (Section 5, open problem 3)",
		Claim: "slack D > 0 lifts both ALG and OPT; slack-aware filtering recovers most of the relaxed optimum",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(15)
			slacks := []int{0, 1, 2, 3}
			if cfg.Quick {
				slacks = []int{0, 1}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Partial credit (m=10, n=24, σ=3, unweighted, %d draws/row)", draws),
				"D", "relaxed OPT", "E[randPr] @D", "E[slack-aware randPr] @D", "ratio (aware)")
			for _, d := range slacks {
				var optAcc, plainAcc, awareAcc stats.Accumulator
				for dr := 0; dr < draws; dr++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(d*100+dr)))
					inst, err := workload.Uniform(workload.UniformConfig{M: 10, N: 24, Load: 3}, rng)
					if err != nil {
						return err
					}
					sol, err := partial.ExactRelaxed(inst, d, 0)
					if err != nil {
						return err
					}
					optAcc.Add(sol.Weight)
					const mc = 60
					for t := 0; t < mc; t++ {
						seed := cfg.Seed + int64(dr*1000+t)
						res, err := core.Run(inst, &core.RandPr{}, rand.New(rand.NewSource(seed)))
						if err != nil {
							return err
						}
						bp, err := partial.Benefit(inst, res, d)
						if err != nil {
							return err
						}
						plainAcc.Add(bp)

						// The inner algorithm must NOT apply its own strict
						// D=0 active filter, or it would discard sets the
						// slack still permits.
						res, err = core.Run(inst,
							&partial.SlackAware{Inner: &core.RandPr{}, Slack: d},
							rand.New(rand.NewSource(seed)))
						if err != nil {
							return err
						}
						ba, err := partial.Benefit(inst, res, d)
						if err != nil {
							return err
						}
						awareAcc.Add(ba)
					}
				}
				ratio := optAcc.Mean() / awareAcc.Mean()
				tbl.AddRow(d, f2(optAcc.Mean()), f2(plainAcc.Mean()), f2(awareAcc.Mean()), f2(ratio))
			}
			if err := tbl.Render(w); err != nil {
				return err
			}
			_, err := fmt.Fprintln(w, "\n(Both OPT and ALG rise with D, and the slack-aware variant keeps a"+
				" roughly constant fraction of the relaxed optimum at every slack level —"+
				" the all-or-nothing cliff is what OSP's difficulty is made of, and FEC-style"+
				" slack softens it for both sides.)")
			return err
		},
	}
}

// expX13 measures the effect of buffers (Section 5, open problem 2): a
// B-packet buffer before the link, with service and eviction by policy.
func expX13() Experiment {
	return Experiment{
		ID:    "X13",
		Title: "Extension: buffered bottleneck link (Section 5, open problem 2)",
		Claim: "large buffers amplify randPr's advantage: priority eviction buffers packets of frames it will finish, while FIFO/weight policies barely benefit",
		Run: func(cfg Config, w io.Writer) error {
			seeds := cfg.trials(25)
			buffers := []int{0, 1, 2, 4, 8, 16}
			if cfg.Quick {
				buffers = []int{0, 2, 8}
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Buffered link, 8 streams × 12 GoP frames (%d seeds/cell): mean goodput", seeds),
				append([]string{"policy"}, bufHeaders(buffers)...)...)
			for _, policy := range router.BufferPolicies() {
				row := make([]interface{}, 0, len(buffers)+1)
				row = append(row, policy.Name())
				for _, bufSize := range buffers {
					var acc stats.Accumulator
					for s := 0; s < seeds; s++ {
						rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
						vi, err := workload.Video(workload.VideoConfig{
							Streams: 8, FramesPerStream: 12, Jitter: 3,
						}, rng)
						if err != nil {
							return err
						}
						rep, err := router.SimulateBuffered(vi, policy, bufSize,
							rand.New(rand.NewSource(cfg.Seed+int64(1000+s))))
						if err != nil {
							return err
						}
						acc.Add(rep.WeightDelivered)
					}
					row = append(row, f1(acc.Mean()))
				}
				tbl.AddRow(row...)
			}
			return tbl.Render(w)
		},
	}
}

func bufHeaders(buffers []int) []string {
	hs := make([]string, len(buffers))
	for i, b := range buffers {
		hs[i] = fmt.Sprintf("B=%d", b)
	}
	return hs
}

// expX14 is the ablation study: which ingredients of randPr matter?
// Persistent priorities (vs per-element redraw), randomization (vs
// deterministic weight priority), and the R_w law's weight sensitivity
// are each knocked out in turn.
func expX14() Experiment {
	return Experiment{
		ID:    "X14",
		Title: "Ablation: which parts of randPr matter",
		Claim: "persistence and randomization each carry real benefit; hash-based priorities are a free lunch",
		Run: func(cfg Config, w io.Writer) error {
			trials := cfg.trials(400)
			rng := rand.New(rand.NewSource(cfg.Seed))
			inst, err := workload.Uniform(workload.UniformConfig{
				M: 20, N: 60, Load: 5,
				WeightFn: workload.ZipfWeights(1, 6),
			}, rng)
			if err != nil {
				return err
			}
			closed := core.RandPrExpectedBenefit(inst)

			algs := []core.Algorithm{
				&core.RandPr{},
				&core.RandPr{ActiveOnly: true},
				&core.HashRandPr{Hasher: hashpr.Mixer{Seed: uint64(cfg.Seed)}},
				&core.RedrawRandPr{},
				&core.DetWeightPriority{},
				&core.UniformRandom{},
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Ablation on one weighted instance (m=20, n=60, σ=5; Lemma 1 closed form %.2f; %d runs)", closed, trials),
				"variant", "knocked out", "E[w(ALG)]", "vs randPr")
			knock := map[string]string{
				"randPr":            "(the published algorithm)",
				"randPr+active":     "adds active filter (refinement)",
				"hashRandPr":        "RNG → shared hash (distributed)",
				"redrawRandPr":      "persistence (redrawn per element)",
				"detWeightPriority": "randomization (priority = weight)",
				"uniformRandom":     "both (memoryless, unweighted)",
			}
			var base float64
			for _, alg := range algs {
				var acc stats.Accumulator
				for t := 0; t < trials; t++ {
					var res *core.Result
					var rerr error
					if h, ok := alg.(*core.HashRandPr); ok {
						h.Hasher = hashpr.Mixer{Seed: uint64(cfg.Seed) + uint64(t)}
						res, rerr = core.Run(inst, h, nil)
					} else {
						res, rerr = core.Run(inst, alg, rand.New(rand.NewSource(cfg.Seed+int64(t))))
					}
					if rerr != nil {
						return rerr
					}
					acc.Add(res.Benefit)
				}
				if alg.Name() == "randPr" {
					base = acc.Mean()
				}
				rel := "1.00x"
				if base > 0 {
					rel = fmt.Sprintf("%.2fx", acc.Mean()/base)
				}
				tbl.AddRow(alg.Name(), knock[alg.Name()], f2(acc.Mean()), rel)
			}
			if err := tbl.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}

			// Part 2: why randomization matters — on benign instances the
			// deterministic weight-priority variant looks great, so replay
			// the Theorem 3 worst case *built against it* and compare on
			// that fixed (now oblivious) instance.
			advTbl, err := ablationAdversarial(cfg, trials)
			if err != nil {
				return err
			}
			if err := advTbl.Render(w); err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, "\n(The deterministic variant wins benign traces but is pinned at 1"+
				" on its own worst case; randPr's guarantee is instance-independent.)")
			return err
		},
	}
}

// ablationAdversarial materializes the σ=3, k=3 adversary instance against
// detWeightPriority and replays it under every variant.
func ablationAdversarial(cfg Config, trials int) (*stats.Table, error) {
	const sigma, k = 3, 3
	det := &core.DetWeightPriority{}
	detRes, inst, certOPT, err := lowerboundDuel(sigma, k, det)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Replay of detWeightPriority's Theorem 3 worst case (σ=%d, k=%d, OPT ≥ %d)", sigma, k, certOPT),
		"algorithm", "E[ALG] on this instance", "ratio vs certified OPT")
	tbl.AddRow(det.Name(), f2(detRes.Benefit), f1(float64(certOPT)/maxf(detRes.Benefit, 1)))
	for _, alg := range []core.Algorithm{&core.RandPr{}, &core.UniformRandom{}} {
		var acc stats.Accumulator
		for t := 0; t < trials; t++ {
			res, err := core.Run(inst, alg, rand.New(rand.NewSource(cfg.Seed+int64(t))))
			if err != nil {
				return nil, err
			}
			acc.Add(res.Benefit)
		}
		tbl.AddRow(alg.Name(), f2(acc.Mean()), f1(float64(certOPT)/maxf(acc.Mean(), 1e-9)))
	}
	return tbl, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// expX15 measures the generalized packing model (Section 5, open
// problem 1): arbitrary non-negative integer matrix entries, with the
// randPr recipe lifted to a priority-ordered knapsack.
func expX15() Experiment {
	return Experiment{
		ID:    "X15",
		Title: "Extension: general packing matrices (Section 5, open problem 1)",
		Claim: "the randPr recipe stays within small constant factors of OPT on random generalized instances",
		Run: func(cfg Config, w io.Writer) error {
			draws := cfg.trials(15)
			const mcTrials = 200
			cells := []struct{ maxDemand, capacity int }{
				{1, 2}, {2, 3}, {3, 4}, {4, 6}, {4, 8},
			}
			if cfg.Quick {
				cells = cells[:2]
			}
			tbl := stats.NewTable(
				fmt.Sprintf("Generalized packing (m=14, n=30, σ=4, Zipf weights, %d draws/row)", draws),
				"max demand", "capacity", "E[genRandPr]", "E[genGreedyWeight]", "exact OPT", "OPT/E[genRandPr]")
			for _, c := range cells {
				var randAcc, greedyAcc, optAcc stats.Accumulator
				for d := 0; d < draws; d++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(c.maxDemand*1000+c.capacity*100+d)))
					in, err := genpack.Random(genpack.RandomConfig{
						M: 14, N: 30, Load: 4,
						MaxDemand: c.maxDemand, Capacity: c.capacity,
						WeightFn: workload.ZipfWeights(1, 4),
					}, rng)
					if err != nil {
						return err
					}
					sol, err := genpack.Exact(in, 0)
					if err != nil {
						return err
					}
					optAcc.Add(sol.Benefit)
					for t := 0; t < mcTrials; t++ {
						res, err := genpack.Run(in, &genpack.RandPr{}, rand.New(rand.NewSource(cfg.Seed+int64(t))))
						if err != nil {
							return err
						}
						randAcc.Add(res.Benefit)
					}
					res, err := genpack.Run(in, &genpack.GreedyWeight{}, nil)
					if err != nil {
						return err
					}
					greedyAcc.Add(res.Benefit)
				}
				ratio := optAcc.Mean() / randAcc.Mean()
				tbl.AddRow(c.maxDemand, c.capacity, f2(randAcc.Mean()), f2(greedyAcc.Mean()),
					f2(optAcc.Mean()), f2(ratio))
			}
			if err := tbl.Render(w); err != nil {
				return err
			}
			_, err := fmt.Fprintln(w, "\n(No competitive bound is proven for this model in the paper —"+
				" these are the empirical data points the open problem asks about.)")
			return err
		},
	}
}
