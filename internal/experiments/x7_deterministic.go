package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/offline"
	"repro/internal/stats"
)

// expX7 reproduces Theorem 3 and its proof construction: the adaptive
// adversary forces every deterministic algorithm to complete at most one
// set while certifying an offline packing of σ^(k−1) disjoint completable
// sets — a competitive ratio of exactly σ^(k−1) = σmax^(kmax−1).
func expX7() Experiment {
	return Experiment{
		ID:    "X7",
		Title: "Theorem 3 — deterministic lower bound σ^(k−1) (adaptive adversary)",
		Claim: "every deterministic algorithm: ALG ≤ 1 while OPT ≥ σ^(k−1)",
		Run: func(cfg Config, w io.Writer) error {
			type params struct{ sigma, k int }
			sweep := []params{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}, {4, 3}, {5, 3}}
			if cfg.Quick {
				sweep = []params{{2, 2}, {3, 2}, {2, 3}}
			}
			tbl := stats.NewTable(
				"Theorem 3 duels (unweighted, unit capacity, m = σ^k sets of size k)",
				"σ", "k", "algorithm", "ALG", "certified OPT", "exact OPT", "ratio", "σ^(k−1)", "ratio ≥ bound?")
			for _, p := range sweep {
				want := 1
				for i := 0; i < p.k-1; i++ {
					want *= p.sigma
				}
				for _, alg := range core.Baselines() {
					res, inst, certOPT, err := lowerbound.RunDuel(p.sigma, p.k, alg)
					if err != nil {
						return err
					}
					exactStr := "-"
					optVal := float64(certOPT)
					if inst.NumSets() <= 256 {
						if sol, err := offline.Exact(inst); err == nil {
							exactStr = f1(sol.Weight)
							optVal = sol.Weight
						}
					}
					alg_ := res.Benefit
					if alg_ < 1 {
						alg_ = 1 // ratio convention: ALG ≥ 1 slot for 0-benefit runs
					}
					ratio := optVal / alg_
					tbl.AddRow(p.sigma, p.k, alg.Name(), f1(res.Benefit), certOPT, exactStr,
						f1(ratio), want, check(ratio >= float64(want)-1e-9 && res.Benefit <= 1))
				}
			}
			if err := tbl.Render(w); err != nil {
				return err
			}
			_, err := fmt.Fprintln(w, "\n(ALG ≤ 1 by the phase construction; OPT certified by the"+
				" recorded phase-1 survivors, cross-checked with branch-and-bound where feasible.)")
			return err
		},
	}
}
