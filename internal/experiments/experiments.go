// Package experiments contains one runnable reproduction per theorem and
// figure of the paper (see DESIGN.md §3 for the index X1…X11). Each
// experiment builds its workloads, runs the algorithms and the OPT
// machinery, and renders a table whose rows are the paper-claim versus the
// measurement. The same runners back `go test -bench`, `cmd/ospbench` and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
)

// Config tunes an experiment run.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// Trials is the number of Monte-Carlo repetitions per table cell
	// (where the experiment needs sampling; several use closed forms).
	// 0 means the experiment's default.
	Trials int
	// Quick shrinks parameter sweeps for use inside unit tests.
	Quick bool
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick && def > 20 {
		return def / 10
	}
	return def
}

// Experiment is one reproducible result of the paper.
type Experiment struct {
	// ID is the experiment key, e.g. "X2".
	ID string
	// Title states what is reproduced.
	Title string
	// Claim is the paper's statement being checked.
	Claim string
	// Run executes the experiment, writing its table(s) to w.
	Run func(cfg Config, w io.Writer) error
}

// All returns every experiment in index order. Each x*.go file contributes
// one constructor; assembling the list here (rather than via init
// registration) keeps the set explicit and the package free of mutable
// globals.
func All() []Experiment {
	return []Experiment{
		expX1(), expX2(), expX3(), expX4(), expX5(), expX6(),
		expX7(), expX8(), expX9(), expX10(), expX11(),
		expX12(), expX13(), expX14(), expX15(), expX16(),
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "=== %s: %s ===\nClaim: %s\n\n", e.ID, e.Title, e.Claim); err != nil {
			return err
		}
		if err := e.Run(cfg, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// check marks a boolean verdict for table cells.
func check(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// f2, f1 format floats compactly for tables.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
