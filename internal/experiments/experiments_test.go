package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registered %d experiments, want 16 (X1-X11 reproduction + X12-X16 extensions)", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely defined", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12", "X13", "X14", "X15", "X16"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("X7")
	if err != nil || e.ID != "X7" {
		t.Errorf("ByID(X7) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID(nope) should fail")
	}
}

// Every experiment must run cleanly in quick mode and produce a verdict
// table with no failed checks. This is the integration test of the entire
// reproduction pipeline.
func TestQuickRunAllExperiments(t *testing.T) {
	cfg := Config{Seed: 12345, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if strings.Contains(out, "NO") {
				t.Errorf("%s has failed verdicts:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Seed: 5, Quick: true, Trials: 3}
	if err := RunAll(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"X1", "X11"} {
		if !strings.Contains(buf.String(), "=== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestConfigTrials(t *testing.T) {
	if got := (Config{}).trials(100); got != 100 {
		t.Errorf("default trials = %d", got)
	}
	if got := (Config{Trials: 7}).trials(100); got != 7 {
		t.Errorf("explicit trials = %d", got)
	}
	if got := (Config{Quick: true}).trials(100); got != 10 {
		t.Errorf("quick trials = %d", got)
	}
	if got := (Config{Quick: true}).trials(10); got != 10 {
		t.Errorf("quick small trials = %d", got)
	}
}

func TestCheck(t *testing.T) {
	if check(true) != "yes" || check(false) != "NO" {
		t.Error("check verdict strings wrong")
	}
}
