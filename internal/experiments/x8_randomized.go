package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/setsystem"
	"repro/internal/stats"
)

// expX8 reproduces Theorem 2 via the Lemma 9 distribution (Figure 1): a
// four-stage gadget construction over finite fields that plants ℓ³
// pairwise-disjoint sets (OPT ≥ ℓ³) while every online algorithm —
// randomized included — completes only polylog(ℓ) sets in expectation.
// The instance shape matches Lemma 9's claims: k = Θ(ℓ²), σmax = Θ(ℓ²),
// mean σ = Θ(ℓ), mean σ² = Θ(ℓ³); the achieved ratio therefore scales like
// kmax·sqrt(σmax) ≈ ℓ³ up to the (log ℓ/loglog ℓ)² factor.
func expX8() Experiment {
	return Experiment{
		ID:    "X8",
		Title: "Theorem 2 / Lemma 9 / Figure 1 — randomized lower bound distribution",
		Claim: "OPT ≥ ℓ³ while E[ALG] = O((log ℓ/loglog ℓ)²) for every online algorithm",
		Run: func(cfg Config, w io.Writer) error {
			ells := []int{2, 3, 4, 5, 7}
			draws := cfg.trials(10)
			if cfg.Quick {
				ells = []int{2, 3}
				draws = 3
			}

			shape := stats.NewTable(
				"Lemma 9 instance shape (averaged over draws)",
				"ℓ", "m=ℓ⁴", "n", "k", "σmax", "mean σ", "mean σ²", "shape = Θ(ℓ², ℓ, ℓ³)?")
			perf := stats.NewTable(
				fmt.Sprintf("Online algorithms vs the distribution (%d draws/row)", draws),
				"ℓ", "OPT (planted)", "E[randPr]", "E[greedyMaxW]", "E[greedyFewest]", "ratio randPr", "k·sqrt(σmax)")

			for _, l := range ells {
				var sMax, sMean, s2, kAcc stats.Accumulator
				var nElems stats.Accumulator
				var benefit = map[string]*stats.Accumulator{
					"randPr": {}, "greedyMaxWeight": {}, "greedyFewestRemaining": {},
				}
				opt := float64(l * l * l)
				var m int
				for d := 0; d < draws; d++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(l*1000+d)))
					li, err := lowerbound.NewLemma9(l, rng)
					if err != nil {
						return err
					}
					if err := li.VerifyPlanted(); err != nil {
						return fmt.Errorf("ℓ=%d draw %d: %w", l, d, err)
					}
					st := setsystem.Compute(li.Inst)
					m = st.M
					sMax.Add(float64(st.SigmaMax))
					sMean.Add(st.SigmaMean)
					s2.Add(st.Sigma2)
					kAcc.Add(float64(st.KMax))
					nElems.Add(float64(st.N))

					algs := []core.Algorithm{
						&core.RandPr{}, &core.GreedyMaxWeight{}, &core.GreedyFewestRemaining{},
					}
					for _, alg := range algs {
						res, err := core.Run(li.Inst, alg, rng)
						if err != nil {
							return err
						}
						benefit[alg.Name()].Add(res.Benefit)
					}
				}
				fl := float64(l)
				shapeOK := kAcc.Mean() >= fl*fl && kAcc.Mean() <= 4*fl*fl &&
					sMax.Mean() >= fl*fl-fl && sMax.Mean() <= fl*fl &&
					sMean.Mean() <= 2*fl && s2.Mean() <= 2*fl*fl*fl+fl*fl
				shape.AddRow(l, m, int(nElems.Mean()), f1(kAcc.Mean()), f1(sMax.Mean()),
					f2(sMean.Mean()), f1(s2.Mean()), check(shapeOK))

				eRand := benefit["randPr"].Mean()
				ratio := math.Inf(1)
				if eRand > 0 {
					ratio = opt / eRand
				}
				perf.AddRow(l, int(opt), f2(eRand),
					f2(benefit["greedyMaxWeight"].Mean()),
					f2(benefit["greedyFewestRemaining"].Mean()),
					f1(ratio), f1(kAcc.Mean()*math.Sqrt(sMax.Mean())))
			}
			if err := shape.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			if err := perf.Render(w); err != nil {
				return err
			}
			_, err := fmt.Fprintln(w, "\n(E[ALG] stays polylogarithmic in ℓ while OPT = ℓ³: the measured"+
				" ratio grows with k·sqrt(σmax) as Theorem 2 predicts.)")
			return err
		},
	}
}
