package faultproxy_test

import (
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultproxy"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c) //nolint:errcheck // test echo
				c.Close()
			}()
		}
	}()
	return lis.Addr().String()
}

func dialProxy(t *testing.T, p *faultproxy.Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and expects it echoed back verbatim.
func roundTrip(t *testing.T, c net.Conn, msg string) {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test deadline
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestPassForwardsVerbatim(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, "hello through the proxy")
	if p.Accepted() != 1 {
		t.Errorf("accepted = %d, want 1", p.Accepted())
	}
}

func TestDelayAddsLatency(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(faultproxy.Fault{Mode: faultproxy.Delay, Latency: 60 * time.Millisecond})
	c := dialProxy(t, p)
	start := time.Now()
	roundTrip(t, c, "slow boat")
	// Two pumped chunks (request + echo), each delayed.
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("round trip took %v, want >= 100ms of injected latency", d)
	}
}

func TestDropRefusesNewConnections(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(faultproxy.Fault{Mode: faultproxy.Drop})
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		return // refused at SYN level is fine too
	}
	defer c.Close()
	// The accept side closed immediately: the first read reports it.
	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test deadline
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on dropped connection succeeded")
	}
	if p.Refused() == 0 {
		t.Error("refused counter did not move")
	}
}

func TestBlackholeSwallowsTraffic(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(faultproxy.Fault{Mode: faultproxy.Blackhole})
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond)) //nolint:errcheck // the point
	_, err = c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackhole read ended with %v, want timeout", err)
	}
}

func TestResetSendsRST(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(faultproxy.Fault{Mode: faultproxy.Reset, AfterBytes: 4})
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("12345678")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test deadline
	_, err = io.ReadAll(c)
	if err == nil {
		t.Fatal("read after reset budget succeeded, want connection reset")
	}
	if !strings.Contains(err.Error(), "reset") && !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("error = %v, want connection reset", err)
	}
}

func TestTruncateCutsMidStream(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Budget lands inside the 16-byte "frame": 10 bytes through, then EOF.
	p.Set(faultproxy.Fault{Mode: faultproxy.Truncate, AfterBytes: 10})
	c := dialProxy(t, p)
	if _, err := c.Write([]byte("0123456789abcdef")); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test deadline
	got, err := io.ReadAll(c)
	if err != nil && !strings.Contains(err.Error(), "reset") {
		t.Fatalf("read: %v", err)
	}
	if len(got) >= 16 {
		t.Fatalf("read %d bytes through a 10-byte truncation budget", len(got))
	}
}

func TestRuntimeSwitchHeals(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Break it, watch a connection die, heal it, watch traffic flow.
	p.Set(faultproxy.Fault{Mode: faultproxy.Drop})
	if c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second); err == nil {
		c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test deadline
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("connection survived Drop")
		}
		c.Close()
	}
	p.Set(faultproxy.Fault{Mode: faultproxy.Pass})
	roundTrip(t, dialProxy(t, p), "healed")
}

func TestCutConnsKillsLiveConnections(t *testing.T) {
	p, err := faultproxy.New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, "warm")
	if n := p.CutConns(); n != 1 {
		t.Fatalf("CutConns = %d, want 1", n)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck // test deadline
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on cut connection succeeded")
	}
	if p.Cut() != 1 {
		t.Errorf("cut counter = %d, want 1", p.Cut())
	}
	// The proxy still accepts fresh connections afterwards.
	roundTrip(t, dialProxy(t, p), "fresh after cut")
}
