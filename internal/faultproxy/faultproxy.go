// Package faultproxy is a TCP proxy that injects network faults between
// a client and an upstream — the harness the cluster chaos suite trusts.
// A Proxy fronts one upstream address and forwards byte streams
// unmodified in Pass mode; switching the fault at runtime (Set) makes it
// misbehave in controlled, repeatable ways: added latency, refused
// connections, silent blackholes, connection resets, and mid-frame
// truncation. Faults apply to live connections as well as new ones —
// each copy pump consults the current fault per chunk — so a test can
// let traffic flow, flip the fault under an in-flight stream, and watch
// the client's recovery path, then flip back to Pass and watch it heal.
//
// The proxy never parses the bytes it carries. Truncate and Reset count
// raw forwarded bytes, which is exactly what makes them land mid-frame:
// any budget that does not fall on a frame boundary leaves the reader
// holding a partial frame when the connection dies.
package faultproxy

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode names a fault class.
type Mode int

const (
	// Pass forwards traffic unmodified.
	Pass Mode = iota
	// Delay forwards traffic with Fault.Latency added before each chunk.
	Delay
	// Drop refuses new connections (accepted, then closed immediately).
	// Existing connections keep flowing — pair with CutConns to kill
	// those too, which together model a crashed process.
	Drop
	// Blackhole swallows traffic: connections stay open, bytes are read
	// and discarded, nothing is forwarded and nothing comes back. The
	// client hangs until its own deadline fires — the partition case
	// that distinguishes "dead" from "slow".
	Blackhole
	// Reset forwards Fault.AfterBytes total bytes, then tears the client
	// connection down with a TCP RST (connection reset by peer).
	Reset
	// Truncate forwards Fault.AfterBytes total bytes, then closes both
	// sides cleanly — the reader sees EOF mid-frame.
	Truncate
)

// String implements fmt.Stringer for test output.
func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Blackhole:
		return "blackhole"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Fault is the proxy's current misbehavior.
type Fault struct {
	// Mode selects the fault class.
	Mode Mode
	// Latency is the per-chunk forwarding delay under Delay.
	Latency time.Duration
	// AfterBytes is the total forwarded-byte budget (both directions,
	// per connection) before Reset or Truncate strikes. 0 strikes on the
	// first chunk.
	AfterBytes int64
}

// pair is one proxied connection: the accepted client side, the dialed
// upstream side, and the forwarded-byte count the terminal faults meter.
type pair struct {
	client    net.Conn
	upstream  net.Conn
	forwarded atomic.Int64
	pumpsDone atomic.Int32
	closeOnce sync.Once
}

// close tears both sides down; rst sends the client a RST instead of a
// FIN (a crashed peer, not a polite one).
func (pr *pair) close(rst bool) {
	pr.closeOnce.Do(func() {
		if rst {
			if tc, ok := pr.client.(*net.TCPConn); ok {
				tc.SetLinger(0) //nolint:errcheck // best effort; Close below is the guarantee
			}
		}
		pr.client.Close()   //nolint:errcheck // teardown
		pr.upstream.Close() //nolint:errcheck // teardown
	})
}

// Proxy is one listener fronting one upstream. Safe for concurrent use;
// Set and CutConns may race freely with live traffic.
type Proxy struct {
	lis    net.Listener
	target string

	mu    sync.Mutex
	fault Fault
	conns map[*pair]struct{}

	accepted atomic.Uint64
	refused  atomic.Uint64
	cut      atomic.Uint64

	closed chan struct{}
	wg     sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultproxy: listen: %w", err)
	}
	p := &Proxy{
		lis:    lis,
		target: target,
		conns:  make(map[*pair]struct{}),
		closed: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — point the client here.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Set switches the injected fault. Live connections feel it on their
// next chunk.
func (p *Proxy) Set(f Fault) {
	p.mu.Lock()
	p.fault = f
	p.mu.Unlock()
}

// Current returns the fault now in force.
func (p *Proxy) Current() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fault
}

// CutConns hard-closes every live proxied connection (client side gets a
// RST — the crashed-process signature) and returns how many died.
func (p *Proxy) CutConns() int {
	p.mu.Lock()
	pairs := make([]*pair, 0, len(p.conns))
	for pr := range p.conns {
		pairs = append(pairs, pr)
	}
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.close(true)
	}
	p.cut.Add(uint64(len(pairs)))
	return len(pairs)
}

// Accepted returns the number of connections accepted and proxied.
func (p *Proxy) Accepted() uint64 { return p.accepted.Load() }

// Refused returns the number of connections dropped at accept (Drop).
func (p *Proxy) Refused() uint64 { return p.refused.Load() }

// Cut returns the number of live connections killed by CutConns.
func (p *Proxy) Cut() uint64 { return p.cut.Load() }

// Close stops the listener and tears down every live connection.
func (p *Proxy) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.lis.Close()
	p.mu.Lock()
	pairs := make([]*pair, 0, len(p.conns))
	for pr := range p.conns {
		pairs = append(pairs, pr)
	}
	p.mu.Unlock()
	for _, pr := range pairs {
		pr.close(false)
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		if p.Current().Mode == Drop {
			p.refused.Add(1)
			c.Close() //nolint:errcheck // the point of Drop
			continue
		}
		u, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			p.refused.Add(1)
			c.Close() //nolint:errcheck // upstream unreachable
			continue
		}
		pr := &pair{client: c, upstream: u}
		p.mu.Lock()
		p.conns[pr] = struct{}{}
		p.mu.Unlock()
		p.accepted.Add(1)
		p.wg.Add(2)
		go p.pump(pr, c, u, false)
		go p.pump(pr, u, c, true)
	}
}

// pump copies src to dst applying the current fault per chunk.
// toClient marks the upstream→client direction (the one Reset RSTs).
func (p *Proxy) pump(pr *pair, src, dst net.Conn, toClient bool) {
	defer p.wg.Done()
	// A half-closed pair keeps its surviving direction cuttable: forget
	// only once both pumps are gone.
	defer func() {
		if pr.pumpsDone.Add(1) == 2 {
			p.forget(pr)
		}
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f := p.Current()
			switch f.Mode {
			case Blackhole:
				// Swallow the chunk: the sender's write succeeded into the
				// void and no reply will ever come.
			case Delay:
				select {
				case <-time.After(f.Latency):
				case <-p.closed:
					pr.close(false)
					return
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					pr.close(false)
					return
				}
			case Reset, Truncate:
				left := f.AfterBytes - pr.forwarded.Load()
				if left < 0 {
					left = 0
				}
				if int64(n) <= left {
					if _, werr := dst.Write(buf[:n]); werr != nil {
						pr.close(false)
						return
					}
					pr.forwarded.Add(int64(n))
					break
				}
				if left > 0 {
					dst.Write(buf[:left]) //nolint:errcheck // dying anyway
					pr.forwarded.Add(left)
				}
				pr.close(f.Mode == Reset)
				return
			default: // Pass, and Drop's live-connection grace
				if _, werr := dst.Write(buf[:n]); werr != nil {
					pr.close(false)
					return
				}
				pr.forwarded.Add(int64(n))
			}
		}
		if err != nil {
			// Half-close toward dst so pipelined bytes in the other
			// direction still drain, then let the peer pump finish.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite() //nolint:errcheck // best-effort half-close
			} else {
				pr.close(false)
			}
			return
		}
	}
}

// forget removes the pair from the live set once both pumps exited.
func (p *Proxy) forget(pr *pair) {
	p.mu.Lock()
	delete(p.conns, pr)
	p.mu.Unlock()
}
