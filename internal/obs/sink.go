package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives flushed decision batches from the drainer goroutine.
// Implementations may block briefly (they only ever delay the drainer,
// never a shard) and must be safe for use from one goroutine at a time.
type Sink interface {
	// WriteDecisions persists one flushed batch. The slice is reused by
	// the drainer after the call returns and must not be retained.
	WriteDecisions([]Decision) error
}

// JSONLSink writes each decision as one JSON object per line — the
// decision log's file/stderr format (schema in docs/OPERATIONS.md).
// Writes are buffered; Close flushes. Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // non-nil when the sink owns the underlying file
	err error     // first write error, reported once per Write after
}

// NewJSONLSink wraps a writer. If w implements io.Closer the sink's
// Close closes it (after flushing).
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// WriteDecisions implements Sink.
func (s *JSONLSink) WriteDecisions(recs []Decision) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range recs {
		raw, err := json.Marshal(&recs[i])
		if err != nil {
			return err
		}
		if _, err := s.w.Write(raw); err != nil {
			s.err = err
			return err
		}
		if err := s.w.WriteByte('\n'); err != nil {
			s.err = err
			return err
		}
	}
	return s.w.Flush()
}

// Close flushes the buffer and closes the underlying writer when it is
// closable.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MemorySink retains every flushed decision — the test double, and the
// capture buffer for trace replay experiments.
type MemorySink struct {
	mu   sync.Mutex
	recs []Decision
}

// WriteDecisions implements Sink.
func (s *MemorySink) WriteDecisions(recs []Decision) error {
	s.mu.Lock()
	s.recs = append(s.recs, recs...)
	s.mu.Unlock()
	return nil
}

// Decisions copies out everything retained so far.
func (s *MemorySink) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Decision(nil), s.recs...)
}

// Len reports the retained decision count.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}
