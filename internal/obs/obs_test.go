package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucket function: boundaries are powers
// of two, every observation lands in the smallest bucket whose upper
// bound holds it, and totals are exact.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{128, 0},              // == 2^7, first bound
		{129, 1},              // just above
		{256, 1},              // == 2^8
		{257, 2},              //
		{time.Microsecond, 3}, // 1000 ns <= 1024 = 2^10 → idx 3
		{17 * time.Second, HistogramBuckets - 1},
		{18 * time.Second, HistogramBuckets}, // above 2^34 ns → +Inf
		{-5, 0},                              // clamped
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		s := h.Snapshot()
		got := -1
		for i, n := range s.Buckets {
			if n == 1 {
				got = i
			}
		}
		if got != c.want {
			t.Errorf("Observe(%v): landed in bucket %d, want %d", c.d, got, c.want)
		}
		if s.Count != 1 {
			t.Errorf("Observe(%v): count %d, want 1", c.d, s.Count)
		}
	}

	// Bounds are increasing powers of two.
	for i := 1; i < HistogramBuckets; i++ {
		if BucketBound(i) != 2*BucketBound(i-1) {
			t.Fatalf("bucket %d bound %v is not double bucket %d bound %v",
				i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// totals must be exact (run under -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i*w) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

// TestHistogramQuantile sanity-checks the quantile upper bound.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(200 * time.Nanosecond) // bucket le=256ns
	}
	h.Observe(10 * time.Millisecond)
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 256*time.Nanosecond {
		t.Errorf("p50 = %v, want 256ns", q)
	}
	if q := s.Quantile(1); q < 10*time.Millisecond || q > 20*time.Millisecond {
		t.Errorf("p100 = %v, want a power-of-two bound >= 10ms", q)
	}
	if (HistogramSnapshot{}).Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

// TestDecisionLogFlush drives records through the ring → drainer → sink
// pipeline and checks nothing is lost and ordering per shard is
// preserved.
func TestDecisionLogFlush(t *testing.T) {
	sink := &MemorySink{}
	d := NewDecisionLog(DecisionLogConfig{
		SampleEvery: 1, RingSize: 64, Tail: 32,
		FlushEvery: time.Hour, // manual flushes only
		Sink:       sink,
	})
	defer d.Close()
	l := d.Logger("i-1", "randpr", 2)

	for i := 0; i < 40; i++ {
		shard := i % 2
		l.Shard(shard).Record(Record{
			Element: uint64(i), Verdict: 0b101, Members: 3, Admitted: 2,
			TimeUnixNano: int64(1000 + i),
		})
	}
	d.Flush()

	recs := sink.Decisions()
	if len(recs) != 40 {
		t.Fatalf("sink holds %d decisions, want 40", len(recs))
	}
	// Per shard, element indices must be in record order.
	last := map[int32]uint64{}
	for _, r := range recs {
		if r.Instance != "i-1" || r.Policy != "randpr" {
			t.Fatalf("record carries identity %s/%s", r.Instance, r.Policy)
		}
		if prev, ok := last[r.Shard]; ok && r.Element <= prev {
			t.Fatalf("shard %d out of order: %d after %d", r.Shard, r.Element, prev)
		}
		last[r.Shard] = r.Element
	}

	flushed, dropped := d.Stats()
	if flushed != 40 || dropped != 0 {
		t.Fatalf("stats flushed=%d dropped=%d, want 40/0", flushed, dropped)
	}

	// The tail retains the most recent 32, newest last.
	tail, ok := d.Tail("i-1", 0)
	if !ok || len(tail) != 32 {
		t.Fatalf("tail length %d (ok=%v), want 32", len(tail), ok)
	}
	if got := len(mustTail(t, d, "i-1", 5)); got != 5 {
		t.Fatalf("bounded tail length %d, want 5", got)
	}
}

func mustTail(t *testing.T, d *DecisionLog, id string, max int) []Decision {
	t.Helper()
	recs, ok := d.Tail(id, max)
	if !ok {
		t.Fatalf("no tail for %s", id)
	}
	return recs
}

// TestDecisionRingOverflowDrops fills a ring past capacity without
// draining: the overflow must be dropped and counted, never blocking or
// overwriting published records.
func TestDecisionRingOverflowDrops(t *testing.T) {
	d := NewDecisionLog(DecisionLogConfig{
		SampleEvery: 1, RingSize: 8, FlushEvery: time.Hour,
	})
	defer d.Close()
	l := d.Logger("i-1", "randpr", 1)
	s := l.Shard(0)
	for i := 0; i < 20; i++ {
		s.Record(Record{Element: uint64(i)})
	}
	d.Flush()
	flushed, dropped := d.Stats()
	if flushed != 8 || dropped != 12 {
		t.Fatalf("flushed=%d dropped=%d, want 8/12", flushed, dropped)
	}
	tail := mustTail(t, d, "i-1", 0)
	for i, r := range tail {
		if r.Element != uint64(i) {
			t.Fatalf("tail[%d].Element = %d: overflow overwrote a published record", i, r.Element)
		}
	}
}

// TestDecisionSampling pins the every-Nth countdown: exactly every 4th
// decision is recorded.
func TestDecisionSampling(t *testing.T) {
	d := NewDecisionLog(DecisionLogConfig{
		SampleEvery: 4, RingSize: 256, FlushEvery: time.Hour,
	})
	defer d.Close()
	if d.SampleEvery() != 4 {
		t.Fatalf("SampleEvery = %d, want 4", d.SampleEvery())
	}
	s := d.Logger("i-1", "randpr", 1).Shard(0)
	var hits int
	for i := 0; i < 100; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("sampled %d of 100 with every=4, want 25", hits)
	}
}

// TestDecisionLogRemove flushes the removed instance's residue and
// forgets its tail.
func TestDecisionLogRemove(t *testing.T) {
	sink := &MemorySink{}
	d := NewDecisionLog(DecisionLogConfig{SampleEvery: 1, FlushEvery: time.Hour, Sink: sink})
	defer d.Close()
	l := d.Logger("i-9", "first-fit", 1)
	l.Shard(0).Record(Record{Element: 7})
	d.Remove("i-9")
	if sink.Len() != 1 {
		t.Fatalf("remove flushed %d records, want 1", sink.Len())
	}
	if _, ok := d.Tail("i-9", 0); ok {
		t.Fatal("tail still served after Remove")
	}
	d.Remove("i-9") // idempotent
}

// TestNilLoggerAndOutOfRangeShard pins the nil-safety the engine relies
// on: a nil logger and an out-of-range shard both yield a nil ShardLog.
func TestNilLoggerAndOutOfRangeShard(t *testing.T) {
	var l *DecisionLogger
	if l.Shard(0) != nil {
		t.Fatal("nil logger returned a shard")
	}
	d := NewDecisionLog(DecisionLogConfig{FlushEvery: time.Hour})
	defer d.Close()
	got := d.Logger("i-1", "randpr", 2)
	if got.Shard(2) != nil || got.Shard(-1) != nil {
		t.Fatal("out-of-range shard index returned a ring")
	}
}

// TestJSONLSink checks the one-object-per-line format round-trips.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	recs := []Decision{
		{Instance: "i-1", Policy: "randpr", Element: 3, Shard: 1, Members: 4, Admitted: 2, Verdict: 0b0110, TimeUnixNano: 42},
		{Instance: "i-1", Policy: "randpr", Element: 9},
	}
	if err := s.WriteDecisions(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var got Decision
	if err := json.Unmarshal(lines[0], &got); err != nil {
		t.Fatal(err)
	}
	if got != recs[0] {
		t.Fatalf("round trip: got %+v, want %+v", got, recs[0])
	}
}

// TestDrainerFlushesPeriodically exercises the asynchronous path end to
// end: records become visible in the sink without any manual Flush.
func TestDrainerFlushesPeriodically(t *testing.T) {
	sink := &MemorySink{}
	d := NewDecisionLog(DecisionLogConfig{
		SampleEvery: 1, FlushEvery: time.Millisecond, Sink: sink,
	})
	defer d.Close()
	s := d.Logger("i-1", "randpr", 1).Shard(0)
	s.Record(Record{Element: 1})
	deadline := time.Now().Add(5 * time.Second)
	for sink.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drainer never flushed the record")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlushSteadyStateZeroAlloc pins the constraint the engine's
// telemetry-enabled alloc gate depends on: with no sink configured, a
// warm record→flush cycle allocates nothing — rings, tail slots and
// snapshot scratch are all preallocated.
func TestFlushSteadyStateZeroAlloc(t *testing.T) {
	d := NewDecisionLog(DecisionLogConfig{
		SampleEvery: 1, RingSize: 128, Tail: 64, FlushEvery: time.Hour,
	})
	defer d.Close()
	s := d.Logger("i-1", "randpr", 1).Shard(0)

	// Warm: grow flushSnap and wrap the tail once.
	for i := 0; i < 100; i++ {
		s.Record(Record{Element: uint64(i)})
	}
	d.Flush()

	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 64; i++ {
			s.Record(Record{Element: uint64(i)})
		}
		d.Flush()
	})
	if allocs != 0 {
		t.Fatalf("sink-less record+flush cycle allocates %v per run, want 0", allocs)
	}
}

// TestConcurrentRecordAndFlush races one producer against the drainer
// and a tail reader (meaningful under -race): every record must come
// out exactly once across sink batches.
func TestConcurrentRecordAndFlush(t *testing.T) {
	sink := &MemorySink{}
	d := NewDecisionLog(DecisionLogConfig{
		SampleEvery: 1, RingSize: 1024, FlushEvery: 100 * time.Microsecond, Sink: sink,
	})
	l := d.Logger("i-1", "randpr", 1)
	s := l.Shard(0)
	const total = 50000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			s.Record(Record{Element: uint64(i)})
			if i%4096 == 0 {
				time.Sleep(50 * time.Microsecond) // let the drainer catch up
			}
		}
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			d.Tail("i-1", 16)
			time.Sleep(200 * time.Microsecond)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	flushed, dropped := d.Stats()
	if flushed+dropped != total {
		t.Fatalf("flushed %d + dropped %d != produced %d", flushed, dropped, total)
	}
	if got := uint64(sink.Len()); got != flushed {
		t.Fatalf("sink holds %d, drainer flushed %d", got, flushed)
	}
}
