// Package obs is the zero-overhead telemetry layer: sampled decision
// logging and per-stage latency histograms for the admission engine and
// the networked service, plus the sink plumbing that ships both off the
// hot path.
//
// Everything here is built around one constraint carried over from the
// engine (DESIGN.md §13): steady-state ingestion must stay at zero
// allocations per element with telemetry ENABLED. The package therefore
// uses no client library and no locks on any recording path:
//
//   - Histogram is a fixed array of power-of-two buckets bumped with one
//     atomic add per observation; recording never allocates and scraping
//     is a plain read of the counters.
//   - The decision log samples with a shard-local countdown (a branch and
//     a decrement per element) and writes sampled records into bounded
//     per-shard single-producer rings whose slots are preallocated. A
//     single drainer goroutine flushes the rings asynchronously into a
//     bounded per-instance tail (served by GET
//     /v1/instances/{id}/decisions) and an optional pluggable Sink; when
//     a ring is full the record is dropped and counted, never blocking
//     the shard.
//
// The serve layer owns one DecisionLog and one Histogram per pipeline
// stage for the whole process; engines attach through EngineTelemetry.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: bucket i counts observations with duration
// <= 2^(histMinShift+i) nanoseconds; observations above the last bound
// land in the overflow (+Inf) bucket. 128 ns .. ~17 s covers everything
// from a single batch decide to a stalled request.
const (
	histMinShift = 7  // first upper bound: 2^7 ns = 128 ns
	histMaxShift = 34 // last finite upper bound: 2^34 ns ≈ 17.2 s
	// HistogramBuckets is the number of finite buckets.
	HistogramBuckets = histMaxShift - histMinShift + 1
)

// Histogram is a fixed power-of-two-bucket latency histogram: one atomic
// add per Observe, no locks, no allocations, safe for any number of
// concurrent writers and readers. The zero value is ready to use.
type Histogram struct {
	buckets  [HistogramBuckets + 1]atomic.Uint64 // last slot is the +Inf overflow
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

// Observe records one duration. Negative durations (possible only under
// wall-clock steps) clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	n := uint64(d)
	if d < 0 {
		n = 0
	}
	h.buckets[bucketOf(n)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(n)
}

// bucketOf returns the index of the smallest bucket whose upper bound
// holds n nanoseconds: ceil(log2(n)) clamped to the bucket range. The
// whole computation is a bit-length intrinsic and two comparisons.
func bucketOf(n uint64) int {
	if n <= 1<<histMinShift {
		return 0
	}
	idx := bits.Len64(n-1) - histMinShift // ceil(log2(n)) - histMinShift
	if idx > HistogramBuckets {
		return HistogramBuckets // +Inf
	}
	return idx
}

// BucketBound returns the upper bound of finite bucket i in seconds —
// the `le` label value of the rendered Prometheus series.
func BucketBound(i int) float64 {
	return float64(uint64(1)<<(histMinShift+i)) * 1e-9
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets are
// per-bucket (not cumulative) counts; Prometheus rendering accumulates.
type HistogramSnapshot struct {
	Buckets [HistogramBuckets + 1]uint64 // last slot is the +Inf overflow
	Count   uint64
	SumSecs float64
}

// Snapshot reads the counters. Concurrent Observes may land between
// field reads; each counter is individually exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumSecs = float64(h.sumNanos.Load()) * 1e-9
	return s
}

// Merge adds o's counts into s — how per-engine histograms are folded
// into one series at scrape time.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumSecs += o.SumSecs
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations: the upper bound of the bucket holding the q·Count
// ranked observation. Zero if nothing was observed; +Inf observations
// report the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i > HistogramBuckets-1 {
				i = HistogramBuckets - 1
			}
			return time.Duration(uint64(1) << (histMinShift + i))
		}
	}
	return time.Duration(uint64(1) << histMaxShift)
}
