package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Decision is one sampled admission decision, the unit the decision log
// ships to sinks and serves from the tail endpoint. The verdict is a
// bitmask over the element's parent sets in ascending SetID order — the
// canonical arrival order every codec already enforces — so bit i set
// means the i-th announced membership was admitted. Elements with more
// than 64 memberships record the first 64 bits (Members still reports
// the true width).
type Decision struct {
	// Instance is the server-assigned instance ID ("i-3") or the replay
	// tag a CLI chose.
	Instance string `json:"instance"`
	// Policy is the resolved admission-policy name that decided.
	Policy string `json:"policy"`
	// Element is the global arrival index of the element in its stream.
	Element uint64 `json:"element"`
	// Shard is the engine shard that decided the element.
	Shard int32 `json:"shard"`
	// Members is the element's membership count (the verdict mask width).
	Members int32 `json:"members"`
	// Admitted is the number of memberships admitted (<= capacity).
	Admitted int32 `json:"admitted"`
	// Verdict is the admit bitmask over the members in ascending SetID
	// order.
	Verdict uint64 `json:"verdict"`
	// TimeUnixNano is the decision wall-clock time.
	TimeUnixNano int64 `json:"time_unix_nano"`
}

// Record is the compact per-shard ring slot: everything in Decision that
// varies per element. Instance and policy are constants of the logger
// and get attached at flush, off the hot path.
type Record struct {
	Element      uint64
	Verdict      uint64
	TimeUnixNano int64
	Members      int32
	Admitted     int32
}

// ShardLog is one shard's sampling state and bounded record ring. It is
// strictly single-producer: exactly one shard goroutine calls Sample and
// Record, while the DecisionLog drainer consumes concurrently. The
// write index is published with an atomic store after the slot is
// filled; the drainer never reads an unpublished slot.
type ShardLog struct {
	every     uint32 // sample every Nth decision
	countdown uint32 // shard-local, no atomics: only the shard touches it
	slots     []Record
	mask      uint64
	widx      atomic.Uint64 // next write position, published by the shard
	ridx      atomic.Uint64 // next read position, owned by the drainer
	dropped   atomic.Uint64 // records lost to a full ring
}

// Sample reports whether the current decision should be recorded — a
// decrement and a branch, the entire per-element cost of a disabled
// sample. Deterministic every-Nth sampling keeps the log's element
// indices evenly spaced for replay.
func (s *ShardLog) Sample() bool {
	s.countdown--
	if s.countdown != 0 {
		return false
	}
	s.countdown = s.every
	return true
}

// Record appends one sampled decision to the ring, dropping it (and
// counting the drop) when the drainer has fallen a full ring behind.
// Never blocks, never allocates.
func (s *ShardLog) Record(r Record) {
	w := s.widx.Load()
	if w-s.ridx.Load() >= uint64(len(s.slots)) {
		s.dropped.Add(1)
		return
	}
	s.slots[w&s.mask] = r
	s.widx.Store(w + 1)
}

// DecisionLogger binds one engine (one instance) to the decision log:
// per-shard rings plus the instance's bounded tail of recent flushed
// decisions.
type DecisionLogger struct {
	log      *DecisionLog
	instance string
	policy   string
	shards   []*ShardLog

	mu       sync.Mutex // guards the tail ring
	tail     []Decision // preallocated; written round-robin at flush
	tailNext uint64     // total decisions ever appended to the tail
}

// Shard returns shard i's sampling handle, nil on a nil logger or an
// out-of-range index — so an engine built without telemetry, or with
// more shards than the logger was opened for, simply skips sampling.
func (l *DecisionLogger) Shard(i int) *ShardLog {
	if l == nil || i < 0 || i >= len(l.shards) {
		return nil
	}
	return l.shards[i]
}

// append adds one flushed decision to the bounded tail. Called by the
// drainer with the record already widened to a Decision.
func (l *DecisionLogger) append(d Decision) {
	l.mu.Lock()
	l.tail[l.tailNext%uint64(len(l.tail))] = d
	l.tailNext++
	l.mu.Unlock()
}

// Tail copies the most recent flushed decisions, newest last, at most
// max (max <= 0 means the full retained tail).
func (l *DecisionLogger) Tail(max int) []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.tailNext
	retained := uint64(len(l.tail))
	if n > retained {
		n = retained
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Decision, 0, n)
	for i := l.tailNext - n; i < l.tailNext; i++ {
		out = append(out, l.tail[i%retained])
	}
	return out
}

// dropped sums the records lost to full rings across shards.
func (l *DecisionLogger) droppedTotal() uint64 {
	var total uint64
	for _, s := range l.shards {
		total += s.dropped.Load()
	}
	return total
}

// DecisionLogConfig sizes the decision log. The zero value is usable:
// sample every 1024th decision into 1024-slot rings, retain a 512-entry
// tail per instance, flush every 25 ms, no external sink.
type DecisionLogConfig struct {
	// SampleEvery records every Nth decision per shard; <= 1 records all
	// of them. The countdown is shard-local, so the effective process
	// rate is 1/N regardless of shard count.
	SampleEvery int
	// RingSize is the per-shard ring capacity in records, rounded up to
	// a power of two; 0 means 1024. A full ring drops (and counts)
	// records rather than blocking the shard.
	RingSize int
	// Tail is the per-instance count of recent decisions retained for
	// GET /v1/instances/{id}/decisions; 0 means 512.
	Tail int
	// FlushEvery is the drainer period; 0 means 25 ms.
	FlushEvery time.Duration
	// Sink additionally receives every flushed decision (nil: tail
	// only). Sink writes happen on the drainer goroutine, never on a
	// shard.
	Sink Sink
}

// withDefaults resolves zero fields.
func (c DecisionLogConfig) withDefaults() DecisionLogConfig {
	if c.SampleEvery < 1 {
		c.SampleEvery = 1024
	}
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	// Round the ring up to a power of two for mask indexing.
	rs := 1
	for rs < c.RingSize {
		rs <<= 1
	}
	c.RingSize = rs
	if c.Tail <= 0 {
		c.Tail = 512
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 25 * time.Millisecond
	}
	return c
}

// DecisionLog is the process-wide sampled decision log: it owns the
// drainer goroutine that asynchronously flushes every registered
// logger's shard rings into the per-instance tails and the optional
// sink. Create with NewDecisionLog, attach engines with Logger, and
// Close to flush the remainder and stop the drainer.
type DecisionLog struct {
	cfg DecisionLogConfig

	mu      sync.Mutex
	loggers map[string]*DecisionLogger
	order   []*DecisionLogger

	flushed atomic.Uint64 // decisions drained from rings (tail + sink)

	drain chan struct{} // poke the drainer outside its period (tests)
	done  chan struct{}
	wg    sync.WaitGroup

	// flushMu serializes flush passes: the rings are single-consumer, so
	// the periodic drainer, Remove and Close must not drain concurrently.
	// Guarded by it, flushSnap and sinkBuf are reusable scratch that
	// reaches its high-water mark once — a steady-state flush with no
	// sink allocates nothing, which is what keeps the engine's
	// telemetry-enabled alloc gate at exactly zero.
	flushMu   sync.Mutex
	flushSnap []*DecisionLogger
	sinkBuf   []Decision
}

// NewDecisionLog builds the log and starts its drainer.
func NewDecisionLog(cfg DecisionLogConfig) *DecisionLog {
	d := &DecisionLog{
		cfg:     cfg.withDefaults(),
		loggers: make(map[string]*DecisionLogger),
		drain:   make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	d.wg.Add(1)
	go d.run()
	return d
}

// SampleEvery reports the resolved sampling period.
func (d *DecisionLog) SampleEvery() int { return d.cfg.SampleEvery }

// Logger registers one instance with the log and returns its handle,
// with one preallocated ring per engine shard. Registering an instance
// ID twice replaces the previous logger (the old tail is dropped).
func (d *DecisionLog) Logger(instance, policy string, shards int) *DecisionLogger {
	if shards < 1 {
		shards = 1
	}
	l := &DecisionLogger{
		log:      d,
		instance: instance,
		policy:   policy,
		shards:   make([]*ShardLog, shards),
		tail:     make([]Decision, d.cfg.Tail),
	}
	for i := range l.shards {
		l.shards[i] = &ShardLog{
			every:     uint32(d.cfg.SampleEvery),
			countdown: uint32(d.cfg.SampleEvery),
			slots:     make([]Record, d.cfg.RingSize),
			mask:      uint64(d.cfg.RingSize - 1),
		}
	}
	d.mu.Lock()
	if _, ok := d.loggers[instance]; ok {
		// Replace in order too, keeping iteration stable.
		for i, old := range d.order {
			if old.instance == instance {
				d.order[i] = l
				break
			}
		}
	} else {
		d.order = append(d.order, l)
	}
	d.loggers[instance] = l
	d.mu.Unlock()
	return l
}

// Remove flushes and unregisters an instance's logger; its tail is no
// longer served. No-op for unknown instances.
func (d *DecisionLog) Remove(instance string) {
	d.mu.Lock()
	l, ok := d.loggers[instance]
	if ok {
		delete(d.loggers, instance)
		for i, o := range d.order {
			if o == l {
				d.order = append(d.order[:i], d.order[i+1:]...)
				break
			}
		}
	}
	d.mu.Unlock()
	if ok {
		d.flushMu.Lock()
		d.flushLogger(l)
		d.flushMu.Unlock()
	}
}

// Tail returns the most recent flushed decisions of one instance,
// newest last. ok is false when the instance has no registered logger.
func (d *DecisionLog) Tail(instance string, max int) (recs []Decision, ok bool) {
	d.mu.Lock()
	l, ok := d.loggers[instance]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	return l.Tail(max), true
}

// Stats reports lifetime totals: decisions flushed (to tail and sink)
// and decisions dropped on full rings. Records still sitting in rings
// appear in neither until the next flush.
func (d *DecisionLog) Stats() (flushed, dropped uint64) {
	d.mu.Lock()
	loggers := append([]*DecisionLogger(nil), d.order...)
	d.mu.Unlock()
	for _, l := range loggers {
		dropped += l.droppedTotal()
	}
	return d.flushed.Load(), dropped
}

// Flush drains every ring synchronously — what Close and tests use to
// see all published records without waiting a drainer period.
func (d *DecisionLog) Flush() {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	d.mu.Lock()
	d.flushSnap = append(d.flushSnap[:0], d.order...)
	d.mu.Unlock()
	for _, l := range d.flushSnap {
		d.flushLogger(l)
	}
}

// flushLogger drains one logger's rings into its tail and the sink
// batch. Caller holds flushMu. With no sink configured this path
// performs zero allocations: tail slots are preallocated and the
// instance/policy strings are shared, so steady-state telemetry never
// pressures the GC.
func (d *DecisionLog) flushLogger(l *DecisionLogger) {
	sink := d.cfg.Sink
	if sink != nil {
		d.sinkBuf = d.sinkBuf[:0]
	}
	var n int
	for i, s := range l.shards {
		r, w := s.ridx.Load(), s.widx.Load()
		n += int(w - r)
		for ; r < w; r++ {
			rec := s.slots[r&s.mask]
			dec := Decision{
				Instance:     l.instance,
				Policy:       l.policy,
				Element:      rec.Element,
				Shard:        int32(i),
				Members:      rec.Members,
				Admitted:     rec.Admitted,
				Verdict:      rec.Verdict,
				TimeUnixNano: rec.TimeUnixNano,
			}
			l.append(dec)
			if sink != nil {
				d.sinkBuf = append(d.sinkBuf, dec)
			}
		}
		s.ridx.Store(w)
	}
	if n > 0 {
		d.flushed.Add(uint64(n))
	}
	if sink != nil && len(d.sinkBuf) > 0 {
		sink.WriteDecisions(d.sinkBuf)
	}
}

// Poke asks the drainer for an immediate flush pass without blocking —
// tests and shutdown paths use it to shorten the flush latency.
func (d *DecisionLog) Poke() {
	select {
	case d.drain <- struct{}{}:
	default:
	}
}

// run is the drainer loop: flush every period (or on a poke) until
// Close.
func (d *DecisionLog) run() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-t.C:
			d.Flush()
		case <-d.drain:
			d.Flush()
		}
	}
}

// Close stops the drainer, flushes every remaining record and closes
// the sink if it implements io.Closer. Idempotent-unsafe: call once.
func (d *DecisionLog) Close() error {
	close(d.done)
	d.wg.Wait()
	d.Flush()
	if c, ok := d.cfg.Sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// EngineTelemetry is the bundle of instruments an engine records into
// (engine.Config.Telemetry). Any field may be nil to disable that
// instrument; the engine's hot path pays one branch per element for a
// disabled decision log and nothing at all per element for histograms
// (both are observed once per batch).
type EngineTelemetry struct {
	// Decisions samples admission decisions into the decision log.
	Decisions *DecisionLogger
	// QueueWait observes flush→shard-dequeue wait, once per batch.
	QueueWait *Histogram
	// Decide observes the shard's whole-batch decide time.
	Decide *Histogram
}
