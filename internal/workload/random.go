// Package workload generates the synthetic OSP instances the experiments
// run on: random set systems with controlled size/load profiles, planted-
// optimum instances, Zipf-weighted collections, synthetic video traces for
// the bottleneck-router scenario and multi-hop task instances. All
// generators take an explicit *rand.Rand so every experiment is
// reproducible from a seed.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/setsystem"
)

// ErrBadConfig is returned when generator parameters are out of range.
var ErrBadConfig = errors.New("workload: invalid configuration")

// UniformConfig describes a random instance with controlled loads: each of
// N elements independently picks its parents uniformly.
type UniformConfig struct {
	M    int // number of sets
	N    int // number of elements
	Load int // load σ(u) of every element (capped at M)
	// MinLoad, when positive, draws each element's load uniformly from
	// [MinLoad, Load] instead of pinning it at Load; heterogeneous loads
	// separate the paper's refined bounds (Theorem 1) from the coarse
	// σmax bound (Corollary 6).
	MinLoad int
	// Capacity is b(u) for every element; 0 means unit capacity.
	Capacity int
	// WeightFn returns the weight of set i; nil means unweighted.
	WeightFn func(i int) float64
}

// Uniform generates a random instance: every element picks its load
// (fixed, or uniform in [MinLoad, Load]) and that many distinct parents
// uniformly at random. Sets left empty by the sampling receive one private
// load-1 element each (keeping the instance valid); consequently loads are
// as configured except for that padding.
func Uniform(cfg UniformConfig, rng *rand.Rand) (*setsystem.Instance, error) {
	if cfg.M < 1 || cfg.N < 1 || cfg.Load < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	if cfg.MinLoad < 0 || cfg.MinLoad > cfg.Load {
		return nil, fmt.Errorf("%w: MinLoad %d out of [0, Load=%d]", ErrBadConfig, cfg.MinLoad, cfg.Load)
	}
	load := cfg.Load
	if load > cfg.M {
		load = cfg.M
	}
	minLoad := cfg.MinLoad
	if minLoad == 0 {
		minLoad = load
	}
	if minLoad > load {
		minLoad = load
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 1
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: capacity %d", ErrBadConfig, cfg.Capacity)
	}
	var b setsystem.Builder
	ids := make([]setsystem.SetID, cfg.M)
	for i := range ids {
		w := 1.0
		if cfg.WeightFn != nil {
			w = cfg.WeightFn(i)
		}
		ids[i] = b.AddSet(w)
	}
	touched := make([]bool, cfg.M)
	members := make([]setsystem.SetID, 0, load)
	for j := 0; j < cfg.N; j++ {
		sigma := load
		if minLoad < load {
			sigma = minLoad + rng.Intn(load-minLoad+1)
		}
		members = members[:0]
		for _, p := range rng.Perm(cfg.M)[:sigma] {
			members = append(members, ids[p])
			touched[p] = true
		}
		b.AddElementCap(capacity, members...)
	}
	for i, t := range touched {
		if !t {
			b.AddElementCap(capacity, ids[i])
		}
	}
	return b.Build()
}

// FixedSizeConfig describes a random instance in which every set has the
// same size K while element loads vary.
type FixedSizeConfig struct {
	M int // number of sets
	N int // number of elements (≥ K)
	K int // exact size of every set
	// WeightFn returns the weight of set i; nil means unweighted.
	WeightFn func(i int) float64
}

// FixedSize generates an instance where each set independently picks K
// distinct elements uniformly at random; element loads follow the balls-
// into-bins profile (heterogeneous), which is the regime of Theorem 5.
// Elements hit by no set are dropped.
func FixedSize(cfg FixedSizeConfig, rng *rand.Rand) (*setsystem.Instance, error) {
	if cfg.M < 1 || cfg.K < 1 || cfg.N < cfg.K {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	membersOf := make([][]setsystem.SetID, cfg.N)
	for i := 0; i < cfg.M; i++ {
		for _, e := range rng.Perm(cfg.N)[:cfg.K] {
			membersOf[e] = append(membersOf[e], setsystem.SetID(i))
		}
	}
	var b setsystem.Builder
	for i := 0; i < cfg.M; i++ {
		w := 1.0
		if cfg.WeightFn != nil {
			w = cfg.WeightFn(i)
		}
		b.AddSet(w)
	}
	for _, ms := range membersOf {
		if len(ms) == 0 {
			continue
		}
		b.AddElement(ms...)
	}
	return b.Build()
}

// RegularConfig describes a (K,Sigma)-biregular instance: every set has
// size exactly K and every element load exactly Sigma — the regime of
// Corollary 7. Feasibility requires M·K = N·Sigma for some integer N.
type RegularConfig struct {
	M     int // number of sets
	K     int // exact set size
	Sigma int // exact element load
}

// Regular generates a biregular instance. It first tries the configuration
// model (M·K set-slots matched to element-slots by a random permutation,
// resampled while some element contains a duplicate set); for dense
// parameters where rejection rarely succeeds it falls back to a circulant
// design — element e contains sets {e·Sigma, …, e·Sigma+Sigma−1} mod M —
// randomized by relabeling sets and shuffling element arrival order, which
// is always duplicate-free since Sigma ≤ M.
func Regular(cfg RegularConfig, rng *rand.Rand) (*setsystem.Instance, error) {
	if cfg.M < 1 || cfg.K < 1 || cfg.Sigma < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	total := cfg.M * cfg.K
	if total%cfg.Sigma != 0 {
		return nil, fmt.Errorf("%w: M·K = %d not divisible by Sigma = %d", ErrBadConfig, total, cfg.Sigma)
	}
	if cfg.Sigma > cfg.M {
		return nil, fmt.Errorf("%w: Sigma %d > M %d forces duplicate membership", ErrBadConfig, cfg.Sigma, cfg.M)
	}
	n := total / cfg.Sigma

	if inst, ok := regularConfigModel(cfg, n, rng); ok {
		return inst, nil
	}
	return regularCirculant(cfg, n, rng)
}

// regularConfigModel attempts the rejection-sampled configuration model.
func regularConfigModel(cfg RegularConfig, n int, rng *rand.Rand) (*setsystem.Instance, bool) {
	total := cfg.M * cfg.K
	slots := make([]setsystem.SetID, 0, total)
	for i := 0; i < cfg.M; i++ {
		for r := 0; r < cfg.K; r++ {
			slots = append(slots, setsystem.SetID(i))
		}
	}
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
		ok := true
		var b setsystem.Builder
		b.AddSets(cfg.M, 1)
		for e := 0; e < n && ok; e++ {
			chunk := slots[e*cfg.Sigma : (e+1)*cfg.Sigma]
			seen := make(map[setsystem.SetID]bool, cfg.Sigma)
			for _, s := range chunk {
				if seen[s] {
					ok = false
					break
				}
				seen[s] = true
			}
			if ok {
				b.AddElement(chunk...)
			}
		}
		if !ok {
			continue
		}
		inst, err := b.Build()
		if err != nil {
			continue
		}
		return inst, true
	}
	return nil, false
}

// regularCirculant builds the always-feasible circulant biregular design
// with random set relabeling and element order.
func regularCirculant(cfg RegularConfig, n int, rng *rand.Rand) (*setsystem.Instance, error) {
	relabel := rng.Perm(cfg.M)
	var b setsystem.Builder
	b.AddSets(cfg.M, 1)
	members := make([]setsystem.SetID, cfg.Sigma)
	for _, e := range rng.Perm(n) {
		for i := 0; i < cfg.Sigma; i++ {
			members[i] = setsystem.SetID(relabel[(e*cfg.Sigma+i)%cfg.M])
		}
		b.AddElement(members...)
	}
	return b.Build()
}

// ZipfWeights returns a WeightFn assigning weight proportional to
// 1/(i+1)^s, scaled so the largest weight is scale. Zipf weights model the
// skewed frame-importance distributions of layered video codecs.
func ZipfWeights(s, scale float64) func(i int) float64 {
	if scale <= 0 {
		scale = 1
	}
	return func(i int) float64 {
		return scale / math.Pow(float64(i+1), s)
	}
}
