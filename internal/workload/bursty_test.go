package workload

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/setsystem"
)

func TestBurstyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vi, err := Bursty(BurstyConfig{Streams: 5, Frames: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := vi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := vi.Inst.NumSets(), 50; got != want {
		t.Errorf("m = %d, want %d", got, want)
	}
	if len(vi.Class) != 50 {
		t.Errorf("Class len = %d", len(vi.Class))
	}
	// Frame sizes match their class.
	for i, c := range vi.Class {
		want := map[string]int{"I": 8, "P": 4, "B": 2}[c]
		if vi.Inst.Sizes[i] != want {
			t.Fatalf("frame %d class %s size %d, want %d", i, c, vi.Inst.Sizes[i], want)
		}
	}
}

func TestBurstyRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bad := []BurstyConfig{
		{Streams: 0, Frames: 1},
		{Streams: 1, Frames: 0},
		{Streams: 1, Frames: 1, OnProb: -0.1},
		{Streams: 1, Frames: 1, OffProb: 1.5},
		{Streams: 1, Frames: 1, GoP: []FrameClass{}},
		{Streams: 1, Frames: 1, GoP: []FrameClass{{Packets: 0, Weight: 1}}},
		{Streams: 1, Frames: 1, LinkCapacity: -1},
	}
	for _, cfg := range bad {
		if _, err := Bursty(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Bursty(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

// Bursty traffic should produce materially deeper bursts (higher σmax
// relative to mean load) than the jittered Video generator at equal
// offered load.
func TestBurstyIsBurstierThanVideo(t *testing.T) {
	var burstyPeak, videoPeak float64
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bv, err := Bursty(BurstyConfig{Streams: 8, Frames: 12, OnProb: 0.15, OffProb: 0.4}, rng)
		if err != nil {
			t.Fatal(err)
		}
		vv, err := Video(VideoConfig{Streams: 8, FramesPerStream: 12, Jitter: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		bs := setsystem.Compute(bv.Inst)
		vs := setsystem.Compute(vv.Inst)
		burstyPeak += float64(bs.SigmaMax) / bs.SigmaMean
		videoPeak += float64(vs.SigmaMax) / vs.SigmaMean
	}
	if burstyPeak <= videoPeak {
		t.Errorf("bursty peak-to-mean %v <= jittered %v", burstyPeak/trials, videoPeak/trials)
	}
}

func TestBurstyLinkCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vi, err := Bursty(BurstyConfig{Streams: 2, Frames: 3, LinkCapacity: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range vi.Inst.Elements {
		if e.Capacity != 2 {
			t.Fatalf("capacity %d, want 2", e.Capacity)
		}
	}
}
