package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/setsystem"
)

// BurstyConfig describes a Markov-modulated (on/off) video workload: each
// stream alternates between ON periods, during which it emits frames
// back-to-back, and OFF periods of silence. Superposed ON periods create
// the deep bursts that motivate the paper — σmax far above the mean load —
// much more realistically than independent jitter.
type BurstyConfig struct {
	// Streams is the number of concurrent on/off sources.
	Streams int
	// Frames is the total number of frames each stream emits.
	Frames int
	// OnProb is the per-slot probability that an OFF stream turns ON;
	// OffProb the probability an ON stream turns OFF. Defaults 0.3 / 0.3.
	OnProb, OffProb float64
	// GoP is the frame pattern; nil means DefaultGoP.
	GoP []FrameClass
	// LinkCapacity is b(u); 0 means 1.
	LinkCapacity int
}

// Bursty synthesizes the Markov-modulated trace and reduces it to OSP via
// the same slot-to-element mapping as Video. The returned VideoInstance
// carries the per-frame class metadata, so the router simulators accept it
// unchanged.
func Bursty(cfg BurstyConfig, rng *rand.Rand) (*VideoInstance, error) {
	if cfg.Streams < 1 || cfg.Frames < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	onP, offP := cfg.OnProb, cfg.OffProb
	if onP == 0 {
		onP = 0.3
	}
	if offP == 0 {
		offP = 0.3
	}
	if onP < 0 || onP > 1 || offP < 0 || offP > 1 {
		return nil, fmt.Errorf("%w: probabilities out of range", ErrBadConfig)
	}
	gop := cfg.GoP
	if gop == nil {
		gop = DefaultGoP()
	}
	if len(gop) == 0 {
		return nil, fmt.Errorf("%w: empty GoP", ErrBadConfig)
	}
	for _, fc := range gop {
		if fc.Packets < 1 || fc.Weight < 0 {
			return nil, fmt.Errorf("%w: frame class %+v", ErrBadConfig, fc)
		}
	}
	linkCap := cfg.LinkCapacity
	if linkCap == 0 {
		linkCap = 1
	}
	if linkCap < 1 {
		return nil, fmt.Errorf("%w: link capacity %d", ErrBadConfig, cfg.LinkCapacity)
	}

	var b setsystem.Builder
	vi := &VideoInstance{}
	type placement struct {
		set   setsystem.SetID
		start int
		count int
	}
	var placements []placement
	maxSlot := 0

	for s := 0; s < cfg.Streams; s++ {
		on := rng.Float64() < 0.5
		slot := 0
		emitted := 0
		frameIdx := 0
		for emitted < cfg.Frames {
			if on {
				fc := gop[frameIdx%len(gop)]
				frameIdx++
				id := b.AddSet(fc.Weight)
				vi.Class = append(vi.Class, fc.Name)
				placements = append(placements, placement{set: id, start: slot, count: fc.Packets})
				if end := slot + fc.Packets; end > maxSlot {
					maxSlot = end
				}
				vi.TotalPackets += fc.Packets
				slot += fc.Packets // back-to-back within an ON period
				emitted++
				if rng.Float64() < offP {
					on = false
				}
			} else {
				slot++
				if rng.Float64() < onP {
					on = true
				}
			}
		}
	}

	membersOf := make([][]setsystem.SetID, maxSlot)
	for _, p := range placements {
		for r := 0; r < p.count; r++ {
			membersOf[p.start+r] = append(membersOf[p.start+r], p.set)
		}
	}
	for _, ms := range membersOf {
		if len(ms) == 0 {
			continue
		}
		vi.Slots++
		b.AddElementCap(linkCap, ms...)
	}
	inst, err := b.Build()
	if err != nil {
		return nil, err
	}
	vi.Inst = inst
	return vi, nil
}
