package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/setsystem"
)

// The video generator reproduces the paper's motivating scenario
// (Section 1): video sources emit large frames that are fragmented into
// small packets; many streams share one bottleneck link, and in each time
// slot the link can serve only b packets — the rest are dropped. A frame
// is useful only if every packet survives. Elements are time slots, sets
// are frames.

// FrameClass describes one frame type of a GoP (group of pictures)
// pattern.
type FrameClass struct {
	// Name tags the class (e.g. "I", "P", "B").
	Name string
	// Packets is the number of packets frames of this class fragment
	// into.
	Packets int
	// Weight is the frame's value (decoder importance).
	Weight float64
}

// DefaultGoP is a classic I-P-B pattern: heavy, valuable I-frames,
// mid-size P-frames and small B-frames.
func DefaultGoP() []FrameClass {
	return []FrameClass{
		{Name: "I", Packets: 8, Weight: 8},
		{Name: "P", Packets: 4, Weight: 4},
		{Name: "B", Packets: 2, Weight: 1},
		{Name: "B", Packets: 2, Weight: 1},
	}
}

// VideoConfig describes a multi-stream video workload.
type VideoConfig struct {
	// Streams is the number of concurrent video sources.
	Streams int
	// FramesPerStream is how many frames each source emits.
	FramesPerStream int
	// GoP is the repeating frame pattern per stream; nil means
	// DefaultGoP.
	GoP []FrameClass
	// LinkCapacity is the number of packets the bottleneck link serves
	// per slot (b(u)); 0 means 1.
	LinkCapacity int
	// Jitter is the maximum random delay (in slots) added to each frame's
	// start, staggering streams so burst sizes vary.
	Jitter int
	// Spacing is the base number of slots between consecutive frame
	// starts within one stream; 0 means 2.
	Spacing int
}

// VideoInstance is the OSP instance for a video workload plus trace
// metadata for reporting.
type VideoInstance struct {
	Inst *setsystem.Instance
	// Class[i] is the frame class name of set i.
	Class []string
	// TotalPackets is the number of (frame, slot) memberships, i.e. the
	// number of packets offered to the link.
	TotalPackets int
	// Slots is the number of time slots with at least one packet.
	Slots int
}

// Video synthesizes the trace and reduces it to OSP. Each frame's packets
// occupy consecutive distinct slots starting at its jittered start time;
// a slot shared by several frames becomes an element whose parents are
// those frames.
func Video(cfg VideoConfig, rng *rand.Rand) (*VideoInstance, error) {
	if cfg.Streams < 1 || cfg.FramesPerStream < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	gop := cfg.GoP
	if gop == nil {
		gop = DefaultGoP()
	}
	if len(gop) == 0 {
		return nil, fmt.Errorf("%w: empty GoP", ErrBadConfig)
	}
	for _, fc := range gop {
		if fc.Packets < 1 || fc.Weight < 0 {
			return nil, fmt.Errorf("%w: frame class %+v", ErrBadConfig, fc)
		}
	}
	linkCap := cfg.LinkCapacity
	if linkCap == 0 {
		linkCap = 1
	}
	if linkCap < 1 {
		return nil, fmt.Errorf("%w: link capacity %d", ErrBadConfig, cfg.LinkCapacity)
	}
	spacing := cfg.Spacing
	if spacing == 0 {
		spacing = 2
	}
	if spacing < 1 || cfg.Jitter < 0 {
		return nil, fmt.Errorf("%w: spacing %d jitter %d", ErrBadConfig, cfg.Spacing, cfg.Jitter)
	}

	var b setsystem.Builder
	vi := &VideoInstance{}
	type placement struct {
		set   setsystem.SetID
		start int
		count int
	}
	var placements []placement
	maxSlot := 0
	for s := 0; s < cfg.Streams; s++ {
		cursor := 0
		for f := 0; f < cfg.FramesPerStream; f++ {
			fc := gop[f%len(gop)]
			id := b.AddSet(fc.Weight)
			vi.Class = append(vi.Class, fc.Name)
			start := cursor
			if cfg.Jitter > 0 {
				start += rng.Intn(cfg.Jitter + 1)
			}
			placements = append(placements, placement{set: id, start: start, count: fc.Packets})
			if end := start + fc.Packets; end > maxSlot {
				maxSlot = end
			}
			cursor += spacing
			vi.TotalPackets += fc.Packets
		}
	}

	membersOf := make([][]setsystem.SetID, maxSlot)
	for _, p := range placements {
		for r := 0; r < p.count; r++ {
			membersOf[p.start+r] = append(membersOf[p.start+r], p.set)
		}
	}
	for _, ms := range membersOf {
		if len(ms) == 0 {
			continue
		}
		vi.Slots++
		b.AddElementCap(linkCap, ms...)
	}
	inst, err := b.Build()
	if err != nil {
		return nil, err
	}
	vi.Inst = inst
	return vi, nil
}
