package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/setsystem"
)

func TestUniformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := Uniform(UniformConfig{M: 20, N: 50, Load: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumSets() != 20 {
		t.Errorf("m = %d, want 20", inst.NumSets())
	}
	if inst.NumElements() < 50 {
		t.Errorf("n = %d, want >= 50", inst.NumElements())
	}
	st := setsystem.Compute(inst)
	if st.SigmaMax > 4 {
		t.Errorf("σmax = %d > 4", st.SigmaMax)
	}
	if !inst.IsUnweighted() || !inst.IsUnitCapacity() {
		t.Error("default Uniform should be unweighted, unit-capacity")
	}
}

func TestUniformWeightsAndCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst, err := Uniform(UniformConfig{
		M: 10, N: 30, Load: 3, Capacity: 2,
		WeightFn: func(i int) float64 { return float64(i + 1) },
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inst.IsUnweighted() || inst.IsUnitCapacity() {
		t.Error("weights/capacities not applied")
	}
	if inst.Weights[9] != 10 {
		t.Errorf("weight[9] = %v, want 10", inst.Weights[9])
	}
}

func TestUniformLoadClampedToM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst, err := Uniform(UniformConfig{M: 3, N: 10, Load: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := setsystem.Compute(inst)
	if st.SigmaMax > 3 {
		t.Errorf("σmax = %d > m = 3", st.SigmaMax)
	}
}

func TestUniformRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := []UniformConfig{
		{M: 0, N: 5, Load: 1}, {M: 5, N: 0, Load: 1},
		{M: 5, N: 5, Load: 0}, {M: 5, N: 5, Load: 1, Capacity: -1},
	}
	for _, cfg := range bad {
		if _, err := Uniform(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Uniform(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestFixedSizeUniformK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, err := FixedSize(FixedSizeConfig{M: 30, N: 60, K: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if k, ok := setsystem.UniformSize(inst); !ok || k != 5 {
		t.Errorf("UniformSize = %d,%v want 5,true", k, ok)
	}
}

func TestFixedSizeRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, cfg := range []FixedSizeConfig{
		{M: 0, N: 10, K: 2}, {M: 5, N: 3, K: 4}, {M: 5, N: 10, K: 0},
	} {
		if _, err := FixedSize(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("FixedSize(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestRegularIsBiregular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, err := Regular(RegularConfig{M: 24, K: 3, Sigma: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if k, ok := setsystem.UniformSize(inst); !ok || k != 3 {
		t.Errorf("UniformSize = %d,%v want 3,true", k, ok)
	}
	if s, ok := setsystem.UniformLoad(inst); !ok || s != 4 {
		t.Errorf("UniformLoad = %d,%v want 4,true", s, ok)
	}
	if inst.NumElements() != 18 { // M·K/Sigma
		t.Errorf("n = %d, want 18", inst.NumElements())
	}
}

func TestRegularRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, cfg := range []RegularConfig{
		{M: 5, K: 3, Sigma: 4}, // 15 not divisible by 4
		{M: 3, K: 3, Sigma: 5}, // σ > m
		{M: 0, K: 1, Sigma: 1},
	} {
		if _, err := Regular(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Regular(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestRegularProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + rng.Intn(10)*2 // even, ≥ 6
		k := 2 + rng.Intn(3)
		sigma := 2
		if (m*k)%sigma != 0 {
			return true
		}
		inst, err := Regular(RegularConfig{M: m, K: k, Sigma: sigma}, rng)
		if err != nil {
			t.Logf("Regular: %v", err)
			return false
		}
		_, uk := setsystem.UniformSize(inst)
		_, us := setsystem.UniformLoad(inst)
		return uk && us && inst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(1, 10)
	if w(0) != 10 {
		t.Errorf("w(0) = %v, want 10", w(0))
	}
	if math.Abs(w(1)-5) > 1e-12 {
		t.Errorf("w(1) = %v, want 5", w(1))
	}
	if w(0) < w(5) {
		t.Error("Zipf weights must decrease")
	}
	wDefault := ZipfWeights(2, 0)
	if wDefault(0) != 1 {
		t.Errorf("scale 0 should default to 1, got %v", wDefault(0))
	}
}

func TestPlantedCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pi, err := Planted(PlantedConfig{Planted: 8, K: 4, Noise: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if pi.PlantedWeight != 8 {
		t.Errorf("PlantedWeight = %v, want 8", pi.PlantedWeight)
	}
	// Certificate: planted sets pairwise disjoint.
	inPlanted := make(map[setsystem.SetID]bool)
	for _, s := range pi.Planted {
		inPlanted[s] = true
	}
	for j, e := range pi.Inst.Elements {
		count := 0
		for _, s := range e.Members {
			if inPlanted[s] {
				count++
			}
		}
		if count > 1 {
			t.Fatalf("element %d touches %d planted sets", j, count)
		}
	}
	// All sets have size K.
	if k, ok := setsystem.UniformSize(pi.Inst); !ok || k != 4 {
		t.Errorf("UniformSize = %d,%v want 4,true", k, ok)
	}
}

func TestPlantedRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, cfg := range []PlantedConfig{
		{Planted: 0, K: 2}, {Planted: 2, K: 0}, {Planted: 2, K: 2, Noise: -1},
		{Planted: 2, K: 2, Noise: 1, NoiseWeight: -3},
	} {
		if _, err := Planted(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Planted(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestVideoShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vi, err := Video(VideoConfig{Streams: 4, FramesPerStream: 12, Jitter: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := vi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := vi.Inst.NumSets(), 48; got != want {
		t.Errorf("m = %d, want %d", got, want)
	}
	if len(vi.Class) != 48 {
		t.Errorf("Class len = %d", len(vi.Class))
	}
	// GoP accounting: 12 frames/stream = 3 GoPs of (8+4+2+2) packets.
	if got, want := vi.TotalPackets, 4*3*16; got != want {
		t.Errorf("TotalPackets = %d, want %d", got, want)
	}
	// Sizes match class packet counts.
	for i, c := range vi.Class {
		want := map[string]int{"I": 8, "P": 4, "B": 2}[c]
		if vi.Inst.Sizes[i] != want {
			t.Fatalf("frame %d class %s size %d, want %d", i, c, vi.Inst.Sizes[i], want)
		}
	}
}

func TestVideoLinkCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vi, err := Video(VideoConfig{Streams: 2, FramesPerStream: 4, LinkCapacity: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range vi.Inst.Elements {
		if e.Capacity != 3 {
			t.Fatalf("element capacity %d, want 3", e.Capacity)
		}
	}
}

func TestVideoRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bad := []VideoConfig{
		{Streams: 0, FramesPerStream: 1},
		{Streams: 1, FramesPerStream: 0},
		{Streams: 1, FramesPerStream: 1, GoP: []FrameClass{}},
		{Streams: 1, FramesPerStream: 1, GoP: []FrameClass{{Packets: 0, Weight: 1}}},
		{Streams: 1, FramesPerStream: 1, LinkCapacity: -1},
		{Streams: 1, FramesPerStream: 1, Jitter: -1},
		{Streams: 1, FramesPerStream: 1, Spacing: -1},
	}
	for _, cfg := range bad {
		if _, err := Video(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Video(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestMultihopShape(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	mi, err := Multihop(MultihopConfig{Hops: 6, Packets: 40, Horizon: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := mi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if mi.Inst.NumSets() != 40 {
		t.Errorf("m = %d, want 40", mi.Inst.NumSets())
	}
	if len(mi.ElementAt) != mi.Inst.NumElements() {
		t.Errorf("ElementAt len %d != n %d", len(mi.ElementAt), mi.Inst.NumElements())
	}
	// Elements in lexicographic (time, hop) order.
	for j := 1; j < len(mi.ElementAt); j++ {
		a, b := mi.ElementAt[j-1], mi.ElementAt[j]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("elements out of order at %d: %v then %v", j, a, b)
		}
	}
	// Routes are consecutive diagonal cells and match set sizes.
	for i, route := range mi.Routes {
		if len(route) != mi.Inst.Sizes[i] {
			t.Fatalf("packet %d route %d cells, size %d", i, len(route), mi.Inst.Sizes[i])
		}
		for d := 1; d < len(route); d++ {
			if route[d][0] != route[d-1][0]+1 || route[d][1] != route[d-1][1]+1 {
				t.Fatalf("packet %d route not diagonal: %v", i, route)
			}
		}
	}
}

func TestMultihopRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	bad := []MultihopConfig{
		{Hops: 1, Packets: 1, Horizon: 1},
		{Hops: 3, Packets: 0, Horizon: 1},
		{Hops: 3, Packets: 1, Horizon: 0},
		{Hops: 3, Packets: 1, Horizon: 1, MaxRoute: 1},
		{Hops: 3, Packets: 1, Horizon: 1, Capacity: -2},
	}
	for _, cfg := range bad {
		if _, err := Multihop(cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Multihop(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
}
