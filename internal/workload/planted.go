package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/setsystem"
)

// PlantedConfig describes an instance with a known planted packing, used
// when exact OPT is too expensive: the planted sets are pairwise disjoint
// by construction, so their total weight is a certified lower bound on OPT
// (and with enough noise, a close proxy).
type PlantedConfig struct {
	// Planted is the number of pairwise-disjoint planted sets.
	Planted int
	// K is the exact size of every set, planted and noise alike.
	K int
	// Noise is the number of additional overlapping sets.
	Noise int
	// NoiseWeight is the weight of noise sets; planted sets have weight 1.
	// 0 means 1 (unweighted).
	NoiseWeight float64
}

// PlantedInstance is the generated instance plus its certificate.
type PlantedInstance struct {
	Inst *setsystem.Instance
	// Planted lists the pairwise disjoint planted sets.
	Planted []setsystem.SetID
	// PlantedWeight is the certified OPT lower bound.
	PlantedWeight float64
}

// Planted builds a planted instance: Planted·K elements are partitioned
// into the planted sets; each noise set picks K distinct elements
// uniformly, so noise sets collide with the planted solution and with each
// other. Elements arrive in random order, interleaving planted and noise
// memberships.
func Planted(cfg PlantedConfig, rng *rand.Rand) (*PlantedInstance, error) {
	if cfg.Planted < 1 || cfg.K < 1 || cfg.Noise < 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	nw := cfg.NoiseWeight
	if nw == 0 {
		nw = 1
	}
	if nw < 0 {
		return nil, fmt.Errorf("%w: negative noise weight", ErrBadConfig)
	}
	n := cfg.Planted * cfg.K

	var b setsystem.Builder
	planted := make([]setsystem.SetID, cfg.Planted)
	for i := range planted {
		planted[i] = b.AddSet(1)
	}
	noise := make([]setsystem.SetID, cfg.Noise)
	for i := range noise {
		noise[i] = b.AddSet(nw)
	}

	membersOf := make([][]setsystem.SetID, n)
	for i, p := range planted {
		for r := 0; r < cfg.K; r++ {
			e := i*cfg.K + r
			membersOf[e] = append(membersOf[e], p)
		}
	}
	for _, s := range noise {
		for _, e := range rng.Perm(n)[:cfg.K] {
			membersOf[e] = append(membersOf[e], s)
		}
	}
	for _, e := range rng.Perm(n) {
		b.AddElement(membersOf[e]...)
	}
	inst, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &PlantedInstance{
		Inst:          inst,
		Planted:       planted,
		PlantedWeight: float64(cfg.Planted),
	}, nil
}
