package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/setsystem"
)

// The multihop generator reproduces the paper's second motivating scenario
// (Section 1): packets traversing multiple hops, where a packet is
// delivered only if no switch on its route drops it. The reduction maps
// each (time, hop) pair to an OSP element and each packet to a set whose
// elements are the time-location pairs it is due to visit; at each (t, h)
// only b packets can be served.

// MultihopConfig describes a line network of switches with store-and-
// forward packets.
type MultihopConfig struct {
	// Hops is the number of switches on the line.
	Hops int
	// Packets is the number of multi-hop packets (OSP sets).
	Packets int
	// MaxRoute caps each packet's route length (number of consecutive
	// hops it traverses); routes are 2..MaxRoute hops. 0 means Hops.
	MaxRoute int
	// Horizon is the number of injection slots packets start in.
	Horizon int
	// Capacity is the per-(time,hop) service capacity; 0 means 1.
	Capacity int
	// WeightFn returns the weight of packet i; nil means unweighted.
	WeightFn func(i int) float64
}

// MultihopInstance is the OSP reduction of a multihop trace plus the
// underlying routes for reporting and for the distributed simulator.
type MultihopInstance struct {
	Inst *setsystem.Instance
	// Routes[i] lists the (time, hop) pairs packet i visits, in time
	// order.
	Routes [][][2]int
	// Hops is the network length.
	Hops int
	// ElementAt[j] is the (time, hop) pair of element j in arrival order.
	ElementAt [][2]int
}

// Multihop generates packets with random consecutive-hop routes and
// injection times, and reduces the trace to OSP. Each packet advances one
// hop per slot (store-and-forward, no buffering), so a packet injected at
// time t0 entering hop h0 occupies (t0, h0), (t0+1, h0+1), …
// Elements arrive in lexicographic (time, hop) order — the order in which
// service decisions happen across the network.
func Multihop(cfg MultihopConfig, rng *rand.Rand) (*MultihopInstance, error) {
	if cfg.Hops < 2 || cfg.Packets < 1 || cfg.Horizon < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	maxRoute := cfg.MaxRoute
	if maxRoute == 0 || maxRoute > cfg.Hops {
		maxRoute = cfg.Hops
	}
	if maxRoute < 2 {
		return nil, fmt.Errorf("%w: MaxRoute %d < 2", ErrBadConfig, maxRoute)
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = 1
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: capacity %d", ErrBadConfig, cfg.Capacity)
	}

	var b setsystem.Builder
	mi := &MultihopInstance{Hops: cfg.Hops, Routes: make([][][2]int, cfg.Packets)}
	type cell struct{ time, hop int }
	occupants := make(map[cell][]setsystem.SetID)
	for i := 0; i < cfg.Packets; i++ {
		w := 1.0
		if cfg.WeightFn != nil {
			w = cfg.WeightFn(i)
		}
		id := b.AddSet(w)
		routeLen := 2 + rng.Intn(maxRoute-1)
		h0 := rng.Intn(cfg.Hops - routeLen + 1)
		t0 := rng.Intn(cfg.Horizon)
		route := make([][2]int, 0, routeLen)
		for d := 0; d < routeLen; d++ {
			t, h := t0+d, h0+d
			route = append(route, [2]int{t, h})
			occupants[cell{t, h}] = append(occupants[cell{t, h}], id)
		}
		mi.Routes[i] = route
	}

	cells := make([]cell, 0, len(occupants))
	for c := range occupants {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(a, z int) bool {
		if cells[a].time != cells[z].time {
			return cells[a].time < cells[z].time
		}
		return cells[a].hop < cells[z].hop
	})
	for _, c := range cells {
		b.AddElementCap(capacity, occupants[c]...)
		mi.ElementAt = append(mi.ElementAt, [2]int{c.time, c.hop})
	}
	inst, err := b.Build()
	if err != nil {
		return nil, err
	}
	mi.Inst = inst
	return mi, nil
}
