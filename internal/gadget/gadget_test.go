package gadget

import (
	"errors"
	"testing"
)

// shapes covers every (M,N) combination the Lemma 9 construction uses for
// small ℓ: (ℓ,ℓ), (ℓ,ℓ²), (ℓ²−ℓ,ℓ²).
var shapes = []struct{ m, n int }{
	{2, 2}, {3, 3}, {4, 4}, {5, 5},
	{2, 4}, {3, 9}, {4, 16}, {5, 25},
	{2, 4}, {6, 9}, {12, 16}, {20, 25},
	{1, 7}, {7, 7}, {3, 8},
}

func TestNewRejectsBadShapes(t *testing.T) {
	cases := []struct{ m, n int }{
		{0, 5}, {-1, 5}, {6, 5}, {2, 6}, {2, 0}, {3, 12},
	}
	for _, c := range cases {
		if _, err := New(c.m, c.n); !errors.Is(err, ErrBadShape) {
			t.Errorf("New(%d,%d) err = %v, want ErrBadShape", c.m, c.n, err)
		}
	}
}

func TestDimensions(t *testing.T) {
	g, err := New(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 || g.N() != 9 || g.NumItems() != 27 || g.NumAffineLines() != 81 {
		t.Errorf("dims: M=%d N=%d items=%d affine=%d", g.M(), g.N(), g.NumItems(), g.NumAffineLines())
	}
}

func TestAffineLineShape(t *testing.T) {
	for _, s := range shapes {
		g, err := New(s.m, s.n)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", s.m, s.n, err)
		}
		for a := 0; a < s.n; a++ {
			for b := 0; b < s.n; b++ {
				line := g.AffineLine(a, b)
				if len(line) != s.m {
					t.Fatalf("(%d,%d)-gadget: |L_{%d,%d}| = %d, want %d", s.m, s.n, a, b, len(line), s.m)
				}
				seenRow := make(map[int]bool, s.m)
				for _, it := range line {
					if it.Row < 0 || it.Row >= s.m || it.Col < 0 || it.Col >= s.n {
						t.Fatalf("item %v out of range", it)
					}
					if seenRow[it.Row] {
						t.Fatalf("L_{%d,%d} repeats row %d", a, b, it.Row)
					}
					seenRow[it.Row] = true
				}
			}
		}
	}
}

func TestRowLineShape(t *testing.T) {
	g, _ := New(4, 16)
	for c := 0; c < 4; c++ {
		line := g.RowLine(c)
		if len(line) != 16 {
			t.Fatalf("|L_∞,%d| = %d, want 16", c, len(line))
		}
		for j, it := range line {
			if it.Row != c || it.Col != j {
				t.Fatalf("RowLine(%d)[%d] = %v", c, j, it)
			}
		}
	}
}

// Proposition 1: two items in different rows lie on exactly one common
// affine line; two items in the same row on none.
func TestProposition1(t *testing.T) {
	for _, s := range shapes {
		if s.m*s.n > 300 { // keep the quadratic pair scan cheap
			continue
		}
		g, _ := New(s.m, s.n)
		for i1 := 0; i1 < s.m; i1++ {
			for j1 := 0; j1 < s.n; j1++ {
				for i2 := 0; i2 < s.m; i2++ {
					for j2 := 0; j2 < s.n; j2++ {
						if i1 == i2 && j1 == j2 {
							continue
						}
						got := g.LinesThrough(Item{i1, j1}, Item{i2, j2})
						want := 1
						if i1 == i2 {
							want = 0
						}
						if got != want {
							t.Fatalf("(%d,%d)-gadget: LinesThrough((%d,%d),(%d,%d)) = %d, want %d",
								s.m, s.n, i1, j1, i2, j2, got, want)
						}
					}
				}
			}
		}
	}
}

// Proposition 2: every item lies on exactly one line per slope a (hence N
// affine lines) and exactly one row line.
func TestProposition2(t *testing.T) {
	for _, s := range shapes {
		g, _ := New(s.m, s.n)
		counts := make(map[Item]int)
		g.VisitLines(true, func(line []Item) {
			for _, it := range line {
				counts[it]++
			}
		})
		if len(counts) != s.m*s.n {
			t.Fatalf("(%d,%d)-gadget: %d distinct items touched, want %d", s.m, s.n, len(counts), s.m*s.n)
		}
		for it, c := range counts {
			if c != s.n+1 {
				t.Fatalf("(%d,%d)-gadget: item %v on %d lines, want N+1 = %d", s.m, s.n, it, c, s.n+1)
			}
		}
	}
}

// Lemma 8 (without rows): N² lines of load M; each item on exactly N lines.
func TestLemma8WithoutRows(t *testing.T) {
	for _, s := range shapes {
		g, _ := New(s.m, s.n)
		var lines int
		counts := make(map[Item]int)
		g.VisitLines(false, func(line []Item) {
			lines++
			if len(line) != s.m {
				t.Fatalf("affine line of size %d, want %d", len(line), s.m)
			}
			for _, it := range line {
				counts[it]++
			}
		})
		if lines != s.n*s.n {
			t.Fatalf("(%d,%d)-gadget: %d lines, want %d", s.m, s.n, lines, s.n*s.n)
		}
		for it, c := range counts {
			if c != s.n {
				t.Fatalf("item %v on %d affine lines, want %d", it, c, s.n)
			}
		}
	}
}

// Lemma 8 (with rows): N²+M lines; after a full application any two items
// in the collection intersect (share a line), so a feasible packing keeps
// at most one item.
func TestLemma8FullIntersection(t *testing.T) {
	g, _ := New(3, 4) // 12 items: small enough for the full pairwise check
	onLine := make(map[Item][]int)
	id := 0
	g.VisitLines(true, func(line []Item) {
		for _, it := range line {
			onLine[it] = append(onLine[it], id)
		}
		id++
	})
	items := make([]Item, 0, 12)
	for it := range onLine {
		items = append(items, it)
	}
	for x := 0; x < len(items); x++ {
		for y := x + 1; y < len(items); y++ {
			if !shareLine(onLine[items[x]], onLine[items[y]]) {
				t.Fatalf("items %v and %v share no line in full application", items[x], items[y])
			}
		}
	}
}

func shareLine(a, b []int) bool {
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, y := range b {
		if seen[y] {
			return true
		}
	}
	return false
}

// Without the rows, items in the same row never intersect — this is what
// lets OPT keep a whole row alive (the proof of Lemma 9 relies on it).
func TestSameRowDisjointWithoutRows(t *testing.T) {
	g, _ := New(4, 5)
	onLine := make(map[Item][]int)
	id := 0
	g.VisitLines(false, func(line []Item) {
		for _, it := range line {
			onLine[it] = append(onLine[it], id)
		}
		id++
	})
	for row := 0; row < 4; row++ {
		for c1 := 0; c1 < 5; c1++ {
			for c2 := c1 + 1; c2 < 5; c2++ {
				if shareLine(onLine[Item{row, c1}], onLine[Item{row, c2}]) {
					t.Fatalf("same-row items (%d,%d),(%d,%d) share an affine line", row, c1, row, c2)
				}
			}
		}
	}
}
