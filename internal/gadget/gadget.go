// Package gadget implements the (M,N)-gadgets of Section 4.2.1 of the
// paper: combinatorial designs reminiscent of affine planes, used to build
// the randomized lower-bound distribution of Lemma 9.
//
// An (M,N)-gadget, for N a prime power and M ≤ N, consists of M·N items
// identified with pairs (i,j) ∈ F_M × F where F is a field of cardinality
// N and F_M ⊆ F has cardinality M. Its lines are
//
//	L_{a,b} = {(i, j) : j = a·i + b}   for a, b ∈ F   (N² affine lines, M items each)
//	L_{∞,c} = {c} × F                  for c ∈ F_M     (M row lines, N items each)
//
// In the OSP reduction, items are sets and lines are elements: applying the
// gadget to a collection of M·N sets under a bijection generates the
// element arrivals, first all affine lines (a = 0..N−1, b = 0..N−1), then —
// unless the application is "without the rows" — the M row lines.
//
// Key properties (Propositions 1–2, property-tested in this package):
// items in distinct rows share exactly one affine line; items in the same
// row share exactly one row line and no affine line; every item lies on
// exactly N affine lines (one per slope) and one row line.
package gadget

import (
	"errors"
	"fmt"

	"repro/internal/gf"
)

// ErrBadShape is returned when M or N are invalid (need 1 ≤ M ≤ N, N a
// prime power).
var ErrBadShape = errors.New("gadget: need 1 <= M <= N with N a prime power")

// Item is a gadget item: a (row, column) pair with Row ∈ [0,M) and
// Col ∈ [0,N), identifying one set of the collection the gadget is applied
// to.
type Item struct {
	Row int
	Col int
}

// Gadget is an (M,N)-gadget over GF(N). It is immutable after construction.
type Gadget struct {
	m, n  int
	field *gf.Field
}

// New constructs an (M,N)-gadget. F_M is taken to be the field elements
// with encodings 0..M−1.
func New(m, n int) (*Gadget, error) {
	if m < 1 || m > n {
		return nil, fmt.Errorf("%w: M=%d, N=%d", ErrBadShape, m, n)
	}
	f, err := gf.NewField(n)
	if err != nil {
		return nil, fmt.Errorf("%w: N=%d: %v", ErrBadShape, n, err)
	}
	return &Gadget{m: m, n: n, field: f}, nil
}

// M returns the number of rows (|F_M|).
func (g *Gadget) M() int { return g.m }

// N returns the field order (number of columns).
func (g *Gadget) N() int { return g.n }

// NumItems returns M·N.
func (g *Gadget) NumItems() int { return g.m * g.n }

// NumAffineLines returns N², the number of lines L_{a,b}.
func (g *Gadget) NumAffineLines() int { return g.n * g.n }

// AffineLine returns the items of L_{a,b} = {(i, a·i+b) : i ∈ F_M}, for
// field encodings a, b ∈ [0,N). The result has exactly M items, one per
// row.
func (g *Gadget) AffineLine(a, b int) []Item {
	items := make([]Item, g.m)
	for i := 0; i < g.m; i++ {
		j := g.field.Add(g.field.Mul(a, i), b)
		items[i] = Item{Row: i, Col: j}
	}
	return items
}

// RowLine returns the items of L_{∞,c} = {c} × F for c ∈ [0,M). The result
// has exactly N items.
func (g *Gadget) RowLine(c int) []Item {
	items := make([]Item, g.n)
	for j := 0; j < g.n; j++ {
		items[j] = Item{Row: c, Col: j}
	}
	return items
}

// VisitLines calls emit for every line of the gadget in the paper's
// application order: the N² affine lines (outer loop over slope a, inner
// over intercept b), then, if withRows is true, the M row lines. The slice
// passed to emit is reused only by the caller; each call receives freshly
// allocated items.
func (g *Gadget) VisitLines(withRows bool, emit func(line []Item)) {
	for a := 0; a < g.n; a++ {
		for b := 0; b < g.n; b++ {
			emit(g.AffineLine(a, b))
		}
	}
	if withRows {
		for c := 0; c < g.m; c++ {
			emit(g.RowLine(c))
		}
	}
}

// LinesThrough returns how many affine lines pass through both (i,j) and
// (i2,j2). By Proposition 1 this is exactly 1 when i ≠ i2 and 0 when
// i = i2 with j ≠ j2. Exposed for tests and for certifying lower-bound
// instances.
func (g *Gadget) LinesThrough(p, q Item) int {
	count := 0
	for a := 0; a < g.n; a++ {
		// (i,j) on L_{a,b} iff b = j − a·i; both points on the same line
		// iff the implied intercepts agree.
		b1 := g.field.Sub(p.Col, g.field.Mul(a, p.Row))
		b2 := g.field.Sub(q.Col, g.field.Mul(a, q.Row))
		if b1 == b2 {
			count++
		}
	}
	return count
}
