package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRegisterPolicies registers one instance per built-in policy and pins
// the echo surfaces: the register response, the status row, the metrics
// info gauge, and — after a full ingest/drain round trip — a drained
// result bit-for-bit equal to the policy's serial oracle.
func TestRegisterPolicies(t *testing.T) {
	const seed = 31
	inst := uniformInst(t, 30, 900, 4, 11)
	s := New(Config{})

	for _, name := range core.PolicyNames() {
		var reg RegisterResponse
		rec := do(t, s, "POST", "/v1/instances", RegisterRequest{
			Weights: inst.Weights, Sizes: inst.Sizes, Seed: seed,
			Shards: 2, BatchSize: 16, Policy: name, Label: name,
		}, &reg)
		if rec.Code != http.StatusCreated {
			t.Fatalf("%s: register status %d: %s", name, rec.Code, rec.Body.String())
		}
		if reg.Policy != name {
			t.Errorf("%s: register echoed policy %q", name, reg.Policy)
		}

		rec = do(t, s, "POST", "/v1/instances/"+reg.ID+"/elements",
			IngestRequest{Elements: wireElems(inst.Elements)}, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: ingest status %d: %s", name, rec.Code, rec.Body.String())
		}
		var dr DrainResponse
		do(t, s, "POST", "/v1/instances/"+reg.ID+"/drain", nil, &dr)

		pol, err := core.LookupPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: seed}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := dr.Result.Core(); !got.Equal(oracle) {
			t.Errorf("%s: drained result differs from serial oracle (%v vs %v)",
				name, got.Benefit, oracle.Benefit)
		}

		var st InstanceStatus
		do(t, s, "GET", "/v1/instances/"+reg.ID, nil, &st)
		if st.Policy != name {
			t.Errorf("%s: status policy = %q", name, st.Policy)
		}
	}

	// The default is resolved and echoed, not left empty.
	var reg RegisterResponse
	do(t, s, "POST", "/v1/instances", RegisterRequest{
		Weights: inst.Weights, Sizes: inst.Sizes, Seed: seed,
	}, &reg)
	if reg.Policy != core.DefaultPolicy {
		t.Errorf("default register echoed policy %q, want %q", reg.Policy, core.DefaultPolicy)
	}

	rec := do(t, s, "GET", "/metrics", nil, nil)
	body := rec.Body.String()
	for _, name := range core.PolicyNames() {
		frag := `,policy="` + name + `"} 1`
		if !strings.Contains(body, frag) {
			t.Errorf("metrics exposition missing osp_instance_policy series for %s:\n%s", name, body)
		}
	}
	if !strings.Contains(body, "# TYPE osp_instance_policy gauge") {
		t.Error("metrics exposition missing the osp_instance_policy TYPE line")
	}
}

// TestRegisterUnknownPolicy400 pins the registry validation: an unknown
// policy name is a 400 naming the registered alternatives, and nothing is
// registered.
func TestRegisterUnknownPolicy400(t *testing.T) {
	s := New(Config{})
	rec := do(t, s, "POST", "/v1/instances", RegisterRequest{
		Weights: []float64{1}, Sizes: []int{1}, Policy: "no-such-policy",
	}, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown policy: status %d, want 400 (%s)", rec.Code, rec.Body.String())
	}
	if body := rec.Body.String(); !strings.Contains(body, "no-such-policy") || !strings.Contains(body, core.DefaultPolicy) {
		t.Errorf("error body should name the bad policy and the alternatives: %s", body)
	}
	if s.Pool().Len() != 0 {
		t.Errorf("rejected registration leaked an instance into the pool")
	}
}
