package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hashpr"
	"repro/internal/setsystem"
	"repro/internal/stream"
	"repro/internal/wire"
)

// startStreamListener serves the stream transport on a loopback port,
// closing the listener at test end (Server.Shutdown also closes it).
func startStreamListener(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.ServeStream(ln) //nolint:errcheck // closed by cleanup or Shutdown
	return ln.Addr().String()
}

// testStream is a frame-level stream client for tests: no osp/client
// machinery, just the protocol.
type testStream struct {
	t      *testing.T
	fc     *stream.Conn
	window uint32
	policy string
	sent   uint32
	recvd  uint32
}

// dialStream connects and completes the handshake, failing the test on
// any rejection (dial raw and speak frames by hand to test those).
func dialStream(t *testing.T, addr, id string) *testStream {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	fc := stream.NewConn(nc, 0)
	if err := fc.WriteFrame(stream.FrameHello, 0, stream.AppendHello(nil, id)); err != nil {
		t.Fatal(err)
	}
	if err := fc.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, _, payload, err := fc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ == stream.FrameError {
		t.Fatalf("stream handshake rejected: %s", payload)
	}
	if typ != stream.FrameAck {
		t.Fatalf("handshake answered with frame %c, want ack", typ)
	}
	window, policy, err := stream.ParseAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	return &testStream{t: t, fc: fc, window: window, policy: policy}
}

// send pipelines one batch without waiting for its verdicts.
func (ts *testStream) send(els []setsystem.Element) {
	ts.t.Helper()
	if err := ts.fc.WriteFrame(stream.FrameBatch, ts.sent, wire.AppendElements(nil, els)); err != nil {
		ts.t.Fatal(err)
	}
	if err := ts.fc.Flush(); err != nil {
		ts.t.Fatal(err)
	}
	ts.sent++
}

// recv reads the next verdict frame — answering the oldest unanswered
// batch, whose elements the caller passes back in — and returns the
// per-element admitted sets.
func (ts *testStream) recv(els []setsystem.Element) [][]setsystem.SetID {
	ts.t.Helper()
	typ, seq, payload, err := ts.fc.ReadFrame()
	if err != nil {
		ts.t.Fatal(err)
	}
	if typ == stream.FrameError {
		ts.t.Fatalf("server error frame: %s", payload)
	}
	if typ != stream.FrameVerdicts || seq != ts.recvd {
		ts.t.Fatalf("got frame (%c, %d), want verdicts seq %d", typ, seq, ts.recvd)
	}
	ts.recvd++
	return decodeMasks(ts.t, payload, els)
}

// fin half-closes the stream and asserts the server's fin confirmation
// (any still-pending verdicts must already have been recv'd).
func (ts *testStream) fin() {
	ts.t.Helper()
	if err := ts.fc.WriteFrame(stream.FrameFin, ts.sent, nil); err != nil {
		ts.t.Fatal(err)
	}
	if err := ts.fc.Flush(); err != nil {
		ts.t.Fatal(err)
	}
	typ, _, payload, err := ts.fc.ReadFrame()
	if err != nil {
		ts.t.Fatal(err)
	}
	if typ != stream.FrameFin {
		ts.t.Fatalf("fin answered with frame %c (%s)", typ, payload)
	}
}

// expectError reads frames until the server's terminal error, failing
// on anything else, and returns its message.
func (ts *testStream) expectError() string {
	ts.t.Helper()
	typ, _, payload, err := ts.fc.ReadFrame()
	if err != nil {
		ts.t.Fatal(err)
	}
	if typ != stream.FrameError {
		ts.t.Fatalf("got frame %c, want error", typ)
	}
	return string(payload)
}

// TestStreamIngestMatchesAllCodecsAndOracle is the cross-codec
// equivalence anchor: the same workload ingested over JSON, binary
// HTTP and the stream transport — the stream in deliberately odd batch
// sizes — yields bit-for-bit identical per-element verdicts, all equal
// to the serial policy oracle, and identical drained results.
func TestStreamIngestMatchesAllCodecsAndOracle(t *testing.T) {
	const seed = 11
	inst := uniformInst(t, 60, 3000, 6, 4)
	s := New(Config{})
	defer s.Shutdown(t.Context())
	addr := startStreamListener(t, s)
	jsonID := register(t, s, inst, seed)
	binID := register(t, s, inst, seed)
	streamID := register(t, s, inst, seed)

	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: seed}, nil)
	ts := dialStream(t, addr, streamID)
	if ts.policy != "randpr" {
		t.Fatalf("ack announced policy %q, want randpr", ts.policy)
	}

	// Odd batch sizes exercise mask padding at every alignment.
	sizes := []int{1, 3, 7, 123, 250, 333}
	for off, k := 0, 0; off < len(inst.Elements); k++ {
		end := min(off+sizes[k%len(sizes)], len(inst.Elements))
		els := inst.Elements[off:end]

		var jresp IngestResponse
		if rec := do(t, s, "POST", "/v1/instances/"+jsonID+"/elements",
			IngestRequest{Elements: wireElems(els)}, &jresp); rec.Code != http.StatusOK {
			t.Fatalf("json ingest: status %d: %s", rec.Code, rec.Body.String())
		}
		brec := doBinary(t, s, binID, wire.AppendElements(nil, els))
		if brec.Code != http.StatusOK {
			t.Fatalf("binary ingest: status %d: %s", brec.Code, brec.Body.String())
		}
		bAdmitted := decodeMasks(t, brec.Body.Bytes(), els)

		ts.send(els)
		sAdmitted := ts.recv(els)

		for i, el := range els {
			want := core.SelectTopPriority(el.Members, el.Capacity, prio, nil)
			if fmt.Sprint(sAdmitted[i]) != fmt.Sprint(want) {
				t.Fatalf("element %d: stream admitted %v, oracle chose %v", off+i, sAdmitted[i], want)
			}
			if fmt.Sprint(sAdmitted[i]) != fmt.Sprint(bAdmitted[i]) ||
				fmt.Sprint(sAdmitted[i]) != fmt.Sprint(jresp.Verdicts[i].Admitted) {
				t.Fatalf("element %d: stream %v, binary %v, json %v",
					off+i, sAdmitted[i], bAdmitted[i], jresp.Verdicts[i].Admitted)
			}
		}
		off = end
	}
	ts.fin()

	oracle, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{jsonID, binID, streamID} {
		var dr DrainResponse
		if rec := do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, &dr); rec.Code != http.StatusOK {
			t.Fatalf("drain %s: status %d: %s", id, rec.Code, rec.Body.String())
		}
		if !dr.Result.Core().Equal(oracle) {
			t.Fatalf("instance %s drained result differs from serial oracle", id)
		}
	}
}

// TestStreamInterleavedConnections runs two pipelined streams into ONE
// instance concurrently: per-element verdicts stay oracle-exact on
// both (decisions are pure in the element and the frozen state, so
// interleaving cannot change them) and the drained result still equals
// the serial oracle's.
func TestStreamInterleavedConnections(t *testing.T) {
	const seed = 23
	inst := uniformInst(t, 50, 2000, 5, 8)
	s := New(Config{})
	defer s.Shutdown(t.Context())
	addr := startStreamListener(t, s)
	id := register(t, s, inst, seed)
	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: seed}, nil)

	const batch = 125
	var wg sync.WaitGroup
	for conn := 0; conn < 2; conn++ {
		wg.Add(1)
		go func(conn int) {
			defer wg.Done()
			ts := dialStream(t, addr, id)
			// Connection 0 takes even batches, connection 1 odd ones;
			// pipeline up to 4 before collecting.
			var pending [][]setsystem.Element
			flush := func() {
				for _, els := range pending {
					admitted := ts.recv(els)
					for i, el := range els {
						want := core.SelectTopPriority(el.Members, el.Capacity, prio, nil)
						if fmt.Sprint(admitted[i]) != fmt.Sprint(want) {
							t.Errorf("conn %d: element verdict %v, oracle chose %v", conn, admitted[i], want)
							return
						}
					}
				}
				pending = pending[:0]
			}
			for k := conn; k*batch < len(inst.Elements); k += 2 {
				els := inst.Elements[k*batch : min((k+1)*batch, len(inst.Elements))]
				ts.send(els)
				if pending = append(pending, els); len(pending) == 4 {
					flush()
				}
			}
			flush()
			ts.fin()
		}(conn)
	}
	wg.Wait()

	oracle, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dr DrainResponse
	do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, &dr)
	if !dr.Result.Core().Equal(oracle) {
		t.Fatalf("drained result differs from serial oracle after interleaved streams")
	}
	if dr.Metrics.Processed != uint64(len(inst.Elements)) {
		t.Fatalf("processed %d elements, want %d", dr.Metrics.Processed, len(inst.Elements))
	}
}

// TestStreamProtocolErrors pins the terminal-error contract: bad
// handshakes, out-of-sequence batches, oversized batches, malformed
// frames and wrong fin counts each end the stream with an error frame
// — after any verdicts the connection was still owed.
func TestStreamProtocolErrors(t *testing.T) {
	inst := uniformInst(t, 10, 40, 3, 9)
	s := New(Config{MaxBatch: 16})
	defer s.Shutdown(t.Context())
	addr := startStreamListener(t, s)
	id := register(t, s, inst, 1)

	rawDial := func() *stream.Conn {
		t.Helper()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nc.Close() })
		return stream.NewConn(nc, 0)
	}
	hello := func(fc *stream.Conn, id string) {
		t.Helper()
		if err := fc.WriteFrame(stream.FrameHello, 0, stream.AppendHello(nil, id)); err != nil {
			t.Fatal(err)
		}
		if err := fc.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	readError := func(fc *stream.Conn) string {
		t.Helper()
		typ, _, payload, err := fc.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != stream.FrameError {
			t.Fatalf("got frame %c, want error", typ)
		}
		return string(payload)
	}

	t.Run("unknown instance", func(t *testing.T) {
		fc := rawDial()
		hello(fc, "i-999")
		if msg := readError(fc); !bytes.Contains([]byte(msg), []byte("unknown instance")) {
			t.Fatalf("error = %q", msg)
		}
	})

	t.Run("batch before hello", func(t *testing.T) {
		fc := rawDial()
		if err := fc.WriteFrame(stream.FrameBatch, 0, wire.AppendElements(nil, inst.Elements[:1])); err != nil {
			t.Fatal(err)
		}
		if err := fc.Flush(); err != nil {
			t.Fatal(err)
		}
		if msg := readError(fc); !bytes.Contains([]byte(msg), []byte("expected hello")) {
			t.Fatalf("error = %q", msg)
		}
	})

	t.Run("out of sequence", func(t *testing.T) {
		ts := dialStream(t, addr, id)
		ts.send(inst.Elements[:2])
		// Skip ahead: seq 5 instead of 1. The verdict for batch 0 must
		// still arrive before the terminal error.
		if err := ts.fc.WriteFrame(stream.FrameBatch, 5, wire.AppendElements(nil, inst.Elements[2:4])); err != nil {
			t.Fatal(err)
		}
		if err := ts.fc.Flush(); err != nil {
			t.Fatal(err)
		}
		ts.recv(inst.Elements[:2])
		if msg := ts.expectError(); !bytes.Contains([]byte(msg), []byte("seq")) {
			t.Fatalf("error = %q", msg)
		}
	})

	t.Run("oversized batch", func(t *testing.T) {
		ts := dialStream(t, addr, id)
		big := make([]setsystem.Element, 17)
		for i := range big {
			big[i] = inst.Elements[0]
		}
		ts.send(big)
		if msg := ts.expectError(); !bytes.Contains([]byte(msg), []byte("exceeds limit")) {
			t.Fatalf("error = %q", msg)
		}
	})

	t.Run("malformed frame", func(t *testing.T) {
		ts := dialStream(t, addr, id)
		if err := ts.fc.WriteFrame(stream.FrameBatch, 0, []byte("not a wire frame")); err != nil {
			t.Fatal(err)
		}
		if err := ts.fc.Flush(); err != nil {
			t.Fatal(err)
		}
		if msg := ts.expectError(); !bytes.Contains([]byte(msg), []byte("ingest")) {
			t.Fatalf("error = %q", msg)
		}
	})

	t.Run("wrong fin count", func(t *testing.T) {
		ts := dialStream(t, addr, id)
		ts.send(inst.Elements[:2])
		ts.recv(inst.Elements[:2])
		if err := ts.fc.WriteFrame(stream.FrameFin, 7, nil); err != nil {
			t.Fatal(err)
		}
		if err := ts.fc.Flush(); err != nil {
			t.Fatal(err)
		}
		if msg := ts.expectError(); !bytes.Contains([]byte(msg), []byte("fin declares")) {
			t.Fatalf("error = %q", msg)
		}
	})
}

// TestStreamShutdownAnswersInFlight is the drain-under-load contract:
// Shutdown with a window of unanswered pipelined batches must answer
// every one with real verdicts before the stream ends with a shutting-
// down error frame — frames read are never dropped.
func TestStreamShutdownAnswersInFlight(t *testing.T) {
	const seed = 31
	inst := uniformInst(t, 50, 2000, 5, 3)
	s := New(Config{StreamDrainGrace: 200 * time.Millisecond})
	addr := startStreamListener(t, s)
	id := register(t, s, inst, seed)
	prio := core.HashPriorities(core.InfoOf(inst), hashpr.Mixer{Seed: seed}, nil)

	ts := dialStream(t, addr, id)
	const batch, inFlight = 200, 8
	var sent [][]setsystem.Element
	for k := 0; k < inFlight; k++ {
		els := inst.Elements[k*batch : (k+1)*batch]
		ts.send(els)
		sent = append(sent, els)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Every pipelined batch is answered — with oracle-exact verdicts —
	// then the terminal frame announces the drain.
	for _, els := range sent {
		admitted := ts.recv(els)
		for i, el := range els {
			want := core.SelectTopPriority(el.Members, el.Capacity, prio, nil)
			if fmt.Sprint(admitted[i]) != fmt.Sprint(want) {
				t.Fatalf("verdict during drain = %v, oracle chose %v", admitted[i], want)
			}
		}
	}
	if msg := ts.expectError(); !bytes.Contains([]byte(msg), []byte("shutting down")) {
		t.Fatalf("terminal frame = %q, want shutting-down notice", msg)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The engine really did decide those elements before draining.
	in, ok := s.Pool().Get(id)
	if !ok {
		t.Fatal("instance gone after shutdown")
	}
	if got := in.Snapshot().Processed; got != inFlight*batch {
		t.Fatalf("engine processed %d elements, want %d", got, inFlight*batch)
	}
}

// TestStreamCopyDecodeMatchesZeroCopy is the decode-path equivalence
// pin: the same frames sent to a default (zero-copy aliasing) server
// and to one forced onto the copying decoder via Config.StreamCopyDecode
// produce byte-for-byte identical verdict frames, and both drain to the
// serial oracle's result. StreamTimings is exercised on the copying
// server to cover the stamped variant of the read loop.
func TestStreamCopyDecodeMatchesZeroCopy(t *testing.T) {
	const seed = 43
	inst := uniformInst(t, 70, 4000, 6, 2)
	zc := New(Config{})
	defer zc.Shutdown(t.Context())
	cp := New(Config{StreamCopyDecode: true, StreamTimings: true})
	defer cp.Shutdown(t.Context())
	zcAddr := startStreamListener(t, zc)
	cpAddr := startStreamListener(t, cp)
	zcID := register(t, zc, inst, seed)
	cpID := register(t, cp, inst, seed)

	zcStream := dialStream(t, zcAddr, zcID)
	cpStream := dialStream(t, cpAddr, cpID)

	readVerdicts := func(ts *testStream) []byte {
		t.Helper()
		typ, seq, payload, err := ts.fc.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != stream.FrameVerdicts || seq != ts.recvd {
			t.Fatalf("got frame (%c, %d), want verdicts seq %d: %s", typ, seq, ts.recvd, payload)
		}
		ts.recvd++
		return append([]byte(nil), payload...)
	}

	// Odd batch sizes hit every mask-padding alignment; 1-element batches
	// hit the smallest aliasable frames.
	sizes := []int{1, 2, 9, 64, 255, 501}
	for off, k := 0, 0; off < len(inst.Elements); k++ {
		end := min(off+sizes[k%len(sizes)], len(inst.Elements))
		els := inst.Elements[off:end]
		zcStream.send(els)
		cpStream.send(els)
		zcV := readVerdicts(zcStream)
		cpV := readVerdicts(cpStream)
		if !bytes.Equal(zcV, cpV) {
			t.Fatalf("batch %d: zero-copy verdict frame differs from copy-decode frame (%d vs %d bytes)", k, len(zcV), len(cpV))
		}
		off = end
	}
	zcStream.fin()
	cpStream.fin()

	oracle, err := core.Run(inst, &core.HashRandPr{Hasher: hashpr.Mixer{Seed: seed}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sv := range []struct {
		s  *Server
		id string
	}{{zc, zcID}, {cp, cpID}} {
		var dr DrainResponse
		if rec := do(t, sv.s, "POST", "/v1/instances/"+sv.id+"/drain", nil, &dr); rec.Code != http.StatusOK {
			t.Fatalf("drain: status %d: %s", rec.Code, rec.Body.String())
		}
		if !dr.Result.Core().Equal(oracle) {
			t.Fatal("drained result differs from serial oracle")
		}
	}
	// The timings-enabled server populated the stream decode histogram;
	// the default server skipped the stamps entirely.
	if n := cp.obs.streamDecode.Snapshot().Count; n == 0 {
		t.Error("StreamTimings server recorded no stream decode observations")
	}
	if n := zc.obs.streamDecode.Snapshot().Count; n != 0 {
		t.Errorf("default server recorded %d stream decode observations, want 0 (timings off)", n)
	}
}

// TestStreamSteadyStateAllocs is the stream arm's alloc-regression
// gate: once the per-connection buffers, engine batches and verdict
// masks are warm, a full batch round trip over the real TCP loopback —
// client encode, server decode, shard decide, verdict frame back —
// allocates nothing per element.
func TestStreamSteadyStateAllocs(t *testing.T) {
	inst := uniformInst(t, 200, 16384, 8, 21)
	// A small window keeps the warm-up short: the free mask buffers
	// rotate FIFO, so every one of them must be cycled to high-water.
	s := New(Config{StreamWindow: 4})
	defer s.Shutdown(t.Context())
	addr := startStreamListener(t, s)
	id := register(t, s, inst, 5)

	const batch = 2048
	frames := make([][]byte, 0, len(inst.Elements)/batch)
	for off := 0; off+batch <= len(inst.Elements); off += batch {
		frames = append(frames, wire.AppendElements(nil, inst.Elements[off:off+batch]))
	}
	ts := dialStream(t, addr, id)

	roundTrip := func(k int) {
		if err := ts.fc.WriteFrame(stream.FrameBatch, ts.sent, frames[k]); err != nil {
			t.Fatal(err)
		}
		if err := ts.fc.Flush(); err != nil {
			t.Fatal(err)
		}
		ts.sent++
		typ, _, payload, err := ts.fc.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if typ != stream.FrameVerdicts {
			t.Fatalf("got frame %c (%s), want verdicts", typ, payload)
		}
		ts.recvd++
	}
	// Warm-up: cycle more round trips than window slots and engine
	// free-list batches so every recycled buffer reaches its final size.
	for k := 0; k < 12; k++ {
		roundTrip(k % len(frames))
	}
	pos := 0
	allocs := testing.AllocsPerRun(30, func() {
		roundTrip(pos % len(frames))
		pos++
	})
	perElement := allocs / batch
	t.Logf("warm stream round trip: %.1f allocs/batch over %d elements (%.4f/element)", allocs, batch, perElement)
	if perElement > 0.05 {
		t.Errorf("stream round trip allocates %.4f/element (%v per %d-element batch), want ~0",
			perElement, allocs, batch)
	}
}
