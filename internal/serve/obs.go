package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// serverObs bundles the service's own telemetry: the per-stage latency
// histograms, the HTTP outcome counters, and the (optional) decision
// log every engine in the pool samples into.
//
// The stage histograms are server-wide, not per-instance: obs.Histogram
// is plain atomic adds, so engines of every instance can share one
// histogram per stage and the result is identical to merging
// per-instance histograms at scrape — without the scrape-side work or
// the label-cardinality cost.
type serverObs struct {
	decisions *obs.DecisionLog // nil: decision logging disabled

	// The pipeline stages, in request order: decoding the wire payload
	// into elements (both HTTP codecs), the same decode on the stream
	// transport, a batch's wait in a shard queue, a shard's whole-batch
	// decide, and the full HTTP round trip.
	ingestDecode obs.Histogram
	streamDecode obs.Histogram
	queueWait    obs.Histogram
	decide       obs.Histogram
	request      obs.Histogram

	http   httpStats
	stream streamStats
}

// attach is the pool's telemetry attach hook: it hands a registering
// engine the shared stage histograms plus, when decision logging is
// enabled, a fresh per-instance decision logger.
func (o *serverObs) attach(id, policy string, shards int) *obs.EngineTelemetry {
	tel := &obs.EngineTelemetry{QueueWait: &o.queueWait, Decide: &o.decide}
	if o.decisions != nil {
		tel.Decisions = o.decisions.Logger(id, policy, shards)
	}
	return tel
}

// detach is the pool's removal hook: flush the instance's remaining
// sampled decisions to the sink and stop serving its tail.
func (o *serverObs) detach(id string) {
	if o.decisions != nil {
		o.decisions.Remove(id)
	}
}

// httpKey identifies one osp_http_requests_total series.
type httpKey struct {
	handler string // the mux pattern that matched ("POST /v1/instances/{id}/elements")
	code    int
}

// httpStats counts finished requests by (handler, status). One mutexed
// map increment per request — amortized against a full HTTP round trip,
// and the handler string is the mux's interned pattern so steady-state
// counting allocates nothing.
type httpStats struct {
	mu     sync.Mutex
	counts map[httpKey]uint64
}

func (h *httpStats) inc(handler string, code int) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make(map[httpKey]uint64)
	}
	h.counts[httpKey{handler, code}]++
	h.mu.Unlock()
}

// snapshot copies the counters sorted by handler then code, so the
// exposition is stable scrape to scrape.
func (h *httpStats) snapshot() ([]httpKey, []uint64) {
	h.mu.Lock()
	keys := make([]httpKey, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	h.mu.Unlock()
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].handler != keys[b].handler {
			return keys[a].handler < keys[b].handler
		}
		return keys[a].code < keys[b].code
	})
	vals := make([]uint64, len(keys))
	h.mu.Lock()
	for i, k := range keys {
		vals[i] = h.counts[k]
	}
	h.mu.Unlock()
	return keys, vals
}

// statusRecorder captures the response status for the request counters.
// Recorders are pooled: the middleware runs on every request including
// the zero-alloc binary ingest path, so it must not add per-request
// garbage of its own.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// observe is the instrumentation middleware around the whole mux: it
// times the end-to-end request and counts the outcome under the mux
// pattern that matched ("other" for unrouted paths).
func (s *Server) observe(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		pattern = "other"
	}
	rec := recorderPool.Get().(*statusRecorder)
	rec.ResponseWriter, rec.status = w, 0
	s.mux.ServeHTTP(rec, r)
	code := rec.status
	rec.ResponseWriter = nil
	recorderPool.Put(rec)
	if code == 0 {
		code = http.StatusOK
	}
	s.obs.request.Observe(time.Since(start))
	s.obs.http.inc(pattern, code)
}

// runtimeStats is the scrape-time snapshot behind the Go runtime gauges.
type runtimeStats struct {
	goroutines   int
	heapBytes    uint64
	heapObjects  uint64
	gcPauseSecs  float64
	gcCycles     uint32
	nextGCBytes  uint64
	lastGCUnixNS uint64
}

func readRuntimeStats() runtimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeStats{
		goroutines:   runtime.NumGoroutine(),
		heapBytes:    ms.HeapAlloc,
		heapObjects:  ms.HeapObjects,
		gcPauseSecs:  float64(ms.PauseTotalNs) * 1e-9,
		gcCycles:     ms.NumGC,
		nextGCBytes:  ms.NextGC,
		lastGCUnixNS: ms.LastGC,
	}
}

// buildMeta is the constant label set of osp_build_info, resolved once:
// the toolchain version plus the module version and VCS revision when
// the binary was built from a stamped module.
type buildInfo struct {
	goVersion, version, revision string
}

var buildMeta = readBuildMeta()

func readBuildMeta() buildInfo {
	b := buildInfo{goVersion: runtime.Version(), version: "unknown", revision: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			b.version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				b.revision = s.Value
			}
		}
	}
	return b
}
