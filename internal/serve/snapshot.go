package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wire"
)

// Snapshot/restore at the service layer: Export quiesces one instance
// and frames its recoverable state (engine.Checkpoint → wire.Snapshot);
// Pool.Restore is Register's mirror that rebuilds an instance — same
// ID, same policy state, counters resumed — from such a frame. The
// HTTP surface is POST /v1/instances/{id}/snapshot (returns the frame,
// and persists it when the server runs with a snapshot directory) and
// POST /v1/instances with Content-Type application/x-osp-snapshot
// (restore-on-register). ospserve -snapshot-dir wires WriteSnapshots /
// RestoreDir around shutdown and boot so a restart loses nothing.

// exportQuiesceTimeout bounds how long a snapshot request waits for the
// engine's in-flight batches to be decided. The backlog is bounded by
// shards × queue depth batches that the shards are actively consuming,
// so multi-second stalls indicate something much worse than load.
const exportQuiesceTimeout = 30 * time.Second

// Export quiesces the instance and returns its snapshot frame contents.
// The instance keeps serving afterwards — exporting is a read. Lane
// submitters are fenced out for the duration (rw write side), so the
// checkpoint's quiesce point covers the stream transport too.
func (in *Instance) Export(ctx context.Context) (*wire.Snapshot, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rw.Lock()
	defer in.rw.Unlock()
	cp, err := in.eng.Checkpoint(ctx)
	if err != nil {
		return nil, err
	}
	cfg := in.eng.Config()
	return &wire.Snapshot{
		ID:     in.id,
		Label:  in.label,
		Policy: in.eng.PolicyName(),
		Seed:   in.seed,
		Shards: cfg.Shards, BatchSize: cfg.BatchSize, QueueDepth: cfg.QueueDepth,
		Final:     cp.Final && in.Final(),
		Submitted: cp.Submitted, Processed: cp.Processed, Batches: cp.Batches,
		AssignedTotal: cp.AssignedTotal, Dropped: cp.Dropped,
		Weights:  in.info.Weights,
		Sizes:    in.info.Sizes,
		Assigned: cp.Assigned,
	}, nil
}

// Restore rebuilds an instance from a snapshot under its original ID:
// the engine's policy state is reconstructed from (Info, policy, seed) —
// identical by purity — and the snapshot's per-set counts become the
// baseline its eventual drain merges, so the restored instance's final
// Result is bit-for-bit what the uninterrupted instance would have
// reported. A Final snapshot is restored directly into the drained
// state with its terminal Result re-derived.
//
// The ID must be of the pool's own "i-<n>" form (snapshots come from a
// pool); the registration counter is bumped past it so later fresh
// registrations never collide.
func (p *Pool) Restore(snap *wire.Snapshot) (*Instance, error) {
	n, err := restoreID(snap.ID)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if len(p.byID) >= p.max {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (max %d)", ErrPoolFull, p.max)
	}
	if _, exists := p.byID[snap.ID]; exists {
		p.mu.Unlock()
		return nil, fmt.Errorf("serve: restore: instance %s already exists", snap.ID)
	}
	if n > p.nextID {
		p.nextID = n
	}
	p.mu.Unlock()

	pol, err := core.LookupPolicy(snap.Policy)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	cfg := engine.Config{
		Shards: snap.Shards, BatchSize: snap.BatchSize, QueueDepth: snap.QueueDepth,
		Policy: snap.Policy,
	}
	detach := func() {}
	if p.attachTel != nil {
		cfg.Telemetry = p.attachTel(snap.ID, pol.Name(), cfg.Resolved().Shards)
		if p.detachTel != nil {
			detach = func() { p.detachTel(snap.ID) }
		}
	}
	info := core.Info{Weights: snap.Weights, Sizes: snap.Sizes}
	eng, err := engine.NewFromCheckpoint(info, snap.Seed, cfg, &engine.Checkpoint{
		Submitted: snap.Submitted, Processed: snap.Processed, Batches: snap.Batches,
		AssignedTotal: snap.AssignedTotal, Dropped: snap.Dropped,
		Assigned: snap.Assigned, Final: snap.Final,
	})
	if err != nil {
		detach()
		return nil, err
	}
	in := &Instance{
		id:    snap.ID,
		label: snap.Label,
		seed:  snap.Seed,
		info:  info,
		eng:   eng,
	}
	if snap.Final {
		// The stream logically ended before the snapshot: re-derive the
		// terminal Result (the drain merges the baseline counts and sweeps
		// completions deterministically — exact) and restore as drained.
		in.final.Store(true)
		if _, err := eng.Drain(); err != nil {
			detach()
			return nil, err
		}
	}

	p.mu.Lock()
	switch {
	case p.closed:
		p.mu.Unlock()
		eng.Drain() //nolint:errcheck // nothing streamed since restore
		detach()
		return nil, ErrPoolClosed
	case len(p.byID) >= p.max:
		p.mu.Unlock()
		eng.Drain() //nolint:errcheck
		detach()
		return nil, fmt.Errorf("%w (max %d)", ErrPoolFull, p.max)
	}
	if _, exists := p.byID[in.id]; exists {
		p.mu.Unlock()
		eng.Drain() //nolint:errcheck
		detach()
		return nil, fmt.Errorf("serve: restore: instance %s already exists", in.id)
	}
	p.byID[in.id] = in
	p.mu.Unlock()
	return in, nil
}

// restoreID validates the "i-<n>" form and extracts the counter.
func restoreID(id string) (int, error) {
	digits, ok := strings.CutPrefix(id, "i-")
	if !ok {
		return 0, fmt.Errorf("serve: restore: instance id %q is not of the form i-<n>", id)
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("serve: restore: instance id %q is not of the form i-<n>", id)
	}
	return n, nil
}

// handleSnapshot serves POST /v1/instances/{id}/snapshot: quiesce the
// instance, answer its snapshot frame, and — when the server runs with
// a snapshot directory — persist the frame atomically so the state
// survives even a kill -9 from this moment on.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instance(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), exportQuiesceTimeout)
	defer cancel()
	snap, err := in.Export(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "snapshot: %v", err)
		return
	}
	raw := wire.AppendSnapshot(make([]byte, 0, wire.SnapshotLen(snap)), snap)
	if s.cfg.SnapshotDir != "" {
		if err := writeFileAtomic(s.cfg.SnapshotDir, snapshotFileName(in.ID()), raw); err != nil {
			writeError(w, http.StatusInternalServerError, "snapshot: persist: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", wire.ContentTypeSnapshot)
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	w.Write(raw) //nolint:errcheck // client gone mid-write is not actionable
}

// handleRestore is the restore arm of POST /v1/instances, taken when
// the request body is a snapshot frame (Content-Type
// application/x-osp-snapshot). The same admission clamps as a fresh
// registration apply — a snapshot is still an unauthenticated request.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "restore: read body: %v", err)
		return
	}
	snap, err := wire.DecodeSnapshot(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "restore: %v", err)
		return
	}
	if msg := vetSnapshot(snap); msg != "" {
		writeError(w, http.StatusBadRequest, "restore: %s", msg)
		return
	}
	in, err := s.pool.Restore(snap)
	switch {
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrPoolFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "restore: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		ID: in.ID(), Shards: in.Shards(), Policy: in.Policy(), State: in.State().String(),
	})
}

// vetSnapshot applies the registration-time semantic checks and sizing
// clamps to a decoded snapshot ("" = acceptable). Structural and
// restore-invariant checks already happened in wire.DecodeSnapshot.
func vetSnapshot(snap *wire.Snapshot) string {
	if len(snap.Weights) == 0 {
		return "at least one set required"
	}
	if len(snap.Weights) > maxSets {
		return fmt.Sprintf("%d sets exceeds limit %d", len(snap.Weights), maxSets)
	}
	for i, weight := range snap.Weights {
		if weight < 0 || math.IsInf(weight, 1) || math.IsNaN(weight) {
			return fmt.Sprintf("set %d has invalid weight %v", i, weight)
		}
		if snap.Sizes[i] < 1 {
			return fmt.Sprintf("set %d has size %d, want >= 1", i, snap.Sizes[i])
		}
	}
	if snap.Shards > maxShards {
		return fmt.Sprintf("shards %d out of range [0, %d]", snap.Shards, maxShards)
	}
	if snap.BatchSize > maxBatchSize {
		return fmt.Sprintf("batch_size %d out of range [0, %d]", snap.BatchSize, maxBatchSize)
	}
	if snap.QueueDepth > maxQueueDepth {
		return fmt.Sprintf("queue_depth %d out of range [0, %d]", snap.QueueDepth, maxQueueDepth)
	}
	resolved := engine.Config{
		Shards: snap.Shards, BatchSize: snap.BatchSize, QueueDepth: snap.QueueDepth,
	}.Resolved()
	if resolved.Shards*len(snap.Weights) > maxCounterCells {
		return fmt.Sprintf("%d shards x %d sets exceeds %d counter cells", resolved.Shards, len(snap.Weights), maxCounterCells)
	}
	if resolved.Shards*(resolved.QueueDepth+1) > maxInFlightBatch {
		return fmt.Sprintf("%d shards x %d queue depth exceeds %d in-flight batches", resolved.Shards, resolved.QueueDepth, maxInFlightBatch)
	}
	return ""
}

// snapshotFileName maps an instance ID to its file in the snapshot
// directory. IDs are pool-generated ("i-<n>"), so the name is always a
// clean single path element.
func snapshotFileName(id string) string { return id + ".osps" }

// WriteSnapshots exports every live instance into dir, one atomic file
// each, replacing whatever snapshot files a previous run left there —
// the pool is the authority on what exists; stale files must not
// resurrect removed instances at the next boot. Called by the daemon
// after its graceful shutdown drain (the engines are quiesced by then,
// so every export is instant). Export errors are joined, not
// short-circuited: one bad instance must not cost the others their
// durability.
func (s *Server) WriteSnapshots(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: snapshot dir: %w", err)
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "*.osps"))
	for _, path := range stale {
		os.Remove(path) //nolint:errcheck // best effort; overwritten below anyway
	}
	var errs []error
	for _, in := range s.pool.Instances() {
		snap, err := in.Export(ctx)
		if err != nil {
			errs = append(errs, fmt.Errorf("instance %s: %w", in.ID(), err))
			continue
		}
		raw := wire.AppendSnapshot(make([]byte, 0, wire.SnapshotLen(snap)), snap)
		if err := writeFileAtomic(dir, snapshotFileName(in.ID()), raw); err != nil {
			errs = append(errs, fmt.Errorf("instance %s: %w", in.ID(), err))
		}
	}
	return errors.Join(errs...)
}

// RestoreDir restores every snapshot file in dir into the pool —
// the boot-time mirror of WriteSnapshots. A missing directory is a
// first boot, not an error. Undecodable or unrestorable files are
// joined into the returned error; the good ones are restored regardless.
func (s *Server) RestoreDir(dir string) (restored int, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.osps"))
	if err != nil {
		return 0, fmt.Errorf("serve: snapshot dir: %w", err)
	}
	var errs []error
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		snap, err := wire.DecodeSnapshot(raw)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", filepath.Base(path), err))
			continue
		}
		if msg := vetSnapshot(snap); msg != "" {
			errs = append(errs, fmt.Errorf("%s: %s", filepath.Base(path), msg))
			continue
		}
		if _, err := s.pool.Restore(snap); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", filepath.Base(path), err))
			continue
		}
		restored++
	}
	return restored, errors.Join(errs...)
}

// writeFileAtomic writes name under dir with crash-safe visibility:
// the bytes go to a temp file that is fsynced before a rename onto the
// final name, and the directory is fsynced after, so a crash at any
// point leaves either the old file or the new one — never a torn
// mixture, never a name pointing at unflushed data.
func writeFileAtomic(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) //nolint:errcheck // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
