package serve

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/setsystem"
	"repro/internal/wire"
)

// The binary ingest path: POST /v1/instances/{id}/elements with
// Content-Type application/x-osp-batch. It exists to carry the engine's
// zero-allocation discipline to the socket — the JSON path burns ~96% of
// the engine's deliverable throughput on decode/marshal. Steady state
// here allocates nothing per element:
//
//	pooled body buffer  <- request bytes (one read loop, no json.Decoder)
//	borrowed engine batch <- wire.DecodeBatch appends straight into the
//	                         engine's flat SoA free-list buffers
//	Batch.Validate      <- the one per-member scan (atomicity, as JSON)
//	pooled verdict frame <- one bit per membership, written from the
//	                         shared PolicyState before ownership of the
//	                         batch passes to the engine
//	Engine.SubmitBatch  <- the filled batch goes to a shard whole; no
//	                         intermediate element structs, no second copy
//
// Every per-request buffer lives in one pooled scratch struct, so the
// hot path does a single sync.Pool round trip. The JSON path is
// untouched: any other Content-Type decodes exactly as before.

// ingestScratch is the pooled per-request working set of the binary
// ingest path.
type ingestScratch struct {
	body   []byte            // request frame
	resp   []byte            // verdicts frame
	decide []setsystem.SetID // PolicyState.Decide scratch
}

var scratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// isBinaryBatch reports whether the request negotiates the binary batch
// codec via Content-Type (parameters after ';' are ignored).
func isBinaryBatch(r *http.Request) bool {
	return mediaType(r.Header.Get("Content-Type")) == wire.ContentTypeBatch
}

// mediaType strips parameters and whitespace off a Content-Type value.
func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct)
}

// readBody reads the whole request body into buf (reusing its storage),
// bounded by the configured body limit. A limit overrun is reported as
// *http.MaxBytesError, exactly like the JSON path's decoder.
func readBody(w http.ResponseWriter, r *http.Request, limit int64, buf []byte) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, limit)
	if n := r.ContentLength; n > 0 && n <= limit && int64(cap(buf)) < n {
		// Known length above the warm buffer: grow once, up front.
		buf = make([]byte, 0, n)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleIngestBinary is the binary-codec arm of POST
// /v1/instances/{id}/elements. Semantics mirror the JSON arm exactly —
// atomic batches, identical status codes, verdicts computed from the
// same shared policy state — only the wire representation and the
// allocation profile differ.
func (s *Server) handleIngestBinary(w http.ResponseWriter, r *http.Request, in *Instance) {
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)

	decodeStart := time.Now()
	body, err := readBody(w, r, s.cfg.MaxBodyBytes, sc.body[:0])
	sc.body = body
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "ingest: read body: %v", err)
		return
	}

	// Enforce the batch cap from the frame header BEFORE decoding: the
	// decode fills engine free-list buffers that live as long as the
	// instance, so an over-limit frame must be rejected while it is
	// still just pooled request bytes, not after it has permanently
	// grown a recycled batch to its size.
	if c, ok := wire.PeekBatchCount(body); ok && c > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "ingest: batch of %d exceeds limit %d", c, s.cfg.MaxBatch)
		return
	}
	eng := in.eng
	b := eng.BorrowBatch()
	b.Members, b.Offs, b.Caps, err = wire.DecodeBatch(body, b.Members[:0], b.Offs[:0], b.Caps[:0])
	if err != nil {
		eng.ReturnBatch(b)
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	n := b.Len()
	// Atomicity: the whole batch is validated against the instance's
	// universe before any element is submitted, as in the JSON path.
	if err := b.Validate(in.info.NumSets()); err != nil {
		eng.ReturnBatch(b)
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	s.obs.ingestDecode.Observe(time.Since(decodeStart))

	// Pack the verdict frame before submitting: ownership of the batch
	// buffers passes to a shard at SubmitBatch, and the shard may reset
	// them concurrently. The handler and the shard still agree decision
	// for decision — both apply the same pure rule to the same frozen
	// state (Section 3.1, generalized by the policy contract).
	resp := wire.AppendVerdictsHeader(sc.resp[:0], n)
	dec := eng.Policy()
	buf := sc.decide
	for i := 0; i < n; i++ {
		members := b.Members[b.Offs[i]:b.Offs[i+1]]
		buf = dec.Decide(members, int(b.Caps[i]), buf)
		resp = wire.AppendVerdictMask(resp, members, buf)
	}
	sc.decide = buf
	sc.resp = resp

	if err := in.IngestBatch(b); err != nil {
		if errors.Is(err, engine.ErrDrained) {
			if s.pool.Closed() {
				writeError(w, http.StatusServiceUnavailable, "%v", ErrPoolClosed)
				return
			}
			writeError(w, http.StatusConflict, "ingest: instance %s is already drained", in.ID())
			return
		}
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeVerdicts)
	w.WriteHeader(http.StatusOK)
	w.Write(resp) //nolint:errcheck // client gone mid-write is not actionable
}
