// Package serve is the network-facing admission service: an HTTP front
// end over a pool of concurrent streaming engines. It turns the
// in-process engine of internal/engine into the paper's deployment story
// — a bottleneck router behind a network edge, remote producers racing
// element batches against the admission deadline, every verdict returned
// immediately.
//
// Endpoints (full request/response reference in docs/OPERATIONS.md):
//
//	POST   /v1/instances                 register a set system, open an engine
//	                                     (a body of Content-Type application/
//	                                     x-osp-snapshot restores an instance
//	                                     from a snapshot frame instead)
//	GET    /v1/instances                 list instances with live metrics
//	GET    /v1/instances/{id}            one instance's status
//	POST   /v1/instances/{id}/elements   batched element ingest → admit/drop verdicts
//	                                     (JSON, or the zero-allocation binary codec
//	                                     negotiated via Content-Type — see binary.go)
//	POST   /v1/instances/{id}/snapshot   quiesce → snapshot frame of the
//	                                     instance's recoverable state (persisted
//	                                     to -snapshot-dir when configured)
//	POST   /v1/instances/{id}/drain      close the stream → final Result (idempotent)
//	DELETE /v1/instances/{id}            drain and remove the instance
//	GET    /v1/instances/{id}/decisions  tail of the sampled decision log
//	                                     (404 unless Config.Decisions is set)
//	GET    /v1/policies                  registered admission policies + descriptions
//	GET    /metrics                      Prometheus text exposition (engine counters,
//	                                     per-stage latency histograms, HTTP outcome
//	                                     counters, runtime gauges, build info)
//	GET    /healthz                      liveness probe
//	GET    /debug/pprof/                 net/http/pprof (only with Config.EnablePprof)
//
// Verdicts are computed synchronously in the handler from the engine's
// shared priority vector — the same pure decision rule the shards apply —
// while the engine itself ingests the batch asynchronously behind bounded
// queues. The two never disagree: the faithful randPr decision depends
// only on the element and the fixed hash-derived priorities (Section
// 3.1), never on run state, so handler and shard are just two replicas of
// the same coordination-free rule. Backpressure therefore reaches the
// client naturally — when shard queues are full, the ingest handler
// blocks before answering.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/setsystem"
	"repro/internal/wire"
)

// Config sizes the service. The zero value is usable.
type Config struct {
	// MaxInstances bounds the engine pool; 0 means 1024.
	MaxInstances int
	// MaxBatch bounds the elements accepted in one ingest request;
	// 0 means 65536. Oversized batches are rejected with 400 before any
	// element is ingested.
	MaxBatch int
	// MaxBodyBytes bounds every request body; 0 means 256 MiB. Larger
	// bodies are rejected with 413 — nothing is buffered past the limit.
	MaxBodyBytes int64
	// Decisions enables the sampled decision log: every registered
	// engine samples admission decisions into it, the tail is served
	// from GET /v1/instances/{id}/decisions, and the log's counters
	// appear in /metrics. Nil disables decision logging (the endpoint
	// answers 404). The server does not own the log's lifecycle — the
	// caller that created it closes it after Shutdown.
	Decisions *obs.DecisionLog
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ — the
	// standard profiling surface, off by default because it exposes
	// goroutine stacks and heap contents to anyone who can reach the
	// port.
	EnablePprof bool
	// StreamWindow is the pipelining window of the raw-TCP stream
	// transport (ServeStream): how many unanswered batch frames one
	// connection may have in flight. Each slot costs one pooled verdict
	// buffer per connection. 0 means 32; values above 1024 are clamped.
	StreamWindow int
	// StreamCopyDecode forces the stream arm onto the copying batch
	// decoder (wire.DecodeBatch into engine free-list buffers) instead
	// of the default zero-copy path that aliases caps/members straight
	// out of the connection's receive slots. The two decoders are pinned
	// byte-for-byte equivalent; this switch exists for A/B benchmarking
	// and as an escape hatch. The copying path also engages on its own
	// whenever a frame cannot be aliased (foreign byte order).
	StreamCopyDecode bool
	// StreamTimings records per-batch decode latency into the
	// osp_stream_decode histogram. Off by default: the two time.Now
	// stamps per frame are measurable at stream rates (the other stage
	// histograms are fed by engine telemetry and HTTP handlers, which
	// pay per batch or per request, not per pipelined frame).
	StreamTimings bool
	// StreamDrainGrace bounds how long Shutdown lets a quiet stream
	// connection linger: frames read within the grace window are still
	// answered with real verdicts, then the stream ends with a
	// "shutting down" error frame. 0 means 1 second.
	StreamDrainGrace time.Duration
	// SnapshotDir, when set, is where POST /v1/instances/{id}/snapshot
	// additionally persists the instance's snapshot frame (atomic
	// tmp + rename + fsync). The daemon pairs it with WriteSnapshots at
	// shutdown and RestoreDir at boot (ospserve -snapshot-dir) so a
	// restart — graceful or kill -9 after a persisted snapshot — resumes
	// every instance bit-for-bit.
	SnapshotDir string
	// NodeLabel names this node in a cluster deployment (ospserve
	// -node); when set it is exported as the osp_node_info gauge so a
	// fleet dashboard can join per-node scrapes to the coordinator's
	// slot series. Empty means the series is absent (single-node
	// deployments stay label-free).
	NodeLabel string
}

// Hard caps on client-supplied engine sizing: a registration is a cheap
// unauthenticated request, so nothing it carries may scale the daemon's
// allocations unboundedly — neither a single field (the shard count is a
// goroutine + a channel + an m-sized counter array each) nor a product
// of fields (shards × sets is the total counter cells; shards × queue
// depth sizes the pre-filled batch free list). Vars, not consts, so
// tests can lower them without allocating gigabytes.
var (
	maxSets          = 1 << 24 // sets per instance (m)
	maxShards        = 1024
	maxBatchSize     = 1 << 20
	maxQueueDepth    = 1 << 16
	maxCounterCells  = 1 << 27 // resolved shards × sets (4 B each)
	maxInFlightBatch = 1 << 20 // resolved shards × (queue depth + 1)
)

// withDefaults resolves zero fields to their defaults.
func (c Config) withDefaults() Config {
	if c.MaxInstances <= 0 {
		c.MaxInstances = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 65536
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.StreamWindow <= 0 {
		c.StreamWindow = 32
	}
	if c.StreamWindow > 1024 {
		c.StreamWindow = 1024
	}
	if c.StreamDrainGrace <= 0 {
		c.StreamDrainGrace = time.Second
	}
	return c
}

// Server is the admission service: an http.Handler wiring the API routes
// to an engine pool. Create with New, mount anywhere an http.Handler
// goes, and call Shutdown for a graceful drain of every live engine.
type Server struct {
	cfg    Config
	pool   *Pool
	mux    *http.ServeMux
	obs    serverObs
	stream streamState
}

// New builds a Server with a fresh pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, pool: NewPool(cfg.MaxInstances), mux: http.NewServeMux()}
	s.obs.decisions = cfg.Decisions
	s.pool.SetTelemetry(s.obs.attach, s.obs.detach)
	s.mux.HandleFunc("POST /v1/instances", s.handleRegister)
	s.mux.HandleFunc("GET /v1/instances", s.handleList)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/instances/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/instances/{id}/elements", s.handleIngest)
	s.mux.HandleFunc("POST /v1/instances/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/instances/{id}/drain", s.handleDrain)
	s.mux.HandleFunc("DELETE /v1/instances/{id}", s.handleRemove)
	s.mux.HandleFunc("GET /v1/instances/{id}/decisions", s.handleDecisions)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler, wrapping every route in the
// instrumentation middleware (end-to-end latency histogram + outcome
// counters).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.observe(w, r) }

// Pool exposes the engine pool (the daemon uses it for shutdown
// reporting; tests use it to reach instances directly).
func (s *Server) Pool() *Pool { return s.pool }

// Shutdown gracefully closes the service: stream listeners and
// connections quiesce first — pipelined frames already read get real
// verdicts, then each stream ends with a "shutting down" error frame
// (drainStreams) — and only then are registrations and ingestion
// refused and every live engine drained, in-flight batches decided,
// not dropped. See Pool.Shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainStreams(ctx)
	return s.pool.Shutdown(ctx)
}

// writeJSON writes a JSON response body with the given status. The body
// is marshaled before the header goes out, so an unencodable value (a
// non-finite float, say) yields a clean 500 instead of a 200 with a
// truncated body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	raw, err := json.Marshal(body)
	if err != nil {
		raw = []byte(fmt.Sprintf(`{"error":"encode response: %v"}`, err))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw) //nolint:errcheck // client gone mid-write is not actionable
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body into v, holding the
// body to the configured size limit.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

// handleRegister opens a new instance: POST /v1/instances. A body of
// Content-Type application/x-osp-snapshot is a restore-on-register: the
// instance is rebuilt from the snapshot frame under its original ID
// (handleRestore) instead of registered fresh.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if mediaType(r.Header.Get("Content-Type")) == wire.ContentTypeSnapshot {
		s.handleRestore(w, r)
		return
	}
	var req RegisterRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Weights) == 0 {
		writeError(w, http.StatusBadRequest, "register: at least one set required")
		return
	}
	if len(req.Weights) != len(req.Sizes) {
		writeError(w, http.StatusBadRequest, "register: %d weights but %d sizes", len(req.Weights), len(req.Sizes))
		return
	}
	for i, weight := range req.Weights {
		if weight < 0 || math.IsInf(weight, 1) || math.IsNaN(weight) {
			writeError(w, http.StatusBadRequest, "register: set %d has invalid weight %v", i, weight)
			return
		}
		if req.Sizes[i] < 1 {
			writeError(w, http.StatusBadRequest, "register: set %d has size %d, want >= 1", i, req.Sizes[i])
			return
		}
	}
	// Clamp client-supplied engine sizing: these fields allocate real
	// resources per unit, individually and in products.
	switch {
	case len(req.Weights) > maxSets:
		writeError(w, http.StatusBadRequest, "register: %d sets exceeds limit %d", len(req.Weights), maxSets)
		return
	case req.Shards < 0 || req.Shards > maxShards:
		writeError(w, http.StatusBadRequest, "register: shards %d out of range [0, %d]", req.Shards, maxShards)
		return
	case req.BatchSize < 0 || req.BatchSize > maxBatchSize:
		writeError(w, http.StatusBadRequest, "register: batch_size %d out of range [0, %d]", req.BatchSize, maxBatchSize)
		return
	case req.QueueDepth < 0 || req.QueueDepth > maxQueueDepth:
		writeError(w, http.StatusBadRequest, "register: queue_depth %d out of range [0, %d]", req.QueueDepth, maxQueueDepth)
		return
	}
	// Resolve the policy name up front so an unknown name 400s with the
	// registered alternatives before any engine resources are sized.
	if _, err := core.LookupPolicy(req.Policy); err != nil {
		writeError(w, http.StatusBadRequest, "register: %v", err)
		return
	}
	resolved := engine.Config{
		Shards: req.Shards, BatchSize: req.BatchSize, QueueDepth: req.QueueDepth,
	}.Resolved()
	switch {
	case resolved.Shards*len(req.Weights) > maxCounterCells:
		writeError(w, http.StatusBadRequest,
			"register: %d shards x %d sets exceeds %d counter cells", resolved.Shards, len(req.Weights), maxCounterCells)
		return
	case resolved.Shards*(resolved.QueueDepth+1) > maxInFlightBatch:
		writeError(w, http.StatusBadRequest,
			"register: %d shards x %d queue depth exceeds %d in-flight batches", resolved.Shards, resolved.QueueDepth, maxInFlightBatch)
		return
	}
	in, err := s.pool.Register(Spec{
		Info: core.Info{Weights: req.Weights, Sizes: req.Sizes},
		Seed: req.Seed,
		Engine: engine.Config{
			Shards: req.Shards, BatchSize: req.BatchSize, QueueDepth: req.QueueDepth,
			Policy: req.Policy,
		},
		Label: req.Label,
	})
	switch {
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrPoolFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "register: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		ID: in.ID(), Shards: in.Shards(), Policy: in.Policy(), State: in.State().String(),
	})
}

// instance resolves the {id} path parameter, answering 404 on a miss.
func (s *Server) instance(w http.ResponseWriter, r *http.Request) (*Instance, bool) {
	id := r.PathValue("id")
	in, ok := s.pool.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown instance %q", id)
		return nil, false
	}
	return in, true
}

// handleIngest streams one batch: POST /v1/instances/{id}/elements.
// Batches are atomic: every element is validated before any is submitted,
// so a malformed batch changes nothing. On success the response carries
// the immediate admit/drop verdict of every element.
//
// The wire codec is negotiated per request by Content-Type:
// application/x-osp-batch takes the zero-allocation binary path
// (handleIngestBinary, answered with application/x-osp-verdicts); any
// other content type decodes as the JSON shapes below, byte-for-byte
// compatible with pre-binary servers and clients.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instance(w, r)
	if !ok {
		return
	}
	if s.pool.Closed() {
		writeError(w, http.StatusServiceUnavailable, "%v", ErrPoolClosed)
		return
	}
	if isBinaryBatch(r) {
		s.handleIngestBinary(w, r, in)
		return
	}
	decodeStart := time.Now()
	var req IngestRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Elements) == 0 {
		writeError(w, http.StatusBadRequest, "ingest: empty batch")
		return
	}
	if len(req.Elements) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "ingest: batch of %d exceeds limit %d", len(req.Elements), s.cfg.MaxBatch)
		return
	}
	els := make([]setsystem.Element, len(req.Elements))
	for i, we := range req.Elements {
		els[i] = we.element()
	}
	if err := in.Validate(els); err != nil {
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	s.obs.ingestDecode.Observe(time.Since(decodeStart))
	if err := in.Ingest(els); err != nil {
		if errors.Is(err, engine.ErrDrained) {
			// Distinguish a client-drained instance (terminal, 409) from
			// a drain forced by graceful shutdown racing this request
			// (retryable elsewhere, 503 as documented).
			if s.pool.Closed() {
				writeError(w, http.StatusServiceUnavailable, "%v", ErrPoolClosed)
				return
			}
			writeError(w, http.StatusConflict, "ingest: instance %s is already drained", in.ID())
			return
		}
		writeError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Verdicts: in.Verdicts(els),
		Ingested: len(els),
	})
}

// handleDrain closes a stream: POST /v1/instances/{id}/drain.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instance(w, r)
	if !ok {
		return
	}
	in.MarkFinal() // client-requested: the stream logically ends here
	res, err := in.Drain()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "drain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, DrainResponse{
		Result:  wireResult(res),
		Metrics: wireSnapshot(in.Snapshot()),
	})
}

// handleStatus reports one instance: GET /v1/instances/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instance(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, in.Status())
}

// handleList reports every instance: GET /v1/instances.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	instances := s.pool.Instances()
	resp := ListResponse{Instances: make([]InstanceStatus, len(instances))}
	for i, in := range instances {
		resp.Instances[i] = in.Status()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRemove drains and deletes an instance: DELETE /v1/instances/{id}.
func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if in, ok := s.pool.Get(id); ok {
		in.MarkFinal()
	}
	if s.cfg.SnapshotDir != "" {
		// A removed instance must not resurrect at the next boot.
		os.Remove(filepath.Join(s.cfg.SnapshotDir, snapshotFileName(id))) //nolint:errcheck // best effort
	}
	if err := s.pool.Remove(id); err != nil {
		if errors.Is(err, ErrUnknownInstance) {
			writeError(w, http.StatusNotFound, "unknown instance %q", id)
			return
		}
		writeError(w, http.StatusInternalServerError, "remove: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePolicies reports the registered admission policies:
// GET /v1/policies. The rows come straight from the core policy
// registry, so a policy registered at runtime (core.RegisterPolicy)
// appears here without any server change — clients discover what this
// server offers instead of hardcoding the built-in names.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	infos := core.PolicyInfos()
	resp := PoliciesResponse{Policies: make([]PolicyDescription, len(infos))}
	for i, info := range infos {
		resp.Policies[i] = PolicyDescription{Name: info.Name, Description: info.Description}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDecisions serves the sampled decision log's tail:
// GET /v1/instances/{id}/decisions[?n=max]. Rings are flushed
// synchronously first, so the response reflects decisions made up to
// this request, not up to the drainer's last pass. Answers 404 when the
// server runs without a decision log.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	in, ok := s.instance(w, r)
	if !ok {
		return
	}
	dlog := s.obs.decisions
	if dlog == nil {
		writeError(w, http.StatusNotFound, "decision log disabled (start the server with -decision-log)")
		return
	}
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "decisions: n must be a positive integer, got %q", q)
			return
		}
		max = n
	}
	dlog.Flush()
	recs, _ := dlog.Tail(in.ID(), max)
	if recs == nil {
		recs = []obs.Decision{}
	}
	writeJSON(w, http.StatusOK, DecisionsResponse{
		Instance:    in.ID(),
		SampleEvery: dlog.SampleEvery(),
		Decisions:   recs,
	})
}

// handleMetrics renders the Prometheus exposition: GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s)
}

// handleHealthz is the liveness probe: GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.pool.Closed() {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
