package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/setsystem"
	"repro/internal/wire"
)

// doBinary runs one binary-codec ingest through the server.
func doBinary(t *testing.T, s *Server, id string, frame []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/instances/"+id+"/elements", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentTypeBatch)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// decodeMasks unpacks a verdicts frame into per-element admitted sets,
// using the elements the "client" sent.
func decodeMasks(t *testing.T, raw []byte, els []setsystem.Element) [][]setsystem.SetID {
	t.Helper()
	payload, count, err := wire.DecodeVerdicts(raw)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(els) {
		t.Fatalf("verdicts frame counts %d elements, sent %d", count, len(els))
	}
	out := make([][]setsystem.SetID, len(els))
	for i, el := range els {
		var mask []byte
		mask, payload, err = wire.MaskAt(payload, len(el.Members))
		if err != nil {
			t.Fatal(err)
		}
		for j, s := range el.Members {
			if wire.MaskBit(mask, j) {
				out[i] = append(out[i], s)
			}
		}
	}
	if len(payload) != 0 {
		t.Fatalf("%d stray bytes after the last mask", len(payload))
	}
	return out
}

// TestBinaryIngestMatchesJSON is the codec-equivalence anchor: the same
// stream ingested once per codec on two instances under one seed yields
// identical per-element verdicts and an identical drained result.
func TestBinaryIngestMatchesJSON(t *testing.T) {
	inst := uniformInst(t, 60, 3000, 6, 4)
	s := New(Config{})
	defer s.Shutdown(t.Context())
	jsonID := register(t, s, inst, 11)
	binID := register(t, s, inst, 11)

	const batch = 250
	for off := 0; off < len(inst.Elements); off += batch {
		els := inst.Elements[off : off+batch]

		var jresp IngestResponse
		rec := do(t, s, "POST", "/v1/instances/"+jsonID+"/elements", IngestRequest{Elements: wireElems(els)}, &jresp)
		if rec.Code != http.StatusOK {
			t.Fatalf("json ingest: status %d: %s", rec.Code, rec.Body.String())
		}

		brec := doBinary(t, s, binID, wire.AppendElements(nil, els))
		if brec.Code != http.StatusOK {
			t.Fatalf("binary ingest: status %d: %s", brec.Code, brec.Body.String())
		}
		if ct := brec.Header().Get("Content-Type"); ct != wire.ContentTypeVerdicts {
			t.Fatalf("binary ingest answered Content-Type %q", ct)
		}
		admitted := decodeMasks(t, brec.Body.Bytes(), els)
		for i := range els {
			if fmt.Sprint(admitted[i]) != fmt.Sprint(jresp.Verdicts[i].Admitted) {
				t.Fatalf("element %d: binary admitted %v, JSON admitted %v",
					off+i, admitted[i], jresp.Verdicts[i].Admitted)
			}
		}
	}

	var jdrain, bdrain DrainResponse
	do(t, s, "POST", "/v1/instances/"+jsonID+"/drain", nil, &jdrain)
	do(t, s, "POST", "/v1/instances/"+binID+"/drain", nil, &bdrain)
	if !jdrain.Result.Core().Equal(bdrain.Result.Core()) {
		t.Fatalf("drained results differ: json %.3f, binary %.3f", jdrain.Result.Benefit, bdrain.Result.Benefit)
	}
}

// TestBinaryIngestRejects pins the binary arm's status codes against the
// JSON arm's contract: malformed frames and invalid elements 400 with
// nothing ingested (atomicity), oversized batches 400, drained instances
// 409 — and after every rejection the instance still drains clean.
func TestBinaryIngestRejects(t *testing.T) {
	inst := uniformInst(t, 10, 40, 3, 9)
	s := New(Config{MaxBatch: 16})
	defer s.Shutdown(t.Context())
	id := register(t, s, inst, 1)

	el := inst.Elements[0]
	good := wire.AppendElements(nil, []setsystem.Element{el})

	if rec := doBinary(t, s, id, []byte("not a frame")); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage frame: status %d, want 400", rec.Code)
	}
	if rec := doBinary(t, s, id, good[:len(good)-2]); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated frame: status %d, want 400", rec.Code)
	}
	outOfRange := wire.AppendElements(nil, []setsystem.Element{
		{Members: []setsystem.SetID{99}, Capacity: 1},
	})
	if rec := doBinary(t, s, id, outOfRange); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range member: status %d, want 400", rec.Code)
	}
	big := make([]setsystem.Element, 17)
	for i := range big {
		big[i] = el
	}
	if rec := doBinary(t, s, id, wire.AppendElements(nil, big)); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", rec.Code)
	}

	// Nothing above was ingested: the engine is still idle.
	var st InstanceStatus
	do(t, s, "GET", "/v1/instances/"+id, nil, &st)
	if st.Metrics.Submitted != 0 {
		t.Errorf("rejected batches leaked %d elements into the engine", st.Metrics.Submitted)
	}

	do(t, s, "POST", "/v1/instances/"+id+"/drain", nil, nil)
	if rec := doBinary(t, s, id, good); rec.Code != http.StatusConflict {
		t.Errorf("ingest after drain: status %d, want 409", rec.Code)
	}
}

// TestBinaryIngestBodyLimit mirrors the JSON path's 413 contract.
func TestBinaryIngestBodyLimit(t *testing.T) {
	inst := uniformInst(t, 10, 60, 3, 9)
	s := New(Config{MaxBodyBytes: 512})
	defer s.Shutdown(t.Context())
	id := register(t, s, inst, 1)
	frame := wire.AppendElements(nil, inst.Elements[:50])
	if len(frame) <= 512 {
		t.Fatalf("test frame only %d bytes, need > 512", len(frame))
	}
	if rec := doBinary(t, s, id, frame); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", rec.Code)
	}
}

// discardResponseWriter is the allocation-probe ResponseWriter: a
// preallocated header map and a byte-counting body sink.
type discardResponseWriter struct {
	h http.Header
	n int
}

func (w *discardResponseWriter) Header() http.Header { return w.h }
func (w *discardResponseWriter) WriteHeader(int)     {}
func (w *discardResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// bodyReader is a resettable request body that avoids per-run reader
// allocations in the probe loop.
type bodyReader struct{ bytes.Reader }

func (*bodyReader) Close() error { return nil }

// TestBinaryIngestSteadyStateAllocs is the ingest-handler
// alloc-regression gate: once pools and engine batches are warm, a
// binary-codec request allocates nothing per element — the fixed
// per-request bookkeeping (request routing, header map writes) must not
// scale with the batch. CI runs this alongside the engine's alloc tests.
func TestBinaryIngestSteadyStateAllocs(t *testing.T) {
	inst := uniformInst(t, 200, 16384, 8, 21)
	s := New(Config{})
	defer s.Shutdown(t.Context())
	id := register(t, s, inst, 5)

	const batch = 2048
	frames := make([][]byte, 0, len(inst.Elements)/batch)
	for off := 0; off+batch <= len(inst.Elements); off += batch {
		frames = append(frames, wire.AppendElements(nil, inst.Elements[off:off+batch]))
	}
	body := new(bodyReader)
	w := &discardResponseWriter{h: make(http.Header, 4)}
	req := httptest.NewRequest("POST", "/v1/instances/"+id+"/elements", body)
	req.Header.Set("Content-Type", wire.ContentTypeBatch)

	send := func(frame []byte) {
		body.Reset(frame)
		req.ContentLength = int64(len(frame))
		req.Body = body
		for k := range w.h {
			delete(w.h, k)
		}
		s.ServeHTTP(w, req)
	}
	// Warm-up: cycle more frames than the engine's in-flight batch
	// population so every recycled buffer reaches its high-water mark.
	for _, frame := range frames[:6] {
		send(frame)
	}
	pos := 0
	allocs := testing.AllocsPerRun(30, func() {
		send(frames[pos%len(frames)])
		pos++
	})
	perElement := allocs / batch
	t.Logf("warm binary ingest: %.1f allocs/request over %d elements (%.4f/element)", allocs, batch, perElement)
	// The decode path itself is zero-alloc; what remains is fixed
	// per-request bookkeeping (~20 allocs: routing, header map churn —
	// more under -race instrumentation). Guard the property that
	// matters: the total must not scale with the batch. One alloc per
	// element would read 1.0 here.
	if perElement > 0.05 {
		t.Errorf("binary ingest allocates %.4f/element (%v per %d-element request), want per-request-constant ~0",
			perElement, allocs, batch)
	}
}

// TestPoliciesEndpoint covers the discovery endpoint: every registered
// policy appears with a non-empty one-line description, sorted by name —
// the registry-driven replacement for hardcoding the built-in names.
func TestPoliciesEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(t.Context())
	var resp PoliciesResponse
	rec := do(t, s, "GET", "/v1/policies", nil, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/policies: status %d: %s", rec.Code, rec.Body.String())
	}
	want := []string{"first-fit", "greedy-remaining", "randpr", "randpr-weighted"}
	if len(resp.Policies) < len(want) {
		t.Fatalf("%d policies, want at least %d", len(resp.Policies), len(want))
	}
	byName := map[string]string{}
	var names []string
	for _, p := range resp.Policies {
		byName[p.Name] = p.Description
		names = append(names, p.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("policies not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, name := range want {
		if desc, ok := byName[name]; !ok {
			t.Errorf("built-in %q missing from /v1/policies", name)
		} else if desc == "" {
			t.Errorf("built-in %q has an empty description", name)
		}
	}
}
