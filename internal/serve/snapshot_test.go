package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
)

// takeSnapshot hits POST /v1/instances/{id}/snapshot and returns the
// decoded frame.
func takeSnapshot(t *testing.T, s *Server, id string) (*wire.Snapshot, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/instances/"+id+"/snapshot", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.ContentTypeSnapshot {
		t.Fatalf("snapshot content type = %q", ct)
	}
	snap, err := wire.DecodeSnapshot(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("snapshot frame: %v", err)
	}
	return snap, rec.Body.Bytes()
}

// restore posts a snapshot frame to /v1/instances.
func restore(t *testing.T, s *Server, raw []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/instances", bytes.NewReader(raw))
	req.Header.Set("Content-Type", wire.ContentTypeSnapshot)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestSnapshotRestoreResumesExactly is the service-level recovery pin:
// ingest half, snapshot, restore onto a FRESH server (the restart),
// ingest the rest there, and the drain equals the uninterrupted oracle.
func TestSnapshotRestoreResumesExactly(t *testing.T) {
	const seed = 4242
	inst := uniformInst(t, 40, 1200, 4, 21)
	pol, err := core.LookupPolicy(core.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: seed}, nil)
	if err != nil {
		t.Fatal(err)
	}

	s1 := New(Config{})
	id := register(t, s1, inst, seed)
	half := len(inst.Elements) / 2
	rec := do(t, s1, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements[:half])}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}

	snap, raw := takeSnapshot(t, s1, id)
	if snap.ID != id || snap.Final || snap.Submitted != uint64(half) {
		t.Fatalf("snapshot = ID %q Final %v Submitted %d, want %q false %d",
			snap.ID, snap.Final, snap.Submitted, id, half)
	}

	// The "restart": a brand-new server restores the frame.
	s2 := New(Config{})
	var resp RegisterResponse
	rrec := restore(t, s2, raw)
	if rrec.Code != http.StatusCreated {
		t.Fatalf("restore: status %d: %s", rrec.Code, rrec.Body.String())
	}
	if err := json.Unmarshal(rrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != id || resp.State != "streaming" {
		t.Fatalf("restore response = %+v, want ID %q streaming", resp, id)
	}

	rec = do(t, s2, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements[half:])}, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("resumed ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	var dr DrainResponse
	do(t, s2, "POST", "/v1/instances/"+id+"/drain", nil, &dr)
	if got := dr.Result.Core(); !got.Equal(oracle) {
		t.Fatalf("restored drain differs from oracle: benefit %v vs %v", got.Benefit, oracle.Benefit)
	}
	if dr.Metrics.Submitted != uint64(len(inst.Elements)) {
		t.Errorf("restored metrics.submitted = %d, want %d (resumed, not reset)",
			dr.Metrics.Submitted, len(inst.Elements))
	}

	// Fresh registrations on the restored server must not collide with
	// the restored ID.
	id2 := register(t, s2, inst, 1)
	if id2 == id {
		t.Fatalf("fresh registration reused restored id %q", id)
	}
}

// TestSnapshotFinalRoundTrip pins the terminal form: snapshotting a
// drained instance and restoring it yields a drained instance with the
// identical Result.
func TestSnapshotFinalRoundTrip(t *testing.T) {
	inst := uniformInst(t, 20, 400, 4, 5)
	s1 := New(Config{})
	id := register(t, s1, inst, 77)
	do(t, s1, "POST", "/v1/instances/"+id+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements)}, nil)
	var dr DrainResponse
	do(t, s1, "POST", "/v1/instances/"+id+"/drain", nil, &dr)

	snap, raw := takeSnapshot(t, s1, id)
	if !snap.Final {
		t.Fatal("snapshot of client-drained instance not Final")
	}

	s2 := New(Config{})
	rrec := restore(t, s2, raw)
	if rrec.Code != http.StatusCreated {
		t.Fatalf("restore: status %d: %s", rrec.Code, rrec.Body.String())
	}
	var dr2 DrainResponse
	do(t, s2, "POST", "/v1/instances/"+id+"/drain", nil, &dr2)
	if !dr2.Result.Core().Equal(dr.Result.Core()) {
		t.Fatal("restored terminal Result differs from original")
	}
	var st InstanceStatus
	do(t, s2, "GET", "/v1/instances/"+id, nil, &st)
	if st.State != "drained" {
		t.Fatalf("restored state = %q, want drained", st.State)
	}
}

// TestRestoreRejections sweeps the restore error surface: garbage
// frames, duplicate IDs, malformed IDs.
func TestRestoreRejections(t *testing.T) {
	inst := uniformInst(t, 10, 100, 3, 9)
	s := New(Config{})
	id := register(t, s, inst, 3)
	_, raw := takeSnapshot(t, s, id)

	if rec := restore(t, s, []byte("not a frame")); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage restore: status %d", rec.Code)
	}
	// Restoring onto a server that still holds the instance collides.
	if rec := restore(t, s, raw); rec.Code != http.StatusBadRequest ||
		!strings.Contains(rec.Body.String(), "already exists") {
		t.Errorf("duplicate restore: status %d body %s", rec.Code, rec.Body.String())
	}
	// An ID outside the pool's own form is refused.
	snap, err := wire.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	snap.ID = "../../etc/passwd"
	bad := wire.AppendSnapshot(nil, snap)
	if rec := restore(t, New(Config{}), bad); rec.Code != http.StatusBadRequest ||
		!strings.Contains(rec.Body.String(), "not of the form") {
		t.Errorf("malformed id restore: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestWriteSnapshotsRestoreDir pins the daemon round trip: shutdown
// writes one file per instance, a fresh server restores the lot, and
// removed instances do not resurrect.
func TestWriteSnapshotsRestoreDir(t *testing.T) {
	dir := t.TempDir()
	inst := uniformInst(t, 20, 600, 4, 13)
	pol, err := core.LookupPolicy(core.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Run(inst, &core.PolicyAlgorithm{Policy: pol, Seed: 55}, nil)
	if err != nil {
		t.Fatal(err)
	}

	s1 := New(Config{SnapshotDir: dir})
	idA := register(t, s1, inst, 55)
	idB := register(t, s1, inst, 56)
	half := len(inst.Elements) / 2
	do(t, s1, "POST", "/v1/instances/"+idA+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements[:half])}, nil)
	// Remove B: it must not come back after the restart.
	if rec := do(t, s1, "DELETE", "/v1/instances/"+idB, nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("remove: status %d", rec.Code)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteSnapshots(context.Background(), dir); err != nil {
		t.Fatalf("WriteSnapshots: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.osps"))
	if len(files) != 1 || filepath.Base(files[0]) != idA+".osps" {
		t.Fatalf("snapshot files = %v, want exactly %s.osps", files, idA)
	}
	// No temp litter from the atomic writes.
	if litter, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(litter) != 0 {
		t.Fatalf("temp files left behind: %v", litter)
	}

	s2 := New(Config{SnapshotDir: dir})
	n, err := s2.RestoreDir(dir)
	if err != nil || n != 1 {
		t.Fatalf("RestoreDir = %d, %v; want 1, nil", n, err)
	}
	do(t, s2, "POST", "/v1/instances/"+idA+"/elements",
		IngestRequest{Elements: wireElems(inst.Elements[half:])}, nil)
	var dr DrainResponse
	do(t, s2, "POST", "/v1/instances/"+idA+"/drain", nil, &dr)
	if got := dr.Result.Core(); !got.Equal(oracle) {
		t.Fatalf("post-restart drain differs from oracle: benefit %v vs %v", got.Benefit, oracle.Benefit)
	}
	if _, ok := s2.Pool().Get(idB); ok {
		t.Errorf("removed instance %s resurrected", idB)
	}
	// RestoreDir on a missing directory is a first boot, not an error.
	if n, err := New(Config{}).RestoreDir(filepath.Join(dir, "nope")); n != 0 || err != nil {
		t.Errorf("RestoreDir(missing) = %d, %v", n, err)
	}
	// A corrupt snapshot file is reported but does not block the boot.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "i-1.osps"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := New(Config{}).RestoreDir(dir2); n != 0 || err == nil {
		t.Errorf("RestoreDir(corrupt) = %d, %v; want 0 restored and an error", n, err)
	}
}
