package serve

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/engine"
)

// Prometheus text-format exporter (exposition format version 0.0.4) for
// the pool's engines. No client library is used: the engine's lock-free
// counters are already the collected state, so rendering is a pure read
// of every instance's Snapshot. The name/label reference lives in
// docs/OPERATIONS.md.

// metricDef describes one per-instance series derived from an
// engine.Snapshot.
type metricDef struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(engine.Snapshot) float64
}

// perInstanceMetrics is the exported series, one value per instance,
// labeled {instance="i-n"} plus {label="..."} when a registration label
// was supplied.
var perInstanceMetrics = []metricDef{
	{"osp_engine_submitted_elements_total", "counter",
		"Elements flushed to shard queues (published once per batch).",
		func(s engine.Snapshot) float64 { return float64(s.Submitted) }},
	{"osp_engine_processed_elements_total", "counter",
		"Elements decided by shard workers.",
		func(s engine.Snapshot) float64 { return float64(s.Processed) }},
	{"osp_engine_batches_total", "counter",
		"Batches handed to shard workers.",
		func(s engine.Snapshot) float64 { return float64(s.Batches) }},
	{"osp_engine_assigned_total", "counter",
		"Element-to-set assignments made (admitted memberships).",
		func(s engine.Snapshot) float64 { return float64(s.Assigned) }},
	{"osp_engine_dropped_total", "counter",
		"Memberships denied (packets dropped in the router reading).",
		func(s engine.Snapshot) float64 { return float64(s.Dropped) }},
	{"osp_engine_completed_sets", "gauge",
		"Sets completed at drain (0 while the stream is open).",
		func(s engine.Snapshot) float64 { return float64(s.CompletedSets) }},
	{"osp_engine_completed_weight", "gauge",
		"Total weight of completed sets at drain (the OSP benefit).",
		func(s engine.Snapshot) float64 { return s.CompletedWeight }},
	{"osp_engine_elapsed_seconds", "gauge",
		"Seconds since the engine opened, frozen at drain.",
		func(s engine.Snapshot) float64 { return s.Elapsed.Seconds() }},
	{"osp_engine_elements_per_second", "gauge",
		"Processed elements per second of elapsed time.",
		func(s engine.Snapshot) float64 { return s.ElementsPerSec }},
}

// writeMetrics renders the whole exposition: per-state instance gauges,
// then every per-instance series.
func writeMetrics(w io.Writer, p *Pool) {
	instances := p.Instances()

	states := map[engine.State]int{}
	for _, in := range instances {
		states[in.State()]++
	}
	fmt.Fprintf(w, "# HELP osp_instances Registered instances by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE osp_instances gauge\n")
	for _, st := range []engine.State{engine.StateIdle, engine.StateStreaming, engine.StateDrained} {
		fmt.Fprintf(w, "osp_instances{state=%q} %d\n", st.String(), states[st])
	}

	// One snapshot per instance, reused across all series so every series
	// of an instance reflects the same instant.
	snaps := make([]engine.Snapshot, len(instances))
	labels := make([]string, len(instances))
	for i, in := range instances {
		snaps[i] = in.Snapshot()
		labels[i] = instanceLabels(in)
	}
	fmt.Fprintf(w, "# HELP osp_instance_state Lifecycle state of each instance (1 on the current state's series).\n")
	fmt.Fprintf(w, "# TYPE osp_instance_state gauge\n")
	for i, in := range instances {
		fmt.Fprintf(w, "osp_instance_state{%s,state=%q} 1\n", labels[i], in.State().String())
	}

	// Policy is an info gauge for the same reason state is: a label on the
	// counters would split every series if policies ever became mutable.
	fmt.Fprintf(w, "# HELP osp_instance_policy Admission policy of each instance (1 on the policy's series).\n")
	fmt.Fprintf(w, "# TYPE osp_instance_policy gauge\n")
	for i, in := range instances {
		fmt.Fprintf(w, "osp_instance_policy{%s,policy=%q} 1\n", labels[i], in.Policy())
	}

	for _, def := range perInstanceMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n", def.name, def.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", def.name, def.kind)
		for i := range instances {
			fmt.Fprintf(w, "%s{%s} %v\n", def.name, labels[i], def.value(snaps[i]))
		}
	}

	fmt.Fprintf(w, "# HELP osp_engine_shards Shard workers of the instance's engine.\n")
	fmt.Fprintf(w, "# TYPE osp_engine_shards gauge\n")
	for i, in := range instances {
		fmt.Fprintf(w, "osp_engine_shards{%s} %d\n", labels[i], in.Shards())
	}
}

// instanceLabels renders an instance's identifying label pairs. The
// lifecycle state is deliberately NOT part of these: putting a mutable
// state on a counter's labels would split the series every transition.
// State is exported separately as the osp_instance_state info gauge.
func instanceLabels(in *Instance) string {
	var b strings.Builder
	b.WriteString(`instance="`)
	b.WriteString(escapeLabel(in.ID()))
	b.WriteString(`"`)
	if l := in.Label(); l != "" {
		b.WriteString(`,label="`)
		b.WriteString(escapeLabel(l))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
